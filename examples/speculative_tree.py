"""Speculative decoding with hyper-token early exit (T3, Sec. 6).

Builds a draft token tree, shows the merged mapping (paths -> hyper-tokens),
then compares EAGLE against SpecEE+EAGLE on a free-running decode.

Run:  python examples/speculative_tree.py
"""

import numpy as np

from repro import EagleEngine, SpecEESpeculativeEngine, TreeDrafter, build_rig, get_model_spec
from repro.hardware.latency import LatencyModel
from repro.mapping.hyper_token import merged_mapping


def show_tree(rig) -> None:
    drafter = TreeDrafter(rig.model.oracle, depth=4, top_branches=4,
                          level_hit_rate=rig.model.profile.tree_level_hit_rate)
    tree = drafter.build([5, 9, 2])
    print(f"Draft tree: {len(tree)} nodes, {len(tree.leaves())} leaves")
    for hyper in merged_mapping(tree):
        print(f"  hyper-token: nodes {hyper.nodes} tokens {hyper.tokens}")


def compare(rig) -> None:
    drafter = TreeDrafter(rig.model.oracle, depth=4, top_branches=4,
                          level_hit_rate=rig.model.profile.tree_level_hit_rate)
    eagle = EagleEngine(rig.fresh_model(), drafter).generate([5, 9, 2], 240)
    specee = SpecEESpeculativeEngine(rig.fresh_model(), drafter,
                                     rig.bank).generate([5, 9, 2], 240)
    model = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
    e_tps = model.price(eagle.ledger).tokens_per_second
    s_tps = model.price(specee.ledger).tokens_per_second
    early = float(np.mean([it.early_exit for it in specee.iterations]))
    print(f"\nEAGLE        : {eagle.tokens_per_iteration:.2f} tokens/iter, "
          f"{e_tps:.1f} tokens/s (modelled, A100)")
    print(f"SpecEE+EAGLE : {specee.tokens_per_iteration:.2f} tokens/iter, "
          f"{s_tps:.1f} tokens/s ({s_tps / e_tps:.2f}x), "
          f"early-exit iterations {early:.0%}, "
          f"avg verify depth {specee.avg_exit_layer:.1f}/32")


if __name__ == "__main__":
    rig = build_rig("llama2-7b", train_prompts=8, train_tokens=40,
                    predictor_hidden=256, epochs=12)
    show_tree(rig)
    compare(rig)
