"""Fleet goodput walkthrough: 4 replicas, closed-loop clients, policy sweep.

Drives one closed-loop workload (24 think-time clients, 3 rounds each)
through a 4-replica data-parallel fleet under every routing x scheduling
policy combination and prints the goodput comparison — tokens that met
their SLO per modelled second, the metric deadline-aware scheduling and
exit-aware routing exist to move.  Per-request outputs are token-identical
across every configuration; only cost and timing move.

Run:  PYTHONPATH=src python examples/fleet_goodput.py
"""

from repro import build_rig
from repro.serving import ClosedLoopClients, ROUTING_POLICIES, SCHEDULING_POLICIES

N_REPLICAS = 4
FLEET = dict(batch_capacity=4, kv_blocks=24, block_size=4,
             chunk_prefill_tokens=16)


def make_clients(rig, per_token_s: float) -> ClosedLoopClients:
    # 24 impatient clients against 16 batch slots: the closed loop
    # self-throttles offered load, so deadline pressure comes from tight
    # SLOs and think times short relative to service, not from a fixed
    # arrival rate.
    return ClosedLoopClients(
        24, 3, rig.model.vocab_size, think_time_s=0.01, seed=7,
        prompt_len_range=(8, 48), max_new_tokens_range=(16, 48),
        slo_scale=2.0, per_token_s=per_token_s,
    )


def main() -> None:
    rig = build_rig("llama2-7b", train_prompts=6, train_tokens=30,
                    predictor_hidden=128, epochs=10)
    print(f"{N_REPLICAS}-replica fleet, 24 closed-loop clients x 3 rounds "
          f"(llama2-7b @ a100-80g/vllm, modelled clock)\n")
    header = f"{'scheduling':>14} {'routing':>14} {'goodput':>9} {'tput':>8} {'slo':>5} {'per-replica':>12}"
    print(header)
    print("-" * len(header))
    reference = None
    for sched in sorted(SCHEDULING_POLICIES):
        for route in sorted(ROUTING_POLICIES):
            fleet = rig.router_fleet(N_REPLICAS, route=route,
                                     scheduling=sched, **FLEET)
            per_token_s = fleet.replicas[0].latency.full_depth_token_time()
            report = fleet.run(make_clients(rig, per_token_s))
            tokens = {i: r.tokens for i, r in report.results.items()}
            if reference is None:
                reference = tokens
            assert tokens == reference, "policies must never change tokens"
            counts = "/".join(str(c) for c in report.replica_request_counts)
            print(f"{sched:>14} {route:>14} {report.goodput_tps:9.1f} "
                  f"{report.throughput_tps:8.1f} {report.slo_attainment:5.0%} "
                  f"{counts:>12}")
    print("\ngoodput counts only tokens of requests that met their deadline;")
    print("all configurations produced token-identical per-request outputs.")


if __name__ == "__main__":
    main()
