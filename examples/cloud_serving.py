"""Cloud-serving scenario: SpecEE composed with vLLM paging and AWQ int4.

Walks the paper's cloud stack (Sec. 6.3): evaluates MT-Bench throughput for
HF, vLLM and AWQ baselines and their SpecEE integrations on an A100, and
demonstrates the real substrate pieces behind the profiles — the paged KV
cache and the activation-aware quantizer.

Run:  python examples/cloud_serving.py
"""

import numpy as np

from repro import build_rig, get_model_spec
from repro.data import get_dataset, make_items
from repro.eval import priced_run, run_items
from repro.baselines import DenseEngine
from repro.quant.awq import AWQQuantizer
from repro.serving.paged_kv import PagedKVCache


def throughput_table() -> None:
    spec = get_dataset("mt_bench")
    model_spec = get_model_spec("llama2-7b")
    print("MT-Bench decode throughput, Llama2-7B @ A100 (modelled):")
    for flavor, frameworks in (("dense", ["hf", "vllm"]), ("awq", ["awq"])):
        rig = build_rig("llama2-7b", flavor=flavor, train_prompts=6,
                        train_tokens=30, predictor_hidden=128, epochs=10)
        items = make_items(spec, rig.model.oracle, "llama2-7b",
                           flavor=flavor, n_items=10)
        base = run_items(lambda: DenseEngine(rig.fresh_model()), spec, items,
                         n_layers=rig.model.n_layers)
        fast = run_items(lambda: rig.specee_engine(), spec, items,
                         n_layers=rig.model.n_layers)
        for framework in frameworks:
            b = priced_run(base, model_spec, "a100-80g", framework).tokens_per_second
            f = priced_run(fast, model_spec, "a100-80g", framework).tokens_per_second
            print(f"  {framework:>5}: {b:6.1f} -> SpecEE {f:6.1f} tokens/s "
                  f"({f / b:.2f}x)")


def paged_kv_demo() -> None:
    print("\nPaged KV cache (the vLLM substrate):")
    cache = PagedKVCache(n_blocks=32, block_size=16, n_kv_heads=4, head_dim=32)
    for seq in range(3):
        cache.add_sequence(seq)
        for _ in range(10 + 13 * seq):
            kv = np.zeros((4, 32))
            cache.append(seq, kv, kv)
    print(f"  3 sequences of lengths 10/23/36 -> {cache.blocks_in_use()} blocks, "
          f"slot utilization {cache.utilization():.0%}")


def awq_demo() -> None:
    print("\nAWQ activation-aware int4 quantization (the AWQ substrate):")
    rng = np.random.default_rng(0)
    weight = rng.standard_normal((256, 64)) * 0.1
    salient = rng.choice(256, size=12, replace=False)
    weight[salient] *= 6.0
    acts = rng.standard_normal((128, 256))
    acts[:, salient] *= 5.0
    quantized = AWQQuantizer(group_size=64).quantize(weight, acts)
    err = AWQQuantizer.reconstruction_error(weight, quantized, acts)
    ref = float(np.mean((acts @ weight) ** 2))
    print(f"  relative output error {err / ref:.2%}, "
          f"storage {quantized.storage_bytes / weight.nbytes:.0%} of fp64 / "
          f"{quantized.storage_bytes / (weight.size * 2):.2f}x fp16")


if __name__ == "__main__":
    throughput_table()
    paged_kv_demo()
    awq_demo()
