"""Train a tiny transformer from scratch on the synthetic language.

Everything here is the repository's own substrate: the autograd engine, the
trainable transformer, Adam, and the oracle corpus.  Demonstrates that the
nn stack is a genuine (if small) deep-learning framework, not a mock.

Run:  python examples/train_tiny_lm.py
"""

import numpy as np

from repro.data.corpus import generate_corpus
from repro.model.oracle import NGramOracle
from repro.nn.autograd import cross_entropy
from repro.nn.optim import Adam
from repro.nn.transformer import TrainableTransformerLM, TransformerConfig


def main() -> None:
    cfg = TransformerConfig(vocab_size=96, dim=48, n_layers=2, n_heads=4,
                            intermediate_dim=96, max_positions=32)
    oracle = NGramOracle(cfg.vocab_size, order=2, seed=5)
    corpus = generate_corpus(oracle, n_sequences=48, seq_len=24, seed=1)
    lm = TrainableTransformerLM(cfg, seed=0)
    optimizer = Adam(lm.parameters(), lr=3e-3)

    print(f"Training a {sum(p.data.size for p in lm.parameters()):,}-parameter "
          f"transformer on {corpus.size:,} oracle tokens")
    rng = np.random.default_rng(0)
    for step in range(60):
        batch = corpus[rng.choice(len(corpus), size=8, replace=False)]
        inputs, targets = batch[:, :-1], batch[:, 1:]
        optimizer.zero_grad()
        logits = lm(inputs)
        loss = cross_entropy(logits.reshape(-1, cfg.vocab_size), targets.reshape(-1))
        loss.backward()
        optimizer.step()
        if step % 10 == 0 or step == 59:
            print(f"  step {step:3d}  loss {loss.item():.3f}")

    # Next-token accuracy against the oracle on held-out rollouts.
    test = generate_corpus(oracle, n_sequences=12, seq_len=24, seed=99)
    logits = lm(test[:, :-1])
    predictions = np.argmax(logits.data, axis=-1)
    accuracy = float(np.mean(predictions == test[:, 1:]))
    print(f"held-out next-token accuracy: {accuracy:.1%} "
          f"(chance would be ~{1 / cfg.vocab_size:.1%})")


if __name__ == "__main__":
    main()
