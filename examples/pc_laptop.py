"""PC scenario: SpecEE on a laptop 4060 with llama.cpp offload and PowerInfer.

Reproduces the Fig. 16 setting: Llama2-7B does not fit the 8 GB laptop GPU,
so llama.cpp keeps ~half the layers on the CPU, while PowerInfer keeps hot
FFN neurons GPU-resident and sparse-executes the cold tail on the CPU.

Run:  python examples/pc_laptop.py
"""

from repro import build_rig, get_model_spec
from repro.baselines import DenseEngine
from repro.data import get_dataset, make_items
from repro.eval import priced_run, run_items
from repro.hardware.devices import get_device
from repro.sparse.powerinfer import ActivationStats, hybrid_ffn_time, partition_neurons


def pc_throughput() -> None:
    rig = build_rig("llama2-7b", train_prompts=6, train_tokens=30,
                    predictor_hidden=128, epochs=10)
    spec = get_dataset("sum")
    items = make_items(spec, rig.model.oracle, "llama2-7b", n_items=8)
    base = run_items(lambda: DenseEngine(rig.fresh_model()), spec, items,
                     n_layers=rig.model.n_layers)
    fast = run_items(lambda: rig.specee_engine(), spec, items,
                     n_layers=rig.model.n_layers)
    model_spec = get_model_spec("llama2-7b")
    print("SUM decode throughput, Llama2-7B @ RTX 4060 Laptop + i7 (modelled):")
    for framework in ("llama.cpp", "powerinfer"):
        b = priced_run(base, model_spec, "rtx4060-laptop", framework,
                       cpu_device="i7-13650hx").tokens_per_second
        f = priced_run(fast, model_spec, "rtx4060-laptop", framework,
                       cpu_device="i7-13650hx").tokens_per_second
        print(f"  {framework:>10}: {b:5.2f} -> SpecEE {f:5.2f} tokens/s ({f / b:.2f}x)")


def powerinfer_partition_demo() -> None:
    print("\nPowerInfer hot/cold neuron partition (11008 FFN neurons):")
    stats = ActivationStats.power_law(11008, seed=0)
    part = partition_neurons(stats, gpu_budget_fraction=0.26)
    gpu, cpu = get_device("rtx4060-laptop"), get_device("i7-13650hx")
    ffn_bytes = 3 * 4096 * 11008 * 2.0  # one fp16 SwiGLU FFN
    gpu_t, cpu_t = hybrid_ffn_time(part, ffn_bytes, gpu, cpu)
    print(f"  hot fraction {part.hot_fraction:.0%}, cold neurons active "
          f"{part.expected_active_cold_fraction:.0%} of the time")
    print(f"  per-FFN time: GPU {1e6 * gpu_t:.0f} us + CPU {1e6 * cpu_t:.0f} us "
          f"(dense on CPU alone would be {1e6 * ffn_bytes / cpu.bytes_per_second:.0f} us)")


if __name__ == "__main__":
    pc_throughput()
    powerinfer_partition_demo()
