"""Quickstart: decode with SpecEE and compare against the dense baseline.

Builds the Llama2-7B rig (synthetic substrate + trained predictors), decodes
the same prompt with the dense engine and with SpecEE (T1+T2), verifies the
outputs agree, and prices both runs on an A100 under the HuggingFace profile.

Run:  python examples/quickstart.py
"""

from repro import DenseEngine, build_rig, get_model_spec
from repro.data.tokenizer import SyntheticTokenizer
from repro.hardware.latency import LatencyModel

PROMPT_TEXT = "w013 w170 w008 w044"


def main() -> None:
    print("Building rig (trains the per-layer exit predictors once)...")
    rig = build_rig("llama2-7b", train_prompts=8, train_tokens=40,
                    predictor_hidden=256, epochs=12)
    tokenizer = SyntheticTokenizer(rig.model.vocab_size)
    prompt = tokenizer.encode(PROMPT_TEXT)

    dense = DenseEngine(rig.fresh_model()).generate(prompt, 64)
    specee = rig.specee_engine().generate(prompt, 64)

    agreement = sum(a == b for a, b in zip(dense.tokens, specee.tokens)) / 64
    print(f"\nPrompt: {PROMPT_TEXT!r}")
    print(f"SpecEE continuation: {tokenizer.decode(specee.tokens[:16])} ...")
    print(f"Token agreement with dense greedy decode: {agreement:.0%}")
    print(f"Average forward layers: {specee.avg_exit_layer:.1f} of "
          f"{rig.model.n_layers} (dense always runs all)")
    print(f"Early-exit rate: {specee.early_exit_rate:.0%}")

    model = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
    dense_tps = model.price(dense.ledger).tokens_per_second
    specee_tps = model.price(specee.ledger).tokens_per_second
    print(f"\nModelled throughput on A100 (HF profile):")
    print(f"  dense  : {dense_tps:6.1f} tokens/s")
    print(f"  SpecEE : {specee_tps:6.1f} tokens/s  ({specee_tps / dense_tps:.2f}x)")


if __name__ == "__main__":
    main()
