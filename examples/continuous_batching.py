"""Continuous-batching demo: many requests through one SpecEE engine.

Submits a burst of mixed-length requests to the serving engine, watches the
scheduler join/retire sequences over a deliberately small paged-KV pool, and
verifies the serving outputs are token-identical to unbatched decoding —
the invariant the serving test suite enforces.

Run:  PYTHONPATH=src python examples/continuous_batching.py
"""

from repro import Request, build_rig, get_model_spec


def main() -> None:
    rig = build_rig("llama2-7b", train_prompts=6, train_tokens=30,
                    predictor_hidden=128, epochs=10)
    # A small pool (32 blocks of 8 tokens) forces requests to wait in queue
    # until retiring sequences free their blocks.
    serving = rig.serving_engine(batch_capacity=4, kv_blocks=32, block_size=8)
    requests = [Request(i, [i + 2, i + 5, (3 * i) % 100 + 1], 16 + 8 * (i % 4))
                for i in range(10)]
    report = serving.run(requests)

    print("continuous batching over a 32-block paged KV pool:")
    print(f"  {len(report.results)} requests, {report.total_tokens} tokens, "
          f"{report.n_steps} scheduler steps")
    print(f"  avg batch occupancy {report.avg_batch_occupancy:.2f} of 4, "
          f"peak KV blocks {report.peak_kv_blocks} of 32")
    print(f"  mean queue wait {report.mean_queue_wait_steps:.1f} steps, "
          f"p95 latency {report.p95_latency_steps():.1f} steps")

    priced = report.priced_speedup(get_model_spec("llama2-7b"), "a100-80g", "vllm")
    print(f"  modelled throughput {priced['sequential_tps']:.0f} -> "
          f"{priced['serving_tps']:.0f} tokens/s ({priced['speedup']:.2f}x)")

    sequential = rig.specee_engine()
    identical = all(
        sequential.generate(r.prompt, r.max_new_tokens).tokens
        == report.results[r.request_id].tokens
        for r in requests
    )
    print(f"  token-identical to unbatched decoding: {identical}")


if __name__ == "__main__":
    main()
