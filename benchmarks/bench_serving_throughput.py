"""Continuous-batching serving throughput vs sequential SpecEE serving.

Serves one workload twice through the cost model: per-request sequential
decoding (the merge of every request's own ledger) and continuous batching
over the paged KV cache (shared weight passes per decoder layer).  Decode is
weight-bandwidth-bound, so batching must deliver >= 2x modelled tokens/s.

Run standalone:  PYTHONPATH=src python benchmarks/bench_serving_throughput.py [--json OUT]
"""

import json

from repro.data.corpus import generate_prompts
from repro.eval.harness import build_rig
from repro.config import get_model_spec
from repro.serving import Request


def run_serving_benchmark(
    n_requests: int = 16,
    max_new_tokens: int = 64,
    batch_capacity: int = 8,
    kv_blocks: int = 512,
    block_size: int = 16,
    model: str = "llama2-7b",
    device: str = "a100-80g",
    framework: str = "vllm",
    seed: int = 0,
):
    rig = build_rig(model, seed=seed, train_prompts=6, train_tokens=30,
                    predictor_hidden=128, epochs=10)
    serving = rig.serving_engine(
        batch_capacity=batch_capacity, kv_blocks=kv_blocks, block_size=block_size,
    )
    prompts = generate_prompts(n_requests, rig.model.vocab_size, seed=seed + 7)
    requests = [Request(i, prompt, max_new_tokens) for i, prompt in enumerate(prompts)]
    report = serving.run(requests)
    priced = report.priced_speedup(get_model_spec(model), device, framework)
    return report, priced


def render(report, priced) -> str:
    return "\n".join([
        f"requests={len(report.results)} tokens={report.total_tokens} "
        f"steps={report.n_steps} occupancy={report.avg_batch_occupancy:.2f}",
        f"sequential: {priced['sequential_tps']:.1f} tokens/s",
        f"serving:    {priced['serving_tps']:.1f} tokens/s",
        f"speedup:    {priced['speedup']:.2f}x",
    ])


def summarize(report, priced) -> dict:
    return {
        "requests": len(report.results),
        "tokens": report.total_tokens,
        "steps": report.n_steps,
        "avg_occupancy": round(report.avg_batch_occupancy, 2),
        "sequential_tps": round(priced["sequential_tps"], 2),
        "serving_tps": round(priced["serving_tps"], 2),
        "speedup": round(priced["speedup"], 3),
    }


def test_bench_serving_throughput(benchmark):
    report, priced = benchmark.pedantic(run_serving_benchmark, rounds=1, iterations=1)
    print()
    print(render(report, priced))
    assert priced["speedup"] >= 2.0
    assert report.total_tokens == len(report.results) * 64


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write metrics JSON here")
    args = parser.parse_args()
    report, priced = run_serving_benchmark()
    print(render(report, priced))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summarize(report, priced), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
