"""Trained vs untrained exits on the real transformer backend.

The paper's speedup story is *verified early exits*: mid-depth argmaxes that
match a draft proposal and commit without running the remaining layers.
This benchmark decodes the same prompts through two rigs over the real numpy
transformer:

* **untrained** — random weights and the undistilled NGram-oracle draft
  (what the repository shipped before ``repro.training``): verification has
  nothing to agree on, so verified exits are rare;
* **trained** — the LayerSkip-trained, draft-distilled rig from
  :func:`~repro.eval.harness.build_trained_transformer_rig`
  (``kv_fill="propagate"``): exits fire and skip real layer math.

Gated metrics: the trained rig's verified early-exit rate (deterministic,
tight tolerance) and its measured batch-1 wall-clock speedup over a forced
full-depth greedy decode of the same model (stopwatch, loose tolerance).
The absolute floors — exit rate >= 0.3, speedup >= 1.15x — are asserted here
in addition to the committed-baseline regression gate.

Run standalone:  PYTHONPATH=src python benchmarks/bench_exit_training.py [--json OUT]
"""

import json
import time

import numpy as np

from repro.config import SpecEEConfig
from repro.data.corpus import generate_prompts
from repro.eval.harness import (
    build_trained_transformer_rig,
    build_transformer_rig,
    trained_transformer_config,
)

N_PROMPTS = 8
# Long enough that per-step layer savings dominate the shared prefill cost:
# the stopwatch compares whole generate() calls, so short decodes understate
# the per-token speedup.
MAX_NEW_TOKENS = 48
# The operating point the trained rig is profiled for: the offline scheduler
# probes only the two most frequent exit depths, so predictor overhead stays
# well below the cost of the layers an exit skips.
SCHEDULER = "offline"
OFFLINE_TOP_K = 2
EXIT_THRESHOLD = 0.3

# Absolute floors (mirrored by the committed-baseline regression gate).
EXIT_RATE_FLOOR = 0.3
SPEEDUP_FLOOR = 1.15


def _prompts(vocab_size: int):
    # Same distribution (and seed) as the rig's distillation prompt set —
    # mirroring the paper, which trains its predictors on MT-Bench traces
    # and evaluates on the same distribution (Sec. 7.4.4).
    return generate_prompts(N_PROMPTS, vocab_size, seed=31)


def _decode_exits(rig) -> dict:
    """Verified-exit statistics of a SpecEE decode over the bench prompts."""
    config = SpecEEConfig(scheduler=SCHEDULER, exit_threshold=EXIT_THRESHOLD)
    rates, layers = [], []
    for prompt in _prompts(rig.model.vocab_size):
        engine = rig.specee_engine(SCHEDULER, config=config,
                                   offline_top_k=OFFLINE_TOP_K)
        result = engine.generate(prompt, MAX_NEW_TOKENS)
        rates.append(result.early_exit_rate)
        layers.extend(result.exit_layers)
    return {
        "exit_rate": round(float(np.mean(rates)), 3),
        "avg_exit_layer": round(float(np.mean(layers)) + 1, 2),
        "n_layers": rig.model.n_layers,
    }


def _time_speculative(rig) -> float:
    """Batch-1 SpecEE decode wall-clock over the bench prompts (seconds)."""
    config = SpecEEConfig(scheduler=SCHEDULER, exit_threshold=EXIT_THRESHOLD)
    start = time.perf_counter()
    for prompt in _prompts(rig.model.vocab_size):
        engine = rig.specee_engine(SCHEDULER, config=config,
                                   offline_top_k=OFFLINE_TOP_K)
        engine.generate(prompt, MAX_NEW_TOKENS)
    return time.perf_counter() - start


def _time_dense(rig) -> float:
    """Forced full-depth greedy decode of the same prompts (seconds)."""
    start = time.perf_counter()
    for prompt in _prompts(rig.model.vocab_size):
        model = rig.fresh_model()
        state = model.start([int(t) % model.vocab_size for t in prompt])
        model.generate_dense(state, MAX_NEW_TOKENS)
    return time.perf_counter() - start


def run_exit_training_benchmark(seed: int = 0, repeats: int = 5) -> dict:
    """Exit statistics for both rigs plus the trained rig's measured speedup."""
    cfg = trained_transformer_config()
    trained = build_trained_transformer_rig(cfg, seed=seed)
    untrained = build_transformer_rig(cfg, seed=seed, max_tokens=256)

    trained_exits = _decode_exits(trained)
    untrained_exits = _decode_exits(untrained)

    # Warm one round, then best-of-``repeats`` for both stopwatch numbers.
    # Spec and dense are interleaved within each repeat so a background-load
    # window hits both decodes instead of skewing the ratio.
    _time_speculative(trained), _time_dense(trained)
    pairs = [(_time_speculative(trained), _time_dense(trained))
             for _ in range(repeats)]
    spec = min(s for s, _ in pairs)
    dense = min(d for _, d in pairs)
    tokens = N_PROMPTS * MAX_NEW_TOKENS
    speedup = dense / spec
    return {
        "config": {"vocab_size": cfg.vocab_size, "dim": cfg.dim,
                   "n_layers": cfg.n_layers, "prompts": N_PROMPTS,
                   "max_new_tokens": MAX_NEW_TOKENS,
                   "scheduler": SCHEDULER, "offline_top_k": OFFLINE_TOP_K,
                   "exit_threshold": EXIT_THRESHOLD},
        "trained": {**trained_exits,
                    "speculative_tps": round(tokens / spec, 1),
                    "dense_tps": round(tokens / dense, 1),
                    "training": {k: (round(v, 4) if isinstance(v, float) else
                                     [round(x, 3) for x in v])
                                 for k, v in trained.metadata.items()}},
        "untrained": untrained_exits,
        "gates": {
            "trained_exit_rate": trained_exits["exit_rate"],
            "exit_speedup": round(speedup, 3),
        },
    }


def render(summary: dict) -> str:
    t, u, g = summary["trained"], summary["untrained"], summary["gates"]
    lines = ["exit training (real transformer, batch-1 greedy decode)"]
    lines.append(
        f"  untrained rig: verified exit rate {u['exit_rate']:.2f}, "
        f"avg exit layer {u['avg_exit_layer']:.1f}/{u['n_layers']}")
    lines.append(
        f"  trained rig:   verified exit rate {t['exit_rate']:.2f}, "
        f"avg exit layer {t['avg_exit_layer']:.1f}/{t['n_layers']}")
    lines.append(
        f"  wall-clock:    speculative {t['speculative_tps']:.0f} tok/s vs "
        f"full-depth {t['dense_tps']:.0f} tok/s -> {g['exit_speedup']:.2f}x")
    lines.append(
        f"  gates: exit rate >= {EXIT_RATE_FLOOR} and speedup >= "
        f"{SPEEDUP_FLOOR}x")
    return "\n".join(lines)


def test_bench_exit_training(benchmark):
    summary = benchmark.pedantic(run_exit_training_benchmark,
                                 rounds=1, iterations=1)
    print()
    print(render(summary))
    # Absolute acceptance floors from the issue, independent of any baseline.
    assert summary["gates"]["trained_exit_rate"] >= EXIT_RATE_FLOOR
    assert summary["gates"]["exit_speedup"] >= SPEEDUP_FLOOR
    # The untrained rig is the documented contrast: training must actually
    # be what makes exits fire.
    assert (summary["trained"]["exit_rate"]
            > summary["untrained"]["exit_rate"] + 0.2)
    # Same floors as check_regression's gates so the two cannot disagree.
    import os

    baseline_path = os.path.join(os.path.dirname(__file__), "baselines",
                                 "BENCH_exit_training.json")
    with open(baseline_path) as fh:
        gates = json.load(fh)["gates"]
    assert (summary["gates"]["trained_exit_rate"]
            >= gates["trained_exit_rate"] * (1.0 - 0.10))
    assert summary["gates"]["exit_speedup"] >= gates["exit_speedup"] * (1.0 - 0.35)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write metrics JSON here")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    summary = run_exit_training_benchmark(seed=args.seed)
    print(render(summary))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
