"""Prefix-sharing benchmark: shared-prefix KV reuse on a multi-turn chat trace.

A single async replica serves one multi-turn chat trace (sessions of
follow-up turns whose prompts extend the prior context, opened by two
tenants that each pin a long system prompt) twice:

    sharing off  — every prompt is prefilled from scratch (the baseline
                   all other committed benchmarks measure)
    sharing on   — prefills walk the radix tree over token-block hashes,
                   adopt refcounted blocks for the matched prefix
                   (copy-on-write on the first divergent append), and
                   only compute the unmatched suffix

Both runs consume the identical trace, and sharing must be *free* in
token space: every request's output tokens are asserted byte-identical
between the two runs.  What sharing buys is time — adopted prompt tokens
skip their PREFILL_LAYER charges (replaced by a cheap PREFIX_REUSE scan),
which shows up as time-to-first-token on the modelled clock.  Gated
claims: the chat trace hits >=50% prefix reuse, and mean TTFT improves
by >=1.3x over the no-sharing run.

EXPERIMENTS.md ("Shared-prefix KV reuse on multi-turn chat") records the
committed numbers plus the hit-rate study across system-prompt lengths and
tenant mixes.

Run standalone:  PYTHONPATH=src python benchmarks/bench_prefix_sharing.py [--json OUT]
"""

import json

from repro.eval.harness import build_rig
from repro.serving import chat_trace

ENGINE = dict(batch_capacity=8, kv_blocks=96, block_size=4,
              chunk_prefill_tokens=32)


def run_prefix_sharing_benchmark(
    n_sessions: int = 8,
    tenants: int = 2,
    turns: int = 4,
    rate_per_s: float = 10.0,
    system_prompt_range: tuple = (28, 44),
    user_len_range: tuple = (2, 6),
    max_new_tokens_range: tuple = (4, 12),
    model: str = "llama2-7b",
    seed: int = 0,
):
    """Serve one chat trace with sharing off and on; return (trace, reports)."""
    rig = build_rig(model, seed=seed, train_prompts=6, train_tokens=30,
                    predictor_hidden=128, epochs=10)
    engines = {
        "sharing_off": rig.async_serving_engine(**ENGINE),
        "sharing_on": rig.async_serving_engine(prefix_share=True, **ENGINE),
    }
    per_token_s = engines["sharing_off"].latency.full_depth_token_time()
    trace = chat_trace(
        n_sessions, rig.model.vocab_size, tenants=tenants, turns=turns,
        rate_per_s=rate_per_s, system_prompt_range=system_prompt_range,
        user_len_range=user_len_range,
        max_new_tokens_range=max_new_tokens_range,
        per_token_s=per_token_s, seed=seed + 7,
    )
    reports = {name: engine.run(trace) for name, engine in engines.items()}
    return trace, reports


def summarize(reports) -> dict:
    on = reports["sharing_on"]
    off = reports["sharing_off"]
    out = {}
    for name, report in reports.items():
        out[name] = {
            "requests": len(report.results),
            "tokens": report.total_tokens,
            "makespan_s": round(report.makespan_s, 4),
            "throughput_tps": round(report.throughput_tps, 2),
            "mean_ttft_s": round(report.mean_ttft_s, 4),
            "p95_ttft_s": round(report.p95_ttft_s(), 4),
        }
    out["sharing_on"]["prefix_matched_tokens"] = on.prefix_matched_tokens
    out["sharing_on"]["prefix_prompt_tokens"] = on.prefix_prompt_tokens
    out["sharing_on"]["cow_copies"] = on.cow_copies
    out["gates"] = {
        "prefix_hit_rate": round(on.prefix_hit_rate, 4),
        "ttft_improvement": round(off.mean_ttft_s / on.mean_ttft_s, 4),
        "throughput_ratio": round(on.throughput_tps / off.throughput_tps, 4),
    }
    return out


def render(trace, reports) -> str:
    on = reports["sharing_on"]
    off = reports["sharing_off"]
    lines = [
        f"chat trace: {len(trace)} requests "
        f"({trace.params['n_sessions']} sessions x {trace.params['turns']} "
        f"turns, {trace.params['tenants']} tenants), "
        f"{trace.offered_tokens} decode tokens, single async replica",
    ]
    for name, r in reports.items():
        lines.append(
            f"{name:>12} served={len(r.results):2d} tokens={r.total_tokens:4d} "
            f"tps={r.throughput_tps:6.1f} mean_ttft={r.mean_ttft_s:.3f}s "
            f"p95_ttft={r.p95_ttft_s():.3f}s makespan={r.makespan_s:.3f}s"
        )
    lines.append(
        f"   sharing adopts {on.prefix_matched_tokens}/{on.prefix_prompt_tokens}"
        f" prompt tokens (hit {on.prefix_hit_rate:.0%}, {on.cow_copies} COW"
        f" clones), TTFT x{off.mean_ttft_s / on.mean_ttft_s:.2f},"
        f" tokens identical"
    )
    return "\n".join(lines)


def check(trace, reports) -> None:
    """Assert the gated claims: identity, hit rate and TTFT improvement."""
    on = reports["sharing_on"]
    off = reports["sharing_off"]
    # Sharing is a latency optimization, never a semantic one: every request
    # must produce exactly the tokens the no-sharing run produced.
    assert not on.rejected and not off.rejected
    for request in trace:
        assert (list(on.results[request.request_id].tokens)
                == list(off.results[request.request_id].tokens)), (
            f"request {request.request_id}: sharing changed the tokens")
    assert on.prefix_share and not off.prefix_share
    assert on.cow_copies > 0, "no divergent append ever triggered COW"
    assert on.prefix_hit_rate >= 0.5, (
        f"prefix hit rate {on.prefix_hit_rate:.2f} below the 0.5 claim")
    improvement = off.mean_ttft_s / on.mean_ttft_s
    assert improvement >= 1.3, (
        f"TTFT improvement {improvement:.2f}x below the 1.3x claim")


def test_bench_prefix_sharing(benchmark):
    trace, reports = benchmark.pedantic(run_prefix_sharing_benchmark,
                                        rounds=1, iterations=1)
    print()
    print(render(trace, reports))
    check(trace, reports)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write metrics JSON here")
    args = parser.parse_args()
    trace, reports = run_prefix_sharing_benchmark()
    print(render(trace, reports))
    check(trace, reports)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summarize(reports), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
