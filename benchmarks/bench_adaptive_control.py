"""Adaptive speculation control benchmark: pressure/bandit vs static exit policy.

One Poisson trace per load level (low / medium / overload offered rates) is
served by a single-replica EDF engine under the control matrix

    {off, static, pressure, bandit} x {low, medium, overload}.

``off`` runs with no controller at all and ``static`` runs the controller
with the neutral policy — the two must be token-identical at every level,
which pins the controller's plumbing cost at exactly zero.  The gated claim
is at overload: an adaptive policy (pressure or bandit) must deliver at
least 1.10x the goodput of static.  The winning move is *not* "exit
earlier": in a batched tick the decoder layers amortise across the batch
while every failed verification pays a full, unamortised LM-head GEMV, so
the adaptive policies raise the exit bar and shorten the draft under load.
The idle-quality gate checks the flip side: at low load the pressure policy
must not run shallower than static (layers/token ratio >= 1.0).

Run standalone:  PYTHONPATH=src python benchmarks/bench_adaptive_control.py [--json OUT]
"""

import json

from repro.eval.harness import build_rig
from repro.serving import poisson_trace

FLEET = dict(batch_capacity=4, kv_blocks=24, block_size=4,
             chunk_prefill_tokens=16)
# Offered load per replica, in requests per modelled second.  "low" leaves
# slack (SLO attainment near 1), "overload" offers ~6x the sustainable rate.
LEVELS = (("low", 4.0), ("medium", 10.0), ("overload", 24.0))
CONTROLS = ("off", "static", "pressure", "bandit")


def run_adaptive_control_benchmark(
    n_requests: int = 32,
    slo_scale: float = 2.5,
    priority_levels: int = 3,
    max_new_tokens_range: tuple = (16, 48),
    prompt_len_range: tuple = (8, 48),
    model: str = "llama2-7b",
    device: str = "a100-80g",
    framework: str = "vllm",
    seed: int = 0,
):
    rig = build_rig(model, seed=seed, train_prompts=6, train_tokens=30,
                    predictor_hidden=128, epochs=10)
    traces = {}
    reports = {}
    for level, rate_per_s in LEVELS:
        fleets = {
            control: rig.router_fleet(
                1, route="round_robin", scheduling="edf",
                device=device, framework=framework,
                control=None if control == "off" else control,
                control_seed=seed, **FLEET)
            for control in CONTROLS
        }
        # Deadlines scale from the same latency model that prices every run.
        per_token_s = (fleets["off"].replicas[0]
                       .latency.full_depth_token_time())
        trace = poisson_trace(
            n_requests, rate_per_s, rig.model.vocab_size, seed=seed + 7,
            prompt_len_range=prompt_len_range,
            max_new_tokens_range=max_new_tokens_range,
            slo_scale=slo_scale, per_token_s=per_token_s,
            priority_levels=priority_levels,
        )
        traces[level] = trace
        for control, fleet in fleets.items():
            reports[(level, control)] = fleet.run(trace)
    return traces, reports


def summarize(reports) -> dict:
    out = {}
    for (level, control), report in reports.items():
        out[f"{level}+{control}"] = {
            "requests": len(report.results),
            "tokens": report.total_tokens,
            "makespan_s": round(report.makespan_s, 4),
            "throughput_tps": round(report.throughput_tps, 2),
            "goodput_tps": round(report.goodput_tps, 2),
            "slo_attainment": round(report.slo_attainment, 4),
            "p95_latency_s": round(report.p95_latency_s(), 4),
            "layers_per_token": round(report.replica_layers_per_token[0], 3),
            "threshold_offset": round(report.replica_threshold_offsets[0], 4),
        }
    static = reports[("overload", "static")]
    adaptive = max(reports[("overload", "pressure")].goodput_tps,
                   reports[("overload", "bandit")].goodput_tps)
    idle_static = reports[("low", "static")].replica_layers_per_token[0]
    idle_pressure = reports[("low", "pressure")].replica_layers_per_token[0]
    out["gates"] = {
        "overload_adaptive_goodput": round(adaptive, 2),
        "overload_adaptive_gain": round(adaptive / static.goodput_tps, 4),
        "idle_quality_ratio": round(idle_pressure / idle_static, 4),
    }
    return out


def render(traces, reports) -> str:
    lines = []
    for level, rate in LEVELS:
        trace = traces[level]
        static = reports[(level, "static")]
        lines.append(
            f"=== {level}: {len(trace)} requests @ {rate:.0f}/s, "
            f"{trace.offered_tokens} decode tokens")
        for control in CONTROLS:
            r = reports[(level, control)]
            gain = r.goodput_tps / static.goodput_tps
            lines.append(
                f"{control:>9} goodput={r.goodput_tps:7.1f} ({gain:5.2f}x) "
                f"slo={r.slo_attainment:.0%} "
                f"layers/tok={r.replica_layers_per_token[0]:5.2f} "
                f"offset={r.replica_threshold_offsets[0]:+.2f}")
    static = reports[("overload", "static")]
    adaptive = max(reports[("overload", "pressure")].goodput_tps,
                   reports[("overload", "bandit")].goodput_tps)
    lines.append(
        f"   overload gain: goodput x{adaptive / static.goodput_tps:.2f} "
        f"(best adaptive vs static)")
    return "\n".join(lines)


def check(traces, reports) -> None:
    # The neutral controller must be invisible: token-identical to no
    # controller for every request at every load level.
    for level, _ in LEVELS:
        off = reports[(level, "off")]
        static = reports[(level, "static")]
        for request in traces[level]:
            assert (static.results[request.request_id].tokens
                    == off.results[request.request_id].tokens), (
                f"{level}: static controller diverged from off on "
                f"request {request.request_id}")
    overload_static = reports[("overload", "static")]
    assert overload_static.slo_attainment < 1.0, (
        "overload level exerts no deadline pressure; nothing to gate")
    adaptive = max(reports[("overload", "pressure")].goodput_tps,
                   reports[("overload", "bandit")].goodput_tps)
    gain = adaptive / overload_static.goodput_tps
    assert gain >= 1.10, (
        f"adaptive goodput gain {gain:.3f}x at overload is below the "
        f"1.10x bar (adaptive {adaptive:.1f} vs static "
        f"{overload_static.goodput_tps:.1f})")
    idle_static = reports[("low", "static")].replica_layers_per_token[0]
    idle_pressure = reports[("low", "pressure")].replica_layers_per_token[0]
    assert idle_pressure >= idle_static, (
        f"pressure policy runs shallower than static at low load "
        f"({idle_pressure:.2f} < {idle_static:.2f} layers/token): "
        f"idle quality regressed")


def test_bench_adaptive_control(benchmark):
    traces, reports = benchmark.pedantic(run_adaptive_control_benchmark,
                                         rounds=1, iterations=1)
    print()
    print(render(traces, reports))
    check(traces, reports)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write metrics JSON here")
    args = parser.parse_args()
    traces, reports = run_adaptive_control_benchmark()
    print(render(traces, reports))
    check(traces, reports)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summarize(reports), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
