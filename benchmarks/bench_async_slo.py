"""Async SLO benchmark: preemption + chunked prefill vs conservative admission.

One Poisson arrival trace is served twice through the async engine:

* **conservative** — PR 1's policy made open-loop: worst-case KV reservation
  at admission, no preemption, unchunked (monopolising) prefill;
* **speculative** — optimistic admission, swap/recompute preemption chosen by
  the roofline cost model, and chunked prefill.

Both runs are priced on the same modelled clock, must produce token-identical
per-request outputs, and the speculative config must win on SLO attainment
and modelled tokens/s — that's the cloud-serving claim this PR exists for.

Run standalone:  PYTHONPATH=src python benchmarks/bench_async_slo.py [--json OUT]
"""

import json

from repro.eval.harness import build_rig
from repro.serving import poisson_trace

CONSERVATIVE = dict(admission="reserve", preemption="never", chunk_prefill_tokens=None)
SPECULATIVE = dict(admission="optimistic", preemption="auto", chunk_prefill_tokens=16)


def run_async_slo_benchmark(
    n_requests: int = 24,
    rate_per_s: float = 40.0,
    slo_scale: float = 8.0,
    batch_capacity: int = 8,
    kv_blocks: int = 24,
    block_size: int = 4,
    max_new_tokens_range: tuple = (16, 48),
    prompt_len_range: tuple = (8, 48),
    model: str = "llama2-7b",
    device: str = "a100-80g",
    framework: str = "vllm",
    seed: int = 0,
):
    rig = build_rig(model, seed=seed, train_prompts=6, train_tokens=30,
                    predictor_hidden=128, epochs=10)
    engines = {
        name: rig.async_serving_engine(
            device=device, framework=framework, batch_capacity=batch_capacity,
            kv_blocks=kv_blocks, block_size=block_size, **knobs,
        )
        for name, knobs in (("conservative", CONSERVATIVE), ("speculative", SPECULATIVE))
    }
    # Deadlines scale from the same latency model that prices both runs.
    per_token_s = engines["conservative"].latency.full_depth_token_time()
    trace = poisson_trace(
        n_requests, rate_per_s, rig.model.vocab_size, seed=seed + 7,
        prompt_len_range=prompt_len_range, max_new_tokens_range=max_new_tokens_range,
        slo_scale=slo_scale, per_token_s=per_token_s,
    )
    reports = {name: engine.run(trace) for name, engine in engines.items()}
    return trace, reports


def summarize(reports) -> dict:
    out = {}
    for name, report in reports.items():
        out[name] = {
            "requests": len(report.results),
            "tokens": report.total_tokens,
            "makespan_s": round(report.makespan_s, 4),
            "throughput_tps": round(report.throughput_tps, 2),
            "slo_attainment": round(report.slo_attainment, 4),
            "mean_latency_s": round(report.mean_latency_s, 4),
            "p95_latency_s": round(report.p95_latency_s(), 4),
            "preemptions": report.preemptions,
            "swaps": report.swaps,
            "recomputes": report.recomputes,
            "avg_occupancy": round(report.avg_batch_occupancy, 2),
        }
    return out


def render(trace, reports) -> str:
    cons, spec = reports["conservative"], reports["speculative"]
    lines = [
        f"poisson trace: {len(trace)} requests @ {trace.params['rate_per_s']:.0f}/s, "
        f"{trace.offered_tokens} decode tokens",
    ]
    for name, r in reports.items():
        lines.append(
            f"{name:>12}: slo={r.slo_attainment:.0%} tps={r.throughput_tps:.1f} "
            f"p95={r.p95_latency_s():.3f}s occupancy={r.avg_batch_occupancy:.2f} "
            f"preemptions={r.preemptions} ({r.swaps} swap / {r.recomputes} recompute)"
        )
    lines.append(
        f"   gain: slo +{(spec.slo_attainment - cons.slo_attainment):.0%}, "
        f"throughput x{spec.throughput_tps / cons.throughput_tps:.2f}"
    )
    return "\n".join(lines)


def check(trace, reports) -> None:
    cons, spec = reports["conservative"], reports["speculative"]
    for request in trace:
        assert (cons.results[request.request_id].tokens
                == spec.results[request.request_id].tokens), (
            f"request {request.request_id}: preempted run diverged")
    assert spec.preemptions > 0, "benchmark config never exercised preemption"
    assert spec.slo_attainment > cons.slo_attainment, (
        f"speculative SLO {spec.slo_attainment:.2%} does not beat "
        f"conservative {cons.slo_attainment:.2%}")
    assert spec.throughput_tps > cons.throughput_tps


def test_bench_async_slo(benchmark):
    trace, reports = benchmark.pedantic(run_async_slo_benchmark, rounds=1, iterations=1)
    print()
    print(render(trace, reports))
    check(trace, reports)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write metrics JSON here")
    args = parser.parse_args()
    trace, reports = run_async_slo_benchmark()
    print(render(trace, reports))
    check(trace, reports)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summarize(reports), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
