"""Router goodput benchmark: EDF + exit-aware routing vs FIFO + round-robin.

One overloaded Poisson trace (tight deadlines, mixed priorities) is served
by a 4-replica data-parallel fleet under the policy matrix

    {fifo_priority, edf} scheduling x {round_robin, exit_aware} routing.

All four runs produce token-identical per-request outputs (policies move
cost and timing, never tokens).  The gated claim is goodput — tokens that
met their SLO per modelled second: deadline-aware scheduling (EDF service
order plus most-slack victim selection) combined with exit-statistics-aware
routing must beat the state-blind fifo+round_robin baseline.  That is the
fleet-level payoff of SpecEE's per-token early-exit wins: exit-rate variance
across replicas is information a goodput-oriented router can spend.

Run standalone:  PYTHONPATH=src python benchmarks/bench_router_goodput.py [--json OUT]
"""

import json

from repro.eval.harness import build_rig
from repro.serving import poisson_trace

FLEET = dict(batch_capacity=4, kv_blocks=24, block_size=4,
             chunk_prefill_tokens=16)
CONFIGS = (
    ("fifo_priority", "round_robin"),
    ("fifo_priority", "exit_aware"),
    ("edf", "round_robin"),
    ("edf", "exit_aware"),
)


def run_router_goodput_benchmark(
    n_replicas: int = 4,
    n_requests: int = 48,
    rate_per_s: float = 64.0,
    slo_scale: float = 2.5,
    priority_levels: int = 3,
    max_new_tokens_range: tuple = (16, 48),
    prompt_len_range: tuple = (8, 48),
    model: str = "llama2-7b",
    device: str = "a100-80g",
    framework: str = "vllm",
    seed: int = 0,
):
    rig = build_rig(model, seed=seed, train_prompts=6, train_tokens=30,
                    predictor_hidden=128, epochs=10)
    fleets = {
        (sched, route): rig.router_fleet(
            n_replicas, route=route, scheduling=sched,
            device=device, framework=framework, **FLEET)
        for sched, route in CONFIGS
    }
    # Deadlines scale from the same latency model that prices every run.
    per_token_s = next(iter(fleets.values())).replicas[0].latency.full_depth_token_time()
    trace = poisson_trace(
        n_requests, rate_per_s, rig.model.vocab_size, seed=seed + 7,
        prompt_len_range=prompt_len_range,
        max_new_tokens_range=max_new_tokens_range,
        slo_scale=slo_scale, per_token_s=per_token_s,
        priority_levels=priority_levels,
    )
    reports = {config: fleet.run(trace) for config, fleet in fleets.items()}
    return trace, reports


def summarize(reports) -> dict:
    out = {}
    for (sched, route), report in reports.items():
        out[f"{sched}+{route}"] = {
            "requests": len(report.results),
            "tokens": report.total_tokens,
            "makespan_s": round(report.makespan_s, 4),
            "throughput_tps": round(report.throughput_tps, 2),
            "goodput_tps": round(report.goodput_tps, 2),
            "slo_attainment": round(report.slo_attainment, 4),
            "p95_latency_s": round(report.p95_latency_s(), 4),
            "preemptions": report.preemptions,
            "requests_per_replica": report.replica_request_counts,
        }
    baseline = reports[("fifo_priority", "round_robin")]
    best = reports[("edf", "exit_aware")]
    out["gates"] = {
        "edf_exit_aware_goodput": round(best.goodput_tps, 2),
        "goodput_gain": round(best.goodput_tps / baseline.goodput_tps, 4),
    }
    return out


def render(trace, reports) -> str:
    lines = [
        f"poisson trace: {len(trace)} requests @ "
        f"{trace.params['rate_per_s']:.0f}/s, {trace.offered_tokens} decode "
        f"tokens, 4-replica fleet",
    ]
    for (sched, route), r in reports.items():
        lines.append(
            f"{sched:>13}+{route:<12} goodput={r.goodput_tps:7.1f} "
            f"tps={r.throughput_tps:7.1f} slo={r.slo_attainment:.0%} "
            f"p95={r.p95_latency_s():.3f}s preemptions={r.preemptions}"
        )
    baseline = reports[("fifo_priority", "round_robin")]
    best = reports[("edf", "exit_aware")]
    lines.append(
        f"   gain: goodput x{best.goodput_tps / baseline.goodput_tps:.2f}, "
        f"slo +{best.slo_attainment - baseline.slo_attainment:.0%}"
    )
    return "\n".join(lines)


def check(trace, reports) -> None:
    reference = reports[("fifo_priority", "round_robin")]
    for config, report in reports.items():
        for request in trace:
            assert (report.results[request.request_id].tokens
                    == reference.results[request.request_id].tokens), (
                f"request {request.request_id}: {config} diverged")
    baseline = reports[("fifo_priority", "round_robin")]
    best = reports[("edf", "exit_aware")]
    assert baseline.slo_attainment < 1.0, (
        "benchmark config exerts no deadline pressure; nothing to gate")
    assert best.goodput_tps > baseline.goodput_tps, (
        f"edf+exit_aware goodput {best.goodput_tps:.1f} does not beat "
        f"fifo_priority+round_robin {baseline.goodput_tps:.1f}")


def test_bench_router_goodput(benchmark):
    trace, reports = benchmark.pedantic(run_router_goodput_benchmark,
                                        rounds=1, iterations=1)
    print()
    print(render(trace, reports))
    check(trace, reports)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write metrics JSON here")
    args = parser.parse_args()
    trace, reports = run_router_goodput_benchmark()
    print(render(trace, reports))
    check(trace, reports)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summarize(reports), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
