"""Sharded serving scaling: TP x PP curves and the all-reduce crossover.

One closed-batch serving run per workload is re-priced on a sweep of
modelled clusters (the recorded per-tick layer batches are re-sharded for
each shape, so every point serves token-identical work):

* **decode_bound** — short prompts, long decode: weight-bandwidth-bound,
  where tensor parallelism pays (weight traffic divides ``tp``) and pipeline
  parallelism alone does not (micro-batching re-reads weights; stages only
  cancel that out, then bubbles are pure loss).
* **prefill_heavy** — long prompts, short decode: compute-bound, where both
  TP and PP scale the FLOP roofline.

The sweep runs the TP axis on an NVLink-class intra-node link and again on a
PCIe-class link: on NVLink the modelled tokens/s keep rising through TP=8,
on PCIe the per-layer all-reduce latency overtakes the shrinking layer time
and the optimum flips to a smaller TP — the crossover this benchmark exists
to pin down.  CI gates the key points against ``baselines/``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_sharded_scaling.py [--json OUT]
"""

import json

from repro.config import get_model_spec
from repro.data.corpus import generate_prompts
from repro.distributed import make_cluster
from repro.eval.harness import build_rig
from repro.serving import Request

TP_SWEEP = (1, 2, 4, 8)
PP_SWEEP = ((1, 2), (2, 2))
WORKLOADS = {
    # (prompt_len_range, max_new_tokens, n_requests)
    "decode_bound": ((4, 16), 64, 16),
    "prefill_heavy": ((160, 256), 24, 16),
}


def run_sharded_scaling(
    model: str = "llama2-7b",
    device: str = "a100-80g",
    framework: str = "vllm",
    batch_capacity: int = 8,
    kv_blocks: int = 512,
    block_size: int = 16,
    seed: int = 0,
):
    """Serve each workload once, then price it on every cluster shape."""
    rig = build_rig(model, seed=seed, train_prompts=6, train_tokens=30,
                    predictor_hidden=128, epochs=10)
    spec = get_model_spec(model)
    results = {}
    for name, (prompt_range, max_new, n_requests) in WORKLOADS.items():
        serving = rig.serving_engine(
            batch_capacity=batch_capacity, kv_blocks=kv_blocks,
            block_size=block_size,
        )
        prompts = generate_prompts(n_requests, rig.model.vocab_size,
                                   length_range=prompt_range, seed=seed + 7)
        report = serving.run(
            [Request(i, p, max_new) for i, p in enumerate(prompts)])

        def tps(tp, pp, tp_link="nvlink"):
            if tp == 1 and pp == 1:
                priced = report.priced_speedup(spec, device, framework)
            else:
                cluster = make_cluster(device, tp=tp, pp=pp, tp_link=tp_link)
                priced = report.priced_speedup(spec, device, framework,
                                               cluster=cluster)
            return round(priced["serving_tps"], 2)

        curves = {
            link: {f"tp{tp}": tps(tp, 1, link) for tp in TP_SWEEP}
            for link in ("nvlink", "pcie4")
        }
        curves["pp"] = {f"tp{tp}_pp{pp}": tps(tp, pp) for tp, pp in PP_SWEEP}
        curves["optimum_tp"] = {
            link: max(TP_SWEEP, key=lambda tp: curves[link][f"tp{tp}"])
            for link in ("nvlink", "pcie4")
        }
        results[name] = curves
    results["gates"] = {
        "decode_tp2_tps": results["decode_bound"]["nvlink"]["tp2"],
        "prefill_tp2_tps": results["prefill_heavy"]["nvlink"]["tp2"],
        "tp2_over_tp1": round(
            results["prefill_heavy"]["nvlink"]["tp2"]
            / results["prefill_heavy"]["nvlink"]["tp1"], 3),
    }
    return results


def render(results) -> str:
    """Human-readable scaling table."""
    lines = []
    for name in WORKLOADS:
        curves = results[name]
        lines.append(f"{name}:")
        for link in ("nvlink", "pcie4"):
            row = "  ".join(f"tp{tp}={curves[link][f'tp{tp}']:8.1f}"
                            for tp in TP_SWEEP)
            lines.append(f"  {link:>7}: {row}  (optimum tp{curves['optimum_tp'][link]})")
        row = "  ".join(f"{k}={v:8.1f}" for k, v in curves["pp"].items())
        lines.append(f"       pp: {row}")
    gates = results["gates"]
    lines.append(f"gate: prefill-heavy tp2/tp1 = {gates['tp2_over_tp1']:.2f}x")
    return "\n".join(lines)


def check(results) -> None:
    """The scaling claims CI relies on."""
    for name in WORKLOADS:
        curves = results[name]
        assert curves["nvlink"]["tp2"] > curves["nvlink"]["tp1"], (
            f"{name}: TP=2 must beat TP=1 on NVLink")
        # On the slow link, the all-reduce cost flips the optimum below the
        # NVLink one: scaling keeps paying on NVLink where PCIe has turned.
        assert curves["optimum_tp"]["pcie4"] < curves["optimum_tp"]["nvlink"], (
            f"{name}: expected a smaller optimal TP on pcie4 "
            f"({curves['optimum_tp']})")
        assert curves["pcie4"]["tp8"] < curves["pcie4"]["tp4"], (
            f"{name}: TP=8 over PCIe must lose to TP=4 (all-reduce bound)")
    # The compute-bound workload is the headline TP claim.
    assert results["gates"]["tp2_over_tp1"] > 1.2, (
        "prefill-heavy TP=2 should scale well past 1.2x")


def test_bench_sharded_scaling(benchmark):
    """pytest-benchmark entry point."""
    results = benchmark.pedantic(run_sharded_scaling, rounds=1, iterations=1)
    print()
    print(render(results))
    check(results)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write metrics JSON here")
    args = parser.parse_args()
    results = run_sharded_scaling()
    print(render(results))
    check(results)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
