"""Shared benchmark harness.

Every benchmark regenerates one paper artifact through
:mod:`repro.experiments` and prints the rows/series the paper reports, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction report.
Assets (predictor banks, gates, databases) are cached per process, so the
first benchmark of each model pays the training cost once.
"""

import os

import pytest

from repro.experiments import REGISTRY

# Benchmarks default to the "medium" scale: large enough for stable shapes,
# small enough for CI.  Set REPRO_BENCH_SCALE=full for the paper-scale run.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "medium")


def run_experiment_benchmark(benchmark, name: str, scale: str | None = None):
    """Benchmark one artifact regeneration and print its report."""
    scale = scale or BENCH_SCALE
    module = REGISTRY[name]
    result = benchmark.pedantic(lambda: module.run(scale), rounds=1, iterations=1)
    print()
    print(result.render())
    return result


@pytest.fixture
def bench_experiment(benchmark):
    def runner(name: str, scale: str | None = None):
        return run_experiment_benchmark(benchmark, name, scale)

    return runner
