"""Benchmark regression gate for CI.

Compares a freshly produced benchmark JSON against its committed baseline in
``benchmarks/baselines/`` and fails (exit 1) when any gated throughput metric
regresses more than its tolerance.  Gated metrics are listed per file in
``GATES`` as metric objects carrying a dotted path into the JSON and a
tolerance class; everything else is informational.  Higher is always better
for gated metrics.

Two tolerance classes exist: :class:`Modelled` metrics come from the
deterministic roofline cost model and get a tight 10% floor;
:class:`WallClock` metrics are stopwatch measurements (the real-transformer
serving benchmark) whose timing noise across machines and runs warrants a
loose 35% floor — for those, prefer gating dimensionless speedup ratios over
absolute tokens/s.

Usage:  python benchmarks/check_regression.py BENCH_serving.json [BENCH_wallclock.json ...]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")


class Modelled:
    """Deterministic roofline-priced metric: tight regression floor."""

    tolerance = 0.10

    def __init__(self, path: str):
        self.path = path


class WallClock(Modelled):
    """Measured wall-clock metric: loose floor, timing noise is real."""

    tolerance = 0.35


# file name -> higher-is-better metrics gated against the committed baseline
GATES = {
    "BENCH_serving.json": [Modelled("serving_tps"), Modelled("speedup")],
    "BENCH_async_slo.json": [
        Modelled("speculative.throughput_tps"),
        Modelled("speculative.slo_attainment"),
    ],
    "BENCH_sharded_scaling.json": [
        Modelled("gates.decode_tp2_tps"),
        Modelled("gates.prefill_tp2_tps"),
        Modelled("gates.tp2_over_tp1"),
    ],
    "BENCH_wallclock.json": [
        # Only the dimensionless ratios are gated: they are machine-portable,
        # whereas absolute tok/s swings with the host and stays informational.
        WallClock("gates.b16_speedup"),
        WallClock("gates.predictor_speedup"),
    ],
    "BENCH_router_goodput.json": [
        Modelled("gates.edf_exit_aware_goodput"),
        Modelled("gates.goodput_gain"),
    ],
    "BENCH_adaptive_control.json": [
        Modelled("gates.overload_adaptive_goodput"),
        Modelled("gates.overload_adaptive_gain"),
        Modelled("gates.idle_quality_ratio"),
    ],
    "BENCH_exit_training.json": [
        # Exit rate is a deterministic decode statistic; the speedup is a
        # stopwatch ratio of speculative vs forced-full-depth decode.
        Modelled("gates.trained_exit_rate"),
        WallClock("gates.exit_speedup"),
    ],
    "BENCH_fault_recovery.json": [
        Modelled("gates.recovered_fraction"),
        Modelled("gates.failover_goodput_ratio"),
        Modelled("gates.failover_horizon_goodput"),
    ],
    "BENCH_prefix_sharing.json": [
        Modelled("gates.prefix_hit_rate"),
        Modelled("gates.ttft_improvement"),
        Modelled("gates.throughput_ratio"),
    ],
}


def lookup(blob: dict, path: str):
    node = blob
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            raise KeyError(f"metric {path!r} missing")
        node = node[key]
    return float(node)


def leaf_paths(blob, prefix: str = ""):
    """Every dotted path to a scalar leaf in a nested metrics dict."""
    if isinstance(blob, dict):
        for key, value in blob.items():
            yield from leaf_paths(value, f"{prefix}{key}.")
    else:
        yield prefix[:-1]


def has_path(blob: dict, path: str) -> bool:
    node = blob
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return False
        node = node[key]
    return True


def check_file(current_path: str, tolerance: float | None) -> list[str]:
    name = os.path.basename(current_path)
    if name not in GATES:
        return [f"{name}: no gate registered for this benchmark file"]
    baseline_path = os.path.join(BASELINE_DIR, name)
    if not os.path.exists(baseline_path):
        return [f"{name}: committed baseline {baseline_path} is missing"]
    with open(current_path) as fh:
        current = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    # A baseline metric the fresh report no longer produces is a hard
    # failure, not a silent skip: a renamed or dropped key would otherwise
    # un-gate itself (the gated paths below would only catch gated keys,
    # and informational keys would vanish without a trace).
    missing = sorted(path for path in leaf_paths(baseline)
                     if not has_path(current, path))
    if missing:
        failures.append(
            f"{name}: {len(missing)} baseline metric(s) missing from the "
            f"fresh report — regenerate the baseline or restore the keys: "
            + ", ".join(missing))
        for path in missing:
            print(f"  [FAIL] {name}:{path}  present in baseline, missing "
                  "from the fresh report")
    for gate in GATES[name]:
        path = gate.path
        try:
            base = lookup(baseline, path)
            cur = lookup(current, path)
        except KeyError as exc:
            failures.append(f"{name}:{path} not comparable: {exc}")
            continue
        gate_tolerance = gate.tolerance if tolerance is None else tolerance
        floor = base * (1.0 - gate_tolerance)
        status = "OK " if cur >= floor else "FAIL"
        print(f"  [{status}] {name}:{path}  current={cur:g}  baseline={base:g}  "
              f"floor={floor:g}  (tol {gate_tolerance:.0%})")
        if cur < floor:
            failures.append(
                f"{name}:{path} regressed {(1 - cur / base):.1%} "
                f"(current {cur:g} < floor {floor:g}, baseline {base:g})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="freshly produced benchmark JSONs")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override every gate's tolerance class "
                             "(default: per-metric, 0.10 modelled / 0.35 wall-clock)")
    args = parser.parse_args(argv)
    failures: list[str] = []
    for path in args.files:
        failures.extend(check_file(path, args.tolerance))
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
