"""Benchmark regression gate for CI.

Compares a freshly produced benchmark JSON against its committed baseline in
``benchmarks/baselines/`` and fails (exit 1) when any gated throughput metric
regresses more than the tolerance (default 10%).  Gated metrics are listed per
file in ``GATES`` as dotted paths into the JSON; everything else is
informational.  Higher is always better for gated metrics.

Usage:  python benchmarks/check_regression.py BENCH_serving.json [BENCH_async_slo.json ...]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")
TOLERANCE = 0.10

# file name -> dotted paths of higher-is-better metrics gated against baseline
GATES = {
    "BENCH_serving.json": ["serving_tps", "speedup"],
    "BENCH_async_slo.json": [
        "speculative.throughput_tps",
        "speculative.slo_attainment",
    ],
    "BENCH_sharded_scaling.json": [
        "gates.decode_tp2_tps",
        "gates.prefill_tp2_tps",
        "gates.tp2_over_tp1",
    ],
}


def lookup(blob: dict, path: str):
    node = blob
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            raise KeyError(f"metric {path!r} missing")
        node = node[key]
    return float(node)


def check_file(current_path: str, tolerance: float) -> list[str]:
    name = os.path.basename(current_path)
    if name not in GATES:
        return [f"{name}: no gate registered for this benchmark file"]
    baseline_path = os.path.join(BASELINE_DIR, name)
    if not os.path.exists(baseline_path):
        return [f"{name}: committed baseline {baseline_path} is missing"]
    with open(current_path) as fh:
        current = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    for path in GATES[name]:
        base = lookup(baseline, path)
        cur = lookup(current, path)
        floor = base * (1.0 - tolerance)
        status = "OK " if cur >= floor else "FAIL"
        print(f"  [{status}] {name}:{path}  current={cur:g}  baseline={base:g}  "
              f"floor={floor:g}")
        if cur < floor:
            failures.append(
                f"{name}:{path} regressed {(1 - cur / base):.1%} "
                f"(current {cur:g} < floor {floor:g}, baseline {base:g})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="freshly produced benchmark JSONs")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed fractional drop vs baseline (default 0.10)")
    args = parser.parse_args(argv)
    failures: list[str] = []
    for path in args.files:
        failures.extend(check_file(path, args.tolerance))
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
