"""Measured wall-clock serving throughput: batched vs sequential decode
through the real numpy transformer.

Unlike every other benchmark in this directory, the headline numbers here
are *stopwatch* tokens/s, not roofline-priced ones: the same ragged request
batch is served twice through :class:`~repro.serving.ServingEngine` over
:class:`~repro.model.transformer_backend.TransformerLayeredLM` — once with
the per-sequence decode loop, once with the batched fast path (stacked QKV
GEMMs, shared weight passes, shrinking batches on early exit) — and the
committed tokens are asserted identical before any timing is reported.
Sequential decode is weight-bandwidth-bound, so sharing each layer's weight
pass across the batch delivers >= 3x wall-clock tokens/s at batch 16 on the
reference host (the committed baseline records 3.9x).

Wall-clock numbers are machine-dependent; the regression gate therefore
checks the dimensionless batched/sequential speedup (and the absolute tps
only informationally) with the loose wall-clock tolerance class in
``check_regression.py``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_wallclock_serving.py [--json OUT]
"""

import json

from repro.eval.harness import build_transformer_rig
from repro.nn.transformer import TransformerConfig
from repro.serving import Request

BATCH_SIZES = (1, 4, 8, 16)
MAX_NEW_TOKENS = 32

# Wide layers make the contrast honest: at this size sequential decode is
# dominated by re-reading weights per sequence, exactly the regime the
# batched path exists for.  Small enough that the full sweep stays in CI
# budget.
BENCH_CFG = TransformerConfig(vocab_size=512, dim=512, n_layers=8, n_heads=8,
                              intermediate_dim=1376, max_positions=1024)


def _requests(n: int, vocab: int, max_new_tokens: int = MAX_NEW_TOKENS):
    """Ragged prompt lengths so per-sequence cache views stay ragged."""
    return [Request(i, [(i * 13 + j) % vocab + 1 for j in range(4 + i % 5)],
                    max_new_tokens)
            for i in range(n)]


def run_wallclock_benchmark(seed: int = 0, repeats: int = 2) -> dict:
    """Serve each batch size batched and sequentially; best-of ``repeats``."""
    rig = build_transformer_rig(BENCH_CFG, seed=seed, max_tokens=512)
    batches = {}
    for batch in BATCH_SIZES:
        per_mode = {}
        for batched in (True, False):
            best_tps, tokens = 0.0, None
            for _ in range(repeats):
                serving = rig.serving_engine(
                    batch_capacity=batch, kv_blocks=2048, block_size=16,
                    batched=batched,
                )
                report = serving.run(_requests(batch, BENCH_CFG.vocab_size))
                best_tps = max(best_tps, report.measured_tps)
                tokens = {i: r.tokens for i, r in report.results.items()}
            per_mode[batched] = (best_tps, tokens)
        if per_mode[True][1] != per_mode[False][1]:
            raise AssertionError(
                f"batched decode diverged from sequential at batch {batch}")
        batches[str(batch)] = {
            "batched_tps": round(per_mode[True][0], 2),
            "sequential_tps": round(per_mode[False][0], 2),
            "speedup": round(per_mode[True][0] / per_mode[False][0], 3),
            "tokens": batch * MAX_NEW_TOKENS,
            "identical": True,
        }
    predictor = run_predictor_path_benchmark(rig, repeats=repeats)
    b16 = batches["16"]
    return {
        "config": {"dim": BENCH_CFG.dim, "n_layers": BENCH_CFG.n_layers,
                   "intermediate_dim": BENCH_CFG.intermediate_dim,
                   "vocab_size": BENCH_CFG.vocab_size,
                   "max_new_tokens": MAX_NEW_TOKENS},
        "batches": batches,
        "predictor_path": predictor,
        "gates": {
            "b16_speedup": b16["speedup"],
            "b16_batched_tps": b16["batched_tps"],
            "predictor_speedup": predictor["speedup"],
        },
    }


def run_predictor_path_benchmark(rig, repeats: int = 2) -> dict:
    """Batch-16 batched decode with the vectorized predictor tick
    (union-of-drafts LM-head-slice GEMM, row-stacked features, one MLP pass)
    vs the per-sequence python loop over the same layer activations.

    The ``all`` scheduler scores every live sequence at every layer, so this
    isolates the per-layer predictor machinery rather than the decode GEMMs
    both modes share.  Tokens are asserted identical before timing: the two
    paths are the same math in a different loop order.
    """
    per_mode = {}
    for vectorized in (True, False):
        best_tps, tokens = 0.0, None
        for _ in range(repeats):
            serving = rig.serving_engine(
                scheduler_kind="all", batch_capacity=16, kv_blocks=2048,
                block_size=16, batched=True,
            )
            serving.engine.batched_predictors = vectorized
            report = serving.run(_requests(16, BENCH_CFG.vocab_size))
            best_tps = max(best_tps, report.measured_tps)
            tokens = {i: r.tokens for i, r in report.results.items()}
        per_mode[vectorized] = (best_tps, tokens)
    if per_mode[True][1] != per_mode[False][1]:
        raise AssertionError(
            "batched predictor path diverged from the per-sequence loop")
    return {
        "batched_tps": round(per_mode[True][0], 2),
        "per_sequence_tps": round(per_mode[False][0], 2),
        "speedup": round(per_mode[True][0] / per_mode[False][0], 3),
        "identical": True,
    }


def render(summary: dict) -> str:
    lines = ["wall-clock serving (real transformer, measured tokens/s)"]
    for batch, row in summary["batches"].items():
        lines.append(
            f"  batch {batch:>2}: batched {row['batched_tps']:8.1f} tok/s | "
            f"sequential {row['sequential_tps']:8.1f} tok/s | "
            f"{row['speedup']:.2f}x (identical={row['identical']})")
    p = summary["predictor_path"]
    lines.append(
        f"  predictor tick @16: vectorized {p['batched_tps']:8.1f} tok/s | "
        f"per-sequence {p['per_sequence_tps']:8.1f} tok/s | "
        f"{p['speedup']:.2f}x (identical={p['identical']})")
    return "\n".join(lines)


def test_bench_wallclock_serving(benchmark):
    summary = benchmark.pedantic(run_wallclock_benchmark, rounds=1, iterations=1)
    print()
    print(render(summary))
    assert all(row["identical"] for row in summary["batches"].values())
    assert summary["predictor_path"]["identical"]
    # Same floor as check_regression's WallClock gates: committed baseline
    # minus the loose wall-clock tolerance, so the two gates cannot disagree.
    import os

    baseline_path = os.path.join(os.path.dirname(__file__), "baselines",
                                 "BENCH_wallclock.json")
    with open(baseline_path) as fh:
        gates = json.load(fh)["gates"]
    assert summary["gates"]["b16_speedup"] >= gates["b16_speedup"] * (1.0 - 0.35)
    assert (summary["gates"]["predictor_speedup"]
            >= gates["predictor_speedup"] * (1.0 - 0.35))


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write metrics JSON here")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    summary = run_wallclock_benchmark(seed=args.seed)
    print(render(summary))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
