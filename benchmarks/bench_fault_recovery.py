"""Fault-recovery benchmark: replica crash with failover vs losing the work.

A two-replica fleet serves one Poisson trace with deliberately loose SLOs
(10x slack), then replica 0 is permanently crashed at t=0.6s — past the
arrival burst, so roughly half the trace is in flight or queued on it.  Two
runs share the identical trace and fault schedule:

    failover on   — crashed work is salvaged and resumed on the survivor
                    via deterministic recompute (token-identical outputs)
    failover off  — the ablation: every request on the dead replica is lost

Goodput is compared over a **common horizon** (the longer of the two
makespans): the ablation finishes earlier precisely because it dropped
work, and makespan-normalized goodput would launder that loss away.  Over
a shared horizon the ratio collapses to good-tokens recovered vs lost,
which is the quantity failover actually buys.  Gated claims: the failover
run recovers >=90% of the dead replica's in-flight requests, and its
common-horizon goodput beats the ablation by >=1.3x.

Run standalone:  PYTHONPATH=src python benchmarks/bench_fault_recovery.py [--json OUT]
"""

import json

from repro.eval.harness import build_rig
from repro.serving import poisson_trace

FLEET = dict(batch_capacity=4, kv_blocks=24, block_size=4,
             chunk_prefill_tokens=16)
FAULTS = "crash@0.6:replica=0"


def run_fault_recovery_benchmark(
    n_replicas: int = 2,
    n_requests: int = 32,
    rate_per_s: float = 48.0,
    slo_scale: float = 10.0,
    priority_levels: int = 2,
    max_new_tokens_range: tuple = (16, 48),
    prompt_len_range: tuple = (8, 48),
    model: str = "llama2-7b",
    seed: int = 0,
):
    rig = build_rig(model, seed=seed, train_prompts=6, train_tokens=30,
                    predictor_hidden=128, epochs=10)
    fleets = {
        "fault_free": rig.router_fleet(n_replicas, **FLEET),
        "failover": rig.router_fleet(n_replicas, faults=FAULTS, **FLEET),
        "no_failover": rig.router_fleet(n_replicas, faults=FAULTS,
                                        failover=False, **FLEET),
    }
    per_token_s = (fleets["fault_free"].replicas[0]
                   .latency.full_depth_token_time())
    trace = poisson_trace(
        n_requests, rate_per_s, rig.model.vocab_size, seed=seed + 7,
        prompt_len_range=prompt_len_range,
        max_new_tokens_range=max_new_tokens_range,
        slo_scale=slo_scale, per_token_s=per_token_s,
        priority_levels=priority_levels,
    )
    reports = {name: fleet.run(trace) for name, fleet in fleets.items()}
    return trace, reports


def _horizon_s(reports) -> float:
    """The shared accounting window for the crashed pair of runs."""
    return max(reports["failover"].makespan_s,
               reports["no_failover"].makespan_s)


def summarize(reports) -> dict:
    horizon = _horizon_s(reports)
    out = {}
    for name, report in reports.items():
        out[name] = {
            "requests": len(report.results),
            "tokens": report.total_tokens,
            "good_tokens": report.good_tokens,
            "makespan_s": round(report.makespan_s, 4),
            "horizon_goodput_tps": round(report.good_tokens / horizon, 2),
            "crashes": report.crashes,
            "requests_recovered": report.requests_recovered,
            "requests_lost": report.requests_lost,
            "retries": report.retries,
            "tokens_salvaged": report.tokens_salvaged,
        }
    failover = reports["failover"]
    ablation = reports["no_failover"]
    out["gates"] = {
        "recovered_fraction": round(failover.recovered_fraction, 4),
        "failover_goodput_ratio": round(
            failover.good_tokens / ablation.good_tokens, 4),
        "failover_horizon_goodput": round(
            failover.good_tokens / horizon, 2),
    }
    return out


def render(trace, reports) -> str:
    horizon = _horizon_s(reports)
    failover = reports["failover"]
    ablation = reports["no_failover"]
    lines = [
        f"poisson trace: {len(trace)} requests @ "
        f"{trace.params['rate_per_s']:.0f}/s, {trace.offered_tokens} decode "
        f"tokens, 2-replica fleet, fault plan {FAULTS!r}",
    ]
    for name, r in reports.items():
        lines.append(
            f"{name:>12} served={len(r.results):2d} good={r.good_tokens:5d} "
            f"goodput@horizon={r.good_tokens / horizon:6.1f}tps "
            f"recovered={r.requests_recovered} lost={r.requests_lost} "
            f"makespan={r.makespan_s:.3f}s"
        )
    lines.append(
        f"   failover recovers {failover.recovered_fraction:.0%} of crashed "
        f"work, goodput x{failover.good_tokens / ablation.good_tokens:.2f} "
        f"over the drop-the-work ablation"
    )
    return "\n".join(lines)


def check(trace, reports) -> None:
    reference = reports["fault_free"]
    failover = reports["failover"]
    ablation = reports["no_failover"]
    assert failover.crashes == 1 and ablation.crashes == 1
    assert failover.in_flight_at_crash > 0, (
        "crash landed after the trace drained; nothing was at risk")
    # Recovery must be near-total and token-identical to the fault-free run.
    assert failover.recovered_fraction >= 0.9, (
        f"recovered only {failover.recovered_fraction:.0%} of crashed work")
    for request in trace:
        assert (list(failover.results[request.request_id].tokens)
                == list(reference.results[request.request_id].tokens)), (
            f"request {request.request_id}: recovered tokens diverged")
    # The ablation really loses work, and failover converts that loss into
    # >=1.3x common-horizon goodput.
    assert ablation.requests_lost > 0
    ratio = failover.good_tokens / ablation.good_tokens
    assert ratio >= 1.3, (
        f"failover goodput ratio {ratio:.2f} below the 1.3x claim")


def test_bench_fault_recovery(benchmark):
    trace, reports = benchmark.pedantic(run_fault_recovery_benchmark,
                                        rounds=1, iterations=1)
    print()
    print(render(trace, reports))
    check(trace, reports)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write metrics JSON here")
    args = parser.parse_args()
    trace, reports = run_fault_recovery_benchmark()
    print(render(trace, reports))
    check(trace, reports)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summarize(reports), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
