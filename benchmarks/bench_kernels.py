"""Microbenchmarks of the compute kernels (grouped GEMM, predictor, paged KV).

These measure the actual numpy implementations (not the hardware model):
the grouped GEMM must beat the naive per-group loop, and the predictor
forward must be microseconds-scale.
"""

import numpy as np
import pytest

from repro.core.predictor import ExitPredictor
from repro.mapping.grouped_gemm import GroupSpec, grouped_gemm
from repro.serving.paged_kv import PagedKVCache


@pytest.fixture(scope="module")
def gemm_problem():
    rng = np.random.default_rng(0)
    acts = rng.standard_normal((16, 64))
    weight = rng.standard_normal((64, 512))
    groups = [
        GroupSpec(row=i, columns=tuple(int(c) for c in rng.choice(512, size=4, replace=False)))
        for i in range(16)
    ]
    return acts, weight, groups


def test_grouped_gemm_fused(benchmark, gemm_problem):
    acts, weight, groups = gemm_problem
    out = benchmark(lambda: grouped_gemm(acts, weight, groups, block=8))
    assert len(out) == 16


def test_grouped_gemm_naive_loop(benchmark, gemm_problem):
    acts, weight, groups = gemm_problem

    def naive():
        return [acts[g.row] @ weight[:, list(g.columns)] for g in groups]

    out = benchmark(naive)
    assert len(out) == 16


def test_predictor_forward(benchmark):
    predictor = ExitPredictor(12, hidden_dim=512, depth=2, seed=0)
    features = np.random.default_rng(1).standard_normal(12)
    prob = benchmark(lambda: predictor.probability(features))
    assert 0.0 <= prob <= 1.0


def test_paged_kv_append_gather(benchmark):
    def run():
        cache = PagedKVCache(n_blocks=64, block_size=16, n_kv_heads=4, head_dim=16)
        cache.add_sequence(0)
        kv = np.ones((4, 16))
        for _ in range(128):
            cache.append(0, kv, kv)
        return cache.gather(0)

    ks, vs = benchmark(run)
    assert ks.shape == (128, 4, 16)
