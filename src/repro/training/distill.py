"""Draft distillation from the trained transformer.

The synthetic rigs' :class:`~repro.model.draft.Speculator` proposes oracle
continuations, which a *trained* transformer does not reproduce — so exit
verification (full-head argmax must appear among the draft's candidates)
almost never passes.  :class:`DistilledNGramDraft` fixes that the way the
paper's draft models do: it is a small model fit to the big model's own
behaviour.

Distillation harvests two kinds of evidence from the trained inference
stack:

* **teacher-forced**: one full forward over each corpus row records, for
  every position, the model's argmax next token given the real context
  window;
* **on-policy rollouts**: greedy decodes from a prompt set record the
  model's argmax along its *own* trajectory — exactly the contexts a
  speculative decode visits.

Counts are kept per n-gram order (highest first) with backoff: a proposal
ranks candidates from the deepest context window that has been observed,
backing off to shorter windows and finally the model's global token
frequency.  Everything is deterministic (ties break on token id).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.nn.transformer import TinyTransformerLM

__all__ = ["DistilledNGramDraft"]


class DistilledNGramDraft:
    """Backoff n-gram draft fit to a trained model's own predictions.

    Duck-types :class:`~repro.model.draft.Speculator`: ``k``, ``hit_rate``,
    :meth:`propose` and :meth:`is_hit`.  ``hit_rate`` reports the fraction
    of distillation events whose context window was already in the
    highest-order table — a measured statistic, unlike the synthetic
    speculator's configured probability.
    """

    def __init__(self, vocab_size: int, k: int = 4, orders: Sequence[int] = (3, 2, 1)):
        if k < 1:
            raise ValueError("k must be >= 1")
        if not orders or list(orders) != sorted(orders, reverse=True):
            raise ValueError("orders must be non-empty and strictly decreasing")
        self.vocab_size = vocab_size
        self.k = k
        self.orders = tuple(int(o) for o in orders)
        self.tables: Dict[int, Dict[Tuple[int, ...], Counter]] = {
            order: {} for order in self.orders
        }
        self.global_counts: Counter = Counter()
        self._hits = 0
        self._events = 0

    # -- fitting -------------------------------------------------------------
    def _record(self, context: Sequence[int], token: int) -> None:
        self._events += 1
        if self.is_hit(context):
            self._hits += 1
        for order in self.orders:
            if len(context) < order:
                continue
            window = tuple(int(t) for t in context[-order:])
            self.tables[order].setdefault(window, Counter())[int(token)] += 1
        self.global_counts[int(token)] += 1

    def observe_teacher_forced(self, lm: TinyTransformerLM, corpus: np.ndarray) -> None:
        """Record the model's argmax at every position of ``corpus`` [N, T]."""
        corpus = np.asarray(corpus, dtype=np.int64)
        for row in corpus:
            cache = lm.new_cache(len(row))
            hidden = lm.forward_all(row, cache, np.arange(len(row)))
            preds = np.argmax(lm.lm_head(hidden), axis=-1)
            for t in range(len(row) - 1):
                self._record(row[: t + 1], int(preds[t]))

    def observe_rollout(
        self, lm: TinyTransformerLM, prompt: Sequence[int], length: int
    ) -> List[int]:
        """Greedy-decode ``length`` tokens from ``prompt`` and record every
        (context, argmax) transition along the model's own trajectory."""
        ctx = [int(t) % lm.cfg.vocab_size for t in prompt]
        cache = lm.new_cache(len(ctx) + length)
        hidden = lm.forward_all(np.asarray(ctx), cache, np.arange(len(ctx)))
        out: List[int] = []
        for _ in range(length):
            token = int(np.argmax(lm.lm_head(hidden[-1:])))
            self._record(ctx, token)
            out.append(token)
            hidden = lm.forward_all(np.asarray([token]), cache,
                                    np.asarray([len(ctx)]))
            ctx.append(token)
        return out

    @classmethod
    def distill(
        cls,
        lm: TinyTransformerLM,
        corpus: np.ndarray,
        prompts: Sequence[Sequence[int]] = (),
        rollout_len: int = 24,
        k: int = 4,
        orders: Sequence[int] = (3, 2, 1),
    ) -> "DistilledNGramDraft":
        """Fit a draft to ``lm`` from teacher-forced ``corpus`` rows plus
        greedy rollouts from ``prompts`` (see module docstring)."""
        draft = cls(lm.cfg.vocab_size, k=k, orders=orders)
        draft.observe_teacher_forced(lm, corpus)
        for prompt in prompts:
            draft.observe_rollout(lm, prompt, rollout_len)
        return draft

    # -- speculation interface ----------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Measured highest-order coverage during distillation."""
        return self._hits / self._events if self._events else 0.0

    def is_hit(self, context: Sequence[int]) -> bool:
        """Whether the deepest context window has been observed."""
        order = self.orders[0]
        if len(context) < order:
            return False
        return tuple(int(t) for t in context[-order:]) in self.tables[order]

    def propose(self, context: Sequence[int]) -> List[int]:
        """``k`` candidate next tokens, most-supported first.

        Candidates come from the deepest observed window's counts, backing
        off through shorter windows and the global frequency table; padded
        with unseen token ids if the tables cannot fill ``k`` slots.
        """
        out: List[int] = []
        seen = set()

        def extend(counter: Counter) -> bool:
            for token, _ in sorted(counter.items(), key=lambda kv: (-kv[1], kv[0])):
                if token not in seen:
                    seen.add(token)
                    out.append(token)
                    if len(out) == self.k:
                        return True
            return False

        for order in self.orders:
            if len(context) < order:
                continue
            window = tuple(int(t) for t in context[-order:])
            counter = self.tables[order].get(window)
            if counter and extend(counter):
                return out
        if extend(self.global_counts):
            return out
        token = 0
        while len(out) < self.k:
            if token not in seen:
                out.append(token)
            token += 1
        return out
