"""Export trained weights into the inference stack.

:class:`TrainableTransformerLM` (built with ``rope=True``) and
:class:`TinyTransformerLM` share geometry, weight orientation (everything is
``[in, out]`` applied as ``x @ W``) and — by construction of
:func:`repro.nn.transformer.rope_constants` — the exact rotary arithmetic,
so the export is a plain weight copy.  The only inference-side bookkeeping
is :meth:`CausalSelfAttention.refresh_stacked_weights`, which rebuilds the
cached contiguous QKV/KV stacks the decode hot path reads.
"""

from __future__ import annotations

import numpy as np

from repro.nn.transformer import TinyTransformerLM, TrainableTransformerLM

__all__ = ["export_inference_lm"]


def export_inference_lm(trained: TrainableTransformerLM) -> TinyTransformerLM:
    """Copy ``trained``'s weights into a fresh :class:`TinyTransformerLM`.

    Requires ``rope=True`` — the learned-absolute-position variant has no
    inference counterpart (the inference stack is rotary-only), so exporting
    it would silently change the function being computed.
    """
    if not trained.rope:
        raise ValueError(
            "export requires a rope=True TrainableTransformerLM; the "
            "learned-position variant does not match the inference stack")
    lm = TinyTransformerLM(trained.cfg, seed=0)
    lm.embedding = trained.token_emb.weight.data.copy()
    for src, dst in zip(trained.layers, lm.layers):
        np.copyto(dst.attn_norm.weight.data, src.attn_norm.weight.data)
        dst.attn.wq = src.wq.weight.data.copy()
        dst.attn.wk = src.wk.weight.data.copy()
        dst.attn.wv = src.wv.weight.data.copy()
        dst.attn.wo = src.wo.weight.data.copy()
        dst.attn.refresh_stacked_weights()
        np.copyto(dst.ffn_norm.weight.data, src.ffn_norm.weight.data)
        for name in ("gate", "up", "down"):
            getattr(dst.ffn, name).weight.data = (
                getattr(src.ffn, name).weight.data.copy())
    np.copyto(lm.final_norm.weight.data, trained.final_norm.weight.data)
    lm.lm_head_weight = trained.lm_head.weight.data.copy()
    return lm
