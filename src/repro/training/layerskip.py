"""LayerSkip training recipe (arXiv:2404.16710) on the autograd stack.

Two ingredients, both driven through :meth:`TrainableTransformerLM.forward_hidden`:

* **Layer dropout increasing with depth** — each step samples a keep mask
  where layer ``l`` is dropped with probability
  ``max_layer_dropout * l / (n_layers - 1)``; early layers almost always
  run, deep layers are frequently skipped, so the residual stream learns
  not to depend on full depth.
* **Early-exit loss through the shared LM head** — intermediate hidden
  states are projected through the *same* final norm + LM head as the last
  layer and pay a cross-entropy against the next token.  A curriculum
  chooses which exit layers are supervised each step (``rotational`` — one
  per step, round-robin; ``gradual`` — deepest first, earlier layers phased
  in over training; ``all`` — every candidate every step).

The combination is what makes mid-depth argmaxes agree with the full-depth
argmax — the property the SpecEE predictors and verification rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.nn.autograd import cross_entropy, no_grad
from repro.nn.optim import Adam
from repro.nn.transformer import TrainableTransformerLM

__all__ = ["LayerSkipConfig", "TrainingReport", "layer_agreement", "train_layerskip"]

_CURRICULA = ("rotational", "gradual", "all")


@dataclass(frozen=True)
class LayerSkipConfig:
    """Hyperparameters for :func:`train_layerskip`."""

    steps: int = 250
    batch_size: int = 8
    lr: float = 3e-3
    #: Dropout probability of the *last* layer; layer ``l`` is dropped with
    #: probability ``max_layer_dropout * l / (n_layers - 1)``.
    max_layer_dropout: float = 0.3
    #: Weight of the mean early-exit cross-entropy relative to the final CE.
    early_exit_scale: float = 0.5
    #: Shallowest layer that receives an exit loss (mirrors the engine's
    #: ``min_exit_layer`` — depths the scheduler will never exit at are not
    #: supervised).
    min_exit_layer: int = 2
    curriculum: str = "rotational"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 <= self.max_layer_dropout < 1.0:
            raise ValueError("max_layer_dropout must lie in [0, 1)")
        if self.early_exit_scale < 0.0:
            raise ValueError("early_exit_scale must be >= 0")
        if self.curriculum not in _CURRICULA:
            raise ValueError(f"curriculum must be one of {_CURRICULA}")


@dataclass
class TrainingReport:
    """What :func:`train_layerskip` did and how well it worked."""

    config: LayerSkipConfig
    losses: List[float] = field(default_factory=list)
    #: Per-layer fraction of held-out positions whose early-exit argmax
    #: equals the full-depth argmax (the quantity verification checks).
    agreement: List[float] = field(default_factory=list)
    #: Held-out next-token accuracy of the full-depth head.
    accuracy: float = float("nan")

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def _curriculum_exits(
    step: int, cfg: LayerSkipConfig, candidates: Sequence[int]
) -> List[int]:
    """Exit layers supervised at ``step`` (see module docstring)."""
    if cfg.curriculum == "all":
        return list(candidates)
    if cfg.curriculum == "rotational":
        return [candidates[step % len(candidates)]]
    # gradual: start from the deepest candidate, phase earlier exits in
    # linearly over the run so shallow supervision arrives once the deep
    # representation is partly formed.
    frac = (step + 1) / cfg.steps
    count = max(1, int(round(frac * len(candidates))))
    return list(candidates[-count:])


def _keep_mask(
    rng: np.random.Generator, n_layers: int, max_dropout: float
) -> List[bool]:
    """Depth-increasing stochastic layer dropout (always keeps layer 0)."""
    if max_dropout == 0.0 or n_layers == 1:
        return [True] * n_layers
    drop_p = max_dropout * np.arange(n_layers) / (n_layers - 1)
    return list(rng.random(n_layers) >= drop_p)


def layer_agreement(model: TrainableTransformerLM, tokens: np.ndarray) -> List[float]:
    """Per-layer early-exit/full-depth argmax agreement on ``tokens`` [B, T].

    Entry ``l`` is the fraction of positions where
    ``argmax(head(hidden_l))`` equals ``argmax(head(hidden_last))`` — the
    self-consistency the exit verification step tests at decode time.
    """
    with no_grad():
        hiddens = model.forward_hidden(np.asarray(tokens, dtype=np.int64))
        preds = [np.argmax(model.head(h).data, axis=-1) for h in hiddens]
    final = preds[-1]
    return [float(np.mean(p == final)) for p in preds]


def train_layerskip(
    model: TrainableTransformerLM,
    corpus: np.ndarray,
    cfg: LayerSkipConfig | None = None,
    eval_corpus: np.ndarray | None = None,
) -> TrainingReport:
    """Train ``model`` on ``corpus`` [N, T] with the LayerSkip recipe.

    The loss each step is ``CE(final) + early_exit_scale * mean(CE(exit_l))``
    over the curriculum's exit layers, computed on a batch forwarded through
    a freshly sampled depth-increasing layer-dropout mask.  Returns a
    :class:`TrainingReport` with the loss curve and held-out per-layer
    agreement diagnostics (on ``eval_corpus`` or a slice of ``corpus``).
    """
    cfg = cfg or LayerSkipConfig()
    corpus = np.asarray(corpus, dtype=np.int64)
    if corpus.ndim != 2 or corpus.shape[1] < 2:
        raise ValueError("corpus must be [n_sequences, seq_len >= 2]")
    n_layers = len(model.layers)
    if not 0 <= cfg.min_exit_layer <= n_layers - 2:
        raise ValueError(
            f"min_exit_layer {cfg.min_exit_layer} out of range for "
            f"{n_layers} layers")
    # Exit-loss candidates stop one short of the top: the last layer already
    # owns the final CE term.
    candidates = list(range(cfg.min_exit_layer, n_layers - 1))
    vocab = model.cfg.vocab_size

    optimizer = Adam(model.parameters(), lr=cfg.lr)
    rng = np.random.default_rng(cfg.seed)
    report = TrainingReport(config=cfg)
    for step in range(cfg.steps):
        rows = rng.choice(len(corpus), size=min(cfg.batch_size, len(corpus)),
                          replace=False)
        batch = corpus[rows]
        inputs, targets = batch[:, :-1], batch[:, 1:].reshape(-1)
        keep = _keep_mask(rng, n_layers, cfg.max_layer_dropout)
        optimizer.zero_grad()
        hiddens = model.forward_hidden(inputs, layer_keep=keep)
        loss = cross_entropy(model.head(hiddens[-1]).reshape(-1, vocab), targets)
        exits = _curriculum_exits(step, cfg, candidates)
        if exits and cfg.early_exit_scale > 0.0:
            exit_sum = None
            for layer in exits:
                ce = cross_entropy(model.head(hiddens[layer]).reshape(-1, vocab),
                                   targets)
                exit_sum = ce if exit_sum is None else exit_sum + ce
            loss = loss + exit_sum * (cfg.early_exit_scale / len(exits))
        loss.backward()
        optimizer.step()
        report.losses.append(loss.item())

    held_out = eval_corpus if eval_corpus is not None else corpus[: min(8, len(corpus))]
    held_out = np.asarray(held_out, dtype=np.int64)
    report.agreement = layer_agreement(model, held_out[:, :-1])
    with no_grad():
        logits = model(held_out[:, :-1])
    preds = np.argmax(logits.data, axis=-1)
    report.accuracy = float(np.mean(preds == held_out[:, 1:]))
    return report
