"""LayerSkip-style training that makes early exits fire on the real backend.

The package closes the loop the paper assumes and the random-weight
transformer rig lacks:

* :mod:`repro.training.layerskip` — train :class:`TrainableTransformerLM`
  with depth-increasing layer dropout and an early-exit loss through the
  shared LM head (LayerSkip, arXiv:2404.16710), so intermediate hidden
  states project to the same argmax the full depth produces.
* :mod:`repro.training.export` — copy the trained weights into the
  inference stack (:class:`TinyTransformerLM`) weight-for-weight.
* :mod:`repro.training.distill` — distill a draft model from the trained
  network's own predictions so speculative proposals agree with the full
  model often enough for exit verification to pass.

``eval.harness.build_trained_transformer_rig`` runs all three and retrains
the predictor bank + offline exit profile on the trained model.
"""

from repro.training.distill import DistilledNGramDraft
from repro.training.export import export_inference_lm
from repro.training.layerskip import (
    LayerSkipConfig,
    TrainingReport,
    layer_agreement,
    train_layerskip,
)

__all__ = [
    "DistilledNGramDraft",
    "LayerSkipConfig",
    "TrainingReport",
    "export_inference_lm",
    "layer_agreement",
    "train_layerskip",
]
