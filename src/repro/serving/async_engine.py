"""Trace-driven async serving: arrivals, preemption, and chunked prefill.

:class:`AsyncServingEngine` upgrades the closed-batch :class:`ServingEngine`
to an open-loop, event-driven server.  Requests become visible at their
``arrival_s`` timestamps on a modelled clock; each scheduler iteration
("tick") is priced through the roofline :class:`LatencyModel` and advances
the clock by its own cost, so SLO attainment and tokens/s come out of the
same physics that prices everything else in this repo.

Three mechanisms replace PR 1's conservative worst-case admission:

* **Optimistic admission** (``admission="optimistic"``) admits a request as
  soon as a batch slot and *any* free KV block exist, instead of reserving
  the request's worst-case block need up front.  ``admission="reserve"``
  keeps the old conservative policy as the baseline.
* **Preemption** resolves the over-commitment optimism creates.  When the
  pool cannot cover the blocks the next decode tick needs, the
  lowest-priority, latest-arrived running sequence is evicted — either by
  *swap* (its paged KV moves to a modelled host pool, priced as ``KV_SWAP``
  link traffic both ways) or by *recompute* (blocks are freed outright and a
  prefill pass over the full context is re-run at resume).  ``"auto"`` picks
  whichever the roofline model prices cheaper for that sequence, which is the
  vLLM swap-vs-recompute tradeoff made explicit.
* **Chunked prefill** (``chunk_prefill_tokens=N``) feeds long prompts through
  the batch ``N`` tokens per tick alongside ongoing decodes.  With chunking
  off, a prefill monopolises its tick (no decode runs), which is how
  non-chunked serving stalls time-between-tokens in practice.

Preempted-then-resumed sequences are token-identical to uninterrupted
decoding: the per-sequence model state and predictor scheduler survive
preemption on the host (as they do in real servers — only device KV is
evicted), swap-in restores cache contents bit-exactly, and recompute rebuilds
them from the recorded exit hidden states.  Backends with real KV tensors
participate through the :class:`~repro.model.base.LayeredLM` preemption
hooks: swap moves the transformer's :class:`~repro.nn.attention.KVCache` to
a host blob bit for bit, and recompute replays the context at full depth on
resume — both alongside the modelled ``KV_SWAP``/``PREFILL_LAYER`` charges.

Backends that support batched decode (``supports_batched_decode``) run each
tick's decode through :meth:`SpecEEEngine.step_batch`, so the transformer
serves real ``[B, dim]`` math under the async scheduler; the report then
carries wall-clock time and measured tokens/s next to the modelled clock.

Passing a :class:`~repro.distributed.ClusterSpec` runs the same trace on a
modelled ``tp x pp`` cluster: ticks are priced by
:class:`~repro.distributed.ClusterLatencyModel` (tensor-parallel layer
shards plus ``ALLREDUCE`` collectives, pipeline-stage concurrency plus
``PIPELINE_BUBBLE`` idleness), paged-KV blocks are owned per stage, and
preemption costs are re-priced per owning device.  The modelled clock moves
differently, so admission/preemption *timing* may differ from the
single-device run — but per-request tokens never do.

Two orthogonal extension points sit on top of that machinery:

* **Scheduling policies** — every ordering decision (admission order,
  resume/prefill service order, preemption victim) is delegated to a
  pluggable :class:`~repro.serving.scheduler.SchedulingPolicy`:
  ``"fifo_priority"`` keeps the original priority+arrival behavior, and
  ``"edf"`` serves earliest-deadline-first with an SLO-aware victim picker
  that preempts the sequence with the most slack.
* **A stepping API** — :meth:`AsyncServingEngine.run` is a thin loop over
  :meth:`begin` / :meth:`advance_tick` / :meth:`finish_report`, and
  :meth:`submit` injects requests mid-run.  This is what lets the
  data-parallel :class:`~repro.serving.router.ServingRouter` interleave N
  replicas on one shared time origin and route arrivals online.
"""

from __future__ import annotations

import bisect
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.config import ModelSpec, get_model_spec
from repro.core.engine import GenerationResult, SpecEEEngine
from repro.core.scheduling import Scheduler
from repro.errors import KVCorruptionError
from repro.hardware.latency import LatencyModel
from repro.hardware.ledger import CostLedger, Event
from repro.model.base import LMState
from repro.serving.control import (
    ControlPolicy, LoadSignal, SpeculationController,
)
from repro.serving.engine import build_paged_cache, default_scheduler_factory
from repro.serving.faults import ReplicaFaultView
from repro.serving.request import AdmissionPolicy, Request
from repro.serving.scheduler import SchedulingPolicy, make_scheduling_policy

__all__ = [
    "AsyncSequence", "AsyncRequestMetrics", "AsyncServingReport",
    "AsyncServingEngine", "CrashSalvage", "DENSE_THRESHOLD",
]

ADMISSION_MODES = ("optimistic", "reserve")
PREEMPTION_MODES = ("auto", "swap", "recompute", "never")

#: Exit threshold no predictor probability can reach: forcing it on every
#: sequence turns a degraded-mode tick into dense full-depth decode, which is
#: token-identical by the SpecEE verification guarantee.
DENSE_THRESHOLD = 2.0


@dataclass
class AsyncSequence:
    """One admitted request plus all its host-side survivable state."""

    request: Request
    state: LMState
    result: GenerationResult
    scheduler: Scheduler
    admitted_step: int
    prefill_remaining: int
    blocks_reserved: int = 0  # reserve-mode worst-case hold, else 0
    resume_mode: Optional[str] = None  # "swap" | "recompute" while preempted
    last_progress_step: int = 0  # last tick with prefill/decode/resume progress
    preemptions: int = 0
    swaps: int = 0
    recomputes: int = 0
    swapped_tokens: int = 0
    finished_step: int = -1
    #: Modelled clock when the first decoded token landed (None until then).
    first_token_s: Optional[float] = None

    @property
    def request_id(self) -> int:
        """The underlying request's id."""
        return self.request.request_id

    @property
    def done(self) -> bool:
        """Whether the sequence has generated its full token budget."""
        return len(self.result.tokens) >= self.request.max_new_tokens

    @property
    def decodable(self) -> bool:
        """Whether prefill has finished, i.e. decode ticks may run."""
        return self.prefill_remaining == 0


@dataclass
class CrashSalvage:
    """Host-side survivors of a replica crash.

    A crash loses the replica's device KV and host swap pool, but the
    front-end (router) retains every request and the host-side decode state
    of every admitted sequence — the same survival approximation normal
    preemption already makes.  ``slots`` are sequences with decoded tokens,
    adoptable on a healthy replica via the deterministic recompute resume
    (token-identical continuation); ``requests`` is token-less work (queued,
    or admitted but still prefilling) to re-route fresh.
    """

    requests: List[Request] = field(default_factory=list)
    slots: List["AsyncSequence"] = field(default_factory=list)
    #: Admitted (running or preempted) sequences at crash time.
    in_flight: int = 0
    #: Decoded tokens held by the salvaged slots (re-decode is avoided; their
    #: KV must still be rebuilt on the adopting replica).
    decoded_tokens: int = 0


@dataclass
class AsyncRequestMetrics:
    """Per-request outcome on the modelled clock."""

    request_id: int
    arrival_s: float
    deadline_s: Optional[float]
    admitted_step: int
    finished_step: int
    finish_s: float
    tokens: int
    prompt_tokens: int
    preemptions: int = 0
    swaps: int = 0
    recomputes: int = 0
    swapped_tokens: int = 0
    #: Modelled clock when the first token landed (None if never stamped).
    first_token_s: Optional[float] = None

    @property
    def latency_s(self) -> float:
        """End-to-end modelled latency from arrival to last token."""
        return self.finish_s - self.arrival_s

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token on the modelled clock (None if unstamped)."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def met_slo(self) -> Optional[bool]:
        """Whether the request finished by its deadline (None = no SLO)."""
        if self.deadline_s is None:
            return None
        return self.finish_s <= self.deadline_s


@dataclass
class AsyncServingReport:
    """Outcome of one :meth:`AsyncServingEngine.run`."""

    results: Dict[int, GenerationResult] = field(default_factory=dict)
    metrics: Dict[int, AsyncRequestMetrics] = field(default_factory=dict)
    rejected: Dict[int, str] = field(default_factory=dict)
    serving_ledger: CostLedger = field(default_factory=CostLedger)
    sequential_ledger: CostLedger = field(default_factory=CostLedger)
    n_steps: int = 0
    makespan_s: float = 0.0
    wall_time_s: float = float("nan")
    sequential_time_s: float = float("nan")
    batch_occupancy: List[int] = field(default_factory=list)
    tick_seconds: List[float] = field(default_factory=list)
    peak_kv_blocks: int = 0
    peak_host_tokens: int = 0
    preemptions: int = 0
    swaps: int = 0
    recomputes: int = 0
    rejected_with_slo: int = 0
    #: Adaptive-control policy this run decoded under ("off" = no controller).
    control: str = "off"
    #: Mean actuated exit-threshold offset across per-sequence decode
    #: decisions (0.0 under "off"/"static").
    mean_threshold_offset: float = 0.0
    # -- fault/recovery accounting (all zero on a fault-free run) --
    #: Ticks decoded in degraded mode (speculation kill-switch engaged).
    degraded_ticks: int = 0
    #: Times the kill-switch tripped (anomaly streak or checksum failure).
    degraded_events: int = 0
    #: Ticks that ran inside an injected predictor-anomaly window.
    anomalous_ticks: int = 0
    #: Swap blobs that failed their checksum (each fell back to recompute).
    kv_corruptions: int = 0
    #: Sequences failed by the no-progress watchdog.
    watchdog_timeouts: int = 0
    #: Ticks repriced by an injected transient slowdown.
    slowed_ticks: int = 0
    #: Times this replica crashed (``AsyncServingEngine.fail``).
    crashes: int = 0
    # -- prefix-sharing accounting (all zero with sharing off) --
    #: Whether this run paged prompts through the shared radix tree.
    prefix_share: bool = False
    #: Prompt tokens prefilled through the prefix path.
    prefix_prompt_tokens: int = 0
    #: Prompt tokens adopted from shared blocks instead of recomputed.
    prefix_matched_tokens: int = 0
    #: Copy-on-write block clones performed by divergent writes.
    cow_copies: int = 0
    #: Shared-prefix token hit rate (NaN when no prompt was prefix-paged).
    prefix_hit_rate: float = float("nan")

    @property
    def total_tokens(self) -> int:
        """Tokens generated across every served request."""
        return sum(len(r.tokens) for r in self.results.values())

    @property
    def throughput_tps(self) -> float:
        """Modelled serving throughput: total tokens over the makespan."""
        if self.makespan_s <= 0:
            return float("nan")
        return self.total_tokens / self.makespan_s

    @property
    def measured_tps(self) -> float:
        """Real tokens per wall-clock second of this process — reported next
        to the modelled clock, which prices the run as the priced model on
        the priced device regardless of how fast numpy actually ran."""
        if math.isnan(self.wall_time_s) or self.wall_time_s <= 0:
            return float("nan")
        return self.total_tokens / self.wall_time_s

    @property
    def sequential_tps(self) -> float:
        """Modelled one-request-at-a-time throughput on the same physics."""
        if not self.sequential_time_s or math.isnan(self.sequential_time_s):
            return float("nan")
        return self.sequential_ledger.tokens_generated / self.sequential_time_s

    @property
    def speedup(self) -> float:
        """Serving throughput over sequential throughput."""
        seq = self.sequential_tps
        if math.isnan(seq) or seq <= 0:
            return float("nan")
        return self.throughput_tps / seq

    @property
    def slo_attainment(self) -> float:
        """Fraction of deadline-carrying requests that finished in time.
        Rejected requests with a deadline count as missed."""
        met = 0
        total = self.rejected_with_slo  # rejections never meet an SLO
        for m in self.metrics.values():
            if m.deadline_s is None:
                continue
            total += 1
            met += bool(m.met_slo)
        if total == 0:
            return float("nan")
        return met / total

    @property
    def good_tokens(self) -> int:
        """Tokens that met their SLO: tokens of every request that finished
        by its deadline, plus tokens of deadline-free requests (which cannot
        miss).  Tokens of requests that blew their deadline are wasted work
        and count for nothing — the difference between throughput and
        goodput."""
        return sum(m.tokens for m in self.metrics.values()
                   if m.met_slo is not False)

    @property
    def goodput_tps(self) -> float:
        """Modelled goodput: SLO-meeting tokens over the makespan."""
        if self.makespan_s <= 0:
            return float("nan")
        return self.good_tokens / self.makespan_s

    @property
    def avg_batch_occupancy(self) -> float:
        """Mean decoding sequences per tick."""
        if not self.batch_occupancy:
            return float("nan")
        return float(np.mean(self.batch_occupancy))

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end request latency on the modelled clock."""
        if not self.metrics:
            return float("nan")
        return float(np.mean([m.latency_s for m in self.metrics.values()]))

    def p95_latency_s(self) -> float:
        """95th-percentile end-to-end request latency on the modelled clock."""
        if not self.metrics:
            return float("nan")
        return float(np.percentile([m.latency_s for m in self.metrics.values()], 95))

    @property
    def mean_ttft_s(self) -> float:
        """Mean time to first token across requests that produced one."""
        ttfts = [m.ttft_s for m in self.metrics.values() if m.ttft_s is not None]
        if not ttfts:
            return float("nan")
        return float(np.mean(ttfts))

    def p95_ttft_s(self) -> float:
        """95th-percentile time to first token on the modelled clock."""
        ttfts = [m.ttft_s for m in self.metrics.values() if m.ttft_s is not None]
        if not ttfts:
            return float("nan")
        return float(np.percentile(ttfts, 95))


class AsyncServingEngine:
    """Event-driven serving over one :class:`SpecEEEngine` (module docstring)."""

    def __init__(
        self,
        engine: SpecEEEngine,
        model_spec: Union[ModelSpec, str],
        *,
        device: str = "a100-80g",
        framework: str = "vllm",
        cpu_device: Optional[str] = None,
        batch_capacity: int = 8,
        kv_blocks: int = 256,
        block_size: int = 16,
        n_kv_heads: Optional[int] = None,
        scheduler_factory: Optional[Callable[[], Scheduler]] = None,
        admission: str = "optimistic",
        preemption: str = "auto",
        chunk_prefill_tokens: Optional[int] = 32,
        scheduling: Union[str, SchedulingPolicy] = "fifo_priority",
        cluster=None,
        batched: Optional[bool] = None,
        control: Union[str, ControlPolicy, SpeculationController, None] = None,
        control_seed: int = 0,
        faults: Optional[ReplicaFaultView] = None,
        watchdog_ticks: Optional[int] = None,
        degrade_window: int = 8,
        anomaly_detect_ticks: int = 2,
        prefix_share: bool = False,
    ):
        """Build the async server.

        ``cluster`` (a :class:`~repro.distributed.ClusterSpec`) shards the
        run: ticks are priced by the cluster model instead of the
        single-``device`` roofline, and the paged cache becomes one pool per
        pipeline stage (``kv_blocks`` blocks on each stage device).
        ``scheduling`` picks the :class:`SchedulingPolicy` that orders
        admission/service and selects preemption victims (``"fifo_priority"``
        or ``"edf"``, or a policy instance).  ``batched`` routes each tick's
        decode through :meth:`SpecEEEngine.step_batch` (real ``[B, dim]``
        math on backends that support it); the default follows the model's
        ``supports_batched_decode``.

        ``control`` attaches a load-adaptive :class:`SpeculationController`
        (``"static"``/``"pressure"``/``"bandit"``, a policy instance, or a
        prebuilt controller): each decode tick the engine hands it a fresh
        :meth:`load_signal` and actuates its per-sequence exit-threshold /
        draft-length overrides.  ``None`` (the default) decodes with the
        engine's static configuration — token-identical to ``"static"``.
        ``control_seed`` feeds the bandit's sampling stream.

        ``faults`` attaches a :class:`~repro.serving.faults.ReplicaFaultView`
        the engine polls every tick (slowdowns, predictor anomalies,
        KV-corruption arms) — usually wired by the router from a fleet-level
        :class:`~repro.serving.faults.FaultInjector`.  ``watchdog_ticks``
        fails any admitted sequence that makes no prefill/decode/resume
        progress for that many consecutive ticks (None disables the
        watchdog).  ``anomaly_detect_ticks`` consecutive anomalous ticks trip
        the speculation kill-switch into degraded dense decode, which re-arms
        after ``degrade_window`` clean ticks.

        ``prefix_share`` pages prompts into the paged cache through a shared
        radix tree: a fresh admission adopts the blocks of every previously
        seen prompt prefix (refcounted, copy-on-write on first divergent
        write) and only the unmatched suffix is prefilled — the ledger
        charges ``PREFILL_LAYER`` for the suffix plus a small
        ``PREFIX_REUSE`` adoption overhead.  Off (the default), prompts are
        never paged and every code path is byte-identical to earlier
        releases.
        """
        if admission not in ADMISSION_MODES:
            raise ValueError(f"admission must be one of {ADMISSION_MODES}")
        if preemption not in PREEMPTION_MODES:
            raise ValueError(f"preemption must be one of {PREEMPTION_MODES}")
        if chunk_prefill_tokens is not None and chunk_prefill_tokens < 1:
            raise ValueError("chunk_prefill_tokens must be >= 1 (or None)")
        if watchdog_ticks is not None and watchdog_ticks < 1:
            raise ValueError("watchdog_ticks must be >= 1 (or None)")
        if degrade_window < 1 or anomaly_detect_ticks < 1:
            raise ValueError("degrade_window and anomaly_detect_ticks must be >= 1")
        self.engine = engine
        if isinstance(model_spec, str):
            model_spec = get_model_spec(model_spec)
        self.cluster = cluster if cluster is not None and not cluster.is_single else None
        if self.cluster is not None:
            from repro.distributed.latency import ClusterLatencyModel

            self.latency: LatencyModel = ClusterLatencyModel(
                model_spec, self.cluster, framework, cpu_device=cpu_device)
        else:
            self.latency = LatencyModel(model_spec, device, framework,
                                        cpu_device=cpu_device)
        n_stages = self.cluster.pp if self.cluster is not None else 1
        self.prefix_share = bool(prefix_share)
        self.cache = build_paged_cache(engine, kv_blocks, block_size, n_kv_heads,
                                       n_stages=n_stages,
                                       prefix_share=self.prefix_share)
        self.policy = AdmissionPolicy(
            n_blocks=kv_blocks, block_size=block_size, batch_capacity=batch_capacity,
            prefix_share=self.prefix_share,
        )
        self.scheduler_factory = scheduler_factory or default_scheduler_factory(engine)
        self.admission = admission
        self.preemption = preemption
        self.chunk_prefill_tokens = chunk_prefill_tokens
        self.scheduling = make_scheduling_policy(scheduling)
        self.batched = (engine.model.supports_batched_decode
                        if batched is None else bool(batched))
        if control is None:
            self.controller: Optional[SpeculationController] = None
        elif isinstance(control, SpeculationController):
            self.controller = control
        else:
            self.controller = SpeculationController(
                control, k=engine.config.num_speculative,
                base_threshold=engine.config.exit_threshold, seed=control_seed)
        self.faults = faults
        self.watchdog_ticks = watchdog_ticks
        self.degrade_window = degrade_window
        self.anomaly_detect_ticks = anomaly_detect_ticks
        # Service-rate estimate for deadline slack: starts at the roofline
        # full-depth token time, replaced by the run's observed tick time
        # once ticks exist (see _service_estimate_s).
        self._per_token_s = self.latency.full_depth_token_time()
        self._service_s = self._per_token_s
        # -- per-run state (reset by begin()) --
        self.pending: List[Request] = []  # sorted by arrival, not yet visible
        self.waiting: List[Request] = []  # arrived, not yet admitted
        self.running: List[AsyncSequence] = []
        self.preempted: List[AsyncSequence] = []
        self.report = AsyncServingReport()
        self.reserved_blocks = 0
        self.step_count = 0
        self.now_s = 0.0
        self.dead = False
        self.degraded = False
        self._anomaly_streak = 0
        self._clean_streak = 0
        self._salvage: Dict[int, AsyncSequence] = {}
        self._prompt_tokens = 0
        self._wall_start = time.perf_counter()

    # -- tick phases ---------------------------------------------------------
    def _service_estimate_s(self) -> float:
        """Per-token service-time estimate for deadline slack.

        Every running sequence advances one token per tick, so the observed
        mean tick time *is* the per-token service rate the batch actually
        delivers — including batching overhead, prefill chunks sharing the
        tick and preemption traffic, none of which the single-stream roofline
        estimate sees.  An optimistic estimate makes EDF classify doomed
        requests as feasible and burn capacity on them (the overload domino
        effect), so accuracy here is what the goodput win rests on.  Until
        enough ticks exist, fall back to the roofline full-depth token time.
        """
        ticks = self.report.tick_seconds
        if len(ticks) < 4:
            return self._per_token_s
        return float(np.mean(ticks[-16:]))

    def _service_key(self, seq: AsyncSequence):
        """The scheduling policy's service rank of a live sequence — the one
        place the slack inputs (clock, rate estimate, tokens still owed) are
        spelled, so resume and prefill order can never diverge."""
        return self.scheduling.queue_key(
            seq.request, self.now_s, self._service_s,
            remaining=seq.request.max_new_tokens - len(seq.result.tokens))

    def _absorb_arrivals(self, pending: List[Request], report: AsyncServingReport) -> None:
        while pending and pending[0].arrival_s <= self.now_s + 1e-12:
            request = pending.pop(0)
            reason = self.policy.oversize_reason(request)
            if reason:
                report.rejected[request.request_id] = f"{reason}; it would wait forever"
                if request.slo_s is not None:
                    report.rejected_with_slo += 1
                continue
            self.waiting.append(request)
        self.waiting.sort(key=lambda r: self.scheduling.queue_key(
            r, self.now_s, self._service_s))

    def _live_count(self) -> int:
        return len(self.running) + len(self.preempted)

    def _resume_preempted(self, tick: CostLedger) -> None:
        """Bring evicted sequences back in policy service order.  Resume has
        precedence over fresh admission so preempted work cannot starve."""
        self.preempted.sort(key=self._service_key)
        while self.preempted:
            slot = self.preempted[0]
            tokens = len(slot.result.tokens)
            need_tokens = tokens
            if self.prefix_share:
                # Prompts are paged too: the resume must cover the full
                # context worst-case (a cold tree adopts nothing).
                need_tokens += len(slot.request.prompt)
            blocks_now = -(-need_tokens // self.policy.block_size) if need_tokens else 0
            # One extra block if the very next decode token opens a new block.
            headroom = 1 if need_tokens % self.policy.block_size == 0 else 0
            deficit = blocks_now + headroom - self.cache.allocator.free_blocks
            if deficit > 0 and self.prefix_share:
                self.cache.evict_prefix_leaves(deficit)  # cold cache first
            if self.cache.allocator.free_blocks < blocks_now + headroom:
                break  # lower-priority slots must not jump the queue
            self.preempted.pop(0)
            if slot.resume_mode == "swap":
                try:
                    moved = self.cache.swap_in(slot.request_id)
                except KVCorruptionError:
                    # The parked blob is damaged: discard it, trip the
                    # kill-switch, and fall through to the recompute resume —
                    # more prefill work, identical tokens.
                    self.report.kv_corruptions += 1
                    self.cache.drop_host(slot.request_id)
                    self.engine.model.drop_state_kv(slot.state)
                    slot.resume_mode = "recompute"
                    self._trip_degraded()
                else:
                    tick.add(Event.KV_SWAP, calls=1, units=moved)
                    slot.swapped_tokens += moved
                    self.engine.model.swap_in_state(slot.state)
            if slot.resume_mode == "recompute":
                # Rebuild paged KV from the recorded exit states.  With
                # prefix sharing the prompt re-walks the radix tree first:
                # any prefix still resident is adopted instead of recomputed,
                # so the PREFILL_LAYER recompute charge covers only the
                # unmatched context.
                matched = 0
                if self.prefix_share:
                    matched = self.cache.prefill_prompt(
                        slot.request_id, slot.request.prompt)
                    if matched:
                        tick.add(Event.PREFIX_REUSE, calls=1, units=matched)
                else:
                    self.cache.add_sequence(slot.request_id)
                for record in slot.result.records:
                    kv = record.hidden.reshape(self.cache.n_kv_heads, self.cache.head_dim)
                    self.cache.append(slot.request_id, kv, kv)
                context = len(slot.request.prompt) + tokens
                tick.add(Event.PREFILL_LAYER,
                         calls=self.engine.model.n_layers,
                         units=self.engine.model.n_layers * (context - matched))
                slot.recomputes += 1
                self.engine.model.recompute_state(slot.state)
            slot.resume_mode = None
            slot.last_progress_step = self.step_count
            self.running.append(slot)

    def _admissible(self, request: Request) -> bool:
        if self._live_count() >= self.policy.batch_capacity:
            return False
        if self.admission == "reserve":
            need = self.policy.blocks_needed(request)
            return self.reserved_blocks + need <= self.policy.n_blocks
        return self.cache.allocator.free_blocks >= 1

    def _admit(self, report: AsyncServingReport,
               tick: CostLedger) -> List[AsyncSequence]:
        admitted: List[AsyncSequence] = []
        while self.waiting and self._admissible(self.waiting[0]):
            request = self.waiting.pop(0)
            salvaged = self._salvage.pop(request.request_id, None)
            if salvaged is not None:
                # Failover adoption: the sequence already decoded tokens on a
                # crashed replica; its host-side state survives, only KV must
                # be rebuilt.  Admission places it straight into the
                # preempted list and the recompute resume does the rest —
                # the continuation is token-identical.
                salvaged.admitted_step = self.step_count
                salvaged.last_progress_step = self.step_count
                salvaged.resume_mode = "recompute"
                salvaged.prefill_remaining = 0
                if self.admission == "reserve":
                    salvaged.blocks_reserved = self.policy.blocks_needed(request)
                    self.reserved_blocks += salvaged.blocks_reserved
                self.preempted.append(salvaged)
                admitted.append(salvaged)
                continue
            matched = 0
            if self.prefix_share:
                try:
                    matched = self.cache.prefill_prompt(
                        request.request_id, request.prompt)
                except MemoryError:
                    # Optimistic admission over-committed: the pool cannot
                    # page this prompt right now even after leaf eviction.
                    # Put the request back at the head and stop admitting —
                    # decode/retire ticks will free blocks.
                    self.waiting.insert(0, request)
                    break
                if matched:
                    tick.add(Event.PREFIX_REUSE, calls=1, units=matched)
            state, result = self.engine.prefill(request.prompt, script=request.script)
            scheduler = self.scheduler_factory()
            scheduler.reset()
            if not self.prefix_share:
                self.cache.add_sequence(request.request_id)
            slot = AsyncSequence(
                request=request, state=state, result=result, scheduler=scheduler,
                admitted_step=self.step_count,
                prefill_remaining=len(request.prompt) - matched,
                last_progress_step=self.step_count,
            )
            if self.admission == "reserve":
                slot.blocks_reserved = self.policy.blocks_needed(request)
                self.reserved_blocks += slot.blocks_reserved
            self.running.append(slot)
            admitted.append(slot)
        return admitted

    def _prefill(self, tick: CostLedger) -> bool:
        """Schedule prefill work for this tick; returns True when the prefill
        monopolised the tick (unchunked mode) and decode must be skipped."""
        prefilling = sorted((s for s in self.running if s.prefill_remaining > 0),
                            key=self._service_key)
        if not prefilling:
            return False
        n_layers = self.engine.model.n_layers
        if self.chunk_prefill_tokens is None:
            # Whole prompts run in one go and own the tick, stalling decode.
            for slot in prefilling:
                take = slot.prefill_remaining
                tick.add(Event.PREFILL_LAYER, calls=n_layers, units=n_layers * take)
                slot.prefill_remaining = 0
                slot.last_progress_step = self.step_count
            return True
        budget = self.chunk_prefill_tokens
        for slot in prefilling:
            if budget == 0:
                break
            take = min(slot.prefill_remaining, budget)
            tick.add(Event.PREFILL_LAYER, calls=n_layers, units=n_layers * take)
            slot.prefill_remaining -= take
            budget -= take
            if take:
                slot.last_progress_step = self.step_count
        return False

    def _preempt(self, slot: AsyncSequence, tick: CostLedger) -> None:
        tokens = len(slot.result.tokens)
        mode = self.preemption
        if mode == "auto":
            costs = self.latency.preempt_costs(
                tokens, len(slot.request.prompt) + tokens)
            mode = "swap" if costs["swap"] <= costs["recompute"] else "recompute"
        if mode == "swap" and tokens > 0:
            moved = self.cache.swap_out(slot.request_id)
            tick.add(Event.KV_SWAP, calls=1, units=moved)
            slot.swapped_tokens += moved
            slot.swaps += 1
            slot.resume_mode = "swap"
            self.engine.model.swap_out_state(slot.state)
        else:
            # Nothing decoded yet degenerates to recompute (nothing to save).
            self.cache.free_sequence(slot.request_id)
            slot.resume_mode = "recompute"
            self.engine.model.drop_state_kv(slot.state)
        slot.preemptions += 1
        self.running.remove(slot)
        self.preempted.append(slot)

    def _ensure_decode_blocks(self, runnable: List[AsyncSequence], tick: CostLedger) -> None:
        """Evict until the free pool covers every new block this tick's
        decode will allocate.  Raises with a clear message when eviction is
        disabled but required."""
        while True:
            # append_needs_block folds in the copy-on-write case: a mid-block
            # append to a shared block clones it into a fresh one.  With
            # sharing off it reduces to the plain block-boundary check.
            need = sum(
                1 for s in runnable
                if self.cache.append_needs_block(s.request_id)
            )
            if self.cache.allocator.free_blocks >= need:
                return
            if self.prefix_share and self.cache.evict_prefix_leaves(
                    need - self.cache.allocator.free_blocks):
                continue  # reclaimed cold cache; re-check before preempting
            if self.preemption == "never":
                raise MemoryError(
                    f"KV pool exhausted at step {self.step_count}: decode needs "
                    f"{need} fresh blocks, {self.cache.allocator.free_blocks} free; "
                    "enable preemption (swap/recompute/auto) or use "
                    "admission='reserve'"
                )
            victims = sorted(
                runnable,
                key=lambda s: self.scheduling.victim_key(
                    s, self.now_s, self._service_s))
            if not victims:
                raise MemoryError(
                    f"KV pool exhausted at step {self.step_count} with no "
                    "evictable sequence"
                )
            victim = victims[0]
            self._preempt(victim, tick)
            runnable.remove(victim)

    def _decode(self, runnable: List[AsyncSequence], tick: CostLedger) -> List[int]:
        """Advance every runnable sequence one token.

        With :attr:`batched` set the whole tick runs through
        :meth:`SpecEEEngine.step_batch` (one layer pass over the live batch,
        shrinking as sequences exit); otherwise sequences step one at a time.
        Either way each sequence keeps its own ledger, and the per-sequence
        ``DECODER_LAYER`` calls are dropped from the tick in favour of the
        rebatched ``BATCH_DECODER_LAYER`` events recorded below.
        """
        depths: List[int] = []
        dropped_layers = 0.0
        befores = [slot.result.ledger.snapshot() for slot in runnable]
        exit_ths: Optional[List[float]] = None
        draft_ls: Optional[List[int]] = None
        if self.controller is not None and runnable:
            exit_ths, draft_ls = self.controller.overrides(
                [slot.request_id for slot in runnable])
        if self.degraded and runnable:
            # Kill-switch engaged: force dense full-depth decode (no
            # predictor probability can reach DENSE_THRESHOLD) and minimal
            # drafts, overriding any controller actuation.
            exit_ths = [DENSE_THRESHOLD] * len(runnable)
            draft_ls = [1] * len(runnable)
        if self.batched:
            records = self.engine.step_batch(
                [slot.state for slot in runnable],
                [slot.result for slot in runnable],
                [slot.scheduler for slot in runnable], capture_hidden=True,
                exit_thresholds=exit_ths, draft_lens=draft_ls)
        else:
            ths = exit_ths if exit_ths is not None else [None] * len(runnable)
            lens = draft_ls if draft_ls is not None else [None] * len(runnable)
            records = [self.engine.step(slot.state, slot.result,
                                        scheduler=slot.scheduler,
                                        capture_hidden=True,
                                        exit_threshold=th, draft_len=dl)
                       for slot, th, dl in zip(runnable, ths, lens)]
        for slot, before, record in zip(runnable, befores, records):
            delta = slot.result.ledger.delta_since(before)
            dropped_layers += delta.calls(Event.DECODER_LAYER)
            delta.drop(Event.DECODER_LAYER)
            tick.merge(delta)
            depths.append(record.exit_layer + 1)
            kv = record.hidden.reshape(self.cache.n_kv_heads, self.cache.head_dim)
            self.cache.append(slot.request_id, kv, kv)
            slot.last_progress_step = self.step_count
            self.scheduling.on_progress(slot.request, 1)
        if depths:
            batches = [sum(1 for d in depths if d > l) for l in range(max(depths))]
            if sum(batches) != dropped_layers:
                raise AssertionError(
                    f"batched layer-tokens {sum(batches)} != per-sequence layer "
                    f"calls {dropped_layers}"
                )
            from repro.distributed.sharding import record_decode_batches

            record_decode_batches(tick, batches, self.cluster)
        return depths

    def _record_sharded_events(self, tick: CostLedger, depths: List[int]) -> None:
        """Add one tick's cluster-only events (decode all-reduces are already
        recorded by :meth:`_decode`): the tensor-parallel collectives for this
        tick's prefill-layer work (chunks and recompute resumes alike) and the
        pipeline fill/drain bubble sized by the tick's deepest executed layer
        and average micro-batch."""
        from repro.distributed.sharding import (
            record_prefill_allreduce, record_tick_bubble,
        )

        record_prefill_allreduce(
            tick, tick.calls(Event.PREFILL_LAYER), tick.units(Event.PREFILL_LAYER),
            self.cluster,
        )
        deepest = max(depths) if depths else 0
        if tick.calls(Event.PREFILL_LAYER):
            deepest = self.engine.model.n_layers
        layer_tokens = (tick.units(Event.PREFILL_LAYER)
                        + tick.units(Event.BATCH_DECODER_LAYER))
        record_tick_bubble(tick, deepest, layer_tokens, max(len(depths), 1),
                           self.cluster)

    def _retire(self, report: AsyncServingReport) -> List[AsyncSequence]:
        finished = [s for s in self.running if s.decodable and s.done]
        for slot in finished:
            self.engine.finish(slot.state, slot.result)
            self.cache.free_sequence(slot.request_id)
            if self.admission == "reserve":
                self.reserved_blocks -= slot.blocks_reserved
            slot.finished_step = self.step_count
            self.running.remove(slot)
            report.results[slot.request_id] = slot.result
        return finished

    # -- faults, degraded mode, watchdog --------------------------------------
    def _trip_degraded(self) -> None:
        """Engage the speculation kill-switch: every subsequent decode tick
        runs dense full-depth until ``degrade_window`` clean ticks re-arm."""
        if not self.degraded:
            self.degraded = True
            self.report.degraded_events += 1
        self._clean_streak = 0

    def _consume_corruption(self) -> None:
        """Fire any due KV-corruption fault at a host-parked swap blob.

        The fault stays armed until a swapped-out sequence exists; the
        victim (and the flipped value) come from the fault view's seeded RNG,
        so a given plan+seed damages the same blob every run."""
        if self.faults is None or not self.faults.corruption_pending(self.now_s):
            return
        swapped = [s for s in self.preempted if s.resume_mode == "swap"]
        if not swapped:
            return
        self.faults.take_corruption(self.now_s)
        victim = swapped[int(self.faults.rng.integers(len(swapped)))]
        self.cache.corrupt_host(victim.request_id, self.faults.rng)

    def _poll_anomaly(self, runnable_count: int, tick: CostLedger) -> None:
        """Advance the degraded-mode state machine one tick.

        Inside an injected anomaly window the predictor fires spuriously:
        until ``anomaly_detect_ticks`` consecutive anomalous ticks trip the
        kill-switch, each tick charges wasted full-vocabulary verifications
        (two per runnable sequence) — the cost of speculating on garbage.
        Once degraded, decode runs dense (no speculation, no waste) and
        ``degrade_window`` clean ticks re-arm speculation."""
        anomalous = self.faults is not None and self.faults.anomaly_active(self.now_s)
        if anomalous:
            self.report.anomalous_ticks += 1
            self._anomaly_streak += 1
            self._clean_streak = 0
            if not self.degraded and self._anomaly_streak >= self.anomaly_detect_ticks:
                self._trip_degraded()
            if not self.degraded and runnable_count:
                tick.add(Event.LM_HEAD_FULL, calls=2 * runnable_count,
                         units=2 * runnable_count)
        else:
            self._anomaly_streak = 0
            if self.degraded:
                self._clean_streak += 1
                if self._clean_streak >= self.degrade_window:
                    self.degraded = False
                    self._clean_streak = 0
        if self.degraded:
            self.report.degraded_ticks += 1

    def _fail_slot(self, slot: AsyncSequence, reason: str) -> None:
        """Evict an admitted sequence as failed: free its device/host KV,
        release any reservation, and record a typed rejection."""
        if slot in self.running:
            self.running.remove(slot)
            self.cache.free_sequence(slot.request_id)
        else:
            self.preempted.remove(slot)
            if slot.resume_mode == "swap":
                self.cache.drop_host(slot.request_id)
        self.engine.model.drop_state_kv(slot.state)
        if self.admission == "reserve":
            self.reserved_blocks -= slot.blocks_reserved
            slot.blocks_reserved = 0
        self.report.rejected[slot.request_id] = reason
        if slot.request.slo_s is not None:
            self.report.rejected_with_slo += 1

    def _watchdog_sweep(self) -> None:
        """Fail admitted sequences with no progress for ``watchdog_ticks``
        consecutive ticks (hung resume, starved preemption) so a stuck
        sequence becomes a typed rejection instead of an infinite run."""
        if self.watchdog_ticks is None:
            return
        stale = [s for s in self.running + self.preempted
                 if self.step_count - s.last_progress_step >= self.watchdog_ticks]
        for slot in stale:
            self._fail_slot(
                slot, f"watchdog timeout: no token progress for "
                      f"{self.watchdog_ticks} ticks")
            self.report.watchdog_timeouts += 1

    def fail(self) -> CrashSalvage:
        """Crash this replica: device and host KV vanish, the pool is
        rebuilt empty, and the replica stops serving until :meth:`restart`.

        Returns the :class:`CrashSalvage` the router can fail over —
        token-less work as plain requests, decoded-token sequences as
        adoptable slots (their host-side state survives, as it does under
        normal preemption).  The replica's report keeps everything it
        finished before the crash."""
        live = self.running + self.preempted
        slots = [s for s in live if s.result.tokens]
        requests = [s.request for s in live if not s.result.tokens]
        for request in list(self.waiting) + list(self.pending):
            adopted = self._salvage.pop(request.request_id, None)
            if adopted is not None:
                slots.append(adopted)  # salvage delivered here, not yet admitted
            else:
                requests.append(request)
        salvage = CrashSalvage(
            requests=requests, slots=slots, in_flight=len(live),
            decoded_tokens=sum(len(s.result.tokens) for s in slots),
        )
        for slot in live:
            self.engine.model.drop_state_kv(slot.state)
            slot.resume_mode = None
            slot.blocks_reserved = 0
        self.running, self.preempted = [], []
        self.waiting, self.pending = [], []
        self._salvage.clear()
        self.reserved_blocks = 0
        self.report.crashes += 1
        self.dead = True
        self.cache = build_paged_cache(
            self.engine, self.cache.allocator.n_blocks, self.cache.block_size,
            self.cache.n_kv_heads,
            n_stages=self.cluster.pp if self.cluster is not None else 1,
            prefix_share=self.prefix_share,
        )
        return salvage

    def restart(self, at_s: float) -> None:
        """Bring a :meth:`fail`-ed replica back with an empty KV pool; its
        clock resumes no earlier than the restart time and its degraded
        state clears (a fresh process)."""
        self.dead = False
        self.degraded = False
        self._anomaly_streak = 0
        self._clean_streak = 0
        self.now_s = max(self.now_s, at_s)

    # -- the stepping API ----------------------------------------------------
    def begin(self, trace: Sequence[Request]) -> None:
        """Reset per-run state and load ``trace`` as the pending arrivals.

        The run then proceeds through :meth:`advance_tick` calls until
        :attr:`has_work` clears (what :meth:`run` does in a loop); a router
        can interleave those calls across replicas and :meth:`submit` more
        requests while the run is live.
        """
        self.pending = sorted(trace, key=lambda r: (r.arrival_s, r.request_id))
        self.report = AsyncServingReport()
        self.waiting, self.running, self.preempted = [], [], []
        self.reserved_blocks, self.step_count, self.now_s = 0, 0, 0.0
        self.dead = False
        self.degraded = False
        self._anomaly_streak = 0
        self._clean_streak = 0
        self._salvage = {}
        self._prompt_tokens = 0
        self._wall_start = time.perf_counter()
        self._service_s = self._per_token_s
        if self.controller is not None:
            self.controller.begin()
        self.scheduling.reset()
        # Fresh pool every run: a previous run that died mid-flight (e.g. the
        # preemption="never" MemoryError) must not leak blocks into this one.
        self.cache = build_paged_cache(
            self.engine, self.cache.allocator.n_blocks, self.cache.block_size,
            self.cache.n_kv_heads,
            n_stages=self.cluster.pp if self.cluster is not None else 1,
            prefix_share=self.prefix_share,
        )

    def submit(self, request: Request,
               salvage: Optional[AsyncSequence] = None) -> None:
        """Inject ``request`` into the live run (arrival order preserved).

        The router's delivery path: a routed request joins this replica's
        pending arrivals and becomes visible at its own ``arrival_s`` — or at
        the replica's current clock if that has already passed.  ``salvage``
        hands over a sequence rescued from a crashed replica: on admission
        the slot is adopted as-is (decoded tokens, predictor scheduler and
        model state intact) and resumed through the deterministic recompute
        path instead of a fresh prefill."""
        if salvage is not None:
            self._salvage[request.request_id] = salvage
        bisect.insort(self.pending, request,
                      key=lambda r: (r.arrival_s, r.request_id))

    @property
    def has_work(self) -> bool:
        """Whether any request is pending, waiting, running or preempted."""
        return bool(self.pending or self.waiting or self.running
                    or self.preempted)

    def advance_tick(self) -> List[AsyncRequestMetrics]:
        """Run one scheduler tick on the modelled clock.

        Returns the metrics of every request that finished this tick (the
        router's closed-loop clients hook); an idle tick that only absorbed
        rejected arrivals prices nothing and returns ``[]``.
        """
        if self.dead:
            return []  # a crashed replica serves nothing until restart()
        report = self.report
        self._service_s = self._service_estimate_s()
        if not (self.waiting or self.running or self.preempted):
            if not self.pending:
                return []
            self.now_s = max(self.now_s, self.pending[0].arrival_s)  # idle jump
        tick = CostLedger()
        self._absorb_arrivals(self.pending, report)
        if not (self.waiting or self.running or self.preempted):
            return []  # every arrival in this window was rejected
        self._consume_corruption()  # damage blobs before this tick's resumes
        self._resume_preempted(tick)
        admitted = self._admit(report, tick)
        self._prompt_tokens += sum(len(s.request.prompt) for s in admitted)
        suppressed = self._prefill(tick)
        depths: List[int] = []
        if not suppressed:
            runnable = [s for s in self.running if s.decodable and not s.done]
            self._ensure_decode_blocks(runnable, tick)
            self._poll_anomaly(len(runnable), tick)
            if self.controller is not None:
                # Signal after admission/preemption resolved, so queue depth
                # and KV pressure describe the batch this decode will run.
                self.controller.observe(self.load_signal())
            depths = self._decode(runnable, tick)
        report.batch_occupancy.append(len(depths))
        report.peak_kv_blocks = max(report.peak_kv_blocks, self.cache.blocks_in_use())
        report.peak_host_tokens = max(report.peak_host_tokens, self.cache.host_tokens())
        finished = self._retire(report)
        self._watchdog_sweep()

        if self.cluster is not None:
            self._record_sharded_events(tick, depths)
        tick.steps = 1
        dt = self.latency.price(tick).total_s
        if self.faults is not None:
            factor = self.faults.slowdown_factor(self.now_s)
            if factor > 1.0:
                dt *= factor  # transient straggler: same work, slower tick
                report.slowed_ticks += 1
        self.now_s += dt
        report.tick_seconds.append(dt)
        report.serving_ledger.merge(tick)
        # First-token stamps land after the tick is priced: a token decoded
        # this tick became visible when the tick's work finished.
        for slot in self.running + finished:
            if slot.first_token_s is None and slot.result.tokens:
                slot.first_token_s = self.now_s
        metrics: List[AsyncRequestMetrics] = []
        for slot in finished:
            metric = AsyncRequestMetrics(
                request_id=slot.request_id,
                arrival_s=slot.request.arrival_s,
                deadline_s=slot.request.deadline_s,
                admitted_step=slot.admitted_step,
                finished_step=slot.finished_step,
                finish_s=self.now_s,
                tokens=len(slot.result.tokens),
                prompt_tokens=len(slot.request.prompt),
                preemptions=slot.preemptions,
                swaps=slot.swaps,
                recomputes=slot.recomputes,
                swapped_tokens=slot.swapped_tokens,
                first_token_s=slot.first_token_s,
            )
            report.metrics[slot.request_id] = metric
            metrics.append(metric)
            if self.controller is not None:
                self.controller.finish(metric.request_id, metric.tokens,
                                       metric.latency_s, metric.met_slo)
            report.preemptions += slot.preemptions
            report.swaps += slot.swaps
            report.recomputes += slot.recomputes
        self.step_count += 1
        return metrics

    def finish_report(self) -> AsyncServingReport:
        """Seal and return the report for the ticks run since :meth:`begin`."""
        report = self.report
        report.n_steps = self.step_count
        report.makespan_s = self.now_s
        report.wall_time_s = time.perf_counter() - self._wall_start
        report.serving_ledger.steps = self.step_count
        report.serving_ledger.prompt_tokens = self._prompt_tokens
        for result in report.results.values():
            report.sequential_ledger.merge(result.ledger)
        report.sequential_time_s = self.latency.price(report.sequential_ledger).total_s
        report.control = self.control_name
        if self.controller is not None:
            report.mean_threshold_offset = self.controller.mean_threshold_offset()
        report.prefix_share = self.prefix_share
        if self.prefix_share:
            report.prefix_prompt_tokens = self.cache.prefix_prompt_tokens
            report.prefix_matched_tokens = self.cache.prefix_matched_tokens
            report.cow_copies = self.cache.cow_copies
            report.prefix_hit_rate = self.cache.prefix_hit_rate()
        return report

    def run(self, trace: Sequence[Request]) -> AsyncServingReport:
        """Serve an arrival trace to completion on the modelled clock."""
        self.begin(trace)
        while self.has_work:
            self.advance_tick()
        return self.finish_report()

    # -- fleet-facing load/exit statistics ------------------------------------
    @property
    def control_name(self) -> str:
        """The attached adaptive-control policy's name ("off" = none)."""
        return "off" if self.controller is None else self.controller.name

    def load_signal(self) -> LoadSignal:
        """Snapshot this replica's load for the speculation controller.

        Every field is a statistic the engine already maintains for
        scheduling and routing: live queue depth vs batch capacity, the
        decode-token backlog, the observed per-token service estimate
        (:meth:`_service_estimate_s`), mean deadline slack of live
        deadline-carrying requests at that service rate, paged-KV pool
        occupancy, and the ledger-observed layers per token.
        """
        live = self.running + self.preempted
        slacks = []
        for slot in live:
            if slot.request.deadline_s is None:
                continue
            remaining = slot.request.max_new_tokens - len(slot.result.tokens)
            slacks.append(slot.request.deadline_s
                          - (self.now_s + remaining * self._service_s))
        return LoadSignal(
            now_s=self.now_s,
            queue_depth=len(self.waiting) + len(live),
            batch_capacity=self.policy.batch_capacity,
            backlog_tokens=self.backlog_tokens(),
            per_token_s=self._service_s,
            mean_slack_s=float(np.mean(slacks)) if slacks else float("inf"),
            kv_pressure=self.cache.blocks_in_use() / max(1, self.policy.n_blocks),
            layers_per_token=self.observed_layers_per_token(),
        )

    def backlog_tokens(self) -> int:
        """Decode tokens still owed to every pending/waiting/live request —
        the queue-depth signal routing policies balance on."""
        owed = sum(r.max_new_tokens for r in self.pending)
        owed += sum(r.max_new_tokens for r in self.waiting)
        owed += sum(s.request.max_new_tokens - len(s.result.tokens)
                    for s in self.running)
        owed += sum(s.request.max_new_tokens - len(s.result.tokens)
                    for s in self.preempted)
        return owed

    def kv_load_blocks(self) -> int:
        """Paged-KV pressure: blocks in use plus the worst-case block need of
        every request queued ahead of admission."""
        queued = sum(self.policy.blocks_needed(r)
                     for r in self.pending + self.waiting)
        return self.cache.blocks_in_use() + queued

    def observed_layers_per_token(self) -> float:
        """Mean executed decoder layers per generated token so far this run
        (full depth until the first token lands) — the ledger-observed
        early-exit statistic ``exit_aware`` routing weighs replicas by."""
        ledger = self.report.serving_ledger
        if ledger.tokens_generated == 0:
            return float(self.engine.model.n_layers)
        return ledger.units(Event.BATCH_DECODER_LAYER) / ledger.tokens_generated

    def observed_exit_rate(self) -> float:
        """Fraction of the layer stack early exit skips, averaged per token:
        0 = every token runs full depth, higher = more/earlier exits."""
        return 1.0 - (self.observed_layers_per_token()
                      / self.engine.model.n_layers)
