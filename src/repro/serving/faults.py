"""Seeded, deterministic fault injection for the serving fleet.

The serving stack models a production fleet; production fleets fail.  This
module is the substrate that lets every failure mode be exercised
*deterministically* on the modelled clock, so recovery behaviour is testable
and benchmarkable like any other scheduling decision:

* :class:`ReplicaCrash` — a replica dies at ``at_s``, permanently or with a
  restart ``down_s`` modelled seconds later.  Its device KV and host swap
  pool are lost; the router salvages host-side request state and fails the
  in-flight work over to healthy replicas (see
  :class:`~repro.serving.router.ServingRouter`).
* :class:`TickSlowdown` — a transient per-tick slowdown window (straggler
  GPU, thermal throttle): every tick priced inside the window costs
  ``factor`` times more modelled time.
* :class:`KVCorruption` — arms one bit-flip of a host-parked swap blob; the
  checksum stamped at swap-out detects it at swap-in
  (:class:`~repro.errors.KVCorruptionError`) and the engine falls back to
  the deterministic recompute resume.
* :class:`PredictorAnomaly` — the exit predictor goes haywire for a window
  (the SpecEE failure mode): until the engine's kill-switch detects the
  anomaly streak it pays wasted verification work; once detected the engine
  enters *degraded mode* — dense full-depth decode, the LayerSkip-style
  fallback — and re-arms speculation after a clean window.
* :class:`ReplicaDrain` — the replica finishes its in-flight work but
  receives no new routes (planned maintenance).

A :class:`FaultPlan` is an immutable, seed-resolvable schedule of such
events; :class:`FaultInjector` resolves it (``replica="any"`` picks are
seeded) into router-level state transitions plus one
:class:`ReplicaFaultView` per replica that the async engines poll on their
own modelled clocks.  An empty plan injects nothing and leaves every report
token-identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "ReplicaCrash", "TickSlowdown", "KVCorruption", "PredictorAnomaly",
    "ReplicaDrain", "FaultPlan", "FaultInjector", "ReplicaFaultView",
    "ReplicaHealth", "FAULT_PRESETS",
]

#: ``replica="any"`` sentinel: the injector picks a replica with its seed.
ANY_REPLICA = "any"


def _check_time(at_s: float) -> float:
    if at_s < 0:
        raise ValueError(f"fault time must be >= 0, got {at_s}")
    return float(at_s)


@dataclass(frozen=True)
class ReplicaCrash:
    """Replica ``replica`` dies at ``at_s``; ``down_s`` None = permanent,
    otherwise the replica restarts ``down_s`` modelled seconds later with a
    fresh (empty) KV pool."""

    at_s: float
    replica: Union[int, str] = ANY_REPLICA
    down_s: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate the crash schedule."""
        _check_time(self.at_s)
        if self.down_s is not None and self.down_s <= 0:
            raise ValueError("down_s must be positive (or None for permanent)")


@dataclass(frozen=True)
class TickSlowdown:
    """Ticks on ``replica`` inside ``[at_s, at_s + duration_s)`` cost
    ``factor`` times more modelled time (transient straggler)."""

    at_s: float
    factor: float
    duration_s: float
    replica: Union[int, str] = ANY_REPLICA

    def __post_init__(self) -> None:
        """Validate the slowdown window."""
        _check_time(self.at_s)
        if self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


@dataclass(frozen=True)
class KVCorruption:
    """From ``at_s`` on, the next host-parked swap blob on ``replica`` gets
    one value flipped; the swap-in checksum turns it into a detected fault."""

    at_s: float
    replica: Union[int, str] = ANY_REPLICA

    def __post_init__(self) -> None:
        """Validate the corruption arm time."""
        _check_time(self.at_s)


@dataclass(frozen=True)
class PredictorAnomaly:
    """The exit predictor misbehaves on ``replica`` for ``duration_s``
    seconds from ``at_s`` — wasted verification until the kill-switch trips."""

    at_s: float
    duration_s: float
    replica: Union[int, str] = ANY_REPLICA

    def __post_init__(self) -> None:
        """Validate the anomaly window."""
        _check_time(self.at_s)
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


@dataclass(frozen=True)
class ReplicaDrain:
    """``replica`` stops receiving new routes at ``at_s`` but finishes its
    in-flight work (planned maintenance / scale-down)."""

    at_s: float
    replica: Union[int, str] = ANY_REPLICA

    def __post_init__(self) -> None:
        """Validate the drain time."""
        _check_time(self.at_s)


FaultEvent = Union[ReplicaCrash, TickSlowdown, KVCorruption,
                   PredictorAnomaly, ReplicaDrain]

_SPEC_KINDS = {
    "crash": ReplicaCrash,
    "slow": TickSlowdown,
    "corrupt": KVCorruption,
    "anomaly": PredictorAnomaly,
    "drain": ReplicaDrain,
}

#: Named plans ``repro serve --faults`` accepts next to explicit specs.
FAULT_PRESETS: Dict[str, str] = {
    "none": "",
    "single-crash": "crash@0.3:replica=0",
    "crash-restart": "crash@0.3:replica=0,down=0.5",
    "degraded-spec": "anomaly@0.2:replica=0,duration=0.6",
    "chaos": ("crash@0.4:replica=any,down=0.8;"
              "slow@0.2:replica=any,factor=3.0,duration=0.5;"
              "corrupt@0.3:replica=any;"
              "anomaly@0.5:replica=any,duration=0.4"),
}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events on the modelled clock.

    Build one from event dataclasses, :meth:`parse` a compact spec string
    (``kind@T:key=val,...`` joined by ``;``), or pick a named preset from
    :data:`FAULT_PRESETS`.  ``replica="any"`` entries stay symbolic until a
    :class:`FaultInjector` resolves them with its seed, so one plan is
    reusable across fleet widths."""

    events: Tuple[FaultEvent, ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: injects nothing, perturbs nothing."""
        return cls(())

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"crash@0.5:replica=0,down=2;slow@0.2:factor=3,duration=1"``.

        Preset names from :data:`FAULT_PRESETS` are accepted too; an empty
        string (or ``"none"``) is the empty plan."""
        if spec in FAULT_PRESETS:
            spec = FAULT_PRESETS[spec]
        events: List[FaultEvent] = []
        for chunk in filter(None, (c.strip() for c in spec.split(";"))):
            head, _, params = chunk.partition(":")
            kind, at, at_s = head.partition("@")
            if kind not in _SPEC_KINDS or not at:
                raise ValueError(
                    f"bad fault spec {chunk!r}: want kind@time[:k=v,...] with "
                    f"kind in {sorted(_SPEC_KINDS)}")
            kwargs: Dict[str, Union[int, float, str]] = {"at_s": float(at_s)}
            for pair in filter(None, (p.strip() for p in params.split(","))):
                key, _, value = pair.partition("=")
                if key == "replica":
                    kwargs["replica"] = (value if value == ANY_REPLICA
                                         else int(value))
                elif key in ("down", "down_s"):
                    kwargs["down_s"] = float(value)
                elif key in ("duration", "duration_s"):
                    kwargs["duration_s"] = float(value)
                elif key == "factor":
                    kwargs["factor"] = float(value)
                else:
                    raise ValueError(f"bad fault spec {chunk!r}: unknown "
                                     f"parameter {key!r}")
            try:
                events.append(_SPEC_KINDS[kind](**kwargs))
            except TypeError as exc:
                raise ValueError(f"bad fault spec {chunk!r}: {exc}") from None
        return cls(tuple(events))

    @classmethod
    def chaos(cls, duration_s: float, seed: int = 0, n_crashes: int = 1,
              n_slowdowns: int = 1, n_corruptions: int = 1,
              n_anomalies: int = 1, restart_fraction: float = 0.5,
              ) -> "FaultPlan":
        """A seeded random plan over ``[0, duration_s)`` for chaos sweeps."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        rng = np.random.default_rng(seed)
        t = lambda: float(rng.uniform(0.05, duration_s))
        events: List[FaultEvent] = []
        for _ in range(n_crashes):
            down = (float(rng.uniform(0.2, 0.6) * duration_s)
                    if rng.random() < restart_fraction else None)
            events.append(ReplicaCrash(t(), down_s=down))
        for _ in range(n_slowdowns):
            events.append(TickSlowdown(t(), factor=float(rng.uniform(2.0, 5.0)),
                                       duration_s=float(rng.uniform(0.1, 0.4)
                                                        * duration_s)))
        for _ in range(n_corruptions):
            events.append(KVCorruption(t()))
        for _ in range(n_anomalies):
            events.append(PredictorAnomaly(t(), duration_s=float(
                rng.uniform(0.1, 0.3) * duration_s)))
        return cls(tuple(events))

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def name(self) -> str:
        """Compact description for reports ("none" for the empty plan)."""
        if not self.events:
            return "none"
        counts: Dict[str, int] = {}
        for event in self.events:
            key = next(k for k, c in _SPEC_KINDS.items() if isinstance(event, c))
            counts[key] = counts.get(key, 0) + 1
        return "+".join(f"{n}x{k}" if n > 1 else k
                        for k, n in sorted(counts.items()))


def resolve_fault_plan(spec: Union[None, str, FaultPlan,
                                   Sequence[FaultEvent]]) -> FaultPlan:
    """Normalise None / spec string / preset / event list to a FaultPlan."""
    if spec is None:
        return FaultPlan.none()
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, str):
        return FaultPlan.parse(spec)
    return FaultPlan(tuple(spec))


# ---------------------------------------------------------------------------
# replica health (router bookkeeping, but defined with the faults it tracks)
# ---------------------------------------------------------------------------
@dataclass
class ReplicaHealth:
    """One replica's liveness as the router sees it.

    ``alive`` replicas are routable; ``draining`` replicas finish in-flight
    work but receive nothing new; ``dead`` replicas serve nothing.  Crashes
    bump ``consecutive_failures``; any completed request resets the streak;
    a replica whose streak reaches ``permanent_after`` is marked permanently
    dead — its scheduled restarts are ignored (the crash-looping-host rule
    every production health checker implements)."""

    state: str = "alive"
    crashes: int = 0
    consecutive_failures: int = 0
    permanent_after: int = 2
    permanently_dead: bool = False

    @property
    def routable(self) -> bool:
        """Whether new requests may be routed here."""
        return self.state == "alive"

    @property
    def serving(self) -> bool:
        """Whether the replica may still advance in-flight work."""
        return self.state != "dead"

    def record_crash(self) -> None:
        """Mark the replica dead and advance the failure streak."""
        self.state = "dead"
        self.crashes += 1
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.permanent_after:
            self.permanently_dead = True

    def record_completion(self) -> None:
        """A served request proves the replica healthy: reset the streak."""
        self.consecutive_failures = 0

    def revive(self) -> bool:
        """Bring a dead replica back (restart); refused once permanently
        dead.  Returns whether the revive took effect."""
        if self.permanently_dead or self.state != "dead":
            return False
        self.state = "alive"
        return True

    def drain(self) -> None:
        """Stop routing new work here; in-flight work continues."""
        if self.state == "alive":
            self.state = "draining"


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------
class ReplicaFaultView:
    """One replica's slice of the resolved plan, polled on its own clock."""

    def __init__(self, slowdowns: List[TickSlowdown],
                 anomalies: List[PredictorAnomaly],
                 corruption_times: List[float], seed: int):
        """Bind the per-replica windows and the corruption RNG stream."""
        self._slowdowns = slowdowns
        self._anomalies = anomalies
        self._corruptions = sorted(corruption_times)
        self.rng = np.random.default_rng(seed)

    def slowdown_factor(self, now_s: float) -> float:
        """Product of every slowdown window active at ``now_s`` (1.0 = none)."""
        factor = 1.0
        for event in self._slowdowns:
            if event.at_s <= now_s < event.at_s + event.duration_s:
                factor *= event.factor
        return factor

    def anomaly_active(self, now_s: float) -> bool:
        """Whether a predictor-anomaly window covers ``now_s``."""
        return any(e.at_s <= now_s < e.at_s + e.duration_s
                   for e in self._anomalies)

    def corruption_pending(self, now_s: float) -> bool:
        """Whether an armed corruption is due at ``now_s``."""
        return bool(self._corruptions) and self._corruptions[0] <= now_s

    def take_corruption(self, now_s: float) -> bool:
        """Consume one due corruption event (returns False when none due)."""
        if not self.corruption_pending(now_s):
            return False
        self._corruptions.pop(0)
        return True


class FaultInjector:
    """A :class:`FaultPlan` resolved against a concrete fleet.

    ``replica="any"`` picks are drawn from ``seed`` — one injector is one
    deterministic chaos run.  Router-level transitions (crash / revive /
    drain) come out of :meth:`next_transition_s` / :meth:`pop_transition`;
    per-replica windows are served through :meth:`view`.
    """

    def __init__(self, plan: Union[None, str, FaultPlan], n_replicas: int,
                 seed: int = 0):
        """Resolve ``plan`` for ``n_replicas`` replicas under ``seed``."""
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.plan = resolve_fault_plan(plan)
        self.n_replicas = n_replicas
        self.seed = seed
        rng = np.random.default_rng(seed)
        pick = lambda r: (int(rng.integers(n_replicas))
                          if r == ANY_REPLICA else int(r))
        # (time, priority, kind, replica); revive sorts after a same-time
        # crash, and crash after drain, via the priority field.
        self.transitions: List[Tuple[float, int, str, int]] = []
        slowdowns: Dict[int, List[TickSlowdown]] = {}
        anomalies: Dict[int, List[PredictorAnomaly]] = {}
        corruptions: Dict[int, List[float]] = {}
        for event in self.plan.events:
            replica = pick(event.replica)
            if not 0 <= replica < n_replicas:
                raise ValueError(
                    f"fault event targets replica {replica}, fleet has "
                    f"{n_replicas}")
            if isinstance(event, ReplicaCrash):
                self.transitions.append((event.at_s, 1, "crash", replica))
                if event.down_s is not None:
                    self.transitions.append(
                        (event.at_s + event.down_s, 2, "revive", replica))
            elif isinstance(event, ReplicaDrain):
                self.transitions.append((event.at_s, 0, "drain", replica))
            elif isinstance(event, TickSlowdown):
                slowdowns.setdefault(replica, []).append(event)
            elif isinstance(event, PredictorAnomaly):
                anomalies.setdefault(replica, []).append(event)
            else:  # KVCorruption
                corruptions.setdefault(replica, []).append(event.at_s)
        self.transitions.sort()
        self._views = [
            ReplicaFaultView(slowdowns.get(i, []), anomalies.get(i, []),
                             corruptions.get(i, []),
                             seed=np.random.default_rng((seed, i)).integers(2**31))
            for i in range(n_replicas)
        ]

    def view(self, replica: int) -> ReplicaFaultView:
        """The per-replica window view engines poll each tick."""
        return self._views[replica]

    def next_transition_s(self) -> float:
        """Time of the next pending crash/revive/drain (+inf when none)."""
        return self.transitions[0][0] if self.transitions else float("inf")

    def next_revive_s(self) -> float:
        """Time of the next pending revive (+inf when none) — what failover
        delivery waits on when every replica is currently down."""
        times = [t for t, _, kind, _ in self.transitions if kind == "revive"]
        return min(times) if times else float("inf")

    def pop_transition(self) -> Tuple[float, str, int]:
        """Consume the next (time, kind, replica) transition."""
        at_s, _, kind, replica = self.transitions.pop(0)
        return at_s, kind, replica
