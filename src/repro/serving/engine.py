"""The throughput-oriented serving engine: many requests, one SpecEE engine.

:class:`ServingEngine` owns the paged KV pool, the admission policy and the
continuous-batch scheduler; :meth:`run` drains a request list and returns a
:class:`ServingReport` with per-request :class:`GenerationResult`\\ s,
queue/latency metrics (in scheduler steps) and two cost ledgers:

* ``sequential_ledger`` — the merge of every request's own ledger, i.e. what
  serving the same workload one request at a time would cost, and
* ``serving_ledger`` — the same events with per-sequence ``DECODER_LAYER``
  calls replaced by shared ``BATCH_DECODER_LAYER`` executions (one weight
  pass per layer per tick serves every sequence still alive at that depth).

Pricing both through the roofline :class:`~repro.hardware.latency.LatencyModel`
yields the modelled continuous-batching speedup; because single-stream decode
is weight-bandwidth-bound, sharing the weight pass across the batch is where
vLLM-style serving throughput comes from.

Handing the engine a :class:`~repro.distributed.ClusterSpec` runs the same
requests on a modelled ``tp x pp`` cluster: decode ticks are micro-batched
and ledgered with ``ALLREDUCE``/``PIPELINE_BUBBLE`` events
(:mod:`repro.distributed.sharding`), paged-KV blocks are owned per pipeline
stage (:class:`~repro.distributed.ShardedPagedKV`), and
:meth:`ServingReport.priced_speedup` prices the sharded ledger through
:class:`~repro.distributed.ClusterLatencyModel`.  Sharding repartitions
cost across devices — tokens are identical to the single-device run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.engine import GenerationResult, SpecEEEngine
from repro.core.scheduling import Scheduler, make_scheduler
from repro.hardware.ledger import CostLedger, Event
from repro.serving.paged_kv import PagedKVCache
from repro.serving.request import AdmissionPolicy, Request
from repro.serving.scheduler import ContinuousBatchScheduler

__all__ = [
    "RequestMetrics", "ServingReport", "ServingEngine",
    "build_paged_cache", "default_scheduler_factory",
]


def build_paged_cache(
    engine: SpecEEEngine, kv_blocks: int, block_size: int,
    n_kv_heads: Optional[int] = None, n_stages: int = 1,
    prefix_share: bool = False,
) -> Union[PagedKVCache, "ShardedPagedKV"]:
    """Paged cache sized so one KV entry covers the engine's hidden state.

    With ``n_stages > 1`` the cache is a per-pipeline-stage
    :class:`~repro.distributed.ShardedPagedKV` of ``kv_blocks`` blocks *per
    stage device*; otherwise a single-pool :class:`PagedKVCache`.
    ``prefix_share`` enables the copy-on-write shared-prefix radix tree
    (prompts become paged and reusable across requests).
    """
    hidden = engine.model.hidden_dim
    if n_kv_heads is None:
        n_kv_heads = 4 if hidden % 4 == 0 else 1
    if hidden % n_kv_heads != 0:
        raise ValueError(f"n_kv_heads={n_kv_heads} must divide hidden_dim={hidden}")
    if n_stages > 1:
        from repro.distributed.paged import ShardedPagedKV

        return ShardedPagedKV(
            n_stages=n_stages, n_blocks=kv_blocks, block_size=block_size,
            n_kv_heads=n_kv_heads, head_dim=hidden // n_kv_heads,
            prefix_share=prefix_share,
        )
    return PagedKVCache(
        n_blocks=kv_blocks, block_size=block_size,
        n_kv_heads=n_kv_heads, head_dim=hidden // n_kv_heads,
        prefix_share=prefix_share,
    )


def default_scheduler_factory(engine: SpecEEEngine) -> Callable[[], Scheduler]:
    """Fresh per-sequence predictor schedulers matching the engine config."""
    cfg = engine.config
    return lambda: make_scheduler(
        cfg.scheduler, engine.model.n_layers,
        window=cfg.context_window, vicinity=cfg.layer_vicinity,
    )


@dataclass
class RequestMetrics:
    """Queueing/latency accounting for one request, in scheduler steps."""

    request_id: int
    submitted_step: int
    admitted_step: int
    finished_step: int
    tokens: int

    @property
    def queue_wait_steps(self) -> int:
        """Steps spent queued before admission."""
        return self.admitted_step - self.submitted_step

    @property
    def service_steps(self) -> int:
        """Steps from admission to the final token (inclusive)."""
        return self.finished_step - self.admitted_step + 1

    @property
    def latency_steps(self) -> int:
        """End-to-end steps from submission to the final token."""
        return self.finished_step - self.submitted_step + 1


@dataclass
class ServingReport:
    """Outcome of one :meth:`ServingEngine.run`."""

    results: Dict[int, GenerationResult] = field(default_factory=dict)
    metrics: Dict[int, RequestMetrics] = field(default_factory=dict)
    serving_ledger: CostLedger = field(default_factory=CostLedger)
    sequential_ledger: CostLedger = field(default_factory=CostLedger)
    n_steps: int = 0
    batch_occupancy: List[int] = field(default_factory=list)
    peak_kv_blocks: int = 0
    tick_layer_batches: List[List[int]] = field(default_factory=list)
    cluster: Optional[object] = None  # ClusterSpec when the run was sharded
    wall_time_s: float = 0.0  # measured host seconds spent inside run()
    batched_decode: bool = False  # whether the run used the batched fast path
    prefix_share: bool = False  # whether prompts were paged through the radix tree
    prefix_matched_tokens: int = 0  # prompt tokens adopted from shared blocks
    prefix_hit_rate: float = float("nan")  # matched / prefix-prefilled prompt tokens
    cow_copies: int = 0  # copy-on-write clones triggered by divergent writes

    @property
    def total_tokens(self) -> int:
        """Tokens generated across every served request."""
        return sum(len(r.tokens) for r in self.results.values())

    @property
    def measured_tps(self) -> float:
        """Measured wall-clock tokens/s of this run (stopwatch, not model).

        Only meaningful for real backends, where decode executes genuine
        array math; for the synthetic backend it just times the simulation.
        Modelled throughput lives in :meth:`priced_speedup` — reports quote
        the two side by side.
        """
        if self.wall_time_s <= 0.0:
            return float("nan")
        return self.total_tokens / self.wall_time_s

    @property
    def avg_batch_occupancy(self) -> float:
        """Mean live sequences per scheduler tick."""
        if not self.batch_occupancy:
            return float("nan")
        return float(np.mean(self.batch_occupancy))

    @property
    def mean_queue_wait_steps(self) -> float:
        """Mean steps a request waited in the queue before admission."""
        if not self.metrics:
            return float("nan")
        return float(np.mean([m.queue_wait_steps for m in self.metrics.values()]))

    @property
    def mean_latency_steps(self) -> float:
        """Mean end-to-end request latency in scheduler steps."""
        if not self.metrics:
            return float("nan")
        return float(np.mean([m.latency_steps for m in self.metrics.values()]))

    def p95_latency_steps(self) -> float:
        """95th-percentile end-to-end request latency in scheduler steps."""
        if not self.metrics:
            return float("nan")
        return float(np.percentile([m.latency_steps for m in self.metrics.values()], 95))

    def sharded_ledger(self, cluster) -> CostLedger:
        """Serving ledger re-cut for ``cluster`` from the recorded per-tick
        layer batches — one run can therefore be priced on many candidate
        cluster shapes (how the scaling benchmark sweeps TP x PP)."""
        from repro.distributed.sharding import shard_serving_ledger

        return shard_serving_ledger(
            self.sequential_ledger, self.tick_layer_batches, self.n_steps, cluster,
        )

    def priced_speedup(self, model_spec, device: str, framework: str,
                       cpu_device: Optional[str] = None,
                       cluster=None) -> Dict[str, float]:
        """Modelled tokens/s of continuous batching vs sequential serving.

        With ``cluster`` set, the serving side is re-sharded for that cluster
        and priced by :class:`~repro.distributed.ClusterLatencyModel`; the
        sequential side always prices single-device (``device``), so the
        speedup reads as "this cluster vs one-at-a-time on one device".
        """
        from repro.hardware.latency import LatencyModel

        latency = LatencyModel(model_spec, device, framework, cpu_device=cpu_device)
        if cluster is None:
            cluster = self.cluster
        if cluster is not None and not cluster.is_single:
            from repro.distributed.latency import ClusterLatencyModel

            serving_model = ClusterLatencyModel(
                model_spec, cluster, framework, cpu_device=cpu_device)
            serving = serving_model.price(self.sharded_ledger(cluster))
        else:
            serving = latency.price(self.serving_ledger)
        sequential = latency.price(self.sequential_ledger)
        return {
            "serving_tps": serving.tokens_per_second,
            "sequential_tps": sequential.tokens_per_second,
            "speedup": serving.tokens_per_second / sequential.tokens_per_second
            if sequential.tokens_per_second > 0 else float("nan"),
        }


class ServingEngine:
    """Continuous-batching front-end over one :class:`SpecEEEngine`."""

    def __init__(
        self,
        engine: SpecEEEngine,
        batch_capacity: int = 8,
        kv_blocks: int = 256,
        block_size: int = 16,
        n_kv_heads: Optional[int] = None,
        scheduler_factory: Optional[Callable[[], Scheduler]] = None,
        cluster=None,
        batched: Optional[bool] = None,
        prefix_share: bool = False,
    ):
        """Build the server; ``cluster`` (a ``ClusterSpec``) shards the run.

        ``kv_blocks`` is per device: under pipeline parallelism each stage
        owns its own pool of that size (:func:`build_paged_cache`).
        ``batched`` picks the decode inner loop (see
        :class:`ContinuousBatchScheduler`); the default ``None`` enables the
        batched fast path exactly for backends with real batched math.
        ``prefix_share`` pages prompts through the copy-on-write radix tree:
        admissions adopt previously seen prefixes and the serving ledger
        charges only the unmatched prefill suffix (plus ``PREFIX_REUSE``
        adoption overhead) — tokens are identical either way.
        """
        self.engine = engine
        self.batched = batched
        self.prefix_share = bool(prefix_share)
        self.cluster = cluster if cluster is not None and not cluster.is_single else None
        if self.cluster is not None:
            self.cluster.stage_layers(engine.model.n_layers)  # pp <= n_layers
        n_stages = self.cluster.pp if self.cluster is not None else 1
        self.cache = build_paged_cache(engine, kv_blocks, block_size, n_kv_heads,
                                       n_stages=n_stages,
                                       prefix_share=self.prefix_share)
        self.policy = AdmissionPolicy(
            n_blocks=kv_blocks, block_size=block_size, batch_capacity=batch_capacity,
            prefix_share=self.prefix_share,
        )
        if scheduler_factory is None:
            scheduler_factory = default_scheduler_factory(engine)
        self.scheduler_factory = scheduler_factory

    def run(self, requests: Sequence[Request]) -> ServingReport:
        """Serve ``requests`` to completion with continuous batching.

        Besides the modelled ledgers, the report carries the measured wall
        time of the serve loop (``wall_time_s`` / ``measured_tps``) so real
        backends report stopwatch throughput next to the priced one.
        """
        start_time = time.perf_counter()
        scheduler = ContinuousBatchScheduler(
            self.engine, self.cache, self.policy, self.scheduler_factory,
            batched=self.batched,
        )
        for request in requests:
            scheduler.submit(request)
        report = ServingReport(cluster=self.cluster, batched_decode=scheduler.batched)
        while scheduler.has_work:
            outcome = scheduler.tick()
            report.batch_occupancy.append(outcome.occupancy)
            report.peak_kv_blocks = max(report.peak_kv_blocks, outcome.kv_blocks_in_use)
            report.tick_layer_batches.append(outcome.layer_batches())
            for slot in outcome.retired:
                report.results[slot.request.request_id] = slot.result
                report.metrics[slot.request.request_id] = RequestMetrics(
                    request_id=slot.request.request_id,
                    submitted_step=0,
                    admitted_step=slot.admitted_step,
                    finished_step=slot.finished_step,
                    tokens=len(slot.result.tokens),
                )
        report.n_steps = scheduler.step_count
        report.wall_time_s = time.perf_counter() - start_time
        for result in report.results.values():
            report.sequential_ledger.merge(result.ledger)
        if self.cluster is not None:
            report.serving_ledger = report.sharded_ledger(self.cluster)
        else:
            report.serving_ledger = _rebatch_ledger(
                report.sequential_ledger, report.tick_layer_batches, report.n_steps,
            )
        if self.prefix_share:
            report.prefix_share = True
            report.prefix_matched_tokens = scheduler.prefix_matched_tokens
            report.prefix_hit_rate = self.cache.prefix_hit_rate()
            report.cow_copies = self.cache.cow_copies
            self._credit_prefix_reuse(report.serving_ledger,
                                      scheduler.prefix_hits,
                                      scheduler.prefix_matched_tokens)
        return report

    def _credit_prefix_reuse(self, ledger: CostLedger, hits: int,
                             matched: int) -> None:
        """Re-price the serving ledger for adopted prefixes.

        Each request's own ledger charges its full prompt prefill (the
        honest sequential comparison), but the *serving* side skipped the
        matched tokens: their ``PREFILL_LAYER`` units are credited back and
        a ``PREFIX_REUSE`` adoption charge is added instead.  Cluster runs
        keep their prefill collectives uncredited — a conservative bound.
        """
        if matched <= 0:
            return
        n_layers = self.engine.model.n_layers
        calls = ledger.calls(Event.PREFILL_LAYER)
        units = ledger.units(Event.PREFILL_LAYER) - n_layers * matched
        ledger.drop(Event.PREFILL_LAYER)
        if calls:
            ledger.add(Event.PREFILL_LAYER, calls=calls, units=max(units, 0.0))
        ledger.add(Event.PREFIX_REUSE, calls=hits, units=matched)


def _rebatch_ledger(
    merged: CostLedger, tick_batches: Sequence[Sequence[int]], n_steps: int
) -> CostLedger:
    """Serving-side ledger: every per-sequence event except the decoder
    layers, which are replaced by their shared batched executions.  The
    batched token-layer count must equal the per-sequence layer-call count —
    batching shares weight traffic, it never skips work."""
    batched_calls = sum(len(b) for b in tick_batches)
    batched_units = sum(sum(b) for b in tick_batches)
    if batched_units != merged.calls(Event.DECODER_LAYER):
        raise AssertionError(
            f"batched layer-tokens {batched_units} != per-sequence layer calls "
            f"{merged.calls(Event.DECODER_LAYER)}"
        )
    out = CostLedger()
    for kind in merged.kinds():
        if kind == Event.DECODER_LAYER:
            continue
        out.add(kind, calls=merged.calls(kind), units=merged.units(kind))
    if batched_calls:
        out.add(Event.BATCH_DECODER_LAYER, calls=batched_calls, units=batched_units)
    out.tokens_generated = merged.tokens_generated
    out.prompt_tokens = merged.prompt_tokens
    out.steps = n_steps
    return out
