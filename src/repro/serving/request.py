"""Serving requests, the FIFO queue and the KV admission policy.

A :class:`Request` is one user generation job.  :class:`RequestQueue` is the
waiting room; :class:`AdmissionPolicy` decides when the head of the queue may
join the running batch.  The policy is deliberately conservative — vLLM-style
*reservation*: a request is admitted only if its worst-case paged-KV block
need fits in the unreserved pool, so a running sequence can never hit
``MemoryError`` mid-decode and no preemption/recompute machinery is needed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

__all__ = ["Request", "RequestQueue", "AdmissionPolicy"]


@dataclass
class Request:
    """One generation job submitted to the serving engine.

    The trailing fields matter only to the async trace-driven server:
    ``arrival_s`` is when the request becomes visible (modelled seconds),
    ``slo_s`` an optional completion deadline relative to arrival, and
    ``priority`` breaks preemption/admission ties under the default
    ``fifo_priority`` scheduling policy (higher = more important; the
    lowest-priority, latest-arrived running sequence is evicted first).
    ``client_id`` identifies the issuing closed-loop client, or None for
    open-loop trace arrivals.

    Multi-turn chat traffic adds three optional identity fields:
    ``session_id`` groups the turns of one conversation (follow-up turns
    carry the same id and prompts that extend the prior context, which is
    what prefix sharing and session-affinity routing key on), ``turn`` is
    the zero-based position within that session, and ``tenant_id`` names
    the paying tenant for per-tenant fairness in the scheduler.
    """

    request_id: int
    prompt: List[int]
    max_new_tokens: int
    script: Optional[List[int]] = None
    arrival_s: float = 0.0
    slo_s: Optional[float] = None
    priority: int = 0
    client_id: Optional[int] = None
    session_id: Optional[int] = None
    turn: int = 0
    tenant_id: Optional[int] = None

    def __post_init__(self) -> None:
        """Normalise token lists and validate budgets/timestamps."""
        self.prompt = [int(t) for t in self.prompt]
        if not self.prompt:
            raise ValueError("request prompt must contain at least one token")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.script is not None:
            self.script = [int(t) for t in self.script]
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be >= 0")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("slo_s must be positive when set")
        if self.turn < 0:
            raise ValueError("turn must be >= 0")

    @property
    def deadline_s(self) -> Optional[float]:
        """Absolute completion deadline, or None without an SLO."""
        if self.slo_s is None:
            return None
        return self.arrival_s + self.slo_s


class RequestQueue:
    """FIFO queue of pending requests with duplicate-id rejection."""

    def __init__(self, requests: Sequence[Request] = ()):
        """Create the queue, optionally pre-submitting ``requests``."""
        self._queue: Deque[Request] = deque()
        self._ids: set[int] = set()
        for request in requests:
            self.submit(request)

    def submit(self, request: Request) -> None:
        """Append ``request``; a duplicate id raises ``ValueError``."""
        if request.request_id in self._ids:
            raise ValueError(f"request id {request.request_id} already queued")
        self._ids.add(request.request_id)
        self._queue.append(request)

    def peek(self) -> Request:
        """The head request without removing it."""
        if not self._queue:
            raise IndexError("peek on empty request queue")
        return self._queue[0]

    def pop(self) -> Request:
        """Remove and return the head request."""
        if not self._queue:
            raise IndexError("pop on empty request queue")
        request = self._queue.popleft()
        self._ids.discard(request.request_id)
        return request

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)


@dataclass
class AdmissionPolicy:
    """Worst-case KV reservation over a fixed block pool.

    ``blocks_needed`` is the ceiling of the request's decode-token budget over
    the block size (the paged cache stores one KV entry per *generated*
    token; prompt prefill is priced by the ledger, not paged).  With
    ``prefix_share`` enabled, prompts *are* paged so the worst case covers
    prompt plus decode blocks — the worst case assumes no prefix hit, which
    is what makes reserve admission safe even on a cold radix tree.  A
    request is admissible iff the batch has a free slot and the pool's
    unreserved blocks cover that worst case.
    """

    n_blocks: int
    block_size: int
    batch_capacity: int
    prefix_share: bool = False

    def __post_init__(self) -> None:
        """Validate pool geometry and batch capacity."""
        if self.n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.batch_capacity < 1:
            raise ValueError("batch_capacity must be >= 1")

    def blocks_needed(self, request: Request) -> int:
        """Worst-case paged-KV blocks ``request`` can consume — decode only,
        plus the full (hit-free) prompt when prefix sharing pages prompts."""
        tokens = request.max_new_tokens
        if self.prefix_share:
            tokens += len(request.prompt)
        return -(-tokens // self.block_size)

    def oversize_reason(self, request: Request) -> Optional[str]:
        """Why ``request`` could never fit even in an empty pool, or None.
        The single source of truth for oversize rejection — submit-time
        errors, admission errors and async rejections all phrase it from
        this."""
        need = self.blocks_needed(request)
        if need <= self.n_blocks:
            return None
        tokens = request.max_new_tokens + (
            len(request.prompt) if self.prefix_share else 0)
        return (
            f"needs {need} KV blocks ({tokens} tokens @ "
            f"block_size={self.block_size}) but the pool only has {self.n_blocks}"
        )

    def admissible(self, request: Request, reserved_blocks: int, running: int) -> bool:
        """Whether ``request`` may join a batch of ``running`` sequences that
        have ``reserved_blocks`` blocks spoken for.  Raises ``MemoryError``
        for a request that could never fit even in an empty pool."""
        need = self.blocks_needed(request)
        reason = self.oversize_reason(request)
        if reason:
            raise MemoryError(f"request {request.request_id} {reason}")
        if running >= self.batch_capacity:
            return False
        return reserved_blocks + need <= self.n_blocks
