"""Data-parallel replica routing with goodput-oriented fleet accounting.

:class:`ServingRouter` fans one workload across N
:class:`~repro.serving.async_engine.AsyncServingEngine` replicas — each with
its own KV pool, cost ledger and (optionally) its own modelled
:class:`~repro.distributed.ClusterSpec` — on one shared time origin.  The
router is a discrete-event loop over the engines' stepping API: it always
advances the busy replica whose next event is earliest, and it routes an
arrival the moment no busy replica could still do work before that arrival's
timestamp.  Routing decisions therefore see every replica's state *as of the
arrival time*, which is what makes load- and exit-aware policies meaningful.

Four routing policies ship (registry :data:`ROUTING_POLICIES`):

* ``round_robin`` — rotate assignments; the baseline that ignores state.
* ``least_kv_load`` — send the request to the replica with the least paged-KV
  pressure (blocks in use plus the worst-case need of its queued requests).
* ``exit_aware`` — weight each replica's queued decode tokens by its
  *observed* early-exit rate from the serving ledger (mean executed layers
  per token so far) and send the request to the replica with the least
  estimated layer-work.  Exit-rate variance across requests is exactly why
  naive balancing leaves throughput on the table: a replica whose current
  mix exits early drains its backlog faster than its queue depth suggests.
* ``session_affinity`` — pin each chat session's follow-up turns to the
  replica that served its previous turn (whose radix tree still holds the
  session's prefix blocks), falling back to least-KV-load placement for
  first turns and whenever the home replica is crashed, drained or full.

Workloads may be open-loop (an :class:`~repro.serving.workloads.ArrivalTrace`
or any request sequence) or closed-loop
(:class:`~repro.serving.workloads.ClosedLoopClients`): on each completion the
router reports the finish time back to the issuing client, which responds
with its next request one think-time gap later.

The fleet-level outcome is a :class:`ServingFleetReport`: per-replica
:class:`~repro.serving.async_engine.AsyncServingReport` ledgers plus
aggregated SLO attainment and **goodput** — tokens that met their SLO per
modelled second, the metric EDF scheduling and exit-aware routing are built
to move.  Routing never changes tokens: each request's decode is
token-identical to serving the same trace on a single replica.

A :class:`~repro.serving.faults.FaultPlan` makes the fleet fail on schedule.
The router resolves the plan through a seeded
:class:`~repro.serving.faults.FaultInjector` and applies crash / restart /
drain transitions as discrete events in the same loop that routes arrivals;
per-replica :class:`~repro.serving.faults.ReplicaHealth` tracks liveness
(consecutive crashes past ``permanent_after`` mark a replica permanently
dead) and every routing policy only ever sees healthy candidates.  When a
replica crashes, its in-flight work is **failed over**: salvaged sequences
re-enter routing after a capped-exponential backoff, are adopted by a
healthy replica, and resume through the deterministic recompute path — so a
recovered request's tokens are identical to an uninterrupted run while its
SLO clock keeps running from the original arrival.  ``failover=False`` is
the ablation: crashed work is simply lost, which is what the
fault-recovery benchmark gates goodput against.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.serving.async_engine import (
    AsyncRequestMetrics,
    AsyncSequence,
    AsyncServingEngine,
    AsyncServingReport,
)
from repro.serving.faults import FaultInjector, FaultPlan, ReplicaHealth
from repro.serving.request import Request
from repro.serving.workloads import ClosedLoopClients

__all__ = [
    "RoutingPolicy", "RoundRobinRouting", "LeastKVLoadRouting",
    "ExitAwareRouting", "SessionAffinityRouting", "ROUTING_POLICIES",
    "make_routing_policy", "ServingFleetReport", "ServingRouter",
]


# ---------------------------------------------------------------------------
# routing policies
# ---------------------------------------------------------------------------
class RoutingPolicy:
    """Picks the replica index a routed request is assigned to.

    ``choose`` receives the full replica list plus the candidate indices
    whose KV pools can ever fit the request (the router pre-filters
    oversized pools), and must return one of the candidates.
    """

    name = "base"

    def choose(self, replicas: Sequence[AsyncServingEngine], request: Request,
               candidates: Sequence[int]) -> int:
        """Return the chosen replica index from ``candidates``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any cross-run state (called at the start of every
        :meth:`ServingRouter.run`, so repeated runs are reproducible)."""


class RoundRobinRouting(RoutingPolicy):
    """Rotate assignments across replicas, skipping non-candidates."""

    name = "round_robin"

    def __init__(self):
        """Start the rotation at replica 0."""
        self._next = 0

    def reset(self) -> None:
        """Restart the rotation at replica 0."""
        self._next = 0

    def choose(self, replicas: Sequence[AsyncServingEngine], request: Request,
               candidates: Sequence[int]) -> int:
        """The next replica in rotation whose pool fits the request."""
        allowed = set(candidates)
        for _ in range(len(replicas)):
            index = self._next % len(replicas)
            self._next += 1
            if index in allowed:
                return index
        raise ValueError("no candidate replica to rotate onto")


class LeastKVLoadRouting(RoutingPolicy):
    """Send the request to the replica with the least paged-KV pressure."""

    name = "least_kv_load"

    def choose(self, replicas: Sequence[AsyncServingEngine], request: Request,
               candidates: Sequence[int]) -> int:
        """Least ``kv_load_blocks()`` wins; ties break to the lowest index."""
        return min(candidates, key=lambda i: (replicas[i].kv_load_blocks(), i))


class ExitAwareRouting(RoutingPolicy):
    """Balance estimated layer-work using observed early-exit rates.

    A replica's pending decode tokens are weighted by its ledger-observed
    mean executed layers per token (full depth until it has served a token),
    so a replica whose current request mix exits early is credited with the
    faster drain its exit rate actually buys.
    """

    name = "exit_aware"

    def choose(self, replicas: Sequence[AsyncServingEngine], request: Request,
               candidates: Sequence[int]) -> int:
        """Least estimated queued layer-work wins; ties to the lowest index."""
        def layer_work(i: int) -> float:
            replica = replicas[i]
            return replica.backlog_tokens() * replica.observed_layers_per_token()
        return min(candidates, key=lambda i: (layer_work(i), i))


class SessionAffinityRouting(RoutingPolicy):
    """Pin each chat session to the replica holding its KV.

    A follow-up turn's prompt extends the session's prior context, so the
    replica that served the previous turn holds the session's prefix blocks
    in its radix tree — routing the turn anywhere else forfeits the reuse.
    The first turn of a session (and any request without a ``session_id``)
    falls back to least-KV-load placement; the chosen replica becomes the
    session's *home*.  When the home replica is not a candidate (crashed,
    drained, or its pool cannot fit the request) the session re-homes via
    the same fallback — a clean failover that costs one cold prefill, after
    which affinity resumes on the new home.
    """

    name = "session_affinity"

    def __init__(self):
        """Start with no session pinned anywhere."""
        self._home: Dict[int, int] = {}

    def reset(self) -> None:
        """Forget every session-to-replica pin."""
        self._home.clear()

    def choose(self, replicas: Sequence[AsyncServingEngine], request: Request,
               candidates: Sequence[int]) -> int:
        """The session's home replica if still viable, else re-home by load."""
        session = request.session_id
        if session is not None:
            home = self._home.get(session)
            if home is not None and home in candidates:
                return home
        chosen = min(candidates, key=lambda i: (replicas[i].kv_load_blocks(), i))
        if session is not None:
            self._home[session] = chosen
        return chosen


ROUTING_POLICIES = {
    RoundRobinRouting.name: RoundRobinRouting,
    LeastKVLoadRouting.name: LeastKVLoadRouting,
    ExitAwareRouting.name: ExitAwareRouting,
    SessionAffinityRouting.name: SessionAffinityRouting,
}


def make_routing_policy(spec: Union[str, RoutingPolicy]) -> RoutingPolicy:
    """Resolve a policy name (or pass through an instance) to a policy."""
    if isinstance(spec, RoutingPolicy):
        return spec
    if spec not in ROUTING_POLICIES:
        raise ValueError(
            f"unknown routing policy {spec!r}; known: {sorted(ROUTING_POLICIES)}")
    return ROUTING_POLICIES[spec]()


# ---------------------------------------------------------------------------
# fleet report
# ---------------------------------------------------------------------------
@dataclass
class ServingFleetReport:
    """Outcome of one :meth:`ServingRouter.run` across every replica."""

    replica_reports: List[AsyncServingReport] = field(default_factory=list)
    assignments: Dict[int, int] = field(default_factory=dict)
    route: str = ""
    scheduling: str = ""
    control: str = "off"
    rejected: Dict[int, str] = field(default_factory=dict)
    rejected_with_slo: int = 0
    replica_layers_per_token: List[float] = field(default_factory=list)
    replica_threshold_offsets: List[float] = field(default_factory=list)
    # -- fault/recovery accounting (defaults describe a fault-free run) --
    #: Compact name of the injected fault plan ("none" when empty).
    faults: str = "none"
    #: Seed the injector resolved "any"-replica picks and corruptions with.
    fault_seed: int = 0
    #: Whether crashed in-flight work was failed over (False = ablation).
    failover: bool = True
    crashes: int = 0
    restarts: int = 0
    drains: int = 0
    #: Failover re-queues (every salvaged request counts one per crash).
    retries: int = 0
    #: Failed-over requests that went on to finish on a healthy replica.
    requests_recovered: int = 0
    #: Requests abandoned to a crash (failover off, retries exhausted, or no
    #: healthy replica left).
    requests_lost: int = 0
    #: Decoded tokens carried through failover for adoption (their KV is
    #: rebuilt on the adopting replica; the tokens are never re-decoded).
    tokens_salvaged: int = 0
    #: Decoded tokens thrown away with lost requests.
    tokens_lost: int = 0
    #: Admitted sequences on crashing replicas, summed over crash events.
    in_flight_at_crash: int = 0
    #: Final liveness state of each replica ("alive"/"draining"/"dead").
    replica_health: List[str] = field(default_factory=list)

    @property
    def n_replicas(self) -> int:
        """Fleet width."""
        return len(self.replica_reports)

    @property
    def metrics(self) -> Dict[int, AsyncRequestMetrics]:
        """Per-request metrics merged across every replica."""
        merged: Dict[int, AsyncRequestMetrics] = {}
        for report in self.replica_reports:
            merged.update(report.metrics)
        return merged

    @property
    def results(self) -> Dict[int, object]:
        """Per-request generation results merged across every replica."""
        merged: Dict[int, object] = {}
        for report in self.replica_reports:
            merged.update(report.results)
        return merged

    @property
    def total_tokens(self) -> int:
        """Tokens generated fleet-wide."""
        return sum(r.total_tokens for r in self.replica_reports)

    @property
    def makespan_s(self) -> float:
        """Fleet makespan: the latest replica clock (shared time origin)."""
        if not self.replica_reports:
            return 0.0
        return max(r.makespan_s for r in self.replica_reports)

    @property
    def throughput_tps(self) -> float:
        """Fleet tokens per modelled second over the fleet makespan."""
        if self.makespan_s <= 0:
            return float("nan")
        return self.total_tokens / self.makespan_s

    @property
    def good_tokens(self) -> int:
        """SLO-meeting tokens fleet-wide (see the per-replica report)."""
        return sum(r.good_tokens for r in self.replica_reports)

    @property
    def prefix_prompt_tokens(self) -> int:
        """Prompt tokens the fleet prefilled through the prefix path."""
        return sum(r.prefix_prompt_tokens for r in self.replica_reports)

    @property
    def prefix_matched_tokens(self) -> int:
        """Prompt tokens adopted from shared blocks fleet-wide."""
        return sum(r.prefix_matched_tokens for r in self.replica_reports)

    @property
    def prefix_hit_rate(self) -> float:
        """Fleet-wide shared-prefix token hit rate (NaN with sharing off)."""
        if self.prefix_prompt_tokens == 0:
            return float("nan")
        return self.prefix_matched_tokens / self.prefix_prompt_tokens

    @property
    def mean_ttft_s(self) -> float:
        """Mean time to first token across every finished request."""
        ttfts = [m.ttft_s for m in self.metrics.values()
                 if m.ttft_s is not None]
        if not ttfts:
            return float("nan")
        return float(np.mean(ttfts))

    @property
    def goodput_tps(self) -> float:
        """Fleet goodput: SLO-meeting tokens per modelled second."""
        if self.makespan_s <= 0:
            return float("nan")
        return self.good_tokens / self.makespan_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of deadline-carrying requests that met their deadline,
        fleet-wide; router- and replica-rejected requests count as missed."""
        met = 0
        total = self.rejected_with_slo
        total += sum(r.rejected_with_slo for r in self.replica_reports)
        for metric in self.metrics.values():
            if metric.deadline_s is None:
                continue
            total += 1
            met += bool(metric.met_slo)
        if total == 0:
            return float("nan")
        return met / total

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end request latency across the fleet."""
        metrics = self.metrics
        if not metrics:
            return float("nan")
        return float(np.mean([m.latency_s for m in metrics.values()]))

    def p95_latency_s(self) -> float:
        """95th-percentile end-to-end request latency across the fleet."""
        metrics = self.metrics
        if not metrics:
            return float("nan")
        return float(np.percentile([m.latency_s for m in metrics.values()], 95))

    @property
    def replica_request_counts(self) -> List[int]:
        """Requests routed to each replica (assignment balance)."""
        counts = [0] * self.n_replicas
        for index in self.assignments.values():
            counts[index] += 1
        return counts

    @property
    def preemptions(self) -> int:
        """Total preemptions across every replica."""
        return sum(r.preemptions for r in self.replica_reports)

    @property
    def recovered_fraction(self) -> float:
        """Fraction of crash-interrupted requests that still completed:
        recovered over (recovered + lost); NaN when nothing crashed."""
        at_risk = self.requests_recovered + self.requests_lost
        if at_risk == 0:
            return float("nan")
        return self.requests_recovered / at_risk

    @property
    def kv_corruptions(self) -> int:
        """Swap blobs that failed their checksum, fleet-wide."""
        return sum(r.kv_corruptions for r in self.replica_reports)

    @property
    def degraded_ticks(self) -> int:
        """Ticks any replica decoded with the speculation kill-switch on."""
        return sum(r.degraded_ticks for r in self.replica_reports)

    @property
    def degraded_events(self) -> int:
        """Times any replica's kill-switch tripped."""
        return sum(r.degraded_events for r in self.replica_reports)

    @property
    def watchdog_timeouts(self) -> int:
        """Sequences failed by the no-progress watchdog, fleet-wide."""
        return sum(r.watchdog_timeouts for r in self.replica_reports)


# ---------------------------------------------------------------------------
# the router
# ---------------------------------------------------------------------------
Workload = Union[Sequence[Request], ClosedLoopClients]


class ServingRouter:
    """Data-parallel front-end over N async serving replicas (module doc)."""

    def __init__(self, replicas: Sequence[AsyncServingEngine],
                 route: Union[str, RoutingPolicy] = "round_robin",
                 *,
                 faults: Union[None, str, FaultPlan] = None,
                 fault_seed: int = 0,
                 failover: bool = True,
                 max_retries: int = 3,
                 retry_backoff_s: float = 0.05,
                 retry_backoff_cap_s: float = 0.4,
                 permanent_after: int = 2):
        """Wire the router to its replicas, routing policy and fault plan.

        ``faults`` is a :class:`~repro.serving.faults.FaultPlan`, a spec
        string / preset name for :meth:`FaultPlan.parse`, or None for a
        fault-free run (token-identical to a router without this machinery).
        ``fault_seed`` resolves the plan's ``replica="any"`` picks and seeds
        corruption RNG streams.  ``failover`` re-queues a crashed replica's
        in-flight work onto healthy replicas (False = lose it, the ablation);
        each re-queue waits ``min(retry_backoff_s * 2**retries,
        retry_backoff_cap_s)`` on the modelled clock and a request is lost
        after ``max_retries`` crash-triggered re-queues.  A replica whose
        consecutive-crash streak reaches ``permanent_after`` is marked
        permanently dead and its scheduled restarts are ignored."""
        if not replicas:
            raise ValueError("a fleet needs at least one replica")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff_s <= 0 or retry_backoff_cap_s <= 0:
            raise ValueError("retry backoff parameters must be positive")
        self.replicas: List[AsyncServingEngine] = list(replicas)
        self.routing = make_routing_policy(route)
        self.faults = faults
        self.fault_seed = fault_seed
        self.failover = failover
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_cap_s = retry_backoff_cap_s
        self.permanent_after = permanent_after
        self.health: List[ReplicaHealth] = [
            ReplicaHealth(permanent_after=permanent_after) for _ in replicas]
        # (ready_s, request_id, request, salvaged slot or None), kept sorted;
        # request ids are unique so comparisons never reach the payload.
        self._failover: List[tuple] = []
        self._retries: Dict[int, int] = {}
        self._failover_ids: set = set()

    # -- event-loop helpers --------------------------------------------------
    @staticmethod
    def _arrival_key(request: Request):
        return (request.arrival_s, request.request_id)

    def _next_event_s(self, replica: AsyncServingEngine) -> float:
        """When ``replica`` would next make progress: now if it has live
        work, its earliest pending arrival if it is idle-waiting, +inf if
        it has nothing at all."""
        if replica.waiting or replica.running or replica.preempted:
            return replica.now_s
        if replica.pending:
            return max(replica.now_s, replica.pending[0].arrival_s)
        return float("inf")

    def _candidates(self, request: Request) -> List[int]:
        """Healthy replicas whose KV pool could ever hold the request —
        dead and draining replicas are excluded from every routing policy."""
        return [i for i, replica in enumerate(self.replicas)
                if self.health[i].routable
                and replica.policy.oversize_reason(request) is None]

    def _route(self, request: Request, report: ServingFleetReport) -> None:
        candidates = self._candidates(request)
        if not candidates:
            if not any(h.routable for h in self.health):
                reason = "no live replica to route to"
            else:
                reason = (f"no replica can hold it: "
                          f"{self.replicas[0].policy.oversize_reason(request)}")
            report.rejected[request.request_id] = reason
            if request.slo_s is not None:
                report.rejected_with_slo += 1
            return
        index = self.routing.choose(self.replicas, request, candidates)
        if index not in candidates:
            raise ValueError(
                f"routing policy {self.routing.name!r} chose replica {index}, "
                f"not one of the candidates {candidates}")
        self.replicas[index].submit(request)
        report.assignments[request.request_id] = index

    # -- failure handling ------------------------------------------------------
    def _lose(self, request: Request, slot: Optional[AsyncSequence],
              report: ServingFleetReport, reason: str) -> None:
        """Abandon crash-interrupted work: a typed rejection plus loss
        accounting (any decoded tokens the salvaged slot held are gone)."""
        report.rejected[request.request_id] = reason
        if request.slo_s is not None:
            report.rejected_with_slo += 1
        report.requests_lost += 1
        report.tokens_lost += len(slot.result.tokens) if slot is not None else 0
        self._failover_ids.discard(request.request_id)

    def _enqueue_failover(self, request: Request,
                          slot: Optional[AsyncSequence], at_s: float,
                          report: ServingFleetReport) -> None:
        """Queue crash-salvaged work for redelivery after a capped
        exponential backoff on the modelled clock; work that has exhausted
        its retry budget is lost instead."""
        retries = self._retries.get(request.request_id, 0) + 1
        if retries > self.max_retries:
            self._lose(request, slot, report,
                       f"failover gave up after {self.max_retries} retries")
            return
        self._retries[request.request_id] = retries
        backoff = min(self.retry_backoff_s * 2 ** (retries - 1),
                      self.retry_backoff_cap_s)
        bisect.insort(self._failover, (at_s + backoff, request.request_id,
                                       request, slot))
        self._failover_ids.add(request.request_id)
        report.retries += 1
        if slot is not None:
            report.tokens_salvaged += len(slot.result.tokens)

    def _apply_transition(self, injector: FaultInjector,
                          report: ServingFleetReport) -> None:
        """Apply the injector's next crash / revive / drain as one discrete
        event: crashes salvage the replica's in-flight work into the
        failover queue (or lose it under the no-failover ablation), revives
        restart the replica unless it is permanently dead."""
        at_s, kind, index = injector.pop_transition()
        replica, health = self.replicas[index], self.health[index]
        if kind == "drain":
            health.drain()
            report.drains += 1
        elif kind == "revive":
            if health.revive():
                replica.restart(at_s)
                report.restarts += 1
        elif kind == "crash":
            if not health.serving:
                return  # crashing a dead replica is a no-op
            health.record_crash()
            salvage = replica.fail()
            report.crashes += 1
            report.in_flight_at_crash += salvage.in_flight
            items = ([(s.request, s) for s in salvage.slots]
                     + [(r, None) for r in salvage.requests])
            for request, slot in items:
                if self.failover:
                    self._enqueue_failover(request, slot, at_s, report)
                else:
                    self._lose(request, slot, report,
                               f"replica {index} crashed; failover disabled")

    def _deliver_failover(self, injector: FaultInjector,
                          report: ServingFleetReport) -> None:
        """Re-route the next due failover item.  With no routable candidate
        the item waits for the next scheduled revive if one can still help;
        otherwise it is lost (never a hang)."""
        ready_s, request_id, request, slot = self._failover.pop(0)
        candidates = self._candidates(request)
        if not candidates:
            next_revive = injector.next_revive_s()
            revivable = any(h.state == "dead" and not h.permanently_dead
                            for h in self.health)
            if revivable and next_revive < float("inf"):
                bisect.insort(self._failover, (max(ready_s, next_revive),
                                               request_id, request, slot))
                return
            self._lose(request, slot, report,
                       "no healthy replica to fail over to")
            return
        index = self.routing.choose(self.replicas, request, candidates)
        if index not in candidates:
            raise ValueError(
                f"routing policy {self.routing.name!r} chose replica {index}, "
                f"not one of the candidates {candidates}")
        self.replicas[index].submit(request, salvage=slot)
        report.assignments[request.request_id] = index

    # -- the run loop --------------------------------------------------------
    def run(self, workload: Workload) -> ServingFleetReport:
        """Serve ``workload`` across the fleet on one shared time origin.

        Open-loop workloads are routed at their fixed arrival timestamps;
        a :class:`ClosedLoopClients` workload grows online as completions
        trigger each client's next request.  Oversized requests that no
        replica pool could ever hold are rejected at the router (and, for a
        closed-loop client, end that client's session — a rejected request
        never completes, so nothing would ever trigger the next round).
        """
        clients: Optional[ClosedLoopClients] = None
        if isinstance(workload, ClosedLoopClients):
            clients = workload
            queue = sorted(workload.initial_requests(), key=self._arrival_key)
        else:
            queue = sorted(workload, key=self._arrival_key)
        self.routing.reset()
        injector = FaultInjector(self.faults, len(self.replicas),
                                 seed=self.fault_seed)
        self.health = [ReplicaHealth(permanent_after=self.permanent_after)
                       for _ in self.replicas]
        self._failover, self._retries, self._failover_ids = [], {}, set()
        for index, replica in enumerate(self.replicas):
            replica.begin([])
            if injector.plan:
                replica.faults = injector.view(index)
        report = ServingFleetReport(
            route=self.routing.name,
            scheduling=self.replicas[0].scheduling.name,
            control=self.replicas[0].control_name,
            faults=injector.plan.name,
            fault_seed=self.fault_seed,
            failover=self.failover,
        )

        while queue or self._failover or any(r.has_work for r in self.replicas):
            busy = [r for r in self.replicas if r.has_work]
            frontier = (min(self._next_event_s(r) for r in busy)
                        if busy else float("inf"))
            t_arrival = queue[0].arrival_s if queue else float("inf")
            t_failover = self._failover[0][0] if self._failover else float("inf")
            t_fault = injector.next_transition_s()
            if (injector.transitions
                    and t_fault <= frontier + 1e-12
                    and t_fault <= t_arrival + 1e-12
                    and t_fault <= t_failover + 1e-12):
                # Faults interrupt: a crash at T lands before any same-time
                # tick, arrival or redelivery sees the fleet.
                self._apply_transition(injector, report)
                continue
            if (self._failover and t_failover <= frontier + 1e-12
                    and t_failover <= t_arrival):
                self._deliver_failover(injector, report)
                continue
            if queue and t_arrival <= frontier + 1e-12:
                # No busy replica can still act before this arrival: route it
                # now, with every replica's state current as of arrival time.
                self._route(queue.pop(0), report)
                continue
            replica = min(busy, key=lambda r: (self._next_event_s(r),
                                               self.replicas.index(r)))
            finished = replica.advance_tick()
            if finished:
                self.health[self.replicas.index(replica)].record_completion()
                for metric in finished:
                    if metric.request_id in self._failover_ids:
                        report.requests_recovered += 1
                        self._failover_ids.discard(metric.request_id)
            if clients is not None:
                for metric in finished:
                    nxt = clients.next_request(metric.request_id,
                                               metric.finish_s)
                    if nxt is not None:
                        bisect.insort(queue, nxt, key=self._arrival_key)

        report.replica_reports = [r.finish_report() for r in self.replicas]
        report.replica_layers_per_token = [
            r.observed_layers_per_token() for r in self.replicas]
        report.replica_threshold_offsets = [
            r.report.mean_threshold_offset for r in self.replicas]
        report.replica_health = [h.state for h in self.health]
        return report
