"""Data-parallel replica routing with goodput-oriented fleet accounting.

:class:`ServingRouter` fans one workload across N
:class:`~repro.serving.async_engine.AsyncServingEngine` replicas — each with
its own KV pool, cost ledger and (optionally) its own modelled
:class:`~repro.distributed.ClusterSpec` — on one shared time origin.  The
router is a discrete-event loop over the engines' stepping API: it always
advances the busy replica whose next event is earliest, and it routes an
arrival the moment no busy replica could still do work before that arrival's
timestamp.  Routing decisions therefore see every replica's state *as of the
arrival time*, which is what makes load- and exit-aware policies meaningful.

Three routing policies ship (registry :data:`ROUTING_POLICIES`):

* ``round_robin`` — rotate assignments; the baseline that ignores state.
* ``least_kv_load`` — send the request to the replica with the least paged-KV
  pressure (blocks in use plus the worst-case need of its queued requests).
* ``exit_aware`` — weight each replica's queued decode tokens by its
  *observed* early-exit rate from the serving ledger (mean executed layers
  per token so far) and send the request to the replica with the least
  estimated layer-work.  Exit-rate variance across requests is exactly why
  naive balancing leaves throughput on the table: a replica whose current
  mix exits early drains its backlog faster than its queue depth suggests.

Workloads may be open-loop (an :class:`~repro.serving.workloads.ArrivalTrace`
or any request sequence) or closed-loop
(:class:`~repro.serving.workloads.ClosedLoopClients`): on each completion the
router reports the finish time back to the issuing client, which responds
with its next request one think-time gap later.

The fleet-level outcome is a :class:`ServingFleetReport`: per-replica
:class:`~repro.serving.async_engine.AsyncServingReport` ledgers plus
aggregated SLO attainment and **goodput** — tokens that met their SLO per
modelled second, the metric EDF scheduling and exit-aware routing are built
to move.  Routing never changes tokens: each request's decode is
token-identical to serving the same trace on a single replica.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.serving.async_engine import (
    AsyncRequestMetrics,
    AsyncServingEngine,
    AsyncServingReport,
)
from repro.serving.request import Request
from repro.serving.workloads import ClosedLoopClients

__all__ = [
    "RoutingPolicy", "RoundRobinRouting", "LeastKVLoadRouting",
    "ExitAwareRouting", "ROUTING_POLICIES", "make_routing_policy",
    "ServingFleetReport", "ServingRouter",
]


# ---------------------------------------------------------------------------
# routing policies
# ---------------------------------------------------------------------------
class RoutingPolicy:
    """Picks the replica index a routed request is assigned to.

    ``choose`` receives the full replica list plus the candidate indices
    whose KV pools can ever fit the request (the router pre-filters
    oversized pools), and must return one of the candidates.
    """

    name = "base"

    def choose(self, replicas: Sequence[AsyncServingEngine], request: Request,
               candidates: Sequence[int]) -> int:
        """Return the chosen replica index from ``candidates``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any cross-run state (called at the start of every
        :meth:`ServingRouter.run`, so repeated runs are reproducible)."""


class RoundRobinRouting(RoutingPolicy):
    """Rotate assignments across replicas, skipping non-candidates."""

    name = "round_robin"

    def __init__(self):
        """Start the rotation at replica 0."""
        self._next = 0

    def reset(self) -> None:
        """Restart the rotation at replica 0."""
        self._next = 0

    def choose(self, replicas: Sequence[AsyncServingEngine], request: Request,
               candidates: Sequence[int]) -> int:
        """The next replica in rotation whose pool fits the request."""
        allowed = set(candidates)
        for _ in range(len(replicas)):
            index = self._next % len(replicas)
            self._next += 1
            if index in allowed:
                return index
        raise ValueError("no candidate replica to rotate onto")


class LeastKVLoadRouting(RoutingPolicy):
    """Send the request to the replica with the least paged-KV pressure."""

    name = "least_kv_load"

    def choose(self, replicas: Sequence[AsyncServingEngine], request: Request,
               candidates: Sequence[int]) -> int:
        """Least ``kv_load_blocks()`` wins; ties break to the lowest index."""
        return min(candidates, key=lambda i: (replicas[i].kv_load_blocks(), i))


class ExitAwareRouting(RoutingPolicy):
    """Balance estimated layer-work using observed early-exit rates.

    A replica's pending decode tokens are weighted by its ledger-observed
    mean executed layers per token (full depth until it has served a token),
    so a replica whose current request mix exits early is credited with the
    faster drain its exit rate actually buys.
    """

    name = "exit_aware"

    def choose(self, replicas: Sequence[AsyncServingEngine], request: Request,
               candidates: Sequence[int]) -> int:
        """Least estimated queued layer-work wins; ties to the lowest index."""
        def layer_work(i: int) -> float:
            replica = replicas[i]
            return replica.backlog_tokens() * replica.observed_layers_per_token()
        return min(candidates, key=lambda i: (layer_work(i), i))


ROUTING_POLICIES = {
    RoundRobinRouting.name: RoundRobinRouting,
    LeastKVLoadRouting.name: LeastKVLoadRouting,
    ExitAwareRouting.name: ExitAwareRouting,
}


def make_routing_policy(spec: Union[str, RoutingPolicy]) -> RoutingPolicy:
    """Resolve a policy name (or pass through an instance) to a policy."""
    if isinstance(spec, RoutingPolicy):
        return spec
    if spec not in ROUTING_POLICIES:
        raise ValueError(
            f"unknown routing policy {spec!r}; known: {sorted(ROUTING_POLICIES)}")
    return ROUTING_POLICIES[spec]()


# ---------------------------------------------------------------------------
# fleet report
# ---------------------------------------------------------------------------
@dataclass
class ServingFleetReport:
    """Outcome of one :meth:`ServingRouter.run` across every replica."""

    replica_reports: List[AsyncServingReport] = field(default_factory=list)
    assignments: Dict[int, int] = field(default_factory=dict)
    route: str = ""
    scheduling: str = ""
    control: str = "off"
    rejected: Dict[int, str] = field(default_factory=dict)
    rejected_with_slo: int = 0
    replica_layers_per_token: List[float] = field(default_factory=list)
    replica_threshold_offsets: List[float] = field(default_factory=list)

    @property
    def n_replicas(self) -> int:
        """Fleet width."""
        return len(self.replica_reports)

    @property
    def metrics(self) -> Dict[int, AsyncRequestMetrics]:
        """Per-request metrics merged across every replica."""
        merged: Dict[int, AsyncRequestMetrics] = {}
        for report in self.replica_reports:
            merged.update(report.metrics)
        return merged

    @property
    def results(self) -> Dict[int, object]:
        """Per-request generation results merged across every replica."""
        merged: Dict[int, object] = {}
        for report in self.replica_reports:
            merged.update(report.results)
        return merged

    @property
    def total_tokens(self) -> int:
        """Tokens generated fleet-wide."""
        return sum(r.total_tokens for r in self.replica_reports)

    @property
    def makespan_s(self) -> float:
        """Fleet makespan: the latest replica clock (shared time origin)."""
        if not self.replica_reports:
            return 0.0
        return max(r.makespan_s for r in self.replica_reports)

    @property
    def throughput_tps(self) -> float:
        """Fleet tokens per modelled second over the fleet makespan."""
        if self.makespan_s <= 0:
            return float("nan")
        return self.total_tokens / self.makespan_s

    @property
    def good_tokens(self) -> int:
        """SLO-meeting tokens fleet-wide (see the per-replica report)."""
        return sum(r.good_tokens for r in self.replica_reports)

    @property
    def goodput_tps(self) -> float:
        """Fleet goodput: SLO-meeting tokens per modelled second."""
        if self.makespan_s <= 0:
            return float("nan")
        return self.good_tokens / self.makespan_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of deadline-carrying requests that met their deadline,
        fleet-wide; router- and replica-rejected requests count as missed."""
        met = 0
        total = self.rejected_with_slo
        total += sum(r.rejected_with_slo for r in self.replica_reports)
        for metric in self.metrics.values():
            if metric.deadline_s is None:
                continue
            total += 1
            met += bool(metric.met_slo)
        if total == 0:
            return float("nan")
        return met / total

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end request latency across the fleet."""
        metrics = self.metrics
        if not metrics:
            return float("nan")
        return float(np.mean([m.latency_s for m in metrics.values()]))

    def p95_latency_s(self) -> float:
        """95th-percentile end-to-end request latency across the fleet."""
        metrics = self.metrics
        if not metrics:
            return float("nan")
        return float(np.percentile([m.latency_s for m in metrics.values()], 95))

    @property
    def replica_request_counts(self) -> List[int]:
        """Requests routed to each replica (assignment balance)."""
        counts = [0] * self.n_replicas
        for index in self.assignments.values():
            counts[index] += 1
        return counts

    @property
    def preemptions(self) -> int:
        """Total preemptions across every replica."""
        return sum(r.preemptions for r in self.replica_reports)


# ---------------------------------------------------------------------------
# the router
# ---------------------------------------------------------------------------
Workload = Union[Sequence[Request], ClosedLoopClients]


class ServingRouter:
    """Data-parallel front-end over N async serving replicas (module doc)."""

    def __init__(self, replicas: Sequence[AsyncServingEngine],
                 route: Union[str, RoutingPolicy] = "round_robin"):
        """Wire the router to its replicas and routing policy."""
        if not replicas:
            raise ValueError("a fleet needs at least one replica")
        self.replicas: List[AsyncServingEngine] = list(replicas)
        self.routing = make_routing_policy(route)

    # -- event-loop helpers --------------------------------------------------
    @staticmethod
    def _arrival_key(request: Request):
        return (request.arrival_s, request.request_id)

    def _next_event_s(self, replica: AsyncServingEngine) -> float:
        """When ``replica`` would next make progress: now if it has live
        work, its earliest pending arrival if it is idle-waiting, +inf if
        it has nothing at all."""
        if replica.waiting or replica.running or replica.preempted:
            return replica.now_s
        if replica.pending:
            return max(replica.now_s, replica.pending[0].arrival_s)
        return float("inf")

    def _candidates(self, request: Request) -> List[int]:
        """Replicas whose KV pool could ever hold the request."""
        return [i for i, replica in enumerate(self.replicas)
                if replica.policy.oversize_reason(request) is None]

    def _route(self, request: Request, report: ServingFleetReport) -> None:
        candidates = self._candidates(request)
        if not candidates:
            reason = self.replicas[0].policy.oversize_reason(request)
            report.rejected[request.request_id] = (
                f"no replica can hold it: {reason}")
            if request.slo_s is not None:
                report.rejected_with_slo += 1
            return
        index = self.routing.choose(self.replicas, request, candidates)
        if index not in candidates:
            raise ValueError(
                f"routing policy {self.routing.name!r} chose replica {index}, "
                f"not one of the candidates {candidates}")
        self.replicas[index].submit(request)
        report.assignments[request.request_id] = index

    # -- the run loop --------------------------------------------------------
    def run(self, workload: Workload) -> ServingFleetReport:
        """Serve ``workload`` across the fleet on one shared time origin.

        Open-loop workloads are routed at their fixed arrival timestamps;
        a :class:`ClosedLoopClients` workload grows online as completions
        trigger each client's next request.  Oversized requests that no
        replica pool could ever hold are rejected at the router (and, for a
        closed-loop client, end that client's session — a rejected request
        never completes, so nothing would ever trigger the next round).
        """
        clients: Optional[ClosedLoopClients] = None
        if isinstance(workload, ClosedLoopClients):
            clients = workload
            queue = sorted(workload.initial_requests(), key=self._arrival_key)
        else:
            queue = sorted(workload, key=self._arrival_key)
        self.routing.reset()
        for replica in self.replicas:
            replica.begin([])
        report = ServingFleetReport(
            route=self.routing.name,
            scheduling=self.replicas[0].scheduling.name,
            control=self.replicas[0].control_name,
        )

        while queue or any(r.has_work for r in self.replicas):
            busy = [r for r in self.replicas if r.has_work]
            frontier = (min(self._next_event_s(r) for r in busy)
                        if busy else float("inf"))
            if queue and queue[0].arrival_s <= frontier + 1e-12:
                # No busy replica can still act before this arrival: route it
                # now, with every replica's state current as of arrival time.
                self._route(queue.pop(0), report)
                continue
            replica = min(busy, key=lambda r: (self._next_event_s(r),
                                               self.replicas.index(r)))
            finished = replica.advance_tick()
            if clients is not None:
                for metric in finished:
                    nxt = clients.next_request(metric.request_id,
                                               metric.finish_s)
                    if nxt is not None:
                        bisect.insort(queue, nxt, key=self._arrival_key)

        report.replica_reports = [r.finish_report() for r in self.replicas]
        report.replica_layers_per_token = [
            r.observed_layers_per_token() for r in self.replicas]
        report.replica_threshold_offsets = [
            r.report.mean_threshold_offset for r in self.replicas]
        return report
