"""vLLM-style paged KV cache (Kwon et al., 2023).

Instead of one contiguous KV region per sequence, keys/values live in
fixed-size *blocks* handed out by a free-list allocator; each sequence keeps
a block table mapping logical block index to physical block.  This kills
external fragmentation and lets sequences grow without reallocation — the
property that gives vLLM its memory efficiency, which the framework profile
prices.  The implementation here is a real data structure: tests verify
allocation invariants and that gather-reads reproduce a contiguous cache
bit-exactly.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import KVCorruptionError

__all__ = ["BlockAllocator", "PagedKVCache", "kv_checksum"]


def kv_checksum(k: np.ndarray, v: np.ndarray) -> int:
    """CRC32 over a key/value pair's bytes — the integrity stamp swap blobs
    carry so :meth:`PagedKVCache.swap_in` can detect host-side corruption."""
    crc = zlib.crc32(np.ascontiguousarray(k).tobytes())
    return zlib.crc32(np.ascontiguousarray(v).tobytes(), crc)


class BlockAllocator:
    """Free-list allocator over a fixed pool of physical blocks."""

    def __init__(self, n_blocks: int):
        """Create a pool of ``n_blocks`` free physical blocks."""
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        self.n_blocks = n_blocks
        self._free: List[int] = list(range(n_blocks - 1, -1, -1))
        self._allocated: set[int] = set()

    @property
    def free_blocks(self) -> int:
        """Number of currently unallocated blocks."""
        return len(self._free)

    def allocate(self) -> int:
        """Hand out one free block; ``MemoryError`` when the pool is empty."""
        if not self._free:
            raise MemoryError("paged KV pool exhausted")
        block = self._free.pop()
        self._allocated.add(block)
        return block

    def free(self, block: int) -> None:
        """Return ``block`` to the free list; double-frees are rejected."""
        if block not in self._allocated:
            raise ValueError(f"block {block} is not allocated")
        self._allocated.remove(block)
        self._free.append(block)


class PagedKVCache:
    """Paged key/value storage for one layer group.

    Physical storage is ``[n_blocks, block_size, n_kv_heads, head_dim]`` for
    keys and values; sequences append token KV one step at a time and read
    back gathered contiguous views.
    """

    def __init__(
        self,
        n_blocks: int,
        block_size: int,
        n_kv_heads: int,
        head_dim: int,
    ):
        """Allocate physical storage for ``n_blocks`` blocks of ``block_size``."""
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.allocator = BlockAllocator(n_blocks)
        shape = (n_blocks, block_size, n_kv_heads, head_dim)
        self._k = np.zeros(shape)
        self._v = np.zeros(shape)
        # seq_id -> (block_table, token_count)
        self._tables: Dict[int, Tuple[List[int], int]] = {}
        # seq_id -> (k, v, crc) contiguous copies parked in host memory
        # (swap-out); crc is the checksum stamped at eviction time.
        self._host: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}

    # -- sequence management ---------------------------------------------------
    def add_sequence(self, seq_id: int) -> None:
        """Register a new (empty) sequence; duplicate ids are rejected."""
        if seq_id in self._tables:
            raise ValueError(f"sequence {seq_id} already exists")
        self._tables[seq_id] = ([], 0)

    def free_sequence(self, seq_id: int) -> None:
        """Free every block of ``seq_id`` and forget the sequence."""
        table, _ = self._require(seq_id)
        for block in table:
            self.allocator.free(block)
        del self._tables[seq_id]
        self._host.pop(seq_id, None)

    def _require(self, seq_id: int) -> Tuple[List[int], int]:
        if seq_id not in self._tables:
            raise KeyError(f"unknown sequence {seq_id}")
        return self._tables[seq_id]

    def length(self, seq_id: int) -> int:
        """Token count currently stored for ``seq_id``."""
        return self._require(seq_id)[1]

    def block_table(self, seq_id: int) -> List[int]:
        """Copy of ``seq_id``'s logical-to-physical block table."""
        return list(self._require(seq_id)[0])

    # -- KV I/O ---------------------------------------------------------------
    def append(self, seq_id: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append one token's KV (``[n_kv_heads, head_dim]``)."""
        table, count = self._require(seq_id)
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        expected = (self.n_kv_heads, self.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ValueError(f"expected KV shape {expected}, got {k.shape}/{v.shape}")
        offset = count % self.block_size
        if offset == 0:
            table.append(self.allocator.allocate())
        block = table[-1]
        self._k[block, offset] = k
        self._v[block, offset] = v
        self._tables[seq_id] = (table, count + 1)

    def gather(self, seq_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Contiguous ``[tokens, n_kv_heads, head_dim]`` views of a sequence."""
        table, count = self._require(seq_id)
        if count == 0:
            shape = (0, self.n_kv_heads, self.head_dim)
            return np.empty(shape), np.empty(shape)
        ks, vs = [], []
        remaining = count
        for block in table:
            take = min(self.block_size, remaining)
            ks.append(self._k[block, :take])
            vs.append(self._v[block, :take])
            remaining -= take
        return np.concatenate(ks), np.concatenate(vs)

    # -- preemption: swap to/from a modelled host pool ---------------------------
    def swap_out(self, seq_id: int) -> int:
        """Evict a sequence's KV to host memory, freeing its device blocks.

        The contiguous gather view is parked host-side, stamped with a CRC32
        checksum so :meth:`swap_in` can prove it restores the cache
        bit-exactly; returns the number of tokens moved.
        """
        if seq_id in self._host:
            raise ValueError(f"sequence {seq_id} is already swapped out")
        table, count = self._require(seq_id)
        k, v = self.gather(seq_id)
        self._host[seq_id] = (k, v, kv_checksum(k, v))
        for block in table:
            self.allocator.free(block)
        del self._tables[seq_id]
        return count

    def host_length(self, seq_id: int) -> int:
        """Tokens parked host-side for ``seq_id`` (``KeyError`` if not swapped)."""
        if seq_id not in self._host:
            raise KeyError(f"sequence {seq_id} is not swapped out")
        return self._host[seq_id][0].shape[0]

    def swap_in_blocks_needed(self, seq_id: int) -> int:
        """Device blocks a :meth:`swap_in` of ``seq_id`` would allocate —
        the one formula capacity prechecks (including the per-stage facade's
        all-or-nothing check) must agree with."""
        count = self.host_length(seq_id)
        return -(-count // self.block_size) if count else 0

    def verify_host(self, seq_id: int) -> None:
        """Check a parked blob against its swap-out checksum.

        Raises :class:`~repro.errors.KVCorruptionError` (leaving the blob in
        place for the caller to :meth:`drop_host`) when the parked bytes no
        longer match the stamp — the detection half of the fault-injection
        story."""
        if seq_id not in self._host:
            raise KeyError(f"sequence {seq_id} is not swapped out")
        k, v, crc = self._host[seq_id]
        if kv_checksum(k, v) != crc:
            raise KVCorruptionError(
                f"swap blob of sequence {seq_id} failed its checksum "
                f"(stamped {crc:#010x}); falling back to recompute is the "
                "only safe resume")

    def swap_in(self, seq_id: int) -> int:
        """Bring a swapped-out sequence back onto device blocks.

        Raises ``MemoryError`` (leaving the host copy intact) if the free
        pool cannot hold the sequence, and
        :class:`~repro.errors.KVCorruptionError` if the blob fails its
        swap-out checksum; returns the number of tokens moved.
        """
        needed = self.swap_in_blocks_needed(seq_id)
        if needed > self.allocator.free_blocks:
            raise MemoryError(
                f"swap-in of sequence {seq_id} needs {needed} blocks, "
                f"only {self.allocator.free_blocks} free"
            )
        self.verify_host(seq_id)
        k, v, _ = self._host.pop(seq_id)
        self.add_sequence(seq_id)
        for t in range(k.shape[0]):
            self.append(seq_id, k[t], v[t])
        return k.shape[0]

    def drop_host(self, seq_id: int) -> int:
        """Discard a parked blob without restoring it (corruption fallback
        or replica teardown); returns the tokens discarded."""
        if seq_id not in self._host:
            raise KeyError(f"sequence {seq_id} is not swapped out")
        k, _, _ = self._host.pop(seq_id)
        return k.shape[0]

    def corrupt_host(self, seq_id: int, rng: np.random.Generator) -> None:
        """Flip one parked value in ``seq_id``'s host blob (fault injection).

        The stamped checksum is left untouched, so the next
        :meth:`swap_in`/:meth:`verify_host` detects the damage."""
        if seq_id not in self._host:
            raise KeyError(f"sequence {seq_id} is not swapped out")
        k, v, crc = self._host[seq_id]
        target = k if (k.size and rng.integers(2) == 0) or not v.size else v
        if not target.size:
            raise ValueError(f"sequence {seq_id} has an empty blob to corrupt")
        flat = target.reshape(-1)
        flat[int(rng.integers(flat.size))] += 1.0 + rng.random()
        self._host[seq_id] = (k, v, crc)

    def is_swapped(self, seq_id: int) -> bool:
        """Whether ``seq_id`` currently lives in the host pool."""
        return seq_id in self._host

    def host_tokens(self) -> int:
        """Tokens currently parked in the modelled host pool."""
        return sum(k.shape[0] for k, _, _ in self._host.values())

    # -- accounting ---------------------------------------------------------------
    def blocks_in_use(self) -> int:
        """Physical blocks currently allocated to live sequences."""
        return sum(len(t) for t, _ in self._tables.values())

    def utilization(self) -> float:
        """Fraction of allocated slots actually holding tokens — paged
        caches keep this near 1, contiguous preallocation does not."""
        blocks = self.blocks_in_use()
        if blocks == 0:
            return float("nan")
        tokens = sum(c for _, c in self._tables.values())
        return tokens / (blocks * self.block_size)
