"""vLLM-style paged KV cache (Kwon et al., 2023) with radix prefix sharing.

Instead of one contiguous KV region per sequence, keys/values live in
fixed-size *blocks* handed out by a free-list allocator; each sequence keeps
a block table mapping logical block index to physical block.  This kills
external fragmentation and lets sequences grow without reallocation — the
property that gives vLLM its memory efficiency, which the framework profile
prices.  The implementation here is a real data structure: tests verify
allocation invariants and that gather-reads reproduce a contiguous cache
bit-exactly.

With ``prefix_share=True`` the cache additionally keeps an SGLang-style
radix tree over prompt token blocks: :meth:`PagedKVCache.prefill_prompt`
walks the tree, adopts already-resident blocks for the longest matched
prefix (full blocks, plus a longest-common-prefix match inside one final
partial block), and only writes KV for the unmatched suffix.  Shared blocks
are reference-counted; the first divergent write into a shared block
triggers a copy-on-write so sharing can never alias another sequence's KV.
Tree-held blocks that no live sequence uses are evicted LRU-first when the
pool runs dry.  Sharing is strictly opt-in: with the default
``prefix_share=False`` every code path below behaves exactly as before.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import KVCorruptionError

__all__ = ["BlockAllocator", "PagedKVCache", "kv_checksum", "prompt_kv"]


def kv_checksum(k: np.ndarray, v: np.ndarray) -> int:
    """CRC32 over a key/value pair's bytes — the integrity stamp swap blobs
    carry so :meth:`PagedKVCache.swap_in` can detect host-side corruption."""
    crc = zlib.crc32(np.ascontiguousarray(k).tobytes())
    return zlib.crc32(np.ascontiguousarray(v).tobytes(), crc)


def prompt_kv(token: int, position: int, n_kv_heads: int,
              head_dim: int) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic KV content for one prompt token at one absolute position.

    Two sequences share a prompt prefix exactly when they agree on
    (token, position) pairs, so content generated from those two values
    alone is identical wherever sharing is legal and distinct wherever it
    is not — which is what lets the bit-exactness tests catch any aliasing
    bug in the copy-on-write machinery.
    """
    rng = np.random.default_rng([int(token) + 1, int(position) + 1, 0x5EED])
    kv = rng.standard_normal((2, n_kv_heads, head_dim))
    return kv[0], kv[1]


class BlockAllocator:
    """Free-list allocator over a fixed pool of physical blocks."""

    def __init__(self, n_blocks: int):
        """Create a pool of ``n_blocks`` free physical blocks."""
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        self.n_blocks = n_blocks
        self._free: List[int] = list(range(n_blocks - 1, -1, -1))
        self._allocated: set[int] = set()

    @property
    def free_blocks(self) -> int:
        """Number of currently unallocated blocks."""
        return len(self._free)

    def allocate(self) -> int:
        """Hand out one free block; ``MemoryError`` when the pool is empty."""
        if not self._free:
            raise MemoryError("paged KV pool exhausted")
        block = self._free.pop()
        self._allocated.add(block)
        return block

    def free(self, block: int) -> None:
        """Return ``block`` to the free list; double-frees are rejected."""
        if block not in self._allocated:
            raise ValueError(f"block {block} is not allocated")
        self._allocated.remove(block)
        self._free.append(block)


class _PrefixNode:
    """One radix-tree node: a physical block frozen at ``tokens``.

    Children are keyed by their full token tuple; a node whose tuple is
    shorter than the block size is a *partial* leaf (a prompt tail) and by
    construction never has children — no inserted prompt can continue past
    a half-filled block.
    """

    __slots__ = ("tokens", "block", "parent", "children", "stamp")

    def __init__(self, tokens: Tuple[int, ...], block: Optional[int],
                 parent: Optional["_PrefixNode"]):
        self.tokens = tokens
        self.block = block
        self.parent = parent
        self.children: Dict[Tuple[int, ...], "_PrefixNode"] = {}
        self.stamp = 0


class PagedKVCache:
    """Paged key/value storage for one layer group.

    Physical storage is ``[n_blocks, block_size, n_kv_heads, head_dim]`` for
    keys and values; sequences append token KV one step at a time and read
    back gathered contiguous views.  With ``prefix_share=True`` prompt
    blocks are deduplicated across sequences through a refcounted radix
    tree with copy-on-write semantics (see the module docstring).
    """

    def __init__(
        self,
        n_blocks: int,
        block_size: int,
        n_kv_heads: int,
        head_dim: int,
        prefix_share: bool = False,
    ):
        """Allocate physical storage for ``n_blocks`` blocks of ``block_size``."""
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.prefix_share = bool(prefix_share)
        self.allocator = BlockAllocator(n_blocks)
        shape = (n_blocks, block_size, n_kv_heads, head_dim)
        self._k = np.zeros(shape)
        self._v = np.zeros(shape)
        # seq_id -> (block_table, token_count)
        self._tables: Dict[int, Tuple[List[int], int]] = {}
        # seq_id -> (k, v, crc) contiguous copies parked in host memory
        # (swap-out); crc is the checksum stamped at eviction time.
        self._host: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}
        # block -> holders (sequences + radix tree); only kept under sharing.
        self._ref: Dict[int, int] = {}
        self._root = _PrefixNode((), None, None)
        self._clock = 0
        self.prefix_prompt_tokens = 0
        self.prefix_matched_tokens = 0
        self.cow_copies = 0
        self.prefix_evictions = 0

    # -- sequence management ---------------------------------------------------
    def add_sequence(self, seq_id: int) -> None:
        """Register a new (empty) sequence; duplicate ids are rejected."""
        if seq_id in self._tables:
            raise ValueError(f"sequence {seq_id} already exists")
        self._tables[seq_id] = ([], 0)

    def free_sequence(self, seq_id: int) -> None:
        """Release every block of ``seq_id`` and forget the sequence.

        Under sharing, blocks still referenced by the radix tree or by
        other sequences merely lose one reference and stay resident.
        """
        table, _ = self._require(seq_id)
        for block in table:
            self._release_block(block)
        del self._tables[seq_id]
        self._host.pop(seq_id, None)

    def _require(self, seq_id: int) -> Tuple[List[int], int]:
        if seq_id not in self._tables:
            raise KeyError(f"unknown sequence {seq_id}")
        return self._tables[seq_id]

    def length(self, seq_id: int) -> int:
        """Token count currently stored for ``seq_id``."""
        return self._require(seq_id)[1]

    def block_table(self, seq_id: int) -> List[int]:
        """Copy of ``seq_id``'s logical-to-physical block table."""
        return list(self._require(seq_id)[0])

    # -- block bookkeeping (sharing-aware) --------------------------------------
    def _allocate_block(self) -> int:
        """One fresh owned block, evicting unused tree leaves if needed."""
        if self.prefix_share:
            while not self.allocator.free_blocks:
                if not self._evict_prefix_leaf():
                    break
        block = self.allocator.allocate()
        if self.prefix_share:
            self._ref[block] = 1
        return block

    def _release_block(self, block: int) -> None:
        """Drop one reference to ``block``, freeing it at zero holders."""
        if not self.prefix_share:
            self.allocator.free(block)
            return
        self._ref[block] -= 1
        if self._ref[block] == 0:
            del self._ref[block]
            self.allocator.free(block)

    def block_ref_count(self, block: int) -> int:
        """Current holder count of a physical block (sharing mode only)."""
        return self._ref.get(block, 0)

    # -- KV I/O ---------------------------------------------------------------
    def append(self, seq_id: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append one token's KV (``[n_kv_heads, head_dim]``).

        Under sharing, the first write into a block the sequence does not
        exclusively own triggers a copy-on-write: a fresh block is
        allocated, the shared prefix rows are copied, and the shared block
        loses one reference — so no write can ever reach another holder.
        """
        table, count = self._require(seq_id)
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        expected = (self.n_kv_heads, self.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ValueError(f"expected KV shape {expected}, got {k.shape}/{v.shape}")
        offset = count % self.block_size
        if offset == 0:
            table.append(self._allocate_block())
        elif self.prefix_share and self._ref.get(table[-1], 0) > 1:
            shared = table[-1]
            fresh = self._allocate_block()
            self._k[fresh, :offset] = self._k[shared, :offset]
            self._v[fresh, :offset] = self._v[shared, :offset]
            table[-1] = fresh
            self._release_block(shared)
            self.cow_copies += 1
        block = table[-1]
        self._k[block, offset] = k
        self._v[block, offset] = v
        self._tables[seq_id] = (table, count + 1)

    def append_needs_block(self, seq_id: int) -> bool:
        """Whether the next :meth:`append` will have to allocate a block —
        a fresh one at a block boundary, or a copy-on-write clone when the
        tail block is shared.  The one formula decode-capacity prechecks
        must agree with."""
        table, count = self._require(seq_id)
        offset = count % self.block_size
        if offset == 0:
            return True
        return self.prefix_share and self._ref.get(table[-1], 0) > 1

    def gather(self, seq_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Contiguous ``[tokens, n_kv_heads, head_dim]`` views of a sequence."""
        table, count = self._require(seq_id)
        if count == 0:
            shape = (0, self.n_kv_heads, self.head_dim)
            return np.empty(shape), np.empty(shape)
        ks, vs = [], []
        remaining = count
        for block in table:
            take = min(self.block_size, remaining)
            ks.append(self._k[block, :take])
            vs.append(self._v[block, :take])
            remaining -= take
        return np.concatenate(ks), np.concatenate(vs)

    # -- prefix sharing ---------------------------------------------------------
    def prefill_prompt(self, seq_id: int, prompt: Iterable[int]) -> int:
        """Register ``seq_id`` and populate its prompt KV, adopting shared
        radix-tree blocks for the longest matched prefix.

        Only the unmatched suffix gets fresh KV written (via
        :func:`prompt_kv`); the prompt's blocks are then inserted into the
        tree for future requests.  Returns the number of prompt tokens
        adopted — the prefill work this sequence skipped.  Atomic under
        ``MemoryError``: a failed prefill releases everything it took.
        """
        if not self.prefix_share:
            raise ValueError("prefill_prompt requires prefix_share=True")
        if seq_id in self._tables:
            raise ValueError(f"sequence {seq_id} already exists")
        prompt = [int(t) for t in prompt]
        table: List[int] = []
        self._tables[seq_id] = (table, 0)
        try:
            matched = self._adopt_prefix(table, prompt)
            self._tables[seq_id] = (table, matched)
            for position in range(matched, len(prompt)):
                k, v = prompt_kv(prompt[position], position,
                                 self.n_kv_heads, self.head_dim)
                self.append(seq_id, k, v)
        except MemoryError:
            self.free_sequence(seq_id)
            raise
        self.prefix_prompt_tokens += len(prompt)
        self.prefix_matched_tokens += matched
        self._insert_prompt(seq_id, prompt)
        return matched

    def _adopt_prefix(self, table: List[int], prompt: List[int]) -> int:
        """Walk the radix tree adopting shared blocks; returns tokens matched."""
        node = self._root
        matched = 0
        while matched < len(prompt):
            remaining = prompt[matched:]
            best, best_m = None, 0
            for child in node.children.values():
                m = 0
                for a, b in zip(child.tokens, remaining):
                    if a != b:
                        break
                    m += 1
                if m > best_m:
                    best, best_m = child, m
            if best is None:
                break
            self._ref[best.block] += 1
            table.append(best.block)
            matched += best_m
            self._touch(best)
            if best_m == len(best.tokens) == self.block_size:
                node = best  # full block consumed: keep walking
                continue
            break  # partial match ends the walk; COW fires on first append
        return matched

    def _insert_prompt(self, seq_id: int, prompt: List[int]) -> None:
        """Publish a freshly prefilled prompt's blocks into the radix tree."""
        table, _ = self._tables[seq_id]
        node = self._root
        for start in range(0, len(prompt), self.block_size):
            chunk = tuple(prompt[start:start + self.block_size])
            child = node.children.get(chunk)
            if child is None:
                child = _PrefixNode(chunk, table[start // self.block_size], node)
                node.children[chunk] = child
                self._ref[child.block] += 1
            self._touch(child)
            if len(chunk) < self.block_size:
                break  # partial tail leaf: nothing can follow it
            node = child

    def _touch(self, node: _PrefixNode) -> None:
        """LRU-stamp ``node`` and its ancestors with a fresh clock tick."""
        self._clock += 1
        while node is not None and node.block is not None:
            node.stamp = self._clock
            node = node.parent

    def _evict_prefix_leaf(self) -> bool:
        """Drop the least-recently-used tree-only leaf block; False if none.

        Only leaves whose block has a single holder (the tree itself) are
        candidates, so eviction can never take a block out from under a
        live sequence or orphan an interior node.
        """
        best = None
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            if node.children:
                stack.extend(node.children.values())
            elif self._ref.get(node.block, 0) == 1:
                if best is None or node.stamp < best.stamp:
                    best = node
        if best is None:
            return False
        del best.parent.children[best.tokens]
        self._release_block(best.block)
        self.prefix_evictions += 1
        return True

    def evict_prefix_leaves(self, n_blocks: int) -> int:
        """Evict up to ``n_blocks`` unreferenced tree leaves (LRU first).

        The serving engine calls this before preempting live sequences:
        reclaiming cold cache beats evicting hot work.  Returns the number
        of blocks actually freed (0 when every leaf is still shared)."""
        freed = 0
        while freed < n_blocks and self._evict_prefix_leaf():
            freed += 1
        return freed

    def reset_prefix_cache(self) -> int:
        """Release every tree-held reference; returns blocks dereferenced.

        Blocks still used by live sequences stay resident until those
        sequences retire; after the last retire the pool is fully free
        again — the invariant the property tests pin.
        """
        released = 0
        stack = list(self._root.children.values())
        self._root.children.clear()
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            self._release_block(node.block)
            released += 1
        self._clock = 0
        return released

    def prefix_blocks(self) -> int:
        """Number of blocks currently published in the radix tree."""
        count = 0
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            count += 1
        return count

    def prefix_hit_rate(self) -> float:
        """Fraction of prefilled prompt tokens served from shared blocks."""
        if self.prefix_prompt_tokens == 0:
            return float("nan")
        return self.prefix_matched_tokens / self.prefix_prompt_tokens

    # -- preemption: swap to/from a modelled host pool ---------------------------
    def swap_out(self, seq_id: int) -> int:
        """Evict a sequence's KV to host memory, freeing its device blocks.

        The contiguous gather view is parked host-side, stamped with a CRC32
        checksum so :meth:`swap_in` can prove it restores the cache
        bit-exactly; returns the number of tokens moved.
        """
        if seq_id in self._host:
            raise ValueError(f"sequence {seq_id} is already swapped out")
        table, count = self._require(seq_id)
        k, v = self.gather(seq_id)
        self._host[seq_id] = (k, v, kv_checksum(k, v))
        for block in table:
            self._release_block(block)
        del self._tables[seq_id]
        return count

    def host_length(self, seq_id: int) -> int:
        """Tokens parked host-side for ``seq_id`` (``KeyError`` if not swapped)."""
        if seq_id not in self._host:
            raise KeyError(f"sequence {seq_id} is not swapped out")
        return self._host[seq_id][0].shape[0]

    def swap_in_blocks_needed(self, seq_id: int) -> int:
        """Device blocks a :meth:`swap_in` of ``seq_id`` would allocate —
        the one formula capacity prechecks (including the per-stage facade's
        all-or-nothing check) must agree with."""
        count = self.host_length(seq_id)
        return -(-count // self.block_size) if count else 0

    def verify_host(self, seq_id: int) -> None:
        """Check a parked blob against its swap-out checksum.

        Raises :class:`~repro.errors.KVCorruptionError` (leaving the blob in
        place for the caller to :meth:`drop_host`) when the parked bytes no
        longer match the stamp — the detection half of the fault-injection
        story."""
        if seq_id not in self._host:
            raise KeyError(f"sequence {seq_id} is not swapped out")
        k, v, crc = self._host[seq_id]
        if kv_checksum(k, v) != crc:
            raise KVCorruptionError(
                f"swap blob of sequence {seq_id} failed its checksum "
                f"(stamped {crc:#010x}); falling back to recompute is the "
                "only safe resume")

    def swap_in(self, seq_id: int) -> int:
        """Bring a swapped-out sequence back onto device blocks.

        Raises ``MemoryError`` (leaving the host copy intact) if the free
        pool cannot hold the sequence, and
        :class:`~repro.errors.KVCorruptionError` if the blob fails its
        swap-out checksum; returns the number of tokens moved.
        """
        needed = self.swap_in_blocks_needed(seq_id)
        if needed > self.allocator.free_blocks:
            raise MemoryError(
                f"swap-in of sequence {seq_id} needs {needed} blocks, "
                f"only {self.allocator.free_blocks} free"
            )
        self.verify_host(seq_id)
        k, v, _ = self._host.pop(seq_id)
        self.add_sequence(seq_id)
        for t in range(k.shape[0]):
            self.append(seq_id, k[t], v[t])
        return k.shape[0]

    def drop_host(self, seq_id: int) -> int:
        """Discard a parked blob without restoring it (corruption fallback
        or replica teardown); returns the tokens discarded."""
        if seq_id not in self._host:
            raise KeyError(f"sequence {seq_id} is not swapped out")
        k, _, _ = self._host.pop(seq_id)
        return k.shape[0]

    def corrupt_host(self, seq_id: int, rng: np.random.Generator) -> None:
        """Flip one parked value in ``seq_id``'s host blob (fault injection).

        The stamped checksum is left untouched, so the next
        :meth:`swap_in`/:meth:`verify_host` detects the damage."""
        if seq_id not in self._host:
            raise KeyError(f"sequence {seq_id} is not swapped out")
        k, v, crc = self._host[seq_id]
        target = k if (k.size and rng.integers(2) == 0) or not v.size else v
        if not target.size:
            raise ValueError(f"sequence {seq_id} has an empty blob to corrupt")
        flat = target.reshape(-1)
        flat[int(rng.integers(flat.size))] += 1.0 + rng.random()
        self._host[seq_id] = (k, v, crc)

    def is_swapped(self, seq_id: int) -> bool:
        """Whether ``seq_id`` currently lives in the host pool."""
        return seq_id in self._host

    def host_tokens(self) -> int:
        """Tokens currently parked in the modelled host pool."""
        return sum(k.shape[0] for k, _, _ in self._host.values())

    # -- accounting ---------------------------------------------------------------
    def blocks_in_use(self) -> int:
        """Physical blocks currently allocated.

        Without sharing this is the sum of live block-table lengths (every
        block has exactly one holder).  Under sharing, distinct allocated
        blocks are counted instead — a block adopted by five sequences and
        the radix tree is still one block of memory.
        """
        if self.prefix_share:
            return self.allocator.n_blocks - self.allocator.free_blocks
        return sum(len(t) for t, _ in self._tables.values())

    def utilization(self) -> float:
        """Fraction of allocated slots actually holding tokens — paged
        caches keep this near 1, contiguous preallocation does not."""
        blocks = self.blocks_in_use()
        if blocks == 0:
            return float("nan")
        tokens = sum(c for _, c in self._tables.values())
        return tokens / (blocks * self.block_size)
