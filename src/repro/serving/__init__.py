"""Serving substrate: paged KV cache plus the batching/async engines."""

from repro.serving.async_engine import (
    AsyncRequestMetrics,
    AsyncSequence,
    AsyncServingEngine,
    AsyncServingReport,
)
from repro.serving.engine import RequestMetrics, ServingEngine, ServingReport
from repro.serving.paged_kv import BlockAllocator, PagedKVCache
from repro.serving.request import AdmissionPolicy, Request, RequestQueue
from repro.serving.scheduler import ContinuousBatchScheduler, SequenceSlot, TickOutcome
from repro.serving.workloads import ArrivalTrace, bursty_trace, poisson_trace

__all__ = [
    "AdmissionPolicy",
    "ArrivalTrace",
    "AsyncRequestMetrics",
    "AsyncSequence",
    "AsyncServingEngine",
    "AsyncServingReport",
    "BlockAllocator",
    "ContinuousBatchScheduler",
    "PagedKVCache",
    "Request",
    "RequestMetrics",
    "RequestQueue",
    "SequenceSlot",
    "ServingEngine",
    "ServingReport",
    "TickOutcome",
    "bursty_trace",
    "poisson_trace",
]
