"""Serving substrate: paged KV cache plus the continuous-batching engine."""

from repro.serving.engine import RequestMetrics, ServingEngine, ServingReport
from repro.serving.paged_kv import BlockAllocator, PagedKVCache
from repro.serving.request import AdmissionPolicy, Request, RequestQueue
from repro.serving.scheduler import ContinuousBatchScheduler, SequenceSlot, TickOutcome

__all__ = [
    "AdmissionPolicy",
    "BlockAllocator",
    "ContinuousBatchScheduler",
    "PagedKVCache",
    "Request",
    "RequestMetrics",
    "RequestQueue",
    "SequenceSlot",
    "ServingEngine",
    "ServingReport",
    "TickOutcome",
]
