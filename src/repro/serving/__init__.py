"""Serving substrate: vLLM-style paged KV cache."""

from repro.serving.paged_kv import BlockAllocator, PagedKVCache

__all__ = ["BlockAllocator", "PagedKVCache"]
