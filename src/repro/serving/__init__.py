"""Serving substrate: paged KV cache plus the batching/async/fleet engines."""

from repro.serving.async_engine import (
    AsyncRequestMetrics,
    AsyncSequence,
    AsyncServingEngine,
    AsyncServingReport,
)
from repro.serving.control import (
    CONTROL_POLICIES,
    ControlAction,
    ControlPolicy,
    LoadSignal,
    PressureControlPolicy,
    SpeculationController,
    StaticControlPolicy,
    ThompsonBanditPolicy,
    make_control_policy,
)
from repro.serving.engine import RequestMetrics, ServingEngine, ServingReport
from repro.serving.paged_kv import BlockAllocator, PagedKVCache
from repro.serving.request import AdmissionPolicy, Request, RequestQueue
from repro.serving.router import (
    ROUTING_POLICIES,
    RoutingPolicy,
    ServingFleetReport,
    ServingRouter,
    make_routing_policy,
)
from repro.serving.scheduler import (
    SCHEDULING_POLICIES,
    ContinuousBatchScheduler,
    EdfPolicy,
    FifoPriorityPolicy,
    SchedulingPolicy,
    SequenceSlot,
    TickOutcome,
    make_scheduling_policy,
)
from repro.serving.workloads import (
    ArrivalTrace,
    ClosedLoopClients,
    bursty_trace,
    poisson_trace,
)

__all__ = [
    "AdmissionPolicy",
    "ArrivalTrace",
    "AsyncRequestMetrics",
    "AsyncSequence",
    "AsyncServingEngine",
    "AsyncServingReport",
    "BlockAllocator",
    "CONTROL_POLICIES",
    "ClosedLoopClients",
    "ContinuousBatchScheduler",
    "ControlAction",
    "ControlPolicy",
    "EdfPolicy",
    "FifoPriorityPolicy",
    "LoadSignal",
    "PressureControlPolicy",
    "SpeculationController",
    "StaticControlPolicy",
    "ThompsonBanditPolicy",
    "PagedKVCache",
    "ROUTING_POLICIES",
    "Request",
    "RequestMetrics",
    "RequestQueue",
    "RoutingPolicy",
    "SCHEDULING_POLICIES",
    "SchedulingPolicy",
    "SequenceSlot",
    "ServingEngine",
    "ServingFleetReport",
    "ServingReport",
    "ServingRouter",
    "TickOutcome",
    "bursty_trace",
    "make_control_policy",
    "make_routing_policy",
    "make_scheduling_policy",
    "poisson_trace",
]
