"""Arrival-trace generation for the async serving engine.

A trace is a list of :class:`~repro.serving.request.Request`\\ s with
monotonically non-decreasing ``arrival_s`` timestamps (modelled seconds) and
optional per-request SLOs.  Two generators cover the cloud scenarios the
paper's Fig. 14/15 allude to:

* :func:`poisson_trace` — memoryless arrivals at a target rate, the standard
  open-loop serving workload (what vLLM/LayerSkip-style serving papers drive
  their SLO plots with), and
* :func:`bursty_trace` — arrivals clustered into bursts separated by idle
  gaps, which stresses admission and preemption much harder than the same
  mean rate spread evenly.

:func:`chat_trace` is the multi-turn, multi-tenant shape on top of the
open-loop machinery: sessions open Poisson-style, each follow-up turn's
prompt extends the prior turn's full context, and every session of a tenant
shares that tenant's system prompt verbatim — the workload shared-prefix KV
reuse and session-affinity routing are measured on.

Both of those are *open-loop*: arrival times are fixed up front, regardless
of how the server keeps up.  :class:`ClosedLoopClients` is the third,
*closed-loop* shape (what think-time benchmarks like TPC and interactive
chat traffic actually look like): M clients each hold at most one request in
flight, and a client issues its next request only after the previous one
completes plus a think-time gap — so the offered load self-throttles to the
server's service rate.  The engine (or router) drives the interaction by
calling :meth:`ClosedLoopClients.next_request` on each completion.

Every request's deadline is ``slo_scale`` times an ideal-service estimate
(full-depth decode at ``per_token_s`` plus a prefill term), so SLO attainment
compares schedulers, not workload luck.  Generation is fully deterministic
given the seed: every prompt, token budget and think-time gap is drawn up
front, so two identically-seeded workloads served by identically-configured
engines produce identical arrival sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.corpus import generate_prompts
from repro.serving.request import Request
from repro.utils.rng import child_rng

__all__ = [
    "ArrivalTrace", "ClosedLoopClients", "poisson_trace", "bursty_trace",
    "chat_trace",
]

THINK_DISTRIBUTIONS = ("exponential", "constant")


@dataclass
class ArrivalTrace:
    """An ordered arrival schedule plus the knobs that produced it."""

    requests: List[Request]
    kind: str
    seed: int
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Reject traces whose arrivals are not sorted."""
        arrivals = [r.arrival_s for r in self.requests]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("trace arrivals must be sorted by arrival_s")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def horizon_s(self) -> float:
        """Timestamp of the last arrival."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_s

    @property
    def offered_tokens(self) -> int:
        """Total decode-token budget the trace offers the server."""
        return sum(r.max_new_tokens for r in self.requests)

    def offered_rate(self) -> float:
        """Achieved mean arrival rate (requests per modelled second)."""
        if len(self.requests) < 2 or self.horizon_s <= 0:
            return float("nan")
        return (len(self.requests) - 1) / self.horizon_s


def _build_requests(
    kind: str,
    arrivals: Sequence[float],
    vocab_size: int,
    prompt_len_range: Tuple[int, int],
    max_new_tokens_range: Tuple[int, int],
    slo_scale: Optional[float],
    per_token_s: float,
    priority_levels: int,
    seed: int,
    params: dict,
) -> ArrivalTrace:
    lo, hi = max_new_tokens_range
    if lo < 1 or hi < lo:
        raise ValueError(f"bad max_new_tokens_range {max_new_tokens_range}")
    if priority_levels < 1:
        raise ValueError("priority_levels must be >= 1")
    if per_token_s <= 0:
        raise ValueError("per_token_s must be positive")
    n = len(arrivals)
    prompts = generate_prompts(n, vocab_size, length_range=prompt_len_range,
                               seed=seed)
    rng = child_rng(seed, "workload", kind)
    budgets = rng.integers(lo, hi + 1, size=n)
    priorities = rng.integers(0, priority_levels, size=n)
    requests = []
    for i, arrival in enumerate(arrivals):
        budget = int(budgets[i])
        slo = None
        if slo_scale is not None:
            # Ideal service: full-depth decode plus a light prefill term
            # (prefill is compute-bound, ~an order cheaper per token).
            slo = slo_scale * per_token_s * (budget + 0.1 * len(prompts[i]))
        requests.append(Request(
            request_id=i, prompt=prompts[i], max_new_tokens=budget,
            arrival_s=float(arrival), slo_s=slo, priority=int(priorities[i]),
        ))
    return ArrivalTrace(requests=requests, kind=kind, seed=seed, params=params)


def poisson_trace(
    n_requests: int,
    rate_per_s: float,
    vocab_size: int,
    *,
    prompt_len_range: Tuple[int, int] = (4, 16),
    max_new_tokens_range: Tuple[int, int] = (16, 48),
    slo_scale: Optional[float] = 3.0,
    per_token_s: float = 0.006,
    priority_levels: int = 1,
    seed: int = 0,
) -> ArrivalTrace:
    """Open-loop Poisson arrivals at ``rate_per_s`` requests per second."""
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    rng = child_rng(seed, "workload", "poisson-arrivals")
    gaps = rng.exponential(1.0 / rate_per_s, size=n_requests)
    gaps[0] = 0.0  # first request arrives at t=0: the server never idles first
    arrivals = np.cumsum(gaps)
    return _build_requests(
        "poisson", arrivals.tolist(), vocab_size, prompt_len_range,
        max_new_tokens_range, slo_scale, per_token_s, priority_levels, seed,
        params={"rate_per_s": rate_per_s},
    )


def bursty_trace(
    n_requests: int,
    burst_size: int,
    burst_gap_s: float,
    vocab_size: int,
    *,
    jitter_s: float = 0.0,
    prompt_len_range: Tuple[int, int] = (4, 16),
    max_new_tokens_range: Tuple[int, int] = (16, 48),
    slo_scale: Optional[float] = 3.0,
    per_token_s: float = 0.006,
    priority_levels: int = 1,
    seed: int = 0,
) -> ArrivalTrace:
    """Bursts of ``burst_size`` near-simultaneous arrivals every
    ``burst_gap_s`` seconds — same offered load as Poisson at the matching
    mean rate, far spikier contention."""
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if burst_gap_s <= 0:
        raise ValueError("burst_gap_s must be positive")
    if jitter_s < 0:
        raise ValueError("jitter_s must be >= 0")
    rng = child_rng(seed, "workload", "bursty-arrivals")
    arrivals = []
    for i in range(n_requests):
        base = (i // burst_size) * burst_gap_s
        arrivals.append(base + (rng.uniform(0.0, jitter_s) if jitter_s else 0.0))
    arrivals.sort()
    return _build_requests(
        "bursty", arrivals, vocab_size, prompt_len_range,
        max_new_tokens_range, slo_scale, per_token_s, priority_levels, seed,
        params={"burst_size": burst_size, "burst_gap_s": burst_gap_s},
    )


def chat_trace(
    n_sessions: int,
    vocab_size: int,
    *,
    tenants: int = 2,
    turns: int = 3,
    rate_per_s: float = 8.0,
    system_prompt_range: Tuple[int, int] = (12, 24),
    user_len_range: Tuple[int, int] = (2, 6),
    max_new_tokens_range: Tuple[int, int] = (8, 24),
    think_time_s: float = 0.3,
    slo_scale: Optional[float] = 6.0,
    per_token_s: float = 0.006,
    priority_levels: int = 1,
    seed: int = 0,
) -> ArrivalTrace:
    """Multi-turn chat sessions over ``tenants`` shared system prompts.

    The millions-of-users traffic shape: each session belongs to one tenant
    and opens with that tenant's *system prompt* (every session of a tenant
    shares it verbatim — the shared-prefix reuse opportunity) followed by a
    fresh user utterance.  Each follow-up turn's prompt *extends* the prior
    turn's full context — previous prompt, a deterministic stand-in for the
    assistant's reply (one placeholder token per budgeted decode token),
    then the new user utterance — so turn ``j`` re-presents turn ``j-1``'s
    prompt as an exact prefix, which is what session-affinity routing and
    radix-tree prefix adoption both key on.

    Session openings are Poisson at ``rate_per_s``; a follow-up turn arrives
    after the prior turn's ideal service estimate plus an exponential
    think-time gap.  Requests carry ``session_id``/``turn``/``tenant_id``
    and are numbered in arrival order.  Fully deterministic given ``seed``.
    """
    if n_sessions < 1:
        raise ValueError("n_sessions must be >= 1")
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    if turns < 1:
        raise ValueError("turns must be >= 1")
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    if think_time_s < 0:
        raise ValueError("think_time_s must be >= 0")
    if per_token_s <= 0:
        raise ValueError("per_token_s must be positive")
    if priority_levels < 1:
        raise ValueError("priority_levels must be >= 1")
    sys_lo, sys_hi = system_prompt_range
    if sys_lo < 1 or sys_hi < sys_lo:
        raise ValueError(f"bad system_prompt_range {system_prompt_range}")
    usr_lo, usr_hi = user_len_range
    if usr_lo < 1 or usr_hi < usr_lo:
        raise ValueError(f"bad user_len_range {user_len_range}")
    lo, hi = max_new_tokens_range
    if lo < 1 or hi < lo:
        raise ValueError(f"bad max_new_tokens_range {max_new_tokens_range}")
    rng = child_rng(seed, "workload", "chat")
    system_prompts = [
        [int(t) for t in rng.integers(0, vocab_size,
                                      size=int(rng.integers(sys_lo, sys_hi + 1)))]
        for _ in range(tenants)
    ]
    gaps = rng.exponential(1.0 / rate_per_s, size=n_sessions)
    gaps[0] = 0.0  # the first session opens at t=0
    openings = np.cumsum(gaps)
    drafts = []  # (arrival, session, turn, tenant, prompt, budget, priority)
    for session in range(n_sessions):
        tenant = int(rng.integers(0, tenants))
        context = list(system_prompts[tenant])
        arrival = float(openings[session])
        for turn in range(turns):
            user = [int(t) for t in rng.integers(
                0, vocab_size, size=int(rng.integers(usr_lo, usr_hi + 1)))]
            prompt = context + user
            budget = int(rng.integers(lo, hi + 1))
            priority = int(rng.integers(0, priority_levels))
            drafts.append((arrival, session, turn, tenant, prompt, budget,
                           priority))
            # The next turn extends this turn's full context with a
            # placeholder assistant reply (budget tokens) and arrives after
            # the ideal service estimate plus a think-time gap.
            reply = [int(t) for t in rng.integers(0, vocab_size, size=budget)]
            context = prompt + reply
            service = per_token_s * (budget + 0.1 * len(prompt))
            gap = (rng.exponential(think_time_s) if think_time_s > 0 else 0.0)
            arrival = arrival + service + gap
    drafts.sort(key=lambda d: (d[0], d[1], d[2]))
    requests = []
    for i, (arrival, session, turn, tenant, prompt, budget, priority) in \
            enumerate(drafts):
        slo = None
        if slo_scale is not None:
            # Same ideal-service deadline formula as the open-loop traces.
            slo = slo_scale * per_token_s * (budget + 0.1 * len(prompt))
        requests.append(Request(
            request_id=i, prompt=prompt, max_new_tokens=budget,
            arrival_s=arrival, slo_s=slo, priority=priority,
            session_id=session, turn=turn, tenant_id=tenant,
        ))
    return ArrivalTrace(
        requests=requests, kind="chat", seed=seed,
        params={"n_sessions": n_sessions, "tenants": tenants, "turns": turns,
                "rate_per_s": rate_per_s, "think_time_s": think_time_s},
    )


class ClosedLoopClients:
    """M closed-loop clients with think-time gaps between their requests.

    Client ``i`` issues request round ``j`` only after its round ``j-1``
    request completed, waiting a think-time gap in between; at most
    ``n_clients`` requests are ever in flight.  All randomness (prompts,
    token budgets, priorities, think gaps) is drawn up front from the seed,
    so the only run-dependent part of a request is its ``arrival_s`` — which
    the serving engine determines by reporting completions through
    :meth:`next_request`.  Request ids are ``client * requests_per_client +
    round``, making per-request outputs comparable across routing and
    scheduling policies.

    ``think_time_s`` is the mean gap; ``think="exponential"`` draws
    memoryless gaps around it (the classic interactive-user model), while
    ``think="constant"`` uses the mean exactly.  The first round staggers
    clients by one think gap each, so a fleet is not hit by a synchronized
    herd at t=0.
    """

    def __init__(
        self,
        n_clients: int,
        requests_per_client: int,
        vocab_size: int,
        *,
        think_time_s: float = 0.05,
        think: str = "exponential",
        prompt_len_range: Tuple[int, int] = (4, 16),
        max_new_tokens_range: Tuple[int, int] = (16, 48),
        slo_scale: Optional[float] = 3.0,
        per_token_s: float = 0.006,
        priority_levels: int = 1,
        seed: int = 0,
    ):
        """Draw every client's prompts, budgets and think gaps up front."""
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if requests_per_client < 1:
            raise ValueError("requests_per_client must be >= 1")
        if think_time_s < 0:
            raise ValueError("think_time_s must be >= 0")
        if think not in THINK_DISTRIBUTIONS:
            raise ValueError(f"think must be one of {THINK_DISTRIBUTIONS}")
        lo, hi = max_new_tokens_range
        if lo < 1 or hi < lo:
            raise ValueError(f"bad max_new_tokens_range {max_new_tokens_range}")
        if priority_levels < 1:
            raise ValueError("priority_levels must be >= 1")
        if per_token_s <= 0:
            raise ValueError("per_token_s must be positive")
        self.n_clients = n_clients
        self.requests_per_client = requests_per_client
        self.think_time_s = think_time_s
        self.think = think
        self.slo_scale = slo_scale
        self.per_token_s = per_token_s
        self.seed = seed
        n = n_clients * requests_per_client
        self._prompts = generate_prompts(
            n, vocab_size, length_range=prompt_len_range, seed=seed)
        rng = child_rng(seed, "workload", "closed-loop")
        self._budgets = rng.integers(lo, hi + 1, size=n)
        self._priorities = rng.integers(0, priority_levels, size=n)
        if think == "constant" or think_time_s == 0:
            self._think_gaps = np.full(n, float(think_time_s))
        else:
            self._think_gaps = rng.exponential(think_time_s, size=n)

    def __len__(self) -> int:
        return self.n_clients * self.requests_per_client

    @property
    def total_requests(self) -> int:
        """Requests the full closed-loop run will issue."""
        return len(self)

    @property
    def offered_tokens(self) -> int:
        """Total decode-token budget across every round of every client."""
        return int(self._budgets.sum())

    def _request(self, client: int, round_: int, arrival_s: float) -> Request:
        index = client * self.requests_per_client + round_
        budget = int(self._budgets[index])
        slo = None
        if self.slo_scale is not None:
            # Same ideal-service deadline formula as the open-loop traces.
            slo = self.slo_scale * self.per_token_s * (
                budget + 0.1 * len(self._prompts[index]))
        return Request(
            request_id=index, prompt=self._prompts[index],
            max_new_tokens=budget, arrival_s=float(arrival_s), slo_s=slo,
            priority=int(self._priorities[index]), client_id=client,
        )

    def initial_requests(self) -> List[Request]:
        """Round 0 of every client, staggered by one think gap each."""
        return [self._request(c, 0, self._think_gaps[c * self.requests_per_client])
                for c in range(self.n_clients)]

    def next_request(self, request_id: int, finish_s: float) -> Optional[Request]:
        """The issuing client's next request after ``request_id`` completed
        at ``finish_s`` — arriving one think gap later — or None when that
        client has exhausted its rounds."""
        client, round_ = divmod(request_id, self.requests_per_client)
        if not 0 <= client < self.n_clients:
            raise ValueError(f"request id {request_id} belongs to no client")
        if round_ + 1 >= self.requests_per_client:
            return None
        index = client * self.requests_per_client + round_ + 1
        return self._request(client, round_ + 1,
                             finish_s + self._think_gaps[index])
