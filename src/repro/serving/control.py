"""Load-adaptive speculation and exit control.

SpecEE's two speculation knobs — the exit-predictor threshold and the draft
length ``k`` — are static engine configuration everywhere else in this repo.
This module closes the ROADMAP's control loop: the async serving engine
already *observes* queue depth, deadline slack, paged-KV pressure and the
ledger-measured layers per token, and those observations are exactly the
inputs a controller needs to decide, per request and per tick, how
aggressively to speculate.

The loop has three stages:

* **Signal** — :class:`LoadSignal`, a per-tick snapshot the engine builds
  from its own state (:meth:`AsyncServingEngine.load_signal`): live request
  count vs batch capacity, decode-token backlog, the observed per-token
  service estimate, mean deadline slack, KV-pool pressure and observed
  layers/token.
* **Policy** — a :class:`ControlPolicy` maps signals to
  :class:`ControlAction`\\ s.  Three ship (registry
  :data:`CONTROL_POLICIES`): ``static`` reproduces today's fixed behavior
  (the default, token-identical to running without a controller),
  ``pressure`` is a deterministic piecewise controller calibrated to the
  modelled-hardware economics (see below), and ``bandit`` is seeded
  Thompson sampling over a small arm grid of (threshold-offset,
  draft-length) pairs rewarded by SLO-meeting tokens per modelled second.
* **Actuation** — :class:`SpeculationController` turns the chosen action
  into per-sequence ``exit_threshold`` / ``draft_len`` overrides that
  :meth:`SpecEEEngine.step` and :meth:`SpecEEEngine.step_batch` accept on
  both the scalar and vectorized predictor paths.

The economics are not what naive intuition suggests.  Lowering the
threshold does *attempt* verification earlier, but exits are verified, so
a premature attempt that fails costs a full per-sequence LM-head pass —
and unlike decoder layers, whose weight reads amortize across the batched
tick, verification GEMVs are per-sequence and never amortize.  Measured on
the priced model, the dominant waste under load is exactly those failed
verifications: the goodput-protecting overload action is a *stricter* exit
bar (verify only when the predictor is very confident) plus a *shallower*
draft (narrower LM-head slices, fewer marginal candidates), worth
1.1-1.2x goodput at overload, while lowering the threshold loses 15-25%.
When idle the same strict bar is simply quality: free capacity is spent on
the deepest, closest-to-full-depth exits.

References: Thompson-sampling control of speculation length (Liu et al.,
arXiv:2406.03853, "SmartSpec") motivates the bandit; SpecExit
(arXiv:2509.24248) motivates load-coupled early-stop signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import child_rng

__all__ = [
    "ControlAction", "LoadSignal", "ControlPolicy", "StaticControlPolicy",
    "PressureControlPolicy", "ThompsonBanditPolicy", "SpeculationController",
    "CONTROL_POLICIES", "make_control_policy", "DEFAULT_ARM_GRID",
]

@dataclass(frozen=True)
class ControlAction:
    """One actuation decision: how aggressively to speculate.

    ``threshold_offset`` is added to the engine's configured exit threshold
    (negative = exit earlier, positive = hold out for quality);
    ``draft_len`` caps the speculative candidate count at or below the
    configured ``k`` (``None`` = full draft).
    """

    threshold_offset: float = 0.0
    draft_len: Optional[int] = None

    @property
    def is_neutral(self) -> bool:
        """Whether this action leaves the engine's static behavior intact."""
        return self.threshold_offset == 0.0 and self.draft_len is None


#: The do-nothing action: static thresholds, full draft.
NEUTRAL_ACTION = ControlAction()


@dataclass(frozen=True)
class LoadSignal:
    """One tick's load observation, built by the serving engine.

    Everything here is already measured by the engine for other purposes —
    the controller spends information the scheduler and router collect
    anyway, it adds no probes of its own.
    """

    now_s: float = 0.0
    #: Live requests (waiting + running + preempted) competing for service.
    queue_depth: int = 0
    #: Batch slots the engine can decode per tick.
    batch_capacity: int = 1
    #: Decode tokens still owed to every visible request.
    backlog_tokens: int = 0
    #: Observed per-token service-time estimate (modelled seconds).
    per_token_s: float = 0.0
    #: Mean deadline slack of live deadline-carrying requests (+inf if none
    #: carry deadlines; negative once the average deadline is already blown).
    mean_slack_s: float = float("inf")
    #: Paged-KV pool occupancy in [0, 1].
    kv_pressure: float = 0.0
    #: Ledger-observed mean executed decoder layers per generated token.
    layers_per_token: float = 0.0

    @property
    def backlog_s(self) -> float:
        """Queued decode work in modelled seconds at the observed rate."""
        return self.backlog_tokens * self.per_token_s

    @property
    def load_ratio(self) -> float:
        """Live requests per batch slot: < 1 means the batch has headroom,
        > 1 means requests are queueing beyond what one tick can serve."""
        return self.queue_depth / max(1, self.batch_capacity)

    @property
    def pressure(self) -> float:
        """Scalar overload measure the piecewise policy switches on: the
        worst of queueing (load ratio) and KV-pool occupancy, bumped to the
        overload band outright when the mean deadline is already blown.
        Monotonically non-decreasing in every congestion input."""
        level = max(self.load_ratio, self.kv_pressure)
        if self.mean_slack_s < 0.0:
            level = max(level, PressureControlPolicy.OVERLOAD_RATIO)
        return level


class ControlPolicy:
    """Maps :class:`LoadSignal`\\ s to :class:`ControlAction`\\ s.

    Global policies implement :meth:`decide` (one action per tick, applied
    to every live sequence).  Per-request policies (``per_request = True``)
    implement :meth:`assign` (one action per request, chosen at first
    decode and held for the request's lifetime) and :meth:`reward` (credit
    assignment at completion).
    """

    name = "base"
    #: Whether actions are chosen per request (bandit) or per tick.
    per_request = False

    def decide(self, signal: LoadSignal) -> ControlAction:
        """The tick-level action for ``signal`` (global policies)."""
        raise NotImplementedError

    def assign(self, request_id: int, signal: LoadSignal) -> ControlAction:
        """The per-request action at first decode (defaults to
        :meth:`decide`, so global policies need not override it)."""
        return self.decide(signal)

    def reward(self, request_id: int, value: float) -> None:
        """Credit ``value`` to whatever chose ``request_id``'s action
        (no-op for policies without learnt state)."""

    def reset(self) -> None:
        """Clear learnt/cross-run state so repeated runs are reproducible."""


class StaticControlPolicy(ControlPolicy):
    """Today's behavior: fixed threshold, full draft, regardless of load.

    The engine's decode path with this policy is asserted token-identical
    to running with no controller at all — it is the baseline every
    adaptive policy is benchmarked against.
    """

    name = "static"

    def decide(self, signal: LoadSignal) -> ControlAction:
        """Always the neutral action."""
        return NEUTRAL_ACTION


class PressureControlPolicy(ControlPolicy):
    """Deterministic piecewise control on the scalar pressure signal.

    Calibrated against the priced hardware model (module docstring): the
    dominant waste under load is failed verification — a per-sequence full
    LM-head GEMV that, unlike batched decoder layers, never amortizes — so
    past :attr:`OVERLOAD_RATIO` the policy holds the strict exit bar and
    shortens the draft to its cheapest width; past :attr:`BUSY_RATIO` it
    actuates a milder truncation; below that it keeps the full draft and
    the *highest* exit bar, spending free capacity on the deepest,
    highest-quality exits.  The mapping is monotone: more backlog can
    never raise the exit threshold or deepen the draft (property-tested in
    ``tests/test_serving_control.py``).
    """

    name = "pressure"

    BUSY_RATIO = 1.0
    OVERLOAD_RATIO = 1.5

    #: The piecewise bands, most-loaded first: threshold offset and draft
    #: length both non-increasing in pressure.
    OVERLOAD_ACTION = ControlAction(threshold_offset=+0.35, draft_len=2)
    BUSY_ACTION = ControlAction(threshold_offset=+0.38, draft_len=3)
    IDLE_ACTION = ControlAction(threshold_offset=+0.40, draft_len=None)

    def decide(self, signal: LoadSignal) -> ControlAction:
        """Piecewise action by pressure band (monotone non-increasing
        threshold offset and draft length in the pressure signal)."""
        pressure = signal.pressure
        if pressure >= self.OVERLOAD_RATIO:
            return self.OVERLOAD_ACTION
        if pressure >= self.BUSY_RATIO:
            return self.BUSY_ACTION
        return self.IDLE_ACTION


#: Thompson-sampling arm grid: (threshold-offset, draft-length) pairs
#: spanning today's static behavior (0/full draft), the naive
#: exit-earlier direction (-0.15, for the bandit to learn to avoid), and
#: the verify-sparing envelope the pressure policy actuates.
DEFAULT_ARM_GRID: Tuple[ControlAction, ...] = (
    ControlAction(0.0, None),
    ControlAction(-0.15, None),
    ControlAction(+0.20, None),
    ControlAction(+0.40, None),
    ControlAction(+0.20, 2),
    ControlAction(+0.35, 2),
)


class ThompsonBanditPolicy(ControlPolicy):
    """Seeded Thompson sampling over a small (offset, draft-length) grid.

    Each arm keeps a Gaussian reward posterior (running mean, pseudo-count
    prior).  A request is assigned the arm whose posterior *sample* is
    largest at its first decode tick, holds it for its lifetime, and on
    completion credits the arm with its reward: **SLO-meeting tokens per
    modelled second**, normalised by the observed per-token service time so
    rewards are O(1) — a request that misses its deadline earns zero, which
    is what couples the bandit to goodput rather than raw throughput.
    Sampling is fully seeded (:func:`repro.utils.rng.child_rng`), so the
    same seed always produces the same arm sequence.
    """

    name = "bandit"
    per_request = True

    def __init__(self, arms: Sequence[ControlAction] = DEFAULT_ARM_GRID,
                 seed: int = 0, exploration: float = 0.5,
                 prior_mean: float = 1.0):
        """Set up the arm grid and the seeded posterior state.

        ``exploration`` scales posterior width (larger = more exploration);
        ``prior_mean`` is the optimistic initial reward estimate that makes
        every arm worth trying once.
        """
        if not arms:
            raise ValueError("bandit needs at least one arm")
        if exploration <= 0:
            raise ValueError("exploration must be positive")
        self.arms: Tuple[ControlAction, ...] = tuple(arms)
        self.seed = seed
        self.exploration = exploration
        self.prior_mean = prior_mean
        self.reset()

    def reset(self) -> None:
        """Restart the posterior and the seeded sampling stream."""
        self._rng = child_rng(self.seed, "serving", "control", "thompson")
        self._counts = np.zeros(len(self.arms), dtype=np.int64)
        self._means = np.full(len(self.arms), float(self.prior_mean))
        self._arm_of: Dict[int, int] = {}
        self.arm_history: List[int] = []

    def decide(self, signal: LoadSignal) -> ControlAction:
        """Tick-level fallback (never used for assigned requests): the
        current posterior-mean-best arm, without consuming randomness."""
        return self.arms[int(np.argmax(self._means))]

    def assign(self, request_id: int, signal: LoadSignal) -> ControlAction:
        """Sample each arm's posterior and assign the argmax arm."""
        widths = self.exploration / np.sqrt(self._counts + 1.0)
        samples = self._means + self._rng.standard_normal(len(self.arms)) * widths
        arm = int(np.argmax(samples))
        self._arm_of[request_id] = arm
        self.arm_history.append(arm)
        return self.arms[arm]

    def reward(self, request_id: int, value: float) -> None:
        """Fold ``value`` into the issuing arm's running posterior mean."""
        arm = self._arm_of.pop(request_id, None)
        if arm is None:
            return
        self._counts[arm] += 1
        self._means[arm] += (value - self._means[arm]) / self._counts[arm]

    def arm_counts(self) -> Dict[ControlAction, int]:
        """Completed-request count per arm (diagnostics)."""
        return {action: int(count)
                for action, count in zip(self.arms, self._counts)}


CONTROL_POLICIES = {
    StaticControlPolicy.name: StaticControlPolicy,
    PressureControlPolicy.name: PressureControlPolicy,
    ThompsonBanditPolicy.name: ThompsonBanditPolicy,
}


def make_control_policy(spec: Union[str, ControlPolicy],
                        seed: int = 0) -> ControlPolicy:
    """Resolve a policy name (or pass through an instance) to a policy.

    ``seed`` feeds the bandit's sampling stream; deterministic policies
    ignore it.
    """
    if isinstance(spec, ControlPolicy):
        return spec
    if spec not in CONTROL_POLICIES:
        raise ValueError(
            f"unknown control policy {spec!r}; known: {sorted(CONTROL_POLICIES)}")
    if spec == ThompsonBanditPolicy.name:
        return ThompsonBanditPolicy(seed=seed)
    return CONTROL_POLICIES[spec]()


class SpeculationController:
    """Per-request actuation of a :class:`ControlPolicy` inside one engine.

    The serving engine calls :meth:`observe` once per tick with the fresh
    :class:`LoadSignal`, :meth:`overrides` once per decode with the tick's
    runnable request ids (returning the per-sequence ``exit_threshold`` /
    ``draft_len`` lists :meth:`SpecEEEngine.step_batch` accepts), and
    :meth:`finish` as each request completes (closing the bandit's reward
    loop).  Thresholds are clamped to ``(min_threshold, max_threshold)`` so
    no offset can push the engine outside the predictor's meaningful range.
    """

    def __init__(self, policy: Union[str, ControlPolicy], *, k: int,
                 base_threshold: float, seed: int = 0,
                 min_threshold: float = 0.05, max_threshold: float = 0.95):
        """Wire a policy to the engine's configured ``k`` and threshold."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 < min_threshold < max_threshold < 1.0:
            raise ValueError("need 0 < min_threshold < max_threshold < 1")
        self.policy = make_control_policy(policy, seed=seed)
        self.k = int(k)
        self.base_threshold = float(base_threshold)
        self.min_threshold = float(min_threshold)
        self.max_threshold = float(max_threshold)
        self.begin()

    @property
    def name(self) -> str:
        """The wired policy's registry name."""
        return self.policy.name

    def begin(self) -> None:
        """Reset per-run state (mirrors ``AsyncServingEngine.begin``)."""
        self.policy.reset()
        self._signal = LoadSignal()
        self._tick_action = NEUTRAL_ACTION
        self._assigned: Dict[int, ControlAction] = {}
        self._offset_sum = 0.0
        self._offset_count = 0

    def observe(self, signal: LoadSignal) -> None:
        """Ingest this tick's load signal and refresh the tick action."""
        self._signal = signal
        if not self.policy.per_request:
            self._tick_action = self.policy.decide(signal)

    def action_for(self, request_id: int) -> ControlAction:
        """The action governing ``request_id`` this tick: the held arm for
        per-request policies (assigned at first decode), else the tick
        action."""
        if self.policy.per_request:
            if request_id not in self._assigned:
                self._assigned[request_id] = self.policy.assign(
                    request_id, self._signal)
            return self._assigned[request_id]
        return self._tick_action

    def threshold_of(self, action: ControlAction) -> float:
        """The clamped absolute exit threshold ``action`` actuates."""
        return float(min(self.max_threshold,
                         max(self.min_threshold,
                             self.base_threshold + action.threshold_offset)))

    def draft_len_of(self, action: ControlAction) -> int:
        """The clamped draft length ``action`` actuates (1..k)."""
        if action.draft_len is None:
            return self.k
        return max(1, min(self.k, int(action.draft_len)))

    def overrides(self, request_ids: Sequence[int],
                  ) -> Tuple[List[float], List[int]]:
        """Per-sequence ``(exit_thresholds, draft_lens)`` for one decode
        tick, aligned with ``request_ids`` — the lists
        :meth:`SpecEEEngine.step_batch` accepts directly."""
        thresholds: List[float] = []
        draft_lens: List[int] = []
        for request_id in request_ids:
            action = self.action_for(request_id)
            thresholds.append(self.threshold_of(action))
            draft_lens.append(self.draft_len_of(action))
            self._offset_sum += action.threshold_offset
            self._offset_count += 1
        return thresholds, draft_lens

    def finish(self, request_id: int, tokens: int, latency_s: float,
               met_slo: Optional[bool]) -> None:
        """Close the loop on a completed request: reward = SLO-meeting
        tokens per modelled second, normalised by the observed per-token
        service time (0 for a missed deadline)."""
        self._assigned.pop(request_id, None)
        if met_slo is False:
            reward = 0.0
        else:
            per_token = self._signal.per_token_s
            if not (per_token > 0.0) or latency_s <= 0.0:
                reward = 0.0 if tokens == 0 else 1.0
            else:
                reward = (tokens / latency_s) * per_token
        self.policy.reward(request_id, reward)

    def mean_threshold_offset(self) -> float:
        """Mean actuated threshold offset across every per-sequence decode
        decision this run (0.0 before any decode) — the one-number summary
        fleet reports carry per replica."""
        if self._offset_count == 0:
            return 0.0
        return self._offset_sum / self._offset_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Concise policy + actuation summary."""
        return (f"SpeculationController(policy={self.name!r}, k={self.k}, "
                f"base_threshold={self.base_threshold}, "
                f"mean_offset={self.mean_threshold_offset():+.3f})")
