"""Continuous batching over the SpecEE engine (Kwon et al., 2023 style).

Every global step ("tick") the scheduler

1. **joins** — admits queued requests while the batch has slots and the paged
   KV pool can absorb their worst-case block need,
2. **advances** — runs every live sequence one token through
   :meth:`SpecEEEngine.step` with its own predictor scheduler (per-sequence
   early-exit depth and online exit history stay isolated, which is what
   makes batched output token-identical to unbatched decoding), appending
   each committed token's exit hidden state to the paged KV cache,
3. **retires** — finishes sequences that reached their token budget and
   frees their KV blocks, making room for the next admissions.

Depth bookkeeping for the hardware model: within one tick, decoder layer
``l`` is executed once for the set of sequences whose exit depth exceeds
``l`` — weight traffic is shared, per-sequence FLOPs are marginal.  The tick
reports those per-layer batch sizes so the serving engine can ledger them as
``BATCH_DECODER_LAYER`` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.core.engine import GenerationResult, SpecEEEngine, StepRecord
from repro.core.scheduling import Scheduler
from repro.model.base import LMState
from repro.serving.paged_kv import PagedKVCache
from repro.serving.request import AdmissionPolicy, Request, RequestQueue

__all__ = [
    "SequenceSlot", "TickOutcome", "ContinuousBatchScheduler",
    "SchedulingPolicy", "FifoPriorityPolicy", "EdfPolicy", "FairTenantPolicy",
    "SCHEDULING_POLICIES", "make_scheduling_policy",
]


@dataclass
class SequenceSlot:
    """One running sequence: request plus all its per-sequence state."""

    request: Request
    state: LMState
    result: GenerationResult
    scheduler: Scheduler
    admitted_step: int
    blocks_reserved: int
    finished_step: int = -1

    @property
    def done(self) -> bool:
        """Whether the sequence has generated its full token budget."""
        return len(self.result.tokens) >= self.request.max_new_tokens


@dataclass
class TickOutcome:
    """What one global step did: who ran how deep, who finished."""

    step: int
    depths: List[int] = field(default_factory=list)  # executed layers per sequence
    records: List[StepRecord] = field(default_factory=list)
    admitted: List[int] = field(default_factory=list)  # request ids
    retired: List[SequenceSlot] = field(default_factory=list)
    kv_blocks_in_use: int = 0  # sampled before retirement frees blocks

    @property
    def occupancy(self) -> int:
        """Sequences that decoded this tick."""
        return len(self.depths)

    def layer_batches(self) -> List[int]:
        """Batch size of each shared decoder-layer execution this tick:
        entry ``l`` counts the sequences still alive at depth ``l``."""
        if not self.depths:
            return []
        return [sum(1 for d in self.depths if d > l) for l in range(max(self.depths))]


class ContinuousBatchScheduler:
    """Joins/retires sequences every step and drives the batched decode."""

    def __init__(
        self,
        engine: SpecEEEngine,
        cache: PagedKVCache,
        policy: AdmissionPolicy,
        scheduler_factory: Callable[[], Scheduler],
        batched: Optional[bool] = None,
    ):
        """Wire the scheduler to one engine, KV cache and admission policy.

        ``batched`` selects the decode inner loop: ``True`` drives
        :meth:`SpecEEEngine.step_batch` (one shared weight pass per layer per
        tick — the wall-clock fast path for real backends), ``False`` the
        per-sequence :meth:`SpecEEEngine.step` loop, and ``None`` (default)
        picks batched exactly when the model's
        ``supports_batched_decode`` says the batch runs real math.  Either
        way the committed tokens and per-sequence ledgers are identical.
        """
        self.engine = engine
        self.cache = cache
        self.policy = policy
        self.scheduler_factory = scheduler_factory
        if batched is None:
            batched = engine.model.supports_batched_decode
        self.batched = bool(batched)
        self.queue = RequestQueue()
        self.running: List[SequenceSlot] = []
        self.reserved_blocks = 0
        self.step_count = 0
        # Prefix-sharing accounting (stays zero with sharing off).
        self.prefix_hits = 0
        self.prefix_matched_tokens = 0
        n_kv = cache.n_kv_heads * cache.head_dim
        if n_kv != engine.model.hidden_dim:
            raise ValueError(
                f"paged KV entry shape {cache.n_kv_heads}x{cache.head_dim} "
                f"does not cover hidden_dim={engine.model.hidden_dim}"
            )

    # -- submission ----------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue ``request``, rejecting up front one that could never run.

        Without this check an oversized request used to sit at the head of
        the queue forever (nothing to retire can ever free enough blocks), so
        the error surfaces at the API edge instead of mid-run."""
        reason = self.policy.oversize_reason(request)
        if reason:
            raise MemoryError(
                f"request {request.request_id} can never be admitted: it {reason}"
            )
        self.queue.submit(request)

    @property
    def has_work(self) -> bool:
        """Whether any request is still queued or running."""
        return bool(self.queue) or bool(self.running)

    # -- one global step -----------------------------------------------------
    def _admit(self, outcome: TickOutcome) -> None:
        while self.queue and self.policy.admissible(
            self.queue.peek(), self.reserved_blocks, len(self.running)
        ):
            request = self.queue.pop()
            state, result = self.engine.prefill(request.prompt, script=request.script)
            scheduler = self.scheduler_factory()
            scheduler.reset()
            if self.policy.prefix_share:
                # Worst-case reservation covers the whole prompt, so the
                # tree walk cannot run out of blocks (cold tree = no hit).
                matched = self.cache.prefill_prompt(
                    request.request_id, request.prompt)
                if matched:
                    self.prefix_hits += 1
                    self.prefix_matched_tokens += matched
            else:
                self.cache.add_sequence(request.request_id)
            blocks = self.policy.blocks_needed(request)
            self.reserved_blocks += blocks
            self.running.append(SequenceSlot(
                request=request, state=state, result=result, scheduler=scheduler,
                admitted_step=self.step_count, blocks_reserved=blocks,
            ))
            outcome.admitted.append(request.request_id)

    def _retire(self, outcome: TickOutcome) -> None:
        still: List[SequenceSlot] = []
        for slot in self.running:
            if slot.done:
                self.engine.finish(slot.state, slot.result)
                self.cache.free_sequence(slot.request.request_id)
                self.reserved_blocks -= slot.blocks_reserved
                slot.finished_step = self.step_count
                outcome.retired.append(slot)
            else:
                still.append(slot)
        self.running = still

    def tick(self) -> TickOutcome:
        """Admit, advance every live sequence one token, retire finished."""
        outcome = TickOutcome(step=self.step_count)
        self._admit(outcome)
        if self.batched and self.running:
            records = self.engine.step_batch(
                [slot.state for slot in self.running],
                [slot.result for slot in self.running],
                [slot.scheduler for slot in self.running],
                capture_hidden=True,
            )
        else:
            records = [self.engine.step(slot.state, slot.result,
                                        scheduler=slot.scheduler, capture_hidden=True)
                       for slot in self.running]
        for slot, record in zip(self.running, records):
            outcome.depths.append(record.exit_layer + 1)
            outcome.records.append(record)
            if record.hidden is not None:
                kv = record.hidden.reshape(self.cache.n_kv_heads, self.cache.head_dim)
                self.cache.append(slot.request.request_id, kv, kv)
        outcome.kv_blocks_in_use = self.cache.blocks_in_use()
        self._retire(outcome)
        self.step_count += 1
        return outcome


# ---------------------------------------------------------------------------
# Scheduling policies for the async engine (service order + victim selection)
# ---------------------------------------------------------------------------
class SchedulingPolicy:
    """Who is served first, and who is evicted first, in the async engine.

    The :class:`~repro.serving.async_engine.AsyncServingEngine` delegates all
    of its ordering decisions here: ``queue_key`` ranks waiting requests for
    admission and preempted/prefilling sequences for service (ascending; the
    smallest key goes first), and ``victim_key`` ranks runnable sequences for
    eviction when the KV pool runs dry (ascending; the smallest key is
    preempted first).  Deadline-aware policies use the engine-supplied
    modelled clock (``now_s``), full-depth service-rate estimate
    (``per_token_s``) and decode tokens still owed (``remaining``, the full
    budget when unknown) to reason about slack.  A sequence object only
    needs a ``request`` attribute and a ``result.tokens`` list, so policies
    work on any engine slot type.
    """

    name = "base"
    #: Dynamic policies re-rank as service accumulates (``on_progress``
    #: feedback changes their keys mid-run); static policies never do.
    dynamic = False

    def queue_key(self, request: Request, now_s: float = 0.0,
                  per_token_s: float = 0.0,
                  remaining: Optional[int] = None) -> Tuple:
        """Ascending service rank of ``request`` (smallest served first)."""
        raise NotImplementedError

    def victim_key(self, seq, now_s: float, per_token_s: float) -> Tuple:
        """Ascending eviction rank of ``seq`` (smallest preempted first)."""
        raise NotImplementedError

    def on_progress(self, request: Request, tokens: int) -> None:
        """Feedback hook: ``tokens`` were just decoded for ``request``.

        Static policies ignore it; dynamic ones (``fair_tenant``) fold the
        served work into their ranking state."""

    def reset(self) -> None:
        """Clear accumulated ranking state at the start of a run (no-op for
        stateless policies)."""


class FifoPriorityPolicy(SchedulingPolicy):
    """PR 2's original ordering: priority first, then arrival order.

    Service goes to the highest-priority, earliest-arrived request; the
    victim is the lowest-priority, latest-arrived sequence.  Deadlines are
    ignored entirely — this is the baseline EDF is measured against.
    """

    name = "fifo_priority"

    def queue_key(self, request: Request, now_s: float = 0.0,
                  per_token_s: float = 0.0,
                  remaining: Optional[int] = None) -> Tuple:
        """Highest priority first, then earliest arrival, then lowest id."""
        return (-request.priority, request.arrival_s, request.request_id)

    def victim_key(self, seq, now_s: float, per_token_s: float) -> Tuple:
        """Lowest priority first, then latest arrival, then highest id."""
        request = seq.request
        return (request.priority, -request.arrival_s, -request.request_id)


class EdfPolicy(SchedulingPolicy):
    """Earliest-deadline-first service with an SLO-aware victim picker.

    *Service* is deadline-driven: among requests that can still meet their
    deadline (estimated finish ``now + remaining * per_token_s`` at or
    before it), the earliest absolute deadline goes first.  Requests whose
    deadline is already unreachable are *hopeless* — serving them cannot add
    goodput — so they are pushed behind every feasible request (plain EDF's
    overload failure mode is exactly that it keeps burning capacity on
    doomed work, the domino effect).  Deadline-free requests can never miss
    and queue after the feasible deadline-carriers.

    *Eviction* is the mirror image, most-affordable victim first: sequences
    without a deadline (infinite slack), then hopeless sequences (their
    remaining work is wasted either way, most-blown deadline first), then
    feasible sequences by most slack — the one that can best absorb the
    delay.  Protecting the least-slack feasible sequences is what turns
    early-exit throughput into SLO attainment under pressure.
    """

    name = "edf"

    @staticmethod
    def _slack(request: Request, now_s: float, per_token_s: float,
               remaining: int) -> float:
        """Margin between the deadline and the estimated finish (inf when
        the request carries no deadline)."""
        if request.deadline_s is None:
            return float("inf")
        return request.deadline_s - (now_s + remaining * per_token_s)

    def queue_key(self, request: Request, now_s: float = 0.0,
                  per_token_s: float = 0.0,
                  remaining: Optional[int] = None) -> Tuple:
        """Feasible EDF first, then deadline-free, then hopeless."""
        if remaining is None:
            remaining = request.max_new_tokens
        slack = self._slack(request, now_s, per_token_s, remaining)
        deadline = request.deadline_s
        if deadline is None:
            deadline = float("inf")
        hopeless = slack < 0  # never True for deadline-free (inf slack)
        return (1 if hopeless else 0, deadline, request.arrival_s,
                request.request_id)

    def victim_key(self, seq, now_s: float, per_token_s: float) -> Tuple:
        """Deadline-free first, then hopeless, then the most-slack feasible."""
        request = seq.request
        remaining = request.max_new_tokens - len(seq.result.tokens)
        slack = self._slack(request, now_s, per_token_s, remaining)
        if request.deadline_s is None:
            rank, urgency = 0, 0.0  # cannot miss: evict first
        elif slack < 0:
            rank, urgency = 1, slack  # wasted work: most-blown first
        else:
            rank, urgency = 2, -slack  # feasible: most slack first
        return (rank, urgency, -request.arrival_s, -request.request_id)


class FairTenantPolicy(SchedulingPolicy):
    """Per-tenant weighted fairness: the least-served tenant goes first.

    Multi-tenant traffic lets one chatty tenant starve everyone else under
    FIFO.  This policy tracks decoded tokens per tenant (``on_progress``)
    and ranks waiting work by its tenant's served total — ascending, so the
    tenant with the least service so far is admitted and resumed first;
    within a tenant the order stays priority-then-arrival.  Eviction is the
    mirror image: the *most*-served tenant's sequences are preempted first,
    lowest priority and latest arrival breaking ties.  Requests without a
    ``tenant_id`` pool into one anonymous tenant.

    The served counters persist across :meth:`queue_key` calls and change
    every decode tick, so the policy is marked ``dynamic`` — the async
    engine re-sorts its queues each tick anyway, which is all the
    re-ranking needs.
    """

    name = "fair_tenant"
    dynamic = True

    def __init__(self) -> None:
        """Start with every tenant unserved."""
        self._served: dict = {}

    def reset(self) -> None:
        """Forget all served-token counters (fresh run, fresh fairness)."""
        self._served.clear()

    def on_progress(self, request: Request, tokens: int) -> None:
        """Charge ``tokens`` of service to the request's tenant."""
        tenant = request.tenant_id
        self._served[tenant] = self._served.get(tenant, 0) + tokens

    def served(self, tenant_id) -> int:
        """Decoded tokens charged to ``tenant_id`` so far this run."""
        return self._served.get(tenant_id, 0)

    def queue_key(self, request: Request, now_s: float = 0.0,
                  per_token_s: float = 0.0,
                  remaining: Optional[int] = None) -> Tuple:
        """Least-served tenant first; priority/arrival within a tenant."""
        return (self._served.get(request.tenant_id, 0), -request.priority,
                request.arrival_s, request.request_id)

    def victim_key(self, seq, now_s: float, per_token_s: float) -> Tuple:
        """Most-served tenant's lowest-priority, latest sequence first."""
        request = seq.request
        return (-self._served.get(request.tenant_id, 0), request.priority,
                -request.arrival_s, -request.request_id)


SCHEDULING_POLICIES = {
    FifoPriorityPolicy.name: FifoPriorityPolicy,
    EdfPolicy.name: EdfPolicy,
    FairTenantPolicy.name: FairTenantPolicy,
}


def make_scheduling_policy(spec: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    """Resolve a policy name (or pass through an instance) to a policy."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    if spec not in SCHEDULING_POLICIES:
        raise ValueError(
            f"unknown scheduling policy {spec!r}; "
            f"known: {sorted(SCHEDULING_POLICIES)}")
    return SCHEDULING_POLICIES[spec]()
