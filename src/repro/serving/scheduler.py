"""Continuous batching over the SpecEE engine (Kwon et al., 2023 style).

Every global step ("tick") the scheduler

1. **joins** — admits queued requests while the batch has slots and the paged
   KV pool can absorb their worst-case block need,
2. **advances** — runs every live sequence one token through
   :meth:`SpecEEEngine.step` with its own predictor scheduler (per-sequence
   early-exit depth and online exit history stay isolated, which is what
   makes batched output token-identical to unbatched decoding), appending
   each committed token's exit hidden state to the paged KV cache,
3. **retires** — finishes sequences that reached their token budget and
   frees their KV blocks, making room for the next admissions.

Depth bookkeeping for the hardware model: within one tick, decoder layer
``l`` is executed once for the set of sequences whose exit depth exceeds
``l`` — weight traffic is shared, per-sequence FLOPs are marginal.  The tick
reports those per-layer batch sizes so the serving engine can ledger them as
``BATCH_DECODER_LAYER`` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.engine import GenerationResult, SpecEEEngine, StepRecord
from repro.core.scheduling import Scheduler
from repro.model.base import LMState
from repro.serving.paged_kv import PagedKVCache
from repro.serving.request import AdmissionPolicy, Request, RequestQueue

__all__ = ["SequenceSlot", "TickOutcome", "ContinuousBatchScheduler"]


@dataclass
class SequenceSlot:
    """One running sequence: request plus all its per-sequence state."""

    request: Request
    state: LMState
    result: GenerationResult
    scheduler: Scheduler
    admitted_step: int
    blocks_reserved: int
    finished_step: int = -1

    @property
    def done(self) -> bool:
        """Whether the sequence has generated its full token budget."""
        return len(self.result.tokens) >= self.request.max_new_tokens


@dataclass
class TickOutcome:
    """What one global step did: who ran how deep, who finished."""

    step: int
    depths: List[int] = field(default_factory=list)  # executed layers per sequence
    records: List[StepRecord] = field(default_factory=list)
    admitted: List[int] = field(default_factory=list)  # request ids
    retired: List[SequenceSlot] = field(default_factory=list)
    kv_blocks_in_use: int = 0  # sampled before retirement frees blocks

    @property
    def occupancy(self) -> int:
        """Sequences that decoded this tick."""
        return len(self.depths)

    def layer_batches(self) -> List[int]:
        """Batch size of each shared decoder-layer execution this tick:
        entry ``l`` counts the sequences still alive at depth ``l``."""
        if not self.depths:
            return []
        return [sum(1 for d in self.depths if d > l) for l in range(max(self.depths))]


class ContinuousBatchScheduler:
    """Joins/retires sequences every step and drives the batched decode."""

    def __init__(
        self,
        engine: SpecEEEngine,
        cache: PagedKVCache,
        policy: AdmissionPolicy,
        scheduler_factory: Callable[[], Scheduler],
        batched: Optional[bool] = None,
    ):
        """Wire the scheduler to one engine, KV cache and admission policy.

        ``batched`` selects the decode inner loop: ``True`` drives
        :meth:`SpecEEEngine.step_batch` (one shared weight pass per layer per
        tick — the wall-clock fast path for real backends), ``False`` the
        per-sequence :meth:`SpecEEEngine.step` loop, and ``None`` (default)
        picks batched exactly when the model's
        ``supports_batched_decode`` says the batch runs real math.  Either
        way the committed tokens and per-sequence ledgers are identical.
        """
        self.engine = engine
        self.cache = cache
        self.policy = policy
        self.scheduler_factory = scheduler_factory
        if batched is None:
            batched = engine.model.supports_batched_decode
        self.batched = bool(batched)
        self.queue = RequestQueue()
        self.running: List[SequenceSlot] = []
        self.reserved_blocks = 0
        self.step_count = 0
        n_kv = cache.n_kv_heads * cache.head_dim
        if n_kv != engine.model.hidden_dim:
            raise ValueError(
                f"paged KV entry shape {cache.n_kv_heads}x{cache.head_dim} "
                f"does not cover hidden_dim={engine.model.hidden_dim}"
            )

    # -- submission ----------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue ``request``, rejecting up front one that could never run.

        Without this check an oversized request used to sit at the head of
        the queue forever (nothing to retire can ever free enough blocks), so
        the error surfaces at the API edge instead of mid-run."""
        reason = self.policy.oversize_reason(request)
        if reason:
            raise MemoryError(
                f"request {request.request_id} can never be admitted: it {reason}"
            )
        self.queue.submit(request)

    @property
    def has_work(self) -> bool:
        """Whether any request is still queued or running."""
        return bool(self.queue) or bool(self.running)

    # -- one global step -----------------------------------------------------
    def _admit(self, outcome: TickOutcome) -> None:
        while self.queue and self.policy.admissible(
            self.queue.peek(), self.reserved_blocks, len(self.running)
        ):
            request = self.queue.pop()
            state, result = self.engine.prefill(request.prompt, script=request.script)
            scheduler = self.scheduler_factory()
            scheduler.reset()
            self.cache.add_sequence(request.request_id)
            blocks = self.policy.blocks_needed(request)
            self.reserved_blocks += blocks
            self.running.append(SequenceSlot(
                request=request, state=state, result=result, scheduler=scheduler,
                admitted_step=self.step_count, blocks_reserved=blocks,
            ))
            outcome.admitted.append(request.request_id)

    def _retire(self, outcome: TickOutcome) -> None:
        still: List[SequenceSlot] = []
        for slot in self.running:
            if slot.done:
                self.engine.finish(slot.state, slot.result)
                self.cache.free_sequence(slot.request.request_id)
                self.reserved_blocks -= slot.blocks_reserved
                slot.finished_step = self.step_count
                outcome.retired.append(slot)
            else:
                still.append(slot)
        self.running = still

    def tick(self) -> TickOutcome:
        """Admit, advance every live sequence one token, retire finished."""
        outcome = TickOutcome(step=self.step_count)
        self._admit(outcome)
        if self.batched and self.running:
            records = self.engine.step_batch(
                [slot.state for slot in self.running],
                [slot.result for slot in self.running],
                [slot.scheduler for slot in self.running],
                capture_hidden=True,
            )
        else:
            records = [self.engine.step(slot.state, slot.result,
                                        scheduler=slot.scheduler, capture_hidden=True)
                       for slot in self.running]
        for slot, record in zip(self.running, records):
            outcome.depths.append(record.exit_layer + 1)
            outcome.records.append(record)
            if record.hidden is not None:
                kv = record.hidden.reshape(self.cache.n_kv_heads, self.cache.head_dim)
                self.cache.append(slot.request.request_id, kv, kv)
        outcome.kv_blocks_in_use = self.cache.blocks_in_use()
        self._retire(outcome)
        self.step_count += 1
        return outcome
