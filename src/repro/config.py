"""Model and engine configuration.

Two kinds of "model size" coexist in this reproduction:

* **Architectural dimensions** (``ModelSpec``) — the *real* Llama2 shapes
  (hidden 4096, 32 layers, vocab 32000, ...).  These drive the hardware cost
  model: every priced FLOP and byte uses the true dimensions, so modelled
  tokens/s land in the paper's magnitude.
* **Simulation dimensions** (``SimDims``) — the small embedding space the
  semantic substrate runs in (hidden 64, vocab 512 by default).  The engines
  execute real array math at this scale; only pricing uses ``ModelSpec``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = [
    "ModelSpec",
    "SimDims",
    "SpecEEConfig",
    "MODELS",
    "get_model_spec",
]


@dataclass(frozen=True)
class ModelSpec:
    """Architectural description of a target LLM (paper Table 3)."""

    name: str
    hidden_dim: int
    n_heads: int
    n_layers: int
    context_length: int
    vocab_size: int
    intermediate_dim: int
    n_kv_heads: int | None = None
    bytes_per_param: float = 2.0  # fp16 by default

    @property
    def kv_heads(self) -> int:
        return self.n_kv_heads if self.n_kv_heads is not None else self.n_heads

    @property
    def head_dim(self) -> int:
        return self.hidden_dim // self.n_heads

    @property
    def layer_params(self) -> int:
        """Parameter count of one decoder layer (attention + SwiGLU FFN)."""
        d = self.hidden_dim
        kv_dim = self.kv_heads * self.head_dim
        attn = d * d + 2 * d * kv_dim + d * d  # Wq, Wk, Wv, Wo
        ffn = 3 * d * self.intermediate_dim  # gate, up, down
        norms = 2 * d
        return attn + ffn + norms

    @property
    def lm_head_params(self) -> int:
        return self.hidden_dim * self.vocab_size

    @property
    def embedding_params(self) -> int:
        return self.vocab_size * self.hidden_dim

    @property
    def total_params(self) -> int:
        return self.n_layers * self.layer_params + self.lm_head_params + self.embedding_params + self.hidden_dim

    @property
    def weight_bytes(self) -> float:
        return self.total_params * self.bytes_per_param

    def kv_bytes_per_token(self) -> float:
        """KV-cache bytes appended per generated token (all layers)."""
        return 2.0 * self.n_layers * self.kv_heads * self.head_dim * self.bytes_per_param

    def with_dtype_bytes(self, bytes_per_param: float) -> "ModelSpec":
        """Same architecture at a different storage width (e.g. int4 = 0.5)."""
        return replace(self, bytes_per_param=bytes_per_param)


@dataclass(frozen=True)
class SimDims:
    """Dimensions of the small semantic simulation space."""

    hidden_dim: int = 64
    vocab_size: int = 512

    def __post_init__(self) -> None:
        if self.hidden_dim < 8:
            raise ValueError("hidden_dim must be >= 8")
        if self.vocab_size < 32:
            raise ValueError("vocab_size must be >= 32")


@dataclass
class SpecEEConfig:
    """Tunable knobs of the SpecEE engine (paper defaults in comments)."""

    num_speculative: int = 4  # k draft tokens per step (Sec. 4.3.2)
    predictor_hidden: int = 512  # MLP hidden dim (Fig. 8 optimum)
    predictor_layers: int = 2  # MLP depth (Fig. 8 optimum)
    exit_threshold: float = 0.5  # sigmoid threshold (Sec. 4.3.2)
    context_window: int = 5  # circular queue length N (Sec. 5.3)
    layer_vicinity: int = 2  # +/- layers counted as "near" (Sec. 5.2)
    offline_top_fraction: float = 0.5  # share of layers kept by offline sched.
    min_exit_layer: int = 2  # never exit before this layer
    scheduler: str = "two_level"  # "all" | "offline" | "online" | "two_level"
    verify_on_exit: bool = True  # Sec. 4.3.3 verification algorithm

    def __post_init__(self) -> None:
        if self.num_speculative < 1:
            raise ValueError("num_speculative must be >= 1")
        if not 0.0 < self.exit_threshold < 1.0:
            raise ValueError("exit_threshold must lie in (0, 1)")
        if self.scheduler not in {"all", "offline", "online", "two_level"}:
            raise ValueError(f"unknown scheduler {self.scheduler!r}")

    @property
    def feature_dim(self) -> int:
        """Three features per speculative token (Sec. 4.3.1)."""
        return 3 * self.num_speculative


MODELS: Dict[str, ModelSpec] = {
    "llama2-7b": ModelSpec(
        name="llama2-7b", hidden_dim=4096, n_heads=32, n_layers=32,
        context_length=4096, vocab_size=32000, intermediate_dim=11008,
    ),
    "llama2-13b": ModelSpec(
        name="llama2-13b", hidden_dim=5120, n_heads=40, n_layers=40,
        context_length=4096, vocab_size=32000, intermediate_dim=13824,
    ),
    "llama2-70b": ModelSpec(
        name="llama2-70b", hidden_dim=8192, n_heads=64, n_layers=80,
        context_length=4096, vocab_size=32000, intermediate_dim=28672,
        n_kv_heads=8,
    ),
    "vicuna-7b": ModelSpec(
        name="vicuna-7b", hidden_dim=4096, n_heads=32, n_layers=32,
        context_length=4096, vocab_size=32000, intermediate_dim=11008,
    ),
}


def get_model_spec(name: str) -> ModelSpec:
    """Look up a model by name, with a helpful error for typos."""
    try:
        return MODELS[name]
    except KeyError:
        known = ", ".join(sorted(MODELS))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
