"""Numpy neural-network substrate.

Forward-only layers power the inference-path transformer backend; the minimal
reverse-mode autodiff engine (:mod:`repro.nn.autograd`) powers the trainable
components (tiny transformer LM example, predictor reference trainer).
"""

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Embedding, Linear, RMSNorm, SwiGLU
from repro.nn.mlp import MLPClassifier
from repro.nn.optim import SGD, Adam

__all__ = [
    "Adam",
    "Embedding",
    "Linear",
    "MLPClassifier",
    "RMSNorm",
    "SGD",
    "SwiGLU",
    "Tensor",
    "no_grad",
]
