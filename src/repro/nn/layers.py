"""Core layers shared by the trainable and inference transformer stacks.

Each layer exposes both a tape-based ``__call__`` (autograd :class:`Tensor`
in, Tensor out) and a fast ``forward_np`` working directly on numpy arrays for
the inference path where no gradients are needed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.autograd import Tensor

__all__ = ["Linear", "Embedding", "RMSNorm", "SwiGLU"]


class Module:
    """Tiny base class: parameter collection only."""

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params


class Linear(Module):
    """Dense layer ``y = x @ W + b`` with Kaiming-uniform init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        self.in_features = in_features
        self.out_features = out_features
        bound = float(np.sqrt(6.0 / in_features))
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        self._w_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def inference_weight(self) -> np.ndarray:
        """C-contiguous ``[in, out]`` weight for the gradient-free path.

        Cached until ``weight.data`` is rebound (an optimizer step that
        replaces the array invalidates it); when the parameter is already
        contiguous the cache is the parameter itself, so in-place updates
        stay visible.  This keeps BLAS from doing an implicit pack/transpose
        copy on every inference call.
        """
        data = self.weight.data
        cache = self._w_cache
        if cache is None or cache[0] is not data:
            self._w_cache = (data, np.ascontiguousarray(data))
        return self._w_cache[1]

    def forward_np(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.inference_weight()
        if self.bias is not None:
            out = out + self.bias.data
        return out


class Embedding(Module):
    """Token embedding table with normal(0, 0.02) init."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator):
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Tensor(rng.normal(0.0, 0.02, size=(vocab_size, dim)), requires_grad=True)

    def __call__(self, token_ids: np.ndarray) -> Tensor:
        return self.weight.take_rows(np.asarray(token_ids, dtype=np.int64))

    def forward_np(self, token_ids: np.ndarray) -> np.ndarray:
        return self.weight.data[np.asarray(token_ids, dtype=np.int64)]


class RMSNorm(Module):
    """Root-mean-square layer norm (the Llama normalization)."""

    def __init__(self, dim: int, eps: float = 1e-6):
        self.dim = dim
        self.eps = eps
        self.weight = Tensor(np.ones(dim), requires_grad=True)

    def __call__(self, x: Tensor) -> Tensor:
        ms = (x * x).mean(axis=-1, keepdims=True)
        inv = (ms + self.eps) ** -0.5
        return x * inv * self.weight

    def forward_np(self, x: np.ndarray) -> np.ndarray:
        ms = np.mean(x * x, axis=-1, keepdims=True)
        return x / np.sqrt(ms + self.eps) * self.weight.data


class SwiGLU(Module):
    """Llama FFN: ``down(silu(gate(x)) * up(x))``."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator):
        self.gate = Linear(dim, hidden_dim, rng, bias=False)
        self.up = Linear(dim, hidden_dim, rng, bias=False)
        self.down = Linear(hidden_dim, dim, rng, bias=False)

    def __call__(self, x: Tensor) -> Tensor:
        return self.down(self.gate(x).silu() * self.up(x))

    def forward_np(self, x: np.ndarray) -> np.ndarray:
        g = self.gate.forward_np(x)
        sig = 1.0 / (1.0 + np.exp(-np.clip(g, -60, 60)))
        return self.down.forward_np(g * sig * self.up.forward_np(x))
