"""Rotary position embeddings (RoPE), as used by Llama-family models."""

from __future__ import annotations

import numpy as np

__all__ = ["RotaryEmbedding", "apply_rope"]


class RotaryEmbedding:
    """Precomputed cos/sin tables for rotary position encoding.

    ``head_dim`` must be even; positions up to ``max_positions`` are cached.
    """

    def __init__(self, head_dim: int, max_positions: int = 4096, base: float = 10000.0):
        if head_dim % 2 != 0:
            raise ValueError(f"head_dim must be even, got {head_dim}")
        self.head_dim = head_dim
        self.max_positions = max_positions
        inv_freq = 1.0 / (base ** (np.arange(0, head_dim, 2) / head_dim))
        angles = np.outer(np.arange(max_positions), inv_freq)  # [T, D/2]
        self.cos = np.cos(angles)
        self.sin = np.sin(angles)

    def tables_for(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and positions.max() >= self.max_positions:
            raise ValueError(
                f"position {int(positions.max())} exceeds table size {self.max_positions}"
            )
        return self.cos[positions], self.sin[positions]


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate query/key vectors.

    Parameters
    ----------
    x : [..., T, head_dim] array (pairs ``(x[2i], x[2i+1])`` are rotated).
    cos, sin : [T, head_dim/2] tables for the absolute positions of the T steps.

    The rotation is norm-preserving per pair, a property the tests verify.
    """
    x = np.asarray(x, dtype=np.float64)
    x_even = x[..., 0::2]
    x_odd = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x_even * cos - x_odd * sin
    out[..., 1::2] = x_even * sin + x_odd * cos
    return out
