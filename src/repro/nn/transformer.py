"""Llama-style transformer stacks.

Two variants share the layer geometry:

* :class:`TinyTransformerLM` — forward-only numpy inference stack with RoPE
  and a :class:`~repro.nn.attention.KVCache`, exposing *layer-resolved*
  stepping so the early-exit engines can stop mid-depth.
* :class:`TrainableTransformerLM` — autograd stack (learned absolute position
  embeddings instead of RoPE) used by the training example and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.nn.attention import CausalSelfAttention, KVCache
from repro.nn.autograd import Tensor
from repro.nn.layers import Embedding, Linear, Module, RMSNorm, SwiGLU

__all__ = ["TransformerConfig", "TinyTransformerLM", "TrainableTransformerLM"]


@dataclass(frozen=True)
class TransformerConfig:
    vocab_size: int = 512
    dim: int = 64
    n_layers: int = 8
    n_heads: int = 4
    n_kv_heads: Optional[int] = None
    intermediate_dim: int = 172
    max_positions: int = 1024

    def __post_init__(self) -> None:
        if self.dim % self.n_heads != 0:
            raise ValueError("dim must be divisible by n_heads")


class _DecoderLayer:
    """Forward-only decoder layer: pre-norm attention + pre-norm SwiGLU."""

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator):
        self.attn_norm = RMSNorm(cfg.dim)
        self.attn = CausalSelfAttention(
            cfg.dim, cfg.n_heads, rng, n_kv_heads=cfg.n_kv_heads,
            max_positions=cfg.max_positions,
        )
        self.ffn_norm = RMSNorm(cfg.dim)
        self.ffn = SwiGLU(cfg.dim, cfg.intermediate_dim, rng)

    def forward(
        self, x: np.ndarray, layer: int, cache: KVCache, positions: np.ndarray
    ) -> np.ndarray:
        x = x + self.attn.forward(self.attn_norm.forward_np(x), layer, cache, positions)
        x = x + self.ffn.forward_np(self.ffn_norm.forward_np(x))
        return x

    def decode_batch(
        self, x: np.ndarray, layer: int, caches: List[KVCache], positions: np.ndarray
    ) -> np.ndarray:
        """Batched decode: ``x`` is ``[B, dim]``, one new token per sequence.

        Norms and the SwiGLU already broadcast over the batch axis; attention
        goes through the stacked-QKV batched path with per-sequence caches.
        """
        x = x + self.attn.decode_batch(self.attn_norm.forward_np(x), layer, caches, positions)
        x = x + self.ffn.forward_np(self.ffn_norm.forward_np(x))
        return x


class TinyTransformerLM:
    """Inference-only transformer with layer-resolved forward.

    The engines drive it through :meth:`embed`, :meth:`layer_forward` and
    :meth:`lm_head`; a convenience :meth:`forward_all` runs the full depth.
    """

    def __init__(self, cfg: TransformerConfig, seed: int = 0):
        self.cfg = cfg
        rng = np.random.default_rng(seed)
        emb_scale = 1.0 / np.sqrt(cfg.dim)
        self.embedding = rng.normal(0.0, emb_scale, size=(cfg.vocab_size, cfg.dim))
        self.layers: List[_DecoderLayer] = [
            _DecoderLayer(cfg, np.random.default_rng(rng.integers(2**31)))
            for _ in range(cfg.n_layers)
        ]
        self.final_norm = RMSNorm(cfg.dim)
        self.lm_head_weight = rng.normal(0.0, emb_scale, size=(cfg.dim, cfg.vocab_size))

    def new_cache(self, max_tokens: int) -> KVCache:
        head_dim = self.cfg.dim // self.cfg.n_heads
        kv_heads = self.cfg.n_kv_heads or self.cfg.n_heads
        return KVCache(self.cfg.n_layers, kv_heads, head_dim, max_tokens)

    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        return self.embedding[np.asarray(token_ids, dtype=np.int64)]

    def layer_forward(
        self, hidden: np.ndarray, layer: int, cache: KVCache, positions: np.ndarray
    ) -> np.ndarray:
        return self.layers[layer].forward(hidden, layer, cache, positions)

    def layer_decode_batch(
        self,
        hidden: np.ndarray,
        layer: int,
        caches: List[KVCache],
        positions: np.ndarray,
    ) -> np.ndarray:
        """Run one decoder layer over a ``[B, dim]`` decode batch (one new
        token per sequence, each with its own cache and absolute position)."""
        return self.layers[layer].decode_batch(hidden, layer, caches, positions)

    def lm_head(self, hidden: np.ndarray) -> np.ndarray:
        return self.final_norm.forward_np(hidden) @ self.lm_head_weight

    def lm_head_slice(self, hidden: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
        cols = self.lm_head_weight[:, np.asarray(token_ids, dtype=np.int64)]
        return self.final_norm.forward_np(hidden) @ cols

    def forward_all(
        self, token_ids: np.ndarray, cache: KVCache, positions: np.ndarray
    ) -> np.ndarray:
        """Run every layer; returns final hidden states ``[T, dim]``."""
        hidden = self.embed(token_ids)
        for layer in range(self.cfg.n_layers):
            hidden = self.layer_forward(hidden, layer, cache, positions)
        return hidden


class _TrainableLayer(Module):
    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator):
        self.cfg = cfg
        dim, heads = cfg.dim, cfg.n_heads
        self.attn_norm = RMSNorm(dim)
        self.wq = Linear(dim, dim, rng, bias=False)
        self.wk = Linear(dim, dim, rng, bias=False)
        self.wv = Linear(dim, dim, rng, bias=False)
        self.wo = Linear(dim, dim, rng, bias=False)
        self.ffn_norm = RMSNorm(dim)
        self.ffn = SwiGLU(dim, cfg.intermediate_dim, rng)
        self.n_heads = heads
        self.head_dim = dim // heads

    def __call__(self, x: Tensor, mask: np.ndarray) -> Tensor:
        b, t, d = x.shape
        h = self.attn_norm(x)
        q = self.wq(h).reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)
        k = self.wk(h).reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)
        v = self.wv(h).reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        scores = scores + Tensor(mask)  # additive causal mask (constant)
        attn = scores.softmax(axis=-1)
        ctx = (attn @ v).transpose(0, 2, 1, 3).reshape(b, t, d)
        x = x + self.wo(ctx)
        x = x + self.ffn(self.ffn_norm(x))
        return x


class TrainableTransformerLM(Module):
    """Autograd transformer LM for the from-scratch training example."""

    def __init__(self, cfg: TransformerConfig, seed: int = 0):
        self.cfg = cfg
        rng = np.random.default_rng(seed)
        self.token_emb = Embedding(cfg.vocab_size, cfg.dim, rng)
        self.pos_emb = Embedding(cfg.max_positions, cfg.dim, rng)
        self.layers = [
            _TrainableLayer(cfg, np.random.default_rng(rng.integers(2**31)))
            for _ in range(cfg.n_layers)
        ]
        self.final_norm = RMSNorm(cfg.dim)
        self.lm_head = Linear(cfg.dim, cfg.vocab_size, rng, bias=False)

    def __call__(self, token_ids: np.ndarray) -> Tensor:
        """``token_ids`` [B, T] -> logits Tensor [B, T, V]."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        b, t = token_ids.shape
        if t > self.cfg.max_positions:
            raise ValueError(f"sequence length {t} exceeds {self.cfg.max_positions}")
        x = self.token_emb(token_ids) + self.pos_emb(np.arange(t))
        mask = np.triu(np.full((t, t), -1e9), k=1)
        for layer in self.layers:
            x = layer(x, mask)
        return self.lm_head(self.final_norm(x))
