"""Llama-style transformer stacks.

Two variants share the layer geometry:

* :class:`TinyTransformerLM` — forward-only numpy inference stack with RoPE
  and a :class:`~repro.nn.attention.KVCache`, exposing *layer-resolved*
  stepping so the early-exit engines can stop mid-depth.
* :class:`TrainableTransformerLM` — autograd stack used by the training
  example, the LayerSkip recipe (``repro.training``) and tests.  Built with
  ``rope=True`` it uses the *same* rotary position encoding as the inference
  stack (expressed through autograd primitives — see :func:`rope_constants`),
  which makes trained weights directly exportable into
  :class:`TinyTransformerLM`; the default ``rope=False`` keeps the original
  learned-absolute-position variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.attention import CausalSelfAttention, KVCache
from repro.nn.autograd import Tensor
from repro.nn.layers import Embedding, Linear, Module, RMSNorm, SwiGLU
from repro.nn.rope import RotaryEmbedding

__all__ = [
    "TransformerConfig", "TinyTransformerLM", "TrainableTransformerLM",
    "rope_constants",
]


def rope_constants(
    head_dim: int, max_positions: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """RoPE as three constant arrays usable inside the autograd tape.

    :func:`~repro.nn.rope.apply_rope` rotates interleaved pairs:
    ``out[2i] = x[2i] cos_i - x[2i+1] sin_i`` and
    ``out[2i+1] = x[2i] sin_i + x[2i+1] cos_i``.  The same map is expressible
    with ops the tape already differentiates as ``x * C + (x @ P) * S`` where
    ``C``/``S`` are the cos/sin tables expanded to ``[T, head_dim]``
    (each pair's value duplicated) and ``P`` is the signed pair-swap
    permutation ``P[2i+1, 2i] = -1, P[2i, 2i+1] = +1``.  Because ``x @ P``
    only permutes and negates, the arithmetic matches ``apply_rope`` exactly
    — the property the weight exporter relies on.
    """
    table = RotaryEmbedding(head_dim, max_positions=max_positions)
    cos = np.repeat(table.cos, 2, axis=-1)  # [T, head_dim]
    sin = np.repeat(table.sin, 2, axis=-1)
    perm = np.zeros((head_dim, head_dim))
    even = np.arange(0, head_dim, 2)
    perm[even + 1, even] = -1.0
    perm[even, even + 1] = 1.0
    return cos, sin, perm


@dataclass(frozen=True)
class TransformerConfig:
    vocab_size: int = 512
    dim: int = 64
    n_layers: int = 8
    n_heads: int = 4
    n_kv_heads: Optional[int] = None
    intermediate_dim: int = 172
    max_positions: int = 1024

    def __post_init__(self) -> None:
        if self.dim % self.n_heads != 0:
            raise ValueError("dim must be divisible by n_heads")


class _DecoderLayer:
    """Forward-only decoder layer: pre-norm attention + pre-norm SwiGLU."""

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator):
        self.attn_norm = RMSNorm(cfg.dim)
        self.attn = CausalSelfAttention(
            cfg.dim, cfg.n_heads, rng, n_kv_heads=cfg.n_kv_heads,
            max_positions=cfg.max_positions,
        )
        self.ffn_norm = RMSNorm(cfg.dim)
        self.ffn = SwiGLU(cfg.dim, cfg.intermediate_dim, rng)

    def forward(
        self, x: np.ndarray, layer: int, cache: KVCache, positions: np.ndarray
    ) -> np.ndarray:
        x = x + self.attn.forward(self.attn_norm.forward_np(x), layer, cache, positions)
        x = x + self.ffn.forward_np(self.ffn_norm.forward_np(x))
        return x

    def decode_batch(
        self, x: np.ndarray, layer: int, caches: List[KVCache], positions: np.ndarray
    ) -> np.ndarray:
        """Batched decode: ``x`` is ``[B, dim]``, one new token per sequence.

        Norms and the SwiGLU already broadcast over the batch axis; attention
        goes through the stacked-QKV batched path with per-sequence caches.
        """
        x = x + self.attn.decode_batch(self.attn_norm.forward_np(x), layer, caches, positions)
        x = x + self.ffn.forward_np(self.ffn_norm.forward_np(x))
        return x

    def kv_fill(
        self, x: np.ndarray, layer: int, caches: List[KVCache], positions: np.ndarray
    ) -> None:
        """Append this layer's K/V synthesised from exit hidden ``x`` [B, dim].

        The cheap early-exit fill: project the attn-normed hidden through the
        stacked K/V weights and append — no attention or FFN, so skipping the
        layer actually saves its wall-clock cost.
        """
        k, v = self.attn.project_kv(self.attn_norm.forward_np(x), positions)
        for i, cache in enumerate(caches):
            cache.append(layer, k[i][:, None, :], v[i][:, None, :])


class TinyTransformerLM:
    """Inference-only transformer with layer-resolved forward.

    The engines drive it through :meth:`embed`, :meth:`layer_forward` and
    :meth:`lm_head`; a convenience :meth:`forward_all` runs the full depth.
    """

    def __init__(self, cfg: TransformerConfig, seed: int = 0):
        self.cfg = cfg
        rng = np.random.default_rng(seed)
        emb_scale = 1.0 / np.sqrt(cfg.dim)
        self.embedding = rng.normal(0.0, emb_scale, size=(cfg.vocab_size, cfg.dim))
        self.layers: List[_DecoderLayer] = [
            _DecoderLayer(cfg, np.random.default_rng(rng.integers(2**31)))
            for _ in range(cfg.n_layers)
        ]
        self.final_norm = RMSNorm(cfg.dim)
        self.lm_head_weight = rng.normal(0.0, emb_scale, size=(cfg.dim, cfg.vocab_size))

    def new_cache(self, max_tokens: int) -> KVCache:
        head_dim = self.cfg.dim // self.cfg.n_heads
        kv_heads = self.cfg.n_kv_heads or self.cfg.n_heads
        return KVCache(self.cfg.n_layers, kv_heads, head_dim, max_tokens)

    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        return self.embedding[np.asarray(token_ids, dtype=np.int64)]

    def layer_forward(
        self, hidden: np.ndarray, layer: int, cache: KVCache, positions: np.ndarray
    ) -> np.ndarray:
        return self.layers[layer].forward(hidden, layer, cache, positions)

    def layer_decode_batch(
        self,
        hidden: np.ndarray,
        layer: int,
        caches: List[KVCache],
        positions: np.ndarray,
    ) -> np.ndarray:
        """Run one decoder layer over a ``[B, dim]`` decode batch (one new
        token per sequence, each with its own cache and absolute position)."""
        return self.layers[layer].decode_batch(hidden, layer, caches, positions)

    def layer_kv_fill(
        self,
        hidden: np.ndarray,
        layer: int,
        caches: List[KVCache],
        positions: np.ndarray,
    ) -> None:
        """Synthesise layer ``layer``'s K/V from exit hidden ``hidden``
        ([B, dim]) and append to each cache — the cheap early-exit fill."""
        self.layers[layer].kv_fill(hidden, layer, caches, positions)

    def lm_head(self, hidden: np.ndarray) -> np.ndarray:
        return self.final_norm.forward_np(hidden) @ self.lm_head_weight

    def lm_head_slice(self, hidden: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
        cols = self.lm_head_weight[:, np.asarray(token_ids, dtype=np.int64)]
        return self.final_norm.forward_np(hidden) @ cols

    def forward_all(
        self, token_ids: np.ndarray, cache: KVCache, positions: np.ndarray
    ) -> np.ndarray:
        """Run every layer; returns final hidden states ``[T, dim]``."""
        hidden = self.embed(token_ids)
        for layer in range(self.cfg.n_layers):
            hidden = self.layer_forward(hidden, layer, cache, positions)
        return hidden


class _TrainableLayer(Module):
    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator):
        self.cfg = cfg
        dim, heads = cfg.dim, cfg.n_heads
        self.attn_norm = RMSNorm(dim)
        self.wq = Linear(dim, dim, rng, bias=False)
        self.wk = Linear(dim, dim, rng, bias=False)
        self.wv = Linear(dim, dim, rng, bias=False)
        self.wo = Linear(dim, dim, rng, bias=False)
        self.ffn_norm = RMSNorm(dim)
        self.ffn = SwiGLU(dim, cfg.intermediate_dim, rng)
        self.n_heads = heads
        self.head_dim = dim // heads

    def __call__(
        self,
        x: Tensor,
        mask: np.ndarray,
        rope: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
    ) -> Tensor:
        b, t, d = x.shape
        h = self.attn_norm(x)
        q = self.wq(h).reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)
        k = self.wk(h).reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)
        v = self.wv(h).reshape(b, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)
        if rope is not None:
            # Rotary encoding through the tape: constants broadcast over
            # [b, heads, t, head_dim]; see rope_constants for why this matches
            # apply_rope exactly.
            cos, sin, perm = rope
            q = q * cos + (q @ perm) * sin
            k = k * cos + (k @ perm) * sin
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        scores = scores + Tensor(mask)  # additive causal mask (constant)
        attn = scores.softmax(axis=-1)
        ctx = (attn @ v).transpose(0, 2, 1, 3).reshape(b, t, d)
        x = x + self.wo(ctx)
        x = x + self.ffn(self.ffn_norm(x))
        return x


class TrainableTransformerLM(Module):
    """Autograd transformer LM for from-scratch training.

    With ``rope=True`` the stack drops the learned absolute position table
    and rotates Q/K with the inference stack's rotary encoding, so a trained
    model exports weight-for-weight into :class:`TinyTransformerLM` (see
    ``repro.training.export``).  :meth:`forward_hidden` exposes every layer's
    output (with optional per-layer skipping — the LayerSkip dropout hook)
    and :meth:`head` projects any of them through the shared LM head, which
    is what the early-exit loss trains against.
    """

    def __init__(self, cfg: TransformerConfig, seed: int = 0, rope: bool = False):
        self.cfg = cfg
        self.rope = rope
        rng = np.random.default_rng(seed)
        self.token_emb = Embedding(cfg.vocab_size, cfg.dim, rng)
        if rope:
            head_dim = cfg.dim // cfg.n_heads
            if head_dim % 2 != 0:
                raise ValueError(f"rope needs an even head_dim, got {head_dim}")
            if cfg.n_kv_heads not in (None, cfg.n_heads):
                raise ValueError(
                    "the trainable stack has no grouped-query attention; "
                    "rope=True requires n_kv_heads in (None, n_heads)")
            self.pos_emb = None
            self._rope_cos, self._rope_sin, self._rope_perm = rope_constants(
                head_dim, cfg.max_positions)
        else:
            self.pos_emb = Embedding(cfg.max_positions, cfg.dim, rng)
        self.layers = [
            _TrainableLayer(cfg, np.random.default_rng(rng.integers(2**31)))
            for _ in range(cfg.n_layers)
        ]
        self.final_norm = RMSNorm(cfg.dim)
        self.lm_head = Linear(cfg.dim, cfg.vocab_size, rng, bias=False)

    def forward_hidden(
        self,
        token_ids: np.ndarray,
        layer_keep: Optional[Sequence[bool]] = None,
    ) -> List[Tensor]:
        """Hidden state after every decoder layer for ``token_ids`` [B, T].

        ``layer_keep[l] = False`` skips layer ``l`` entirely (the residual
        stream passes through unchanged) — the stochastic depth hook the
        LayerSkip recipe drives.  Entry ``l`` of the returned list is the
        residual stream after layer ``l`` (a skipped layer repeats its
        input), so ``head(hiddens[l])`` is the layer-``l`` early-exit logits.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        b, t = token_ids.shape
        if t > self.cfg.max_positions:
            raise ValueError(f"sequence length {t} exceeds {self.cfg.max_positions}")
        if layer_keep is not None and len(layer_keep) != len(self.layers):
            raise ValueError(
                f"layer_keep has {len(layer_keep)} entries for "
                f"{len(self.layers)} layers")
        x = self.token_emb(token_ids)
        if self.pos_emb is not None:
            x = x + self.pos_emb(np.arange(t))
        mask = np.triu(np.full((t, t), -1e9), k=1)
        rope = (None if not self.rope else
                (self._rope_cos[:t], self._rope_sin[:t], self._rope_perm))
        hiddens: List[Tensor] = []
        for i, layer in enumerate(self.layers):
            if layer_keep is None or layer_keep[i]:
                x = layer(x, mask, rope)
            hiddens.append(x)
        return hiddens

    def head(self, hidden: Tensor) -> Tensor:
        """Shared LM head: final norm + output projection of any layer's
        hidden state — final logits and early-exit logits alike."""
        return self.lm_head(self.final_norm(hidden))

    def __call__(self, token_ids: np.ndarray) -> Tensor:
        """``token_ids`` [B, T] -> logits Tensor [B, T, V]."""
        return self.head(self.forward_hidden(token_ids)[-1])
