"""Causal multi-head self-attention with a contiguous KV cache (inference path)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.rope import RotaryEmbedding, apply_rope
from repro.utils.mathx import softmax

__all__ = ["KVCache", "CausalSelfAttention"]


class KVCache:
    """Per-layer key/value cache with preallocated contiguous storage.

    Shapes: keys/values are ``[n_kv_heads, T, head_dim]`` per layer.  The cache
    supports appending one or more steps at a time and exposes read-only views
    of the filled prefix, mirroring how inference engines grow the cache one
    token per decode step.
    """

    def __init__(self, n_layers: int, n_kv_heads: int, head_dim: int, max_tokens: int):
        if max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        self.n_layers = n_layers
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.max_tokens = max_tokens
        self._k = np.zeros((n_layers, n_kv_heads, max_tokens, head_dim))
        self._v = np.zeros((n_layers, n_kv_heads, max_tokens, head_dim))
        self._lengths = np.zeros(n_layers, dtype=np.int64)

    def length(self, layer: int) -> int:
        return int(self._lengths[layer])

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``[n_kv_heads, t, head_dim]`` keys/values for ``layer``."""
        t = k.shape[1]
        start = self.length(layer)
        if start + t > self.max_tokens:
            raise ValueError(
                f"KV cache overflow at layer {layer}: {start}+{t} > {self.max_tokens}"
            )
        self._k[layer, :, start : start + t] = k
        self._v[layer, :, start : start + t] = v
        self._lengths[layer] = start + t

    def view(self, layer: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read-only views of the filled prefix for ``layer``."""
        n = self.length(layer)
        return self._k[layer, :, :n], self._v[layer, :, :n]

    def truncate(self, layer: int, length: int) -> None:
        """Roll back ``layer`` to ``length`` tokens (speculative rejection)."""
        if not 0 <= length <= self.length(layer):
            raise ValueError(f"cannot truncate layer {layer} to {length}")
        self._lengths[layer] = length

    def truncate_all(self, length: int) -> None:
        for layer in range(self.n_layers):
            self.truncate(layer, min(length, self.length(layer)))

    def nbytes(self) -> int:
        return self._k.nbytes + self._v.nbytes


class CausalSelfAttention:
    """Numpy causal MHA with RoPE and grouped-query attention support."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng: np.random.Generator,
        n_kv_heads: Optional[int] = None,
        max_positions: int = 4096,
    ):
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.n_kv_heads = n_kv_heads if n_kv_heads is not None else n_heads
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be a multiple of n_kv_heads")
        self.head_dim = dim // n_heads
        self.group = self.n_heads // self.n_kv_heads
        scale = 1.0 / np.sqrt(dim)
        self.wq = rng.normal(0.0, scale, size=(dim, n_heads * self.head_dim))
        self.wk = rng.normal(0.0, scale, size=(dim, self.n_kv_heads * self.head_dim))
        self.wv = rng.normal(0.0, scale, size=(dim, self.n_kv_heads * self.head_dim))
        self.wo = rng.normal(0.0, scale, size=(n_heads * self.head_dim, dim))
        self.rope = RotaryEmbedding(self.head_dim, max_positions=max_positions)

    def forward(
        self,
        x: np.ndarray,
        layer: int,
        cache: KVCache,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Attend ``x`` ([T, dim]) at absolute ``positions``, appending to cache.

        Causality within the new block is enforced with an explicit mask; the
        cached prefix is fully visible (it precedes every new position).
        """
        t = x.shape[0]
        prefix_len = cache.length(layer)
        cos, sin = self.rope.tables_for(positions)

        q = (x @ self.wq).reshape(t, self.n_heads, self.head_dim).transpose(1, 0, 2)
        k = (x @ self.wk).reshape(t, self.n_kv_heads, self.head_dim).transpose(1, 0, 2)
        v = (x @ self.wv).reshape(t, self.n_kv_heads, self.head_dim).transpose(1, 0, 2)
        q = apply_rope(q, cos, sin)
        k = apply_rope(k, cos, sin)

        cache.append(layer, k, v)
        keys, values = cache.view(layer)  # [n_kv_heads, prefix+t, head_dim]
        total = keys.shape[1]

        # Expand KV heads to query heads for grouped-query attention.
        keys_q = np.repeat(keys, self.group, axis=0)
        values_q = np.repeat(values, self.group, axis=0)

        scores = q @ keys_q.transpose(0, 2, 1) / np.sqrt(self.head_dim)  # [H, t, total]
        # Row i (new position prefix_len + i) may attend to keys [0 .. prefix+i].
        key_idx = np.arange(total)[None, :]
        query_idx = (prefix_len + np.arange(t))[:, None]
        scores = np.where(key_idx <= query_idx, scores, -np.inf)

        attn = softmax(scores, axis=-1)
        ctx = attn @ values_q  # [H, t, head_dim]
        ctx = ctx.transpose(1, 0, 2).reshape(t, self.n_heads * self.head_dim)
        return ctx @ self.wo
