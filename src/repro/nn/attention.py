"""Causal multi-head self-attention with a contiguous KV cache (inference path)."""

from __future__ import annotations

import zlib
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import KVCorruptionError
from repro.nn.rope import RotaryEmbedding, apply_rope
from repro.utils.mathx import softmax

__all__ = ["KVCache", "CausalSelfAttention"]


class KVCache:
    """Per-layer key/value cache with geometrically grown contiguous storage.

    Shapes: keys/values are ``[n_kv_heads, T, head_dim]`` per layer.  The cache
    supports appending one or more steps at a time and exposes read-only views
    of the filled prefix, mirroring how inference engines grow the cache one
    token per decode step.  Storage starts at ``initial_tokens`` capacity and
    doubles on demand up to ``max_tokens`` — appends stay amortised O(1)
    without paying the full ``max_tokens`` allocation for short sequences.
    """

    def __init__(
        self,
        n_layers: int,
        n_kv_heads: int,
        head_dim: int,
        max_tokens: int,
        initial_tokens: int = 64,
    ):
        if max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        if initial_tokens <= 0:
            raise ValueError("initial_tokens must be positive")
        self.n_layers = n_layers
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.max_tokens = max_tokens
        self._initial = min(max_tokens, initial_tokens)
        self._capacity = self._initial
        self._k = np.zeros((n_layers, n_kv_heads, self._capacity, head_dim))
        self._v = np.zeros((n_layers, n_kv_heads, self._capacity, head_dim))
        self._lengths = np.zeros(n_layers, dtype=np.int64)

    @property
    def capacity(self) -> int:
        """Tokens the current allocation can hold before the next growth."""
        return self._capacity

    def length(self, layer: int) -> int:
        return int(self._lengths[layer])

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        capacity = min(capacity, self.max_tokens)
        grown_k = np.zeros((self.n_layers, self.n_kv_heads, capacity, self.head_dim))
        grown_v = np.zeros_like(grown_k)
        grown_k[:, :, : self._capacity] = self._k
        grown_v[:, :, : self._capacity] = self._v
        self._k, self._v, self._capacity = grown_k, grown_v, capacity

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``[n_kv_heads, t, head_dim]`` keys/values for ``layer``."""
        t = k.shape[1]
        start = self.length(layer)
        if start + t > self.max_tokens:
            raise ValueError(
                f"KV cache overflow at layer {layer}: {start}+{t} > {self.max_tokens}"
            )
        self._ensure_capacity(start + t)
        self._k[layer, :, start : start + t] = k
        self._v[layer, :, start : start + t] = v
        self._lengths[layer] = start + t

    def view(self, layer: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read-only views of the filled prefix for ``layer``."""
        n = self.length(layer)
        return self._k[layer, :, :n], self._v[layer, :, :n]

    def truncate(self, layer: int, length: int) -> None:
        """Roll back ``layer`` to ``length`` tokens (speculative rejection)."""
        if not 0 <= length <= self.length(layer):
            raise ValueError(f"cannot truncate layer {layer} to {length}")
        self._lengths[layer] = length

    def truncate_all(self, length: int) -> None:
        for layer in range(self.n_layers):
            self.truncate(layer, min(length, self.length(layer)))

    def nbytes(self) -> int:
        return self._k.nbytes + self._v.nbytes

    def swap_out(self) -> dict:
        """Evict the filled KV prefix to a host-side blob (bit-exact copies).

        Device storage shrinks back to the initial allocation; the returned
        blob carries everything :meth:`swap_in` needs to restore the cache
        exactly.  This is the real-tensor counterpart of the serving engine's
        modelled ``KV_SWAP`` transfer.
        """
        n = int(self._lengths.max()) if self.n_layers else 0
        blob = {
            "k": self._k[:, :, :n].copy(),
            "v": self._v[:, :, :n].copy(),
            "lengths": self._lengths.copy(),
        }
        blob["crc"] = self._blob_checksum(blob)
        self._capacity = self._initial
        self._k = np.zeros((self.n_layers, self.n_kv_heads, self._capacity, self.head_dim))
        self._v = np.zeros_like(self._k)
        self._lengths = np.zeros(self.n_layers, dtype=np.int64)
        return blob

    @staticmethod
    def _blob_checksum(blob: dict) -> int:
        """CRC32 over a swap blob's tensors and lengths."""
        crc = zlib.crc32(np.ascontiguousarray(blob["k"]).tobytes())
        crc = zlib.crc32(np.ascontiguousarray(blob["v"]).tobytes(), crc)
        return zlib.crc32(np.ascontiguousarray(blob["lengths"]).tobytes(), crc)

    def swap_in(self, blob: dict) -> None:
        """Restore a prefix previously evicted by :meth:`swap_out`.

        Blobs stamped by :meth:`swap_out` are verified against their CRC32
        checksum first; a mismatch raises
        :class:`~repro.errors.KVCorruptionError` before any cache mutation,
        so the caller can fall back to a recompute-from-context resume."""
        if "crc" in blob and self._blob_checksum(blob) != blob["crc"]:
            raise KVCorruptionError(
                "KV swap blob failed its checksum "
                f"(stamped {blob['crc']:#010x}); refusing to restore")
        lengths = np.asarray(blob["lengths"], dtype=np.int64)
        n = int(lengths.max()) if lengths.size else 0
        self._ensure_capacity(max(n, 1))
        self._k[:, :, :n] = blob["k"]
        self._v[:, :, :n] = blob["v"]
        self._lengths = lengths.copy()


class CausalSelfAttention:
    """Numpy causal MHA with RoPE and grouped-query attention support."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng: np.random.Generator,
        n_kv_heads: Optional[int] = None,
        max_positions: int = 4096,
    ):
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.n_kv_heads = n_kv_heads if n_kv_heads is not None else n_heads
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be a multiple of n_kv_heads")
        self.head_dim = dim // n_heads
        self.group = self.n_heads // self.n_kv_heads
        scale = 1.0 / np.sqrt(dim)
        self.wq = rng.normal(0.0, scale, size=(dim, n_heads * self.head_dim))
        self.wk = rng.normal(0.0, scale, size=(dim, self.n_kv_heads * self.head_dim))
        self.wv = rng.normal(0.0, scale, size=(dim, self.n_kv_heads * self.head_dim))
        self.wo = rng.normal(0.0, scale, size=(n_heads * self.head_dim, dim))
        self.rope = RotaryEmbedding(self.head_dim, max_positions=max_positions)
        # Stacked inference layouts: one GEMM yields Q, K and V (or just K
        # and V for the early-exit fill) for a whole decode batch.  Cached
        # C-contiguous so the hot path never re-concatenates or transposes.
        self.refresh_stacked_weights()

    def refresh_stacked_weights(self) -> None:
        """Rebuild the cached contiguous stacked projections.

        Must be called whenever ``wq``/``wk``/``wv`` are replaced wholesale —
        the weight exporter (``repro.training.export``) copies trained
        matrices in and then refreshes these caches.
        """
        self.wqkv = np.ascontiguousarray(np.concatenate([self.wq, self.wk, self.wv], axis=1))
        self.wkv = np.ascontiguousarray(np.concatenate([self.wk, self.wv], axis=1))

    def project_kv(
        self, x: np.ndarray, positions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """K/V rows for ``x`` ([B, dim], already attn-normed) at ``positions``.

        The cheap early-exit KV fill: one ``[B, dim] x [dim, 2*kv_dim]`` GEMM
        plus the key rotation — no attention, no output projection, no FFN.
        Returns ``(k, v)`` each shaped ``[B, n_kv_heads, head_dim]``.
        """
        b = x.shape[0]
        kv_dim = self.n_kv_heads * self.head_dim
        kv = x @ self.wkv
        k = kv[:, :kv_dim].reshape(b, self.n_kv_heads, self.head_dim)
        v = kv[:, kv_dim:].reshape(b, self.n_kv_heads, self.head_dim)
        cos, sin = self.rope.tables_for(positions)
        k = apply_rope(k, cos[:, None, :], sin[:, None, :])
        return k, v

    def forward(
        self,
        x: np.ndarray,
        layer: int,
        cache: KVCache,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Attend ``x`` ([T, dim]) at absolute ``positions``, appending to cache.

        Causality within the new block is enforced with an explicit mask; the
        cached prefix is fully visible (it precedes every new position).
        """
        t = x.shape[0]
        prefix_len = cache.length(layer)
        cos, sin = self.rope.tables_for(positions)

        q = (x @ self.wq).reshape(t, self.n_heads, self.head_dim).transpose(1, 0, 2)
        k = (x @ self.wk).reshape(t, self.n_kv_heads, self.head_dim).transpose(1, 0, 2)
        v = (x @ self.wv).reshape(t, self.n_kv_heads, self.head_dim).transpose(1, 0, 2)
        q = apply_rope(q, cos, sin)
        k = apply_rope(k, cos, sin)

        cache.append(layer, k, v)
        keys, values = cache.view(layer)  # [n_kv_heads, prefix+t, head_dim]
        total = keys.shape[1]

        # Expand KV heads to query heads for grouped-query attention.
        keys_q = np.repeat(keys, self.group, axis=0)
        values_q = np.repeat(values, self.group, axis=0)

        scores = q @ keys_q.transpose(0, 2, 1) / np.sqrt(self.head_dim)  # [H, t, total]
        # Row i (new position prefix_len + i) may attend to keys [0 .. prefix+i].
        key_idx = np.arange(total)[None, :]
        query_idx = (prefix_len + np.arange(t))[:, None]
        scores = np.where(key_idx <= query_idx, scores, -np.inf)

        attn = softmax(scores, axis=-1)
        ctx = attn @ values_q  # [H, t, head_dim]
        ctx = ctx.transpose(1, 0, 2).reshape(t, self.n_heads * self.head_dim)
        return ctx @ self.wo

    def decode_batch(
        self,
        x: np.ndarray,
        layer: int,
        caches: Sequence[KVCache],
        positions: np.ndarray,
    ) -> np.ndarray:
        """Batched single-token decode: one new token per sequence.

        ``x`` is ``[B, dim]`` (row ``i`` is sequence ``i``'s current
        activation), ``caches[i]`` its KV cache and ``positions[i]`` its
        absolute position.  The QKV projection and the output projection are
        one stacked GEMM each across the batch; attention itself is a
        mask-free gather over each sequence's filled cache view (a single
        query at the newest position sees the whole prefix, so no causal mask
        is needed).  Sequences whose caches have the same filled length —
        the common case, since every live sequence grows one token per tick —
        are stacked and attended in one batched matmul; odd lengths fall back
        to a per-sequence gather.  Appends this step's K/V to every cache.
        """
        b = x.shape[0]
        q_dim = self.n_heads * self.head_dim
        kv_dim = self.n_kv_heads * self.head_dim
        qkv = x @ self.wqkv  # [B, q_dim + 2*kv_dim], one GEMM for the batch
        q = qkv[:, :q_dim].reshape(b, self.n_heads, self.head_dim)
        k = qkv[:, q_dim : q_dim + kv_dim].reshape(b, self.n_kv_heads, self.head_dim)
        v = qkv[:, q_dim + kv_dim :].reshape(b, self.n_kv_heads, self.head_dim)
        cos, sin = self.rope.tables_for(positions)  # [B, head_dim/2]
        q = apply_rope(q, cos[:, None, :], sin[:, None, :])
        k = apply_rope(k, cos[:, None, :], sin[:, None, :])

        groups: dict = {}
        for i, cache in enumerate(caches):
            cache.append(layer, k[i][:, None, :], v[i][:, None, :])
            groups.setdefault(cache.length(layer), []).append(i)

        sqrt_hd = np.sqrt(self.head_dim)
        ctx = np.empty((b, self.n_heads * self.head_dim))
        for total, idx in groups.items():
            if len(idx) == 1:
                i = idx[0]
                keys, values = caches[i].view(layer)  # [n_kv_heads, T, head_dim]
                # Grouped-query layout: query head h reads KV head h // group.
                qi = q[i].reshape(self.n_kv_heads, self.group, self.head_dim)
                scores = qi @ keys.transpose(0, 2, 1) / sqrt_hd
                attn = softmax(scores, axis=-1)
                ctx[i] = (attn @ values).reshape(-1)
                continue
            keys = np.stack([caches[i].view(layer)[0] for i in idx])
            values = np.stack([caches[i].view(layer)[1] for i in idx])
            qg = q[idx].reshape(len(idx), self.n_kv_heads, self.group, self.head_dim)
            scores = qg @ keys.transpose(0, 1, 3, 2) / sqrt_hd  # [n, KV, group, T]
            attn = softmax(scores, axis=-1)
            ctx[idx] = (attn @ values).reshape(len(idx), -1)
        return ctx @ self.wo
