"""Fast inference MLP with a manual-gradient trainer.

This is the numpy stand-in for SpecEE's GPU predictor kernel: a small
fully-connected network (ReLU hidden layers, sigmoid output) whose forward
pass is a handful of GEMVs — exactly the workload the paper maps onto Tensor
Cores.  Training uses hand-derived gradients with Adam, which is faster and
simpler than dragging the autograd tape through millions of tiny samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.utils.mathx import sigmoid

__all__ = ["MLPClassifier", "TrainReport"]


@dataclass
class TrainReport:
    """Loss/accuracy trajectory of one training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracy: float = 0.0
    epochs: int = 0
    n_samples: int = 0


class MLPClassifier:
    """Binary MLP classifier: ``in_dim -> hidden*(depth-1) -> 1`` with sigmoid.

    ``depth`` counts weight matrices, matching the paper's terminology ("a
    2-layer MLP with hidden dimension 512").  ``depth=1`` degenerates to
    logistic regression.
    """

    def __init__(self, in_dim: int, hidden_dim: int = 512, depth: int = 2, seed: int = 0):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.depth = depth
        rng = np.random.default_rng(seed)
        dims = [in_dim] + [hidden_dim] * (depth - 1) + [1]
        self.weights = [
            rng.normal(0.0, np.sqrt(2.0 / dims[i]), size=(dims[i], dims[i + 1]))
            for i in range(depth)
        ]
        self.biases = [np.zeros(dims[i + 1]) for i in range(depth)]
        # Feature standardization fitted at train time.
        self._mu = np.zeros(in_dim)
        self._sigma = np.ones(in_dim)

    # -- inference -------------------------------------------------------
    @property
    def n_params(self) -> int:
        return sum(w.size for w in self.weights) + sum(b.size for b in self.biases)

    def _standardize(self, x: np.ndarray) -> np.ndarray:
        return (x - self._mu) / self._sigma

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class for ``x`` [N, in_dim] or [in_dim]."""
        single = x.ndim == 1
        h = np.atleast_2d(np.asarray(x, dtype=np.float64))
        h = self._standardize(h)
        for i in range(self.depth - 1):
            h = np.maximum(h @ self.weights[i] + self.biases[i], 0.0)
        logits = (h @ self.weights[-1] + self.biases[-1])[:, 0]
        probs = sigmoid(logits)
        return float(probs[0]) if single else probs

    __call__ = forward

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return np.asarray(self.forward(x)) >= threshold

    # -- training ----------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 30,
        batch_size: int = 256,
        lr: float = 1e-3,
        weight_decay: float = 1e-5,
        seed: int = 0,
        class_balance: bool = True,
    ) -> TrainReport:
        """Train with Adam on binary cross-entropy.

        ``class_balance`` reweights the minority class, which matters because
        exit events are rare at shallow layers and common at deep ones.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError(f"bad training shapes x={x.shape} y={y.shape}")
        if x.shape[0] == 0:
            raise ValueError("empty training set")

        self._mu = x.mean(axis=0)
        self._sigma = np.maximum(x.std(axis=0), 1e-8)

        pos = max(float(y.sum()), 1.0)
        neg = max(float((1 - y).sum()), 1.0)
        if class_balance:
            w_pos, w_neg = (pos + neg) / (2 * pos), (pos + neg) / (2 * neg)
        else:
            w_pos = w_neg = 1.0

        rng = np.random.default_rng(seed)
        m = [np.zeros_like(w) for w in self.weights] + [np.zeros_like(b) for b in self.biases]
        v = [np.zeros_like(w) for w in self.weights] + [np.zeros_like(b) for b in self.biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        report = TrainReport(n_samples=x.shape[0], epochs=epochs)

        n = x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb = self._standardize(x[idx])
                yb = y[idx]
                sw = np.where(yb > 0.5, w_pos, w_neg)

                # Forward, caching activations.
                acts = [xb]
                h = xb
                for i in range(self.depth - 1):
                    h = np.maximum(h @ self.weights[i] + self.biases[i], 0.0)
                    acts.append(h)
                logits = (h @ self.weights[-1] + self.biases[-1])[:, 0]
                probs = sigmoid(logits)
                probs = np.clip(probs, 1e-12, 1 - 1e-12)
                loss = -np.mean(sw * (yb * np.log(probs) + (1 - yb) * np.log(1 - probs)))
                epoch_loss += float(loss) * len(idx)

                # Backward (manual gradients).
                grad_logits = (sw * (probs - yb) / len(idx))[:, None]
                grads_w: List[np.ndarray] = [np.empty(0)] * self.depth
                grads_b: List[np.ndarray] = [np.empty(0)] * self.depth
                grads_w[-1] = acts[-1].T @ grad_logits + weight_decay * self.weights[-1]
                grads_b[-1] = grad_logits.sum(axis=0)
                grad_h = grad_logits @ self.weights[-1].T
                for i in range(self.depth - 2, -1, -1):
                    grad_h = grad_h * (acts[i + 1] > 0)
                    grads_w[i] = acts[i].T @ grad_h + weight_decay * self.weights[i]
                    grads_b[i] = grad_h.sum(axis=0)
                    if i > 0:
                        grad_h = grad_h @ self.weights[i].T

                # Adam update.
                step += 1
                params = self.weights + self.biases
                grads = grads_w + grads_b
                for j, (p, g) in enumerate(zip(params, grads)):
                    m[j] = beta1 * m[j] + (1 - beta1) * g
                    v[j] = beta2 * v[j] + (1 - beta2) * g * g
                    m_hat = m[j] / (1 - beta1**step)
                    v_hat = v[j] / (1 - beta2**step)
                    p -= lr * m_hat / (np.sqrt(v_hat) + eps)
            report.losses.append(epoch_loss / n)

        report.train_accuracy = float(np.mean(self.predict(x) == (y > 0.5)))
        return report

    # -- serialization -------------------------------------------------------
    def state_dict(self) -> dict:
        state = {"in_dim": self.in_dim, "hidden_dim": self.hidden_dim, "depth": self.depth,
                 "mu": self._mu, "sigma": self._sigma}
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            state[f"w{i}"] = w
            state[f"b{i}"] = b
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "MLPClassifier":
        model = cls(int(state["in_dim"]), int(state["hidden_dim"]), int(state["depth"]))
        model._mu = np.asarray(state["mu"], dtype=np.float64)
        model._sigma = np.asarray(state["sigma"], dtype=np.float64)
        model.weights = [np.asarray(state[f"w{i}"], dtype=np.float64) for i in range(model.depth)]
        model.biases = [np.asarray(state[f"b{i}"], dtype=np.float64) for i in range(model.depth)]
        return model
