"""Optimizers for autograd parameters (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.autograd import Tensor

__all__ = ["SGD", "Adam"]


class _Optimizer:
    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                vel *= self.momentum
                vel += p.grad
                p.data -= self.lr * vel
            else:
                p.data -= self.lr * p.grad


class Adam(_Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._step = 0

    def step(self) -> None:
        self._step += 1
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1**self._step)
            v_hat = v / (1 - self.beta2**self._step)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
