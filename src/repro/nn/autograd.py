"""Minimal reverse-mode automatic differentiation over numpy arrays.

Just enough machinery to train the tiny transformer LM and the reference
predictor: broadcast-aware elementwise ops, matmul, reductions, a handful of
activations, embedding lookup and a composed cross-entropy.  The design
follows the classic tape-based pattern: each :class:`Tensor` remembers its
parents and a closure that scatters its gradient back to them; ``backward``
runs the closures in reverse topological order.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Tensor", "no_grad", "cross_entropy"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None

    # -- construction helpers ------------------------------------------------
    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = cls(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # -- shape ---------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._from_op(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._from_op(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._wrap(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._wrap(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported")
        exponent = float(exponent)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * np.power(self.data, exponent - 1.0))

        return Tensor._from_op(np.power(self.data, exponent), (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._from_op(self.data @ other.data, (self, other), backward)

    # -- activations ---------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._from_op(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.abs(self.data))),
            np.exp(-np.abs(self.data)) / (1.0 + np.exp(-np.abs(self.data))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    def silu(self) -> "Tensor":
        """x * sigmoid(x) — the SwiGLU gate activation."""
        sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))
        out_data = self.data * sig

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (sig + self.data * sig * (1.0 - sig)))

        return Tensor._from_op(out_data, (self,), backward)

    # -- reductions / reshaping ----------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._from_op(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._from_op(self.data.reshape(*shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        order = axes or tuple(reversed(range(self.ndim)))
        inverse = np.argsort(order)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._from_op(self.data.transpose(order), (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row gather (embedding lookup): out[i] = self[indices[i]]."""
        indices = np.asarray(indices, dtype=np.int64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = np.zeros_like(self.data)
                np.add.at(g, indices.reshape(-1), grad.reshape(-1, self.shape[-1]))
                self._accumulate(g)

        return Tensor._from_op(self.data[indices], (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax built from primitive ops."""
        shift = Tensor(np.max(self.data, axis=axis, keepdims=True))
        exps = (self - shift).exp()
        return exps / exps.sum(axis=axis, keepdims=True)

    # -- backward ------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (must be scalar unless grad given)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen or not node.requires_grad:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def item(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of ``logits`` [N, V] against integer ``targets`` [N].

    Composed from primitive ops (the max-shift is a constant, which is exact
    since subtracting a constant does not change the softmax).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected [N, V] logits, got shape {logits.shape}")
    n, v = logits.shape
    shift = Tensor(np.max(logits.data, axis=-1, keepdims=True))
    shifted = logits - shift
    log_z = shifted.exp().sum(axis=-1, keepdims=True).log()
    log_probs = shifted - log_z
    onehot = np.zeros((n, v))
    onehot[np.arange(n), targets] = 1.0
    picked = (log_probs * Tensor(onehot)).sum(axis=-1)
    return -picked.mean()


def parameters_of(items: Iterable[object]) -> List[Tensor]:
    """Collect unique trainable tensors from a nested iterable of modules."""
    params: List[Tensor] = []
    seen = set()
    for item in items:
        tensors = item.parameters() if hasattr(item, "parameters") else [item]
        for t in tensors:
            if isinstance(t, Tensor) and t.requires_grad and id(t) not in seen:
                seen.add(id(t))
                params.append(t)
    return params
