"""Evaluation metrics shared by the experiments."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.utils.mathx import geometric_mean

__all__ = [
    "accuracy_percent",
    "perplexity_from_logprobs",
    "normalized_layers",
    "geomean_speedup",
    "answer_matches",
]


def answer_matches(emitted: Sequence[int], gold: Sequence[int], answer_start: int) -> bool:
    """Whether the emitted answer tokens match the gold answer exactly."""
    window = emitted[answer_start : answer_start + len(gold)]
    return len(window) == len(gold) and all(int(a) == int(b) for a, b in zip(window, gold))


def accuracy_percent(outcomes: Iterable[bool]) -> float:
    values = [bool(v) for v in outcomes]
    if not values:
        return float("nan")
    return 100.0 * float(np.mean(values))


def perplexity_from_logprobs(logprobs: Sequence[float]) -> float:
    if not len(logprobs):
        return float("nan")
    return float(np.exp(-np.mean(np.asarray(logprobs, dtype=np.float64))))


def normalized_layers(theoretical_avg: float, actual_avg: float) -> float:
    """Fig. 7's closeness metric: theoretical over actual average forward
    layers (100% = the engine exits exactly at the earliest possible depth)."""
    if actual_avg <= 0:
        return float("nan")
    return 100.0 * theoretical_avg / actual_avg


def geomean_speedup(speedups: Sequence[float]) -> float:
    return geometric_mean(speedups)
