"""Experiment result container and rendering.

Every experiment module returns an :class:`ExperimentResult`: named tables
(rows the paper prints) and named series (figure curves), plus free-form
headline metrics.  ``render()`` produces the text report the benchmarks tee
into ``bench_output.txt``; ``metric()`` gives tests and EXPERIMENTS.md a
stable way to read headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.utils.tables import render_series, render_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Structured output of one paper-artifact experiment."""

    experiment: str
    title: str
    headline: Dict[str, float] = field(default_factory=dict)
    tables: List[Dict] = field(default_factory=list)
    series: List[Dict] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_table(self, name: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
        self.tables.append({"name": name, "headers": list(headers),
                            "rows": [list(r) for r in rows]})

    def add_series(self, name: str, x_label: str, x_values: Sequence,
                   series: Mapping[str, Sequence[float]]) -> None:
        self.series.append({"name": name, "x_label": x_label,
                            "x_values": list(x_values),
                            "series": {k: list(v) for k, v in series.items()}})

    def metric(self, key: str) -> float:
        try:
            return self.headline[key]
        except KeyError:
            known = ", ".join(sorted(self.headline))
            raise KeyError(f"no metric {key!r} in {self.experiment}; known: {known}") from None

    def render(self) -> str:
        lines = [f"==== {self.experiment}: {self.title} ===="]
        if self.headline:
            lines.append("headline: " + ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(self.headline.items())
            ))
        for table in self.tables:
            lines.append("")
            lines.append(render_table(table["headers"], table["rows"], title=table["name"]))
        for s in self.series:
            lines.append("")
            lines.append(render_series(s["series"], s["x_label"], s["x_values"], title=s["name"]))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
