"""Evaluation harness: rig construction, dataset runs, metrics, reporting."""

from repro.eval.harness import (
    EvalRun,
    Rig,
    build_rig,
    make_model,
    run_classification,
    run_generation,
    run_items,
)
from repro.eval.metrics import accuracy_percent, geomean_speedup, normalized_layers
from repro.eval.reporting import ExperimentResult
from repro.eval.speedup import priced_run, speedup_table

__all__ = [
    "EvalRun",
    "ExperimentResult",
    "Rig",
    "accuracy_percent",
    "build_rig",
    "geomean_speedup",
    "make_model",
    "normalized_layers",
    "priced_run",
    "run_classification",
    "run_generation",
    "run_items",
    "speedup_table",
]
