"""Rig construction and dataset runs.

A :class:`Rig` bundles everything needed to evaluate one (model, dataset,
flavor) combination: the synthetic model with dataset-adjusted profile, the
draft speculator, a trained predictor bank and the offline exit-frequency
profile.  Banks and offline profiles depend only on (model, flavor,
predictor size), so they are trained once per process and cached — mirroring
the paper, which trains predictors once on MT-Bench traces and reuses them
everywhere (Sec. 7.4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SimDims, SpecEEConfig
from repro.core.engine import GenerationResult, SpecEEEngine
from repro.core.predictor import PredictorBank
from repro.core.predictor_training import harvest_training_corpus, train_predictor_bank
from repro.core.scheduling import OfflineScheduler, make_scheduler, profile_exit_frequencies
from repro.data.corpus import generate_prompts
from repro.data.datasets import DatasetItem, DatasetSpec
from repro.eval.metrics import accuracy_percent, answer_matches, perplexity_from_logprobs
from repro.hardware.ledger import CostLedger
from repro.model.base import LayeredLM
from repro.model.draft import Speculator
from repro.model.profiles import get_profile
from repro.model.synthetic import SyntheticLayeredLM

__all__ = [
    "Rig", "EvalRun", "build_rig", "build_trained_transformer_rig",
    "build_transformer_rig", "make_model", "run_items", "run_classification",
    "run_generation", "trained_assets",
]

_DEFAULT_SIM = SimDims()

# (model, flavor, hidden, depth, seed) -> (bank, offline frequencies)
_ASSET_CACHE: Dict[Tuple, Tuple[PredictorBank, np.ndarray]] = {}


def make_model(
    model_name: str,
    dataset: Optional[DatasetSpec] = None,
    flavor: str = "dense",
    sim: SimDims = _DEFAULT_SIM,
    seed: int = 0,
) -> SyntheticLayeredLM:
    """Synthetic model with (dataset-adjusted) semantic profile.

    The ``awq`` flavor shares the language and dynamics of the dense model —
    quantisation's accuracy/perplexity effects enter through the calibrated
    dataset scripts and references, its speed effect through the hardware
    framework profile.
    """
    profile = get_profile(model_name)
    if dataset is not None:
        profile = dataset.apply_to_profile(profile)
    return SyntheticLayeredLM(profile, sim, seed=seed)


def trained_assets(
    model_name: str,
    flavor: str = "dense",
    sim: SimDims = _DEFAULT_SIM,
    seed: int = 0,
    predictor_hidden: int = 512,
    predictor_depth: int = 2,
    train_prompts: int = 10,
    train_tokens: int = 40,
    epochs: int = 15,
) -> Tuple[PredictorBank, np.ndarray]:
    """Train (or fetch cached) predictor bank + offline exit frequencies."""
    key = (model_name, flavor, sim, seed, predictor_hidden, predictor_depth,
           train_prompts, train_tokens, epochs)
    if key in _ASSET_CACHE:
        return _ASSET_CACHE[key]
    model = make_model(model_name, None, flavor, sim, seed)
    speculator = Speculator(model.oracle, k=4, hit_rate=model.profile.draft_hit_rate)
    prompts = generate_prompts(train_prompts, model.vocab_size, seed=seed + 11)
    corpus = harvest_training_corpus(model, speculator, prompts, tokens_per_prompt=train_tokens)
    bank = PredictorBank(model.n_layers, feature_dim=12, hidden_dim=predictor_hidden,
                         depth=predictor_depth, seed=seed)
    train_predictor_bank(bank, corpus, epochs=epochs, seed=seed)
    # Offline profiling pass: SpecEE with all predictors active.
    profiling = SpecEEEngine(
        make_model(model_name, None, flavor, sim, seed), speculator, bank,
        SpecEEConfig(), scheduler=make_scheduler("all", model.n_layers),
    )
    exits: List[int] = []
    for prompt in generate_prompts(4, model.vocab_size, seed=seed + 23):
        run = profiling.generate(prompt, 60)
        exits.extend(l for l, r in zip(run.exit_layers, run.records) if r.early_exit)
    freqs = profile_exit_frequencies(exits, model.n_layers)
    _ASSET_CACHE[key] = (bank, freqs)
    return bank, freqs


@dataclass
class Rig:
    """Everything needed to evaluate one (model, dataset, flavor) combo.

    ``model`` is usually the synthetic substrate; :func:`build_transformer_rig`
    builds the same bundle over the real numpy transformer backend, supplying
    ``model_factory`` so :meth:`fresh_model` still works.
    """

    model_name: str
    flavor: str
    model: "LayeredLM"
    speculator: Speculator
    bank: PredictorBank
    offline_freqs: np.ndarray
    sim: SimDims = _DEFAULT_SIM
    seed: int = 0
    model_factory: Optional[Callable[[], "LayeredLM"]] = None
    #: Model-spec name used to price ledgers when ``model_name`` is not a
    #: catalogued spec (the real transformer rig is "tiny-transformer" but
    #: its runs are priced as this spec, e.g. "llama2-7b").
    priced_as: Optional[str] = None
    #: Free-form provenance (training report numbers, draft statistics, …);
    #: populated by :func:`build_trained_transformer_rig`.
    metadata: Dict = field(default_factory=dict)

    @property
    def priced_model_name(self) -> str:
        """The catalogued model-spec name the rig's ledgers are priced as."""
        return self.priced_as or self.model_name

    def make_scheduler(
        self,
        scheduler_kind: str = "two_level",
        config: Optional[SpecEEConfig] = None,
        offline_top_k: int = 4,
    ):
        """One predictor scheduler wired to this rig's offline exit profile
        (the single source of truth for both unbatched and serving engines)."""
        cfg = config or SpecEEConfig(scheduler=scheduler_kind)
        return make_scheduler(
            scheduler_kind, self.model.n_layers,
            offline=OfflineScheduler(self.offline_freqs), offline_top_k=offline_top_k,
            window=cfg.context_window, vicinity=cfg.layer_vicinity,
        )

    def specee_engine(
        self,
        scheduler_kind: str = "two_level",
        config: Optional[SpecEEConfig] = None,
        offline_top_k: int = 4,
    ) -> SpecEEEngine:
        cfg = config or SpecEEConfig(scheduler=scheduler_kind)
        scheduler = self.make_scheduler(scheduler_kind, cfg, offline_top_k)
        return SpecEEEngine(self.model, self.speculator, self.bank, cfg, scheduler=scheduler)

    def serving_engine(
        self,
        scheduler_kind: str = "two_level",
        config: Optional[SpecEEConfig] = None,
        offline_top_k: int = 4,
        **serving_kwargs,
    ) -> "ServingEngine":
        """Continuous-batching server over this rig's SpecEE engine.  Each
        admitted sequence gets its own predictor scheduler built from the
        rig's offline exit profile, so batched outputs match unbatched ones."""
        from repro.serving.engine import ServingEngine

        cfg = config or SpecEEConfig(scheduler=scheduler_kind)
        engine = self.specee_engine(scheduler_kind, cfg, offline_top_k)
        factory = lambda: self.make_scheduler(scheduler_kind, cfg, offline_top_k)
        return ServingEngine(engine, scheduler_factory=factory, **serving_kwargs)

    def async_serving_engine(
        self,
        scheduler_kind: str = "two_level",
        config: Optional[SpecEEConfig] = None,
        offline_top_k: int = 4,
        device: str = "a100-80g",
        framework: str = "vllm",
        **serving_kwargs,
    ) -> "AsyncServingEngine":
        """Trace-driven async server (arrivals, preemption, chunked prefill)
        over this rig's SpecEE engine, priced for (model, device, framework)."""
        from repro.config import get_model_spec
        from repro.serving.async_engine import AsyncServingEngine

        cfg = config or SpecEEConfig(scheduler=scheduler_kind)
        engine = self.specee_engine(scheduler_kind, cfg, offline_top_k)
        factory = lambda: self.make_scheduler(scheduler_kind, cfg, offline_top_k)
        return AsyncServingEngine(
            engine, get_model_spec(self.priced_model_name), device=device,
            framework=framework, scheduler_factory=factory, **serving_kwargs)

    def router_fleet(
        self,
        n_replicas: int,
        route: str = "round_robin",
        scheduling: str = "fifo_priority",
        cluster_factory: Optional[Callable[[], object]] = None,
        faults=None,
        fault_seed: int = 0,
        failover: bool = True,
        **async_kwargs,
    ) -> "ServingRouter":
        """Data-parallel fleet: ``n_replicas`` async serving replicas behind
        a :class:`~repro.serving.router.ServingRouter`.

        Every replica is built through :meth:`async_serving_engine` (its own
        KV pool, ledger and scheduling-policy instance; SpecEE assets are
        shared, so per-request tokens match a single-replica run).
        ``cluster_factory`` builds one fresh
        :class:`~repro.distributed.ClusterSpec` per replica for a fleet of
        modelled tp x pp shards.  ``faults``/``fault_seed``/``failover``
        configure deterministic fault injection and crash recovery (see
        :class:`~repro.serving.faults.FaultPlan` and the router docs).
        """
        from repro.serving.router import ServingRouter

        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        replicas = []
        for index in range(n_replicas):
            kwargs = dict(async_kwargs)
            if "control_seed" in kwargs:
                # Decorrelate per-replica bandit exploration while staying
                # fully deterministic for a given base seed.
                kwargs["control_seed"] = kwargs["control_seed"] + index
            replicas.append(self.async_serving_engine(
                scheduling=scheduling,
                cluster=cluster_factory() if cluster_factory else None,
                **kwargs,
            ))
        return ServingRouter(replicas, route=route, faults=faults,
                             fault_seed=fault_seed, failover=failover)

    def fresh_model(self) -> "LayeredLM":
        """A new model instance with identical semantics (independent state)."""
        if self.model_factory is not None:
            return self.model_factory()
        return SyntheticLayeredLM(self.model.profile, self.sim, seed=self.seed)


def build_rig(
    model_name: str,
    dataset: Optional[DatasetSpec] = None,
    flavor: str = "dense",
    sim: SimDims = _DEFAULT_SIM,
    seed: int = 0,
    **asset_kwargs,
) -> Rig:
    # Predictor banks depend only on the model's semantics, which flavors
    # share (AWQ's effects enter via calibration and the hardware profile),
    # so assets are always trained once on the dense flavor.
    bank, freqs = trained_assets(model_name, "dense", sim, seed, **asset_kwargs)
    model = make_model(model_name, dataset, flavor, sim, seed)
    speculator = Speculator(model.oracle, k=4, hit_rate=model.profile.draft_hit_rate)
    return Rig(model_name=model_name, flavor=flavor, model=model,
               speculator=speculator, bank=bank, offline_freqs=freqs,
               sim=sim, seed=seed)


# (TransformerConfig-ish key) -> (bank, offline frequencies)
_TRANSFORMER_ASSET_CACHE: Dict[Tuple, Tuple[PredictorBank, np.ndarray]] = {}


def build_transformer_rig(
    cfg=None,
    seed: int = 0,
    max_tokens: int = 512,
    k: int = 4,
    draft_hit_rate: float = 0.6,
    predictor_hidden: int = 64,
    predictor_depth: int = 2,
    train_prompts: int = 3,
    train_tokens: int = 20,
    epochs: int = 8,
    priced_as: str = "llama2-7b",
) -> Rig:
    """Rig over the real numpy transformer (:class:`TransformerLayeredLM`).

    Unlike the synthetic rig there is no semantic profile: the draft
    speculator runs over an :class:`~repro.model.oracle.NGramOracle` that is
    *not* distilled from the transformer, so with random weights verified
    early exits are rare — the point of this rig is measured wall-clock
    serving through genuine attention/FFN math, not calibrated accuracy.
    The predictor bank is trained on features harvested from the transformer
    itself, and the offline exit profile comes from a short profiling decode,
    exactly mirroring :func:`trained_assets`.  Assets are cached per
    (config, seed, sizes) so tests and the CLI pay the training cost once.
    """
    from repro.model.oracle import NGramOracle
    from repro.model.transformer_backend import TransformerLayeredLM
    from repro.nn.transformer import TransformerConfig

    cfg = cfg or TransformerConfig()
    model = TransformerLayeredLM(cfg, seed=seed, max_tokens=max_tokens)
    oracle = NGramOracle(cfg.vocab_size, order=3, seed=seed + 1)
    speculator = Speculator(oracle, k=k, hit_rate=draft_hit_rate)
    key = (cfg, seed, max_tokens, k, draft_hit_rate, predictor_hidden,
           predictor_depth, train_prompts, train_tokens, epochs)
    if key in _TRANSFORMER_ASSET_CACHE:
        bank, freqs = _TRANSFORMER_ASSET_CACHE[key]
    else:
        prompts = generate_prompts(train_prompts, cfg.vocab_size, seed=seed + 11)
        corpus = harvest_training_corpus(model, speculator, prompts,
                                         tokens_per_prompt=train_tokens)
        bank = PredictorBank(model.n_layers, feature_dim=3 * k,
                             hidden_dim=predictor_hidden, depth=predictor_depth,
                             seed=seed)
        train_predictor_bank(bank, corpus, epochs=epochs, seed=seed)
        profiling = SpecEEEngine(
            model, speculator, bank, SpecEEConfig(num_speculative=k),
            scheduler=make_scheduler("all", model.n_layers),
        )
        exits: List[int] = []
        for prompt in generate_prompts(2, cfg.vocab_size, seed=seed + 23):
            run = profiling.generate(prompt, 16)
            exits.extend(l for l, r in zip(run.exit_layers, run.records)
                         if r.early_exit)
        freqs = profile_exit_frequencies(exits, model.n_layers)
        _TRANSFORMER_ASSET_CACHE[key] = (bank, freqs)
    return Rig(model_name="tiny-transformer", flavor="dense", model=model,
               speculator=speculator, bank=bank, offline_freqs=freqs,
               seed=seed,
               model_factory=lambda: TransformerLayeredLM(
                   cfg, seed=seed, max_tokens=max_tokens),
               priced_as=priced_as)


# (trained-rig parameter key) -> (trained lm, draft, bank, freqs, metadata)
_TRAINED_TRANSFORMER_ASSET_CACHE: Dict[Tuple, Tuple] = {}


def trained_transformer_config():
    """Default config for the LayerSkip-trained rig.

    Smaller vocabulary than the random-weight rig's default: the synthetic
    language is learnable in seconds and the LM head stays a small fraction
    of a layer's cost, so measured speedup reflects skipped layers rather
    than head amortisation.  The hidden dim is wide enough (128) that layer
    GEMMs dominate the interpreter's fixed per-step cost — at dim 64 the
    predictor/verify bookkeeping eats most of what the exits save and the
    measured speedup collapses toward 1x.
    """
    from repro.nn.transformer import TransformerConfig

    return TransformerConfig(vocab_size=64, dim=128, n_layers=8, n_heads=4,
                             intermediate_dim=256, max_positions=256)


def build_trained_transformer_rig(
    cfg=None,
    seed: int = 0,
    max_tokens: int = 256,
    k: int = 4,
    steps: int = 160,
    curriculum: str = "rotational",
    max_layer_dropout: float = 0.3,
    early_exit_scale: float = 0.5,
    corpus_sequences: int = 48,
    corpus_len: int = 33,
    distill_prompts: int = 16,
    rollout_len: int = 24,
    predictor_hidden: int = 64,
    predictor_depth: int = 2,
    train_prompts: int = 4,
    train_tokens: int = 24,
    epochs: int = 10,
    priced_as: str = "llama2-7b",
) -> Rig:
    """Rig whose transformer was LayerSkip-trained so exits actually fire.

    The full loop of ``repro.training`` runs once per parameter set (cached
    per process): train :class:`TrainableTransformerLM` on the synthetic
    corpus with layer dropout + early-exit losses, export the weights into
    the inference stack, distill the draft from the trained model's own
    predictions, then train the predictor bank and offline exit profile on
    the trained model — mirroring the paper, which trains predictors on
    MT-Bench traces and evaluates on the same distribution (Sec. 7.4.4).
    The backend uses ``kv_fill="propagate"`` (cheap K/V projection for
    skipped layers), so verified exits translate into wall-clock savings.
    """
    from repro.data.corpus import generate_corpus
    from repro.model.oracle import NGramOracle
    from repro.model.transformer_backend import TransformerLayeredLM
    from repro.nn.transformer import TrainableTransformerLM
    from repro.training import (
        DistilledNGramDraft, LayerSkipConfig, train_layerskip,
        export_inference_lm,
    )

    cfg = cfg or trained_transformer_config()
    key = (cfg, seed, max_tokens, k, steps, curriculum, max_layer_dropout,
           early_exit_scale, corpus_sequences, corpus_len,
           distill_prompts, rollout_len, predictor_hidden, predictor_depth,
           train_prompts, train_tokens, epochs)
    if key not in _TRAINED_TRANSFORMER_ASSET_CACHE:
        oracle = NGramOracle(cfg.vocab_size, order=3, seed=seed + 5)
        corpus = generate_corpus(oracle, n_sequences=corpus_sequences,
                                 seq_len=corpus_len, seed=seed + 1)
        trainable = TrainableTransformerLM(cfg, seed=seed, rope=True)
        report = train_layerskip(
            trainable, corpus,
            LayerSkipConfig(steps=steps, curriculum=curriculum,
                            max_layer_dropout=max_layer_dropout,
                            early_exit_scale=early_exit_scale, seed=seed))
        lm = export_inference_lm(trainable)
        prompts = generate_prompts(distill_prompts, cfg.vocab_size,
                                   seed=seed + 31)
        draft = DistilledNGramDraft.distill(lm, corpus, prompts,
                                            rollout_len=rollout_len, k=k)
        model = TransformerLayeredLM(lm=lm, max_tokens=max_tokens,
                                     kv_fill="propagate")
        train_pool = generate_prompts(train_prompts, cfg.vocab_size,
                                      seed=seed + 11)
        trace = harvest_training_corpus(model, draft, train_pool,
                                        tokens_per_prompt=train_tokens)
        bank = PredictorBank(model.n_layers, feature_dim=3 * k,
                             hidden_dim=predictor_hidden, depth=predictor_depth,
                             seed=seed)
        train_predictor_bank(bank, trace, epochs=epochs, seed=seed)
        profiling = SpecEEEngine(
            model, draft, bank, SpecEEConfig(num_speculative=k),
            scheduler=make_scheduler("all", model.n_layers),
        )
        exits: List[int] = []
        for prompt in generate_prompts(2, cfg.vocab_size, seed=seed + 23):
            run = profiling.generate(prompt, 16)
            exits.extend(l for l, r in zip(run.exit_layers, run.records)
                         if r.early_exit)
        freqs = profile_exit_frequencies(exits, model.n_layers)
        metadata = {
            "training_final_loss": report.final_loss,
            "training_accuracy": report.accuracy,
            "layer_agreement": report.agreement,
            "draft_hit_rate": draft.hit_rate,
        }
        _TRAINED_TRANSFORMER_ASSET_CACHE[key] = (lm, draft, bank, freqs, metadata)
    lm, draft, bank, freqs, metadata = _TRAINED_TRANSFORMER_ASSET_CACHE[key]
    factory = lambda: TransformerLayeredLM(lm=lm, max_tokens=max_tokens,
                                           kv_fill="propagate")
    return Rig(model_name="trained-transformer", flavor="dense",
               model=factory(), speculator=draft, bank=bank,
               offline_freqs=freqs, seed=seed, model_factory=factory,
               priced_as=priced_as, metadata=dict(metadata))


@dataclass
class EvalRun:
    """Aggregated outcome of an engine over a dataset."""

    dataset: str
    engine: str
    ledger: CostLedger = field(default_factory=CostLedger)
    accuracy: float = float("nan")
    ppl: float = float("nan")
    avg_layers: float = float("nan")
    theoretical_layers: float = float("nan")
    exit_layers: List[int] = field(default_factory=list)
    n_items: int = 0

    @property
    def tokens(self) -> int:
        return self.ledger.tokens_generated


EngineFactory = Callable[[], object]


def run_items(
    engine_factory: EngineFactory,
    spec: DatasetSpec,
    items: Sequence[DatasetItem],
    engine_name: str = "engine",
    n_layers: Optional[int] = None,
) -> EvalRun:
    """Run a fresh engine per item and aggregate metrics.

    Classification items decode ``reasoning + answer`` tokens with the
    planted script; generation items run teacher-forced over the reference.
    """
    run = EvalRun(dataset=spec.name, engine=engine_name)
    outcomes: List[bool] = []
    logprobs: List[float] = []
    exit_layers: List[int] = []
    theoretical: List[float] = []
    for item in items:
        engine = engine_factory()
        if spec.kind == "classification":
            assert item.script is not None and item.gold is not None
            n_tokens = item.answer_start + len(item.gold)
            result: GenerationResult = engine.generate(
                item.prompt, n_tokens, script=item.script
            )
            outcomes.append(answer_matches(result.tokens, item.gold, item.answer_start))
        else:
            assert item.reference is not None
            result = engine.generate(item.prompt, 0, force_tokens=item.reference)
            logprobs.extend(result.logprobs)
        run.ledger.merge(result.ledger)
        exit_layers.extend(result.exit_layers)
        theoretical.extend(_theoretical_layers(result, n_layers))
        run.n_items += 1
    if outcomes:
        run.accuracy = accuracy_percent(outcomes)
    if logprobs:
        run.ppl = perplexity_from_logprobs(logprobs)
    if exit_layers:
        run.avg_layers = float(np.mean(np.asarray(exit_layers) + 1))
        run.exit_layers = exit_layers
    if theoretical:
        run.theoretical_layers = float(np.mean(theoretical))
    return run


def _theoretical_layers(result: GenerationResult, n_layers: Optional[int]) -> List[float]:
    """Per-token theoretical earliest forward layers (1-based): the
    saturation depth on draft hits, full depth on misses."""
    if n_layers is None or not result.saturations:
        return []
    out: List[float] = []
    for i, rec in enumerate(result.records):
        if i >= len(result.saturations):
            break
        sat = result.saturations[i]
        if rec.draft_hit:
            out.append(min(sat, n_layers - 1) + 1)
        else:
            out.append(float(n_layers))
    return out


def run_classification(engine_factory, spec, items, **kwargs) -> EvalRun:
    if spec.kind != "classification":
        raise ValueError(f"{spec.name} is not a classification dataset")
    return run_items(engine_factory, spec, items, **kwargs)


def run_generation(engine_factory, spec, items, **kwargs) -> EvalRun:
    if spec.kind != "generation":
        raise ValueError(f"{spec.name} is not a generation dataset")
    return run_items(engine_factory, spec, items, **kwargs)
