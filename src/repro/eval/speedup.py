"""Pricing runs and building speedup tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.config import ModelSpec
from repro.eval.harness import EvalRun
from repro.hardware.latency import LatencyBreakdown, LatencyModel
from repro.utils.mathx import geometric_mean

__all__ = ["PricedRun", "priced_run", "speedup_table"]


@dataclass
class PricedRun:
    """An EvalRun priced on a concrete (device, framework)."""

    run: EvalRun
    latency: LatencyBreakdown

    @property
    def tokens_per_second(self) -> float:
        return self.latency.tokens_per_second


def priced_run(
    run: EvalRun,
    model: ModelSpec,
    device: str,
    framework: str,
    cpu_device: Optional[str] = None,
) -> PricedRun:
    latency = LatencyModel(model, device, framework, cpu_device=cpu_device).price(run.ledger)
    return PricedRun(run=run, latency=latency)


def speedup_table(
    baseline: Mapping[str, PricedRun],
    accelerated: Mapping[str, PricedRun],
) -> Dict[str, Dict[str, float]]:
    """Per-dataset throughput and speedup plus the Geo.Mean row the paper
    reports in Figures 14-16."""
    rows: Dict[str, Dict[str, float]] = {}
    speedups: List[float] = []
    for name in baseline:
        if name not in accelerated:
            continue
        base_tps = baseline[name].tokens_per_second
        fast_tps = accelerated[name].tokens_per_second
        ratio = fast_tps / base_tps
        speedups.append(ratio)
        rows[name] = {
            "baseline_tps": base_tps,
            "specee_tps": fast_tps,
            "speedup": ratio,
        }
    if speedups:
        rows["geomean"] = {
            "baseline_tps": geometric_mean([r["baseline_tps"] for n, r in rows.items() if n != "geomean"]),
            "specee_tps": geometric_mean([r["specee_tps"] for n, r in rows.items() if n != "geomean"]),
            "speedup": geometric_mean(speedups),
        }
    return rows
