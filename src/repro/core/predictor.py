"""The lightweight exit predictor (paper Sec. 4.3.2) and per-layer bank.

The paper's design-space exploration (Fig. 8) lands on a 2-layer MLP with a
hidden dimension of 512 — ~0.07M parameters, a ~100x reduction over the
AdaInfer-style predictor that consumes raw full-vocabulary statistics.  One
predictor is attached per decoder layer (the paper's 416 KB total for
Llama2-7B = 32 such MLPs); :class:`PredictorBank` holds and dispatches them.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.mlp import MLPClassifier

__all__ = ["ExitPredictor", "PredictorBank"]


class ExitPredictor:
    """A single layer's exit classifier: features in, exit probability out."""

    def __init__(self, feature_dim: int, hidden_dim: int = 512, depth: int = 2, seed: int = 0):
        self.feature_dim = feature_dim
        self.mlp = MLPClassifier(feature_dim, hidden_dim=hidden_dim, depth=depth, seed=seed)

    @property
    def n_params(self) -> int:
        return self.mlp.n_params

    def probability(self, features: np.ndarray) -> float:
        """Exit probability for one feature vector."""
        return float(self.mlp.forward(np.asarray(features, dtype=np.float64)))

    def probability_batch(self, features: np.ndarray) -> np.ndarray:
        """Exit probabilities for ``[m, feature_dim]`` rows in one MLP pass."""
        features = np.asarray(features, dtype=np.float64)
        return np.asarray(self.mlp.forward(features), dtype=np.float64).reshape(-1)

    def should_exit(self, features: np.ndarray, threshold: float = 0.5) -> bool:
        return self.probability(features) >= threshold

    def fit(self, x: np.ndarray, y: np.ndarray, **kwargs):
        return self.mlp.fit(x, y, **kwargs)

    def state_dict(self) -> dict:
        return self.mlp.state_dict()

    @classmethod
    def from_state_dict(cls, state: dict) -> "ExitPredictor":
        obj = cls.__new__(cls)
        obj.mlp = MLPClassifier.from_state_dict(state)
        obj.feature_dim = obj.mlp.in_dim
        return obj


class PredictorBank:
    """One :class:`ExitPredictor` per decoder layer (last layer excluded —
    reaching it means no early exit is possible)."""

    def __init__(
        self,
        n_layers: int,
        feature_dim: int,
        hidden_dim: int = 512,
        depth: int = 2,
        seed: int = 0,
    ):
        self.n_layers = n_layers
        self.feature_dim = feature_dim
        self.hidden_dim = hidden_dim
        self.depth = depth
        self.predictors: Dict[int, ExitPredictor] = {
            layer: ExitPredictor(feature_dim, hidden_dim, depth, seed=seed + layer)
            for layer in range(n_layers - 1)
        }

    @property
    def total_params(self) -> int:
        return sum(p.n_params for p in self.predictors.values())

    def layers(self) -> List[int]:
        return sorted(self.predictors)

    def probability(self, layer: int, features: np.ndarray) -> float:
        if layer not in self.predictors:
            raise KeyError(f"no predictor for layer {layer}")
        return self.predictors[layer].probability(features)

    def probability_batch(self, layer: int, features: np.ndarray) -> np.ndarray:
        """Batched :meth:`probability`: one pass of ``layer``'s MLP over
        ``[m, feature_dim]`` feature rows."""
        if layer not in self.predictors:
            raise KeyError(f"no predictor for layer {layer}")
        return self.predictors[layer].probability_batch(features)

    def should_exit(self, layer: int, features: np.ndarray, threshold: float = 0.5) -> bool:
        return self.probability(layer, features) >= threshold

    def accuracy(self, layer: int, x: np.ndarray, y: np.ndarray, threshold: float = 0.5) -> float:
        """Classification accuracy of one layer's predictor on held-out data."""
        probs = self.predictors[layer].mlp.forward(np.asarray(x, dtype=np.float64))
        return float(np.mean((np.asarray(probs) >= threshold) == (np.asarray(y) > 0.5)))

    # -- serialization ---------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "n_layers": self.n_layers,
            "feature_dim": self.feature_dim,
            "hidden_dim": self.hidden_dim,
            "depth": self.depth,
            "predictors": {str(l): p.state_dict() for l, p in self.predictors.items()},
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "PredictorBank":
        bank = cls(
            int(state["n_layers"]), int(state["feature_dim"]),
            int(state["hidden_dim"]), int(state["depth"]),
        )
        bank.predictors = {
            int(l): ExitPredictor.from_state_dict(s) for l, s in state["predictors"].items()
        }
        return bank

    def save(self, path: str) -> None:
        """Persist to ``.npz`` (flat keys ``layer/param``)."""
        flat: Dict[str, np.ndarray] = {
            "__meta__": np.asarray(
                [self.n_layers, self.feature_dim, self.hidden_dim, self.depth]
            )
        }
        for layer, pred in self.predictors.items():
            for key, value in pred.state_dict().items():
                flat[f"{layer}/{key}"] = np.asarray(value)
        np.savez(path, **flat)

    @classmethod
    def load(cls, path: str) -> "PredictorBank":
        data = np.load(path)
        n_layers, feature_dim, hidden_dim, depth = (int(v) for v in data["__meta__"])
        bank = cls(n_layers, feature_dim, hidden_dim, depth)
        states: Dict[int, dict] = {}
        for key in data.files:
            if key == "__meta__":
                continue
            layer_str, param = key.split("/", 1)
            states.setdefault(int(layer_str), {})[param] = data[key]
        bank.predictors = {
            layer: ExitPredictor.from_state_dict(state) for layer, state in states.items()
        }
        return bank
