"""Offline predictor training (paper Sec. 7.4.4).

The paper harvests features at every intermediate layer while decoding a
prompt set, labels each (step, layer) sample ``True`` iff the token an early
exit would emit at that layer equals the token the full model emits, and
trains the per-layer MLPs on ~16K samples — noting that ~2% of the data
already reaches the accuracy plateau (Fig. 18).  This module reproduces the
pipeline: :func:`harvest_training_corpus` collects the per-layer datasets,
:func:`train_predictor_bank` fits a :class:`~repro.core.predictor.PredictorBank`
on a configurable fraction of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import FeatureExtractor
from repro.core.predictor import PredictorBank
from repro.model.base import LayeredLM
from repro.model.draft import Speculator
from repro.utils.rng import child_rng

__all__ = ["TrainingCorpus", "harvest_training_corpus", "train_predictor_bank"]


@dataclass
class TrainingCorpus:
    """Per-layer feature/label datasets harvested from dense decodes."""

    feature_dim: int
    n_layers: int
    features: Dict[int, List[np.ndarray]] = field(default_factory=dict)
    labels: Dict[int, List[int]] = field(default_factory=dict)

    def add(self, layer: int, feat: np.ndarray, label: bool) -> None:
        self.features.setdefault(layer, []).append(feat)
        self.labels.setdefault(layer, []).append(int(label))

    def layer_arrays(self, layer: int) -> Tuple[np.ndarray, np.ndarray]:
        feats = self.features.get(layer, [])
        labels = self.labels.get(layer, [])
        if not feats:
            return np.empty((0, self.feature_dim)), np.empty(0)
        return np.stack(feats), np.asarray(labels, dtype=np.float64)

    @property
    def n_samples(self) -> int:
        return sum(len(v) for v in self.features.values())

    def subsample(self, ratio: float, seed: int = 0) -> "TrainingCorpus":
        """Keep a ``ratio`` fraction of every layer's samples (Fig. 18 sweep)."""
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must lie in (0, 1]")
        out = TrainingCorpus(self.feature_dim, self.n_layers)
        rng = child_rng(seed, "corpus-subsample", ratio)
        for layer, feats in self.features.items():
            n = len(feats)
            keep = max(1, int(round(n * ratio)))
            idx = rng.permutation(n)[:keep]
            out.features[layer] = [feats[i] for i in idx]
            out.labels[layer] = [self.labels[layer][i] for i in idx]
        return out

    def split(self, test_fraction: float = 0.2, seed: int = 0) -> Tuple["TrainingCorpus", "TrainingCorpus"]:
        """Deterministic train/test split per layer."""
        train = TrainingCorpus(self.feature_dim, self.n_layers)
        test = TrainingCorpus(self.feature_dim, self.n_layers)
        rng = child_rng(seed, "corpus-split")
        for layer, feats in self.features.items():
            n = len(feats)
            idx = rng.permutation(n)
            cut = max(1, int(round(n * test_fraction)))
            for i in idx[:cut]:
                test.add(layer, feats[i], bool(self.labels[layer][i]))
            for i in idx[cut:]:
                train.add(layer, feats[i], bool(self.labels[layer][i]))
        return train, test


def harvest_training_corpus(
    model: LayeredLM,
    speculator: Speculator,
    prompts: Sequence[Sequence[int]],
    tokens_per_prompt: int = 32,
    min_exit_layer: int = 2,
) -> TrainingCorpus:
    """Decode ``prompts`` densely and collect (features, exit-correct) pairs
    at every intermediate layer."""
    k = speculator.k
    corpus = TrainingCorpus(feature_dim=3 * k, n_layers=model.n_layers)
    extractor = FeatureExtractor(k)
    for prompt in prompts:
        state = model.start(prompt)
        for _ in range(tokens_per_prompt):
            spec_tokens = speculator.propose(state.context)
            model.begin_step(state)
            extractor.reset()
            per_layer: List[Tuple[int, np.ndarray, int]] = []
            hidden = None
            for layer in range(model.n_layers):
                hidden = model.layer_forward(state, layer)
                if layer < min_exit_layer or layer >= model.n_layers - 1:
                    continue
                feats = extractor.extract(model.lm_head_slice(hidden, spec_tokens))
                exit_token = int(np.argmax(model.lm_head_full(hidden)))
                per_layer.append((layer, feats, exit_token))
            final_token = int(np.argmax(model.lm_head_full(hidden)))
            for layer, feats, exit_token in per_layer:
                corpus.add(layer, feats, exit_token == final_token)
            model.commit(state, final_token, model.n_layers - 1)
    return corpus


def train_predictor_bank(
    bank: PredictorBank,
    corpus: TrainingCorpus,
    epochs: int = 25,
    lr: float = 3e-3,
    seed: int = 0,
    test_corpus: Optional[TrainingCorpus] = None,
) -> Dict[str, float]:
    """Fit every layer's predictor; returns aggregate quality metrics.

    Layers with no positive or no negative examples keep their initial
    weights biased to "don't exit" (fitting a constant is meaningless and
    the scheduler rarely activates such layers anyway).
    """
    layer_accs: List[float] = []
    trained_layers = 0
    for layer in bank.layers():
        x, y = corpus.layer_arrays(layer)
        if len(y) < 8 or y.sum() == 0 or y.sum() == len(y):
            continue
        bank.predictors[layer].fit(x, y, epochs=epochs, lr=lr, seed=seed + layer)
        trained_layers += 1
        if test_corpus is not None:
            xt, yt = test_corpus.layer_arrays(layer)
            if len(yt):
                layer_accs.append(bank.accuracy(layer, xt, yt))
    metrics: Dict[str, float] = {
        "trained_layers": float(trained_layers),
        "train_samples": float(corpus.n_samples),
    }
    if layer_accs:
        metrics["test_accuracy"] = float(np.mean(layer_accs))
    return metrics
