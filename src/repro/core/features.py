"""T1 feature extraction (paper Sec. 4.3.1).

Three features per speculative token, computed from the *speculative LM
head* — the ``hidden_dim x k`` column slice of the full LM head:

1. **Speculative token logits** — raw confidence of the LLM on each
   candidate.
2. **Local probabilities** — softmax over only the ``k`` candidates
   (local, not global, information).
3. **Probability variation** — difference of local probabilities between the
   current and the previously evaluated layer, capturing the probability
   shift of Fig. 5.

Figure 6 shows why all three are necessary: variation alone aliases
(0.32-0.20 vs 0.58-0.46), and local probabilities alone alias across logit
scales.  The feature-necessity experiment reproduces that ablation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.mathx import softmax

__all__ = ["FeatureExtractor", "feature_names"]


def feature_names(k: int) -> list[str]:
    """Column names of the feature vector for ``k`` speculative tokens."""
    return (
        [f"logit_{i}" for i in range(k)]
        + [f"local_prob_{i}" for i in range(k)]
        + [f"prob_variation_{i}" for i in range(k)]
    )


class FeatureExtractor:
    """Stateful per-step extractor: remembers the last local probabilities.

    ``reset`` must be called at the start of every generated token; the first
    evaluated layer of a step reports zero variation (there is no previous
    measurement), later layers report the difference since the last
    *evaluated* layer — which, under predictor scheduling, is not necessarily
    the adjacent one.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._last_probs: Optional[np.ndarray] = None

    @property
    def feature_dim(self) -> int:
        return 3 * self.k

    def reset(self) -> None:
        self._last_probs = None

    def extract(self, spec_logits: np.ndarray) -> np.ndarray:
        """Build the 3k-dim feature vector from sliced logits."""
        spec_logits = np.asarray(spec_logits, dtype=np.float64)
        if spec_logits.shape != (self.k,):
            raise ValueError(f"expected {self.k} sliced logits, got {spec_logits.shape}")
        local_probs = softmax(spec_logits)
        if self._last_probs is None:
            variation = np.zeros(self.k)
        else:
            variation = local_probs - self._last_probs
        self._last_probs = local_probs
        return np.concatenate([spec_logits, local_probs, variation])

    def extract_batch(self, spec_logits: np.ndarray, last_probs: Optional[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Stateless batched variant for tree mode: ``spec_logits`` is
        ``[m, k]``; returns (features ``[m, 3k]``, new last_probs ``[m, k]``)."""
        spec_logits = np.asarray(spec_logits, dtype=np.float64)
        probs = softmax(spec_logits, axis=-1)
        variation = np.zeros_like(probs) if last_probs is None else probs - last_probs
        feats = np.concatenate([spec_logits, probs, variation], axis=-1)
        return feats, probs

    @staticmethod
    def extract_rows(
        spec_logits: np.ndarray, last_probs: np.ndarray, has_last: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized per-sequence extraction with per-row variation validity.

        ``spec_logits`` is ``[m, k]`` (one row per live sequence) and
        ``last_probs``/``has_last`` carry each row's own history: rows whose
        ``has_last`` is False are at their first evaluated layer of the step
        and report zero variation.  Returns (features ``[m, 3k]``, local
        probabilities ``[m, k]``).  Row ``i`` matches :meth:`extract` on the
        same history exactly — the softmax is row-wise and the variation a
        plain elementwise subtraction — which is what lets the batched
        serving tick score every live sequence in one pass.
        """
        spec_logits = np.asarray(spec_logits, dtype=np.float64)
        probs = softmax(spec_logits, axis=-1)
        variation = np.where(np.asarray(has_last)[:, None],
                             probs - last_probs, 0.0)
        feats = np.concatenate([spec_logits, probs, variation], axis=-1)
        return feats, probs
