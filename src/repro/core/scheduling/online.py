"""Online scheduling (paper Sec. 5.3, "Online Scheduling").

Exploits context similarity (Fig. 11): the exit layer of the current token
lands within +/-2 layers of one of the last five tokens' exits ~80% of the
time.  The scheduler maintains exactly the structures the paper describes —
a circular queue of the last ``N`` exit positions and a length-``L`` array
whose ``i``-th entry counts how many queued exits have layer ``i`` in their
vicinity.  A layer's predictor is activated iff its count is positive.
Updates are O(vicinity) per token.
"""

from __future__ import annotations

from typing import FrozenSet, List

import numpy as np

from repro.utils.ring import CircularQueue

__all__ = ["OnlineScheduler"]


class OnlineScheduler:
    """Circular-queue + counter-array online predictor scheduler."""

    def __init__(self, n_layers: int, window: int = 5, vicinity: int = 2):
        if n_layers < 2:
            raise ValueError("n_layers must be >= 2")
        self.n_layers = n_layers
        self.window = window
        self.vicinity = vicinity
        self._queue = CircularQueue(window)
        self._counts = np.zeros(n_layers, dtype=np.int64)

    def _vicinity_range(self, layer: int) -> range:
        return range(max(0, layer - self.vicinity), min(self.n_layers, layer + self.vicinity + 1))

    def observe_exit(self, layer: int) -> None:
        """Record an early exit at ``layer`` (full-depth exits are not pushed,
        mirroring the paper's queue of actual exit positions)."""
        if not 0 <= layer < self.n_layers:
            raise ValueError(f"layer {layer} out of range")
        evicted = self._queue.push(layer)
        for l in self._vicinity_range(layer):
            self._counts[l] += 1
        if evicted is not None:
            for l in self._vicinity_range(evicted):
                self._counts[l] -= 1

    def is_active(self, layer: int) -> bool:
        return bool(self._counts[layer] > 0)

    def active_set(self) -> FrozenSet[int]:
        return frozenset(int(l) for l in np.nonzero(self._counts > 0)[0])

    @property
    def active_count(self) -> int:
        return int(np.count_nonzero(self._counts > 0))

    def recent_exits(self) -> List[int]:
        return self._queue.to_list()

    def reset(self) -> None:
        self._queue.clear()
        self._counts[:] = 0
