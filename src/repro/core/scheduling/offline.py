"""Offline scheduling (paper Sec. 5.3, "Offline Scheduling").

The exit-layer distribution is *skewed* (Fig. 10a/c): roughly half of the
layers carry less than the average exit probability, so predictors placed
there are wasted work.  Offline scheduling runs the model once with all
predictors enabled over a profiling prompt set, ranks layers by observed
exit frequency, and keeps the most frequent subset as a model-dependent
configuration parameter — computed once per LLM.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence

import numpy as np

__all__ = ["OfflineScheduler", "profile_exit_frequencies"]


def profile_exit_frequencies(exit_layers: Iterable[int], n_layers: int) -> np.ndarray:
    """Histogram of observed exit layers (full-depth exits excluded — the
    final layer never hosts a predictor)."""
    hist = np.zeros(n_layers, dtype=np.float64)
    for layer in exit_layers:
        if 0 <= layer < n_layers - 1:
            hist[layer] += 1.0
    return hist


class OfflineScheduler:
    """Layer subset chosen from profiled exit frequencies.

    ``top_fraction`` keeps the highest-frequency layers covering that share
    of *probability mass* (not layer count) — matching the paper's
    observation that the bottom-50%-probability layers sum to under 20% of
    exits.  ``top_k`` instead keeps a fixed number of layers (used as the
    offline component inside the two-level union).
    """

    def __init__(self, frequencies: Sequence[float]):
        self.frequencies = np.asarray(frequencies, dtype=np.float64)
        if self.frequencies.ndim != 1:
            raise ValueError("frequencies must be one-dimensional")
        if np.any(self.frequencies < 0):
            raise ValueError("frequencies must be non-negative")
        self.n_layers = len(self.frequencies)

    def select_mass(self, top_fraction: float = 0.8) -> FrozenSet[int]:
        """Smallest layer set covering ``top_fraction`` of exit mass."""
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must lie in (0, 1]")
        total = self.frequencies.sum()
        if total == 0:
            return frozenset(range(self.n_layers))
        order = np.argsort(-self.frequencies, kind="stable")
        chosen: List[int] = []
        mass = 0.0
        for layer in order:
            if mass >= top_fraction * total and chosen:
                break
            if self.frequencies[layer] == 0:
                break
            chosen.append(int(layer))
            mass += self.frequencies[layer]
        return frozenset(chosen)

    def select_top_k(self, k: int) -> FrozenSet[int]:
        """The ``k`` most frequent exit layers."""
        if k <= 0:
            return frozenset()
        order = np.argsort(-self.frequencies, kind="stable")
        return frozenset(int(l) for l in order[:k] if self.frequencies[l] > 0)

    def skewness_report(self) -> Dict[str, float]:
        """Quantify the skew the paper describes: share of layers below the
        uniform average and the exit mass they carry."""
        total = self.frequencies.sum()
        if total == 0:
            return {"below_avg_layer_share": float("nan"), "below_avg_mass": float("nan")}
        probs = self.frequencies / total
        avg = 1.0 / self.n_layers
        below = probs < avg
        bottom_half = np.sort(probs)[: self.n_layers // 2]
        return {
            "below_avg_layer_share": float(np.mean(below)),
            "below_avg_mass": float(probs[below].sum()),
            "bottom_half_mass": float(bottom_half.sum()),
        }
