"""T2: two-level heuristic predictor scheduling (paper Sec. 5)."""

from repro.core.scheduling.offline import OfflineScheduler, profile_exit_frequencies
from repro.core.scheduling.online import OnlineScheduler
from repro.core.scheduling.two_level import (
    AllLayersScheduler,
    FixedSetScheduler,
    Scheduler,
    TwoLevelScheduler,
    make_scheduler,
)

__all__ = [
    "AllLayersScheduler",
    "FixedSetScheduler",
    "OfflineScheduler",
    "OnlineScheduler",
    "Scheduler",
    "TwoLevelScheduler",
    "make_scheduler",
    "profile_exit_frequencies",
]
