"""Two-level scheduler: union of offline subset and online vicinity set.

The paper determines "the quantity and position of predictors ... by the
union of a subset of results selected by the offline scheduling, and the
results from the online scheduling" (Sec. 5.3).  The offline component
guarantees coverage of globally frequent exit layers (and bootstraps the
cold start before any exits are queued); the online component tracks the
current context.  Fig. 10(d) shows the resulting dynamic set (~10.2 layers
on average) beats any fixed predictor count.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable, Optional

from repro.core.scheduling.offline import OfflineScheduler
from repro.core.scheduling.online import OnlineScheduler

__all__ = [
    "Scheduler",
    "AllLayersScheduler",
    "FixedSetScheduler",
    "TwoLevelScheduler",
    "make_scheduler",
]


class Scheduler(abc.ABC):
    """Decides, per layer, whether the exit predictor runs."""

    @abc.abstractmethod
    def is_active(self, layer: int) -> bool: ...

    def observe_exit(self, layer: int) -> None:
        """Feed back an observed early exit (default: stateless)."""

    def reset(self) -> None:
        """Clear per-sequence state (default: stateless)."""

    @abc.abstractmethod
    def active_count(self) -> float:
        """Current number of active predictor layers (for reporting)."""


class AllLayersScheduler(Scheduler):
    """T1-only mode: a predictor after every layer (except the last)."""

    def __init__(self, n_layers: int):
        self.n_layers = n_layers

    def is_active(self, layer: int) -> bool:
        return layer < self.n_layers - 1

    def active_count(self) -> float:
        return float(self.n_layers - 1)


class FixedSetScheduler(Scheduler):
    """A static predictor placement (used by the Fig. 10b/d sweeps)."""

    def __init__(self, layers: Iterable[int]):
        self.layers = frozenset(int(l) for l in layers)

    def is_active(self, layer: int) -> bool:
        return layer in self.layers

    def active_count(self) -> float:
        return float(len(self.layers))


class TwoLevelScheduler(Scheduler):
    """Offline top-k union online vicinity set."""

    def __init__(
        self,
        n_layers: int,
        offline: Optional[OfflineScheduler] = None,
        offline_top_k: int = 4,
        window: int = 5,
        vicinity: int = 2,
    ):
        self.n_layers = n_layers
        self.online = OnlineScheduler(n_layers, window=window, vicinity=vicinity)
        if offline is not None:
            self.offline_set: FrozenSet[int] = offline.select_top_k(offline_top_k)
        else:
            self.offline_set = frozenset()
        # Cold start: before any exit is observed, fall back to offline-only
        # coverage; if that is empty too, run all predictors until warmed up.
        self._warm = False

    def is_active(self, layer: int) -> bool:
        if self.online.is_active(layer):
            return True
        if layer in self.offline_set:
            return True
        if not self._warm and not self.offline_set:
            return layer < self.n_layers - 1
        return False

    def observe_exit(self, layer: int) -> None:
        self._warm = True
        self.online.observe_exit(layer)

    def reset(self) -> None:
        self.online.reset()
        self._warm = False

    def active_count(self) -> float:
        return float(len(self.offline_set | self.online.active_set()))


def make_scheduler(
    kind: str,
    n_layers: int,
    offline: Optional[OfflineScheduler] = None,
    offline_top_k: int = 4,
    offline_top_fraction: float = 0.8,
    window: int = 5,
    vicinity: int = 2,
) -> Scheduler:
    """Factory covering the paper's configurations and the ablation modes."""
    if kind == "all":
        return AllLayersScheduler(n_layers)
    if kind == "offline":
        if offline is None:
            raise ValueError("offline scheduler requires profiled frequencies")
        return FixedSetScheduler(offline.select_mass(offline_top_fraction))
    if kind == "online":
        return TwoLevelScheduler(n_layers, offline=None, offline_top_k=0,
                                 window=window, vicinity=vicinity)
    if kind == "two_level":
        return TwoLevelScheduler(n_layers, offline=offline, offline_top_k=offline_top_k,
                                 window=window, vicinity=vicinity)
    raise ValueError(f"unknown scheduler kind {kind!r}")
