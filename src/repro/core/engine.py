"""The SpecEE autoregressive engine (T1 + T2).

Per generated token (Fig. 3):

1. the heuristic scheduling engine marks the predictor-active layers,
2. the speculative model proposes ``k`` candidate tokens,
3. the decoder layers run in order; after each *active* layer the
   speculative LM head is sliced, the 3k features extracted, and the
   lightweight MLP consulted,
4. a positive prediction triggers verification (one full LM-head
   projection); if the global argmax is among the candidates the engine
   exits and commits that token, otherwise depth continues,
5. reaching the final layer commits the full model's argmax as usual.

Every op is recorded in the :class:`~repro.hardware.ledger.CostLedger` so the
hardware models can price the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SpecEEConfig
from repro.core.features import FeatureExtractor
from repro.core.predictor import PredictorBank
from repro.core.scheduling import Scheduler, make_scheduler
from repro.core.verification import verify_exit
from repro.hardware.ledger import CostLedger, Event
from repro.model.base import LayeredLM, LMState
from repro.model.draft import Speculator

__all__ = ["StepRecord", "GenerationResult", "SpecEEEngine", "DRAFT_PAD_MARGIN"]

#: Margin (in logit units) below the row minimum used to pad a
#: load-shortened draft back to the predictor's trained feature width ``k``:
#: the padded slot reads as a clearly-losing candidate (softmax weight
#: ``e^-margin`` of the weakest real one) while staying at the logit scale
#: the 3k-input MLP was trained on — padding with -inf-like values instead
#: saturates the MLP and silences the predictor entirely.
DRAFT_PAD_MARGIN = 6.0


@dataclass
class StepRecord:
    """Diagnostics for one generated token.

    ``hidden`` is the hidden state the token was committed from (the
    exit-layer activation).  Serving backends persist it as the token's KV
    payload in the paged cache; baselines that do not thread hidden states
    leave it ``None``.
    """

    token: int
    exit_layer: int
    early_exit: bool
    predictor_evals: int
    verify_attempts: int
    active_predictors: float
    draft_hit: bool
    hidden: Optional[np.ndarray] = None


@dataclass
class GenerationResult:
    """Tokens plus cost ledger and per-step diagnostics."""

    tokens: List[int] = field(default_factory=list)
    exit_layers: List[int] = field(default_factory=list)
    records: List[StepRecord] = field(default_factory=list)
    ledger: CostLedger = field(default_factory=CostLedger)
    logprobs: List[float] = field(default_factory=list)  # teacher-forced only
    saturations: List[int] = field(default_factory=list)  # model-internal L* trace

    @property
    def perplexity(self) -> float:
        """exp(mean NLL) over teacher-forced reference tokens."""
        if not self.logprobs:
            return float("nan")
        return float(np.exp(-np.mean(self.logprobs)))

    @property
    def avg_exit_layer(self) -> float:
        """Average forward layers per token, 1-based (paper's '#Avg. L')."""
        if not self.exit_layers:
            return float("nan")
        return float(np.mean(np.asarray(self.exit_layers) + 1))

    @property
    def early_exit_rate(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([r.early_exit for r in self.records]))

    @property
    def avg_active_predictors(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([r.active_predictors for r in self.records]))


class SpecEEEngine:
    """Autoregressive decoding with speculative early exiting."""

    def __init__(
        self,
        model: LayeredLM,
        speculator: Speculator,
        predictors: PredictorBank,
        config: Optional[SpecEEConfig] = None,
        scheduler: Optional[Scheduler] = None,
    ):
        self.model = model
        self.speculator = speculator
        self.predictors = predictors
        self.config = config or SpecEEConfig()
        if speculator.k != self.config.num_speculative:
            raise ValueError(
                f"speculator k={speculator.k} != config num_speculative="
                f"{self.config.num_speculative}"
            )
        self.scheduler = scheduler or make_scheduler(
            self.config.scheduler, model.n_layers,
            window=self.config.context_window, vicinity=self.config.layer_vicinity,
        )
        self._extractor = FeatureExtractor(self.config.num_speculative)
        # Per-sequence extractors for step_batch (each sequence's feature
        # variation history must stay isolated); grown on demand.
        self._extractor_pool: List[FeatureExtractor] = []
        #: Score every live sequence's exit predictor in one vectorized pass
        #: per active layer inside :meth:`step_batch` — a single union-sliced
        #: LM-head GEMM plus one MLP forward — instead of per sequence.
        #: Decision-identical to the per-sequence path; the flag exists so
        #: benchmarks and tests can compare the two.
        self.batched_predictors: bool = True

    def generate(
        self,
        prompt: Sequence[int],
        max_new_tokens: int,
        script: Optional[Sequence[int]] = None,
        force_tokens: Optional[Sequence[int]] = None,
    ) -> GenerationResult:
        """Greedy decode with early exiting; returns tokens + diagnostics.

        ``force_tokens`` switches to teacher forcing for perplexity
        evaluation: the engine still decides exit layers freely, records the
        log-probability of each reference token under the exit-layer
        distribution, but commits the reference so the context follows the
        dataset text.
        """
        state, result = self.prefill(prompt, script=script)
        self.scheduler.reset()
        if force_tokens is not None:
            max_new_tokens = len(force_tokens)
        for step in range(max_new_tokens):
            forced = None if force_tokens is None else int(force_tokens[step])
            self.step(state, result, forced)
        return self.finish(state, result)

    # -- incremental API (one sequence among many) ---------------------------
    def prefill(
        self, prompt: Sequence[int], script: Optional[Sequence[int]] = None
    ) -> tuple[LMState, GenerationResult]:
        """Start a sequence: model state plus an empty result whose ledger
        carries the prompt prefill.  Callers driving :meth:`step` directly
        (the continuous-batching server) own the scheduler lifetime — pass a
        per-sequence scheduler to every ``step`` call."""
        state = self.model.start(prompt, script=script)
        result = GenerationResult()
        result.ledger.prompt_tokens = len(state.context)
        result.ledger.add(Event.PREFILL_LAYER, calls=self.model.n_layers,
                          units=self.model.n_layers * len(state.context))
        return state, result

    def finish(self, state: LMState, result: GenerationResult) -> GenerationResult:
        """Seal a sequence: copy model-internal diagnostics into the result."""
        result.saturations = list(getattr(state, "saturation_layers", []))
        return result

    def step(
        self,
        state: LMState,
        result: GenerationResult,
        forced: Optional[int] = None,
        scheduler: Optional[Scheduler] = None,
        capture_hidden: bool = False,
        exit_threshold: Optional[float] = None,
        draft_len: Optional[int] = None,
    ) -> StepRecord:
        """Advance one sequence by one token.

        ``scheduler`` overrides the engine's own predictor scheduler; batched
        serving passes one per sequence so each request's online exit history
        stays isolated (and outputs match an unbatched run token for token).
        ``capture_hidden`` copies the exit-layer hidden state onto the
        returned record — the serving scheduler persists it as the token's
        paged-KV payload; plain generation skips the copy.

        ``exit_threshold`` / ``draft_len`` are the adaptive-control actuation
        points (``repro.serving.control``): the former replaces the configured
        exit threshold for this token only; the latter truncates the proposed
        draft to its first ``draft_len`` candidates — fewer LM-head columns
        sliced per active layer (``LM_HEAD_SLICE`` priced at the truncated
        width) and fewer candidates verified against.  The draft model still
        runs at full ``k`` (``DRAFT_STEP`` cost unchanged); truncated feature
        vectors are padded back to width ``k`` (see :data:`DRAFT_PAD_MARGIN`)
        so the trained 3k-input predictor MLPs are untouched.  Defaults
        reproduce the static engine bit for bit.
        """
        model, cfg, ledger = self.model, self.config, result.ledger
        sched = scheduler if scheduler is not None else self.scheduler
        threshold = cfg.exit_threshold if exit_threshold is None else float(exit_threshold)
        k = cfg.num_speculative
        d = k if draft_len is None else max(1, min(k, int(draft_len)))
        spec_tokens = self.speculator.propose(state.context)
        if d < k:
            spec_tokens = spec_tokens[:d]
        draft_hit = self.speculator.is_hit(state.context)
        ledger.add(Event.DRAFT_STEP)
        model.begin_step(state)
        self._extractor.reset()

        n_layers = model.n_layers
        exit_token: Optional[int] = None
        exit_layer = n_layers - 1
        predictor_evals = 0
        verify_attempts = 0
        active_predictors = sched.active_count()

        hidden = None
        for layer in range(n_layers):
            hidden = model.layer_forward(state, layer)
            ledger.add(Event.DECODER_LAYER)
            if layer >= n_layers - 1 or layer < cfg.min_exit_layer:
                continue
            if not sched.is_active(layer):
                continue
            spec_logits = model.lm_head_slice(hidden, spec_tokens)
            ledger.add(Event.LM_HEAD_SLICE, units=d)
            features = self._extractor.extract(self._pad_draft_logits(spec_logits, k))
            ledger.add(Event.PREDICTOR)
            predictor_evals += 1
            probability = self.predictors.probability(layer, features)
            if probability < threshold:
                continue
            if cfg.verify_on_exit:
                verify_attempts += 1
                ledger.add(Event.LM_HEAD_FULL)
                verdict = verify_exit(model, hidden, spec_tokens)
                if verdict.ok:
                    exit_token, exit_layer = verdict.token, layer
                    break
            else:
                # Unverified exit (ablation only): trust the top local token.
                exit_token = int(spec_tokens[int(np.argmax(spec_logits))])
                exit_layer = layer
                break

        if exit_token is None:
            ledger.add(Event.LM_HEAD_FULL)
            exit_token = int(np.argmax(model.lm_head_full(hidden)))
            exit_layer = n_layers - 1
        else:
            # Early exit skips the remaining layers; the KV slots they would
            # have produced are filled from the exit hidden state.
            ledger.add(Event.KV_FILL, units=n_layers - 1 - exit_layer)

        early = exit_layer < n_layers - 1
        if forced is not None:
            from repro.utils.mathx import log_softmax

            result.logprobs.append(float(log_softmax(model.lm_head_full(hidden))[forced]))
            exit_token = forced
        model.commit(state, exit_token, exit_layer)
        if early:
            sched.observe_exit(exit_layer)
        ledger.tokens_generated += 1
        ledger.steps += 1
        record = StepRecord(
            token=exit_token, exit_layer=exit_layer, early_exit=early,
            predictor_evals=predictor_evals, verify_attempts=verify_attempts,
            active_predictors=active_predictors, draft_hit=draft_hit,
            hidden=np.array(hidden, copy=True) if capture_hidden and hidden is not None else None,
        )
        result.tokens.append(exit_token)
        result.exit_layers.append(exit_layer)
        result.records.append(record)
        return record

    @staticmethod
    def _pad_draft_logits(spec_logits: np.ndarray, k: int) -> np.ndarray:
        """Pad a truncated draft's sliced logits back to width ``k`` with a
        clearly-losing in-distribution value (row minimum minus
        :data:`DRAFT_PAD_MARGIN`); no-op for full-width drafts."""
        if len(spec_logits) == k:
            return spec_logits
        padded = np.full(k, float(np.min(spec_logits)) - DRAFT_PAD_MARGIN,
                         dtype=np.float64)
        padded[: len(spec_logits)] = spec_logits
        return padded

    def step_batch(
        self,
        states: Sequence[LMState],
        results: Sequence[GenerationResult],
        schedulers: Sequence[Scheduler],
        capture_hidden: bool = False,
        exit_thresholds: Optional[Sequence[float]] = None,
        draft_lens: Optional[Sequence[int]] = None,
    ) -> List[StepRecord]:
        """Advance many sequences by one token each, batching the layer math.

        The decision logic is exactly :meth:`step`'s, applied per sequence:
        every sequence keeps its own predictor scheduler, feature-extractor
        history and cost ledger, so the committed tokens are identical to
        running the sequences through :meth:`step` one at a time.  What is
        shared is the *weight pass*: each decoder layer runs once over the
        batch of sequences still alive at that depth
        (:meth:`~repro.model.base.LayeredLM.layer_forward_batch`), and
        sequences drop out of the batch the moment their exit verifies — the
        SpecEE layer-skip shape, now with shrinking GEMMs.  With
        :attr:`batched_predictors` set (the default) the per-layer exit
        machinery is vectorized too: one LM-head slice over the union of all
        live sequences' draft tokens, one feature-extraction pass and one MLP
        forward score the whole block, replacing the per-sequence python
        loop.  Backends without real batched math
        (``supports_batched_decode`` False) fall back to a scalar
        :meth:`step` loop.

        ``exit_thresholds`` / ``draft_lens`` carry per-sequence adaptive
        control overrides (see :meth:`step`), aligned with ``states``; both
        paths honor them, and ``None`` (the default) reproduces the static
        engine bit for bit.
        """
        b = len(states)
        if not (b == len(results) == len(schedulers)):
            raise ValueError("states, results and schedulers must align")
        if b == 0:
            return []
        model, cfg = self.model, self.config
        k = cfg.num_speculative
        ths = ([cfg.exit_threshold] * b if exit_thresholds is None
               else [float(t) for t in exit_thresholds])
        ds = ([k] * b if draft_lens is None
              else [max(1, min(k, int(d))) for d in draft_lens])
        if not (b == len(ths) == len(ds)):
            raise ValueError("control overrides must align with states")
        if not model.supports_batched_decode:
            return [self.step(state, result, scheduler=sched,
                              capture_hidden=capture_hidden,
                              exit_threshold=th, draft_len=d)
                    for state, result, sched, th, d
                    in zip(states, results, schedulers, ths, ds)]

        spec_tokens = [self.speculator.propose(state.context) for state in states]
        draft_hits = [self.speculator.is_hit(state.context) for state in states]
        while len(self._extractor_pool) < b:
            self._extractor_pool.append(FeatureExtractor(cfg.num_speculative))
        extractors = self._extractor_pool[:b]
        for result, extractor in zip(results, extractors):
            result.ledger.add(Event.DRAFT_STEP)
            extractor.reset()

        n_layers = model.n_layers
        # Load-shortened drafts, padded back to width k by repeating the top
        # candidate so every row stays rectangular for the union slice; the
        # padded columns are floored below the row minimum after the gather,
        # so feature rows match the scalar path's padded vectors exactly.
        cand = np.stack([
            spec_tokens[i] if ds[i] == k else
            np.concatenate([spec_tokens[i][:ds[i]],
                            np.repeat(spec_tokens[i][:1], k - ds[i])])
            for i in range(b)])
        d_arr = np.asarray(ds)
        exit_token: List[Optional[int]] = [None] * b
        exit_layer = [n_layers - 1] * b
        predictor_evals = [0] * b
        verify_attempts = [0] * b
        active_predictors = [sched.active_count() for sched in schedulers]
        # Vectorized-path feature history, mirroring FeatureExtractor's state:
        # each row's last evaluated local probabilities plus a validity bit
        # (the first evaluated layer of a step reports zero variation).
        last_probs = np.zeros((b, k))
        has_last = np.zeros(b, dtype=bool)

        hidden = model.begin_step_batch(states)  # [B, dim]
        live = list(range(b))
        for layer in range(n_layers):
            new = model.layer_forward_batch([states[i] for i in live], layer,
                                            hidden[live])
            hidden[live] = new
            for i in live:
                results[i].ledger.add(Event.DECODER_LAYER)
            if layer >= n_layers - 1 or layer < cfg.min_exit_layer:
                continue
            scored: Dict[int, Tuple[np.ndarray, float]] = {}
            if self.batched_predictors:
                # One pass scores every scheduler-active sequence: slice the
                # LM head once over the union of all draft tokens, gather
                # each row's own candidates back out, extract features and
                # run the layer's MLP over the whole block.
                active = [(pos, i) for pos, i in enumerate(live)
                          if schedulers[i].is_active(layer)]
                if active:
                    rows = [pos for pos, _ in active]
                    idxs = [i for _, i in active]
                    union, inverse = np.unique(
                        np.concatenate([cand[i] for i in idxs]),
                        return_inverse=True)
                    sliced = model.lm_head_slice_batch(new[rows], union)
                    cols = inverse.reshape(len(idxs), k)
                    local = sliced[np.arange(len(idxs))[:, None], cols]
                    pad = np.arange(k)[None, :] >= d_arr[idxs][:, None]
                    if pad.any():
                        # Padded columns gathered token-0's (real) logit, so
                        # the row min equals the min over the real columns.
                        floor = local.min(axis=1, keepdims=True) - DRAFT_PAD_MARGIN
                        local = np.where(pad, floor, local)
                    feats, probs = FeatureExtractor.extract_rows(
                        local, last_probs[idxs], has_last[idxs])
                    last_probs[idxs] = probs
                    has_last[idxs] = True
                    scores = self.predictors.probability_batch(layer, feats)
                    scored = {i: (local[j], float(scores[j]))
                              for j, i in enumerate(idxs)}
            still: List[int] = []
            for pos, i in enumerate(live):
                if self.batched_predictors:
                    if i not in scored:
                        still.append(i)
                        continue
                    local_logits, probability = scored[i]
                else:
                    if not schedulers[i].is_active(layer):
                        still.append(i)
                        continue
                    local_logits = model.lm_head_slice(
                        new[pos], spec_tokens[i][:ds[i]])
                    probability = self.predictors.probability(
                        layer, extractors[i].extract(
                            self._pad_draft_logits(local_logits, k)))
                ledger = results[i].ledger
                ledger.add(Event.LM_HEAD_SLICE, units=ds[i])
                ledger.add(Event.PREDICTOR)
                predictor_evals[i] += 1
                if probability < ths[i]:
                    still.append(i)
                    continue
                if cfg.verify_on_exit:
                    verify_attempts[i] += 1
                    ledger.add(Event.LM_HEAD_FULL)
                    verdict = verify_exit(model, new[pos], spec_tokens[i][:ds[i]])
                    if verdict.ok:
                        exit_token[i], exit_layer[i] = verdict.token, layer
                    else:
                        still.append(i)
                else:
                    # Unverified exit (ablation only): trust the top local token.
                    exit_token[i] = int(spec_tokens[i][int(np.argmax(local_logits))])
                    exit_layer[i] = layer
            live = still
            if not live:
                break

        finals = [i for i in range(b) if exit_token[i] is None]
        if finals:
            logits = model.lm_head_full_batch(hidden[finals])
            for row, i in zip(logits, finals):
                results[i].ledger.add(Event.LM_HEAD_FULL)
                exit_token[i] = int(np.argmax(row))
                exit_layer[i] = n_layers - 1

        for i in range(b):
            if exit_layer[i] < n_layers - 1:
                results[i].ledger.add(Event.KV_FILL,
                                      units=n_layers - 1 - exit_layer[i])
        model.commit_batch(states, exit_token, exit_layer)

        records: List[StepRecord] = []
        for i in range(b):
            early = exit_layer[i] < n_layers - 1
            if early:
                schedulers[i].observe_exit(exit_layer[i])
            ledger = results[i].ledger
            ledger.tokens_generated += 1
            ledger.steps += 1
            record = StepRecord(
                token=exit_token[i], exit_layer=exit_layer[i], early_exit=early,
                predictor_evals=predictor_evals[i],
                verify_attempts=verify_attempts[i],
                active_predictors=active_predictors[i], draft_hit=draft_hits[i],
                hidden=np.array(hidden[i], copy=True) if capture_hidden else None,
            )
            results[i].tokens.append(exit_token[i])
            results[i].exit_layers.append(exit_layer[i])
            results[i].records.append(record)
            records.append(record)
        return records
