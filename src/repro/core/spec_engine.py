"""SpecEE under speculative decoding (T3, paper Sec. 6).

Combines tree-based speculative decoding with early exiting: the draft model
grows a token tree, the verification forward runs layer by layer, and at
predictor-active layers every root-to-leaf path — merged into a hyper-token
(:mod:`repro.mapping.hyper_token`) — is tested for exit.  Per-node candidate
logits come from one block-wise grouped GEMM per layer (Fig. 13).  When the
accepted path is covered by a fired hyper-token, the remaining layers are
skipped for the *whole tree*, and the verify forward emits
``accepted + 1`` tokens at a fraction of the depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import SpecEEConfig
from repro.core.predictor import PredictorBank
from repro.core.scheduling import Scheduler, make_scheduler
from repro.hardware.ledger import CostLedger, Event
from repro.mapping.grouped_gemm import tree_children_logits
from repro.mapping.hyper_token import HyperToken, aggregate_path_logits, merged_mapping
from repro.mapping.tree import AcceptResult, greedy_accept
from repro.model.draft import DraftTree, TreeDrafter
from repro.model.synthetic import SyntheticLayeredLM, SyntheticState
from repro.utils.mathx import softmax

__all__ = ["IterationRecord", "SpecDecodeResult", "SpecEESpeculativeEngine"]


@dataclass
class IterationRecord:
    """Diagnostics for one verify iteration."""

    tree_size: int
    accepted: int
    tokens_emitted: int
    exit_layer: int
    early_exit: bool
    predictor_evals: int


@dataclass
class SpecDecodeResult:
    """Tokens plus per-iteration diagnostics and the cost ledger."""

    tokens: List[int] = field(default_factory=list)
    iterations: List[IterationRecord] = field(default_factory=list)
    ledger: CostLedger = field(default_factory=CostLedger)

    @property
    def tokens_per_iteration(self) -> float:
        if not self.iterations:
            return float("nan")
        return float(np.mean([r.tokens_emitted for r in self.iterations]))

    @property
    def avg_exit_layer(self) -> float:
        if not self.iterations:
            return float("nan")
        return float(np.mean([r.exit_layer + 1 for r in self.iterations]))


class SpecEESpeculativeEngine:
    """Tree-based speculative decoding with hyper-token early exiting."""

    def __init__(
        self,
        model: SyntheticLayeredLM,
        drafter: TreeDrafter,
        predictors: PredictorBank,
        config: Optional[SpecEEConfig] = None,
        scheduler: Optional[Scheduler] = None,
        early_exit: bool = True,
    ):
        self.model = model
        self.drafter = drafter
        self.predictors = predictors
        self.config = config or SpecEEConfig()
        # Hyper-token exits land at the max over a path's saturation layers,
        # systematically deeper than the autoregressive exit peak, so offline
        # placements profiled in AR mode undershoot.  The online scheduler
        # (full coverage until the first exit warms its queue, then vicinity
        # tracking) adapts to the tree statistics by construction.
        self.scheduler = scheduler or make_scheduler(
            "online", model.n_layers,
            window=self.config.context_window, vicinity=self.config.layer_vicinity,
        )
        self.early_exit = early_exit

    # -- public API ------------------------------------------------------------
    def generate(self, prompt: Sequence[int], max_new_tokens: int) -> SpecDecodeResult:
        state = self.model.start(prompt)
        result = SpecDecodeResult()
        result.ledger.prompt_tokens = len(state.context)
        result.ledger.add(Event.PREFILL_LAYER, calls=self.model.n_layers,
                          units=self.model.n_layers * len(state.context))
        self.scheduler.reset()
        while len(result.tokens) < max_new_tokens:
            self._iterate(state, result)
        del result.tokens[max_new_tokens:]
        return result

    # -- one verify iteration ----------------------------------------------------
    def _iterate(self, state: SyntheticState, result: SpecDecodeResult) -> None:
        model, cfg, ledger = self.model, self.config, result.ledger
        tree = self.drafter.build(state.context)
        ledger.add(Event.DRAFT_STEP, calls=self.drafter.depth)
        model.begin_tree(state, tree.tokens, tree.parents)

        hypers = merged_mapping(tree)
        children_tokens = [
            [tree.tokens[c] for c in tree.children_of(i)] for i in range(len(tree))
        ]
        root_children = [tree.tokens[i] for i, p in enumerate(tree.parents) if p < 0]
        head = self._head_matrix()
        m = len(tree)
        n_layers = model.n_layers
        last_probs: Dict[HyperToken, np.ndarray] = {}
        predictor_evals = 0
        accept: Optional[AcceptResult] = None
        exit_layer = n_layers - 1
        tried_fired_sets: set = set()

        hidden = None
        root_hidden = None
        for layer in range(n_layers):
            hidden = model.tree_layer_forward(state, layer)
            root_hidden = model.root_hidden(state, layer)
            ledger.add(Event.TREE_VERIFY_LAYER, units=m + 1)
            if not self.early_exit:
                continue
            if layer >= n_layers - 1 or layer < cfg.min_exit_layer:
                continue
            if not self.scheduler.is_active(layer):
                continue

            stacked = np.vstack([hidden, root_hidden[None, :]])
            per_node = tree_children_logits(
                stacked, head, children_tokens + [root_children]
            )
            ledger.add(Event.TREE_FEATURE_GEMM, units=m + 1)
            root_logits = per_node[-1]
            fired: List[HyperToken] = []
            for hyper in hypers:
                agg = aggregate_path_logits(per_node[:-1], hyper, cfg.num_speculative,
                                            include_root=root_logits)
                probs = softmax(agg)
                variation = probs - last_probs.get(hyper, probs)
                features = np.concatenate([agg, probs, variation])
                last_probs[hyper] = probs
                predictor_evals += 1
                if self.predictors.probability(layer, features) >= cfg.exit_threshold:
                    fired.append(hyper)
            # All hyper-tokens share one batched predictor launch (the
            # merged mapping makes the per-layer predictor cost independent
            # of tree width).
            ledger.add(Event.PREDICTOR)
            if not fired:
                continue

            # Cheap local screen before the expensive global verification:
            # the argmax-child walk (computable from the grouped-GEMM logits
            # already in hand) must coincide with a fired hyper-token,
            # otherwise the acceptance cannot be covered and the full
            # LM-head pass would be wasted.
            walk = self._argmax_walk(tree, per_node, root_logits)
            if not any(tuple(walk) == hyper.nodes for hyper in fired):
                continue
            # Re-verify only when the predictor/walk state actually changed;
            # repeating an identical failed attempt at the next layer would
            # give the same answer.
            attempt_key = (tuple(walk), tuple(sorted(h.nodes for h in fired)))
            if attempt_key in tried_fired_sets:
                continue
            tried_fired_sets.add(attempt_key)
            candidate = self._verify(state, tree, hidden, root_hidden, ledger)
            if self._covered(candidate, fired):
                accept = candidate
                exit_layer = layer
                break

        if accept is None:
            accept = self._verify(state, tree, hidden, root_hidden, ledger)
            exit_layer = n_layers - 1

        early = exit_layer < n_layers - 1
        model.end_tree(state, accept.tokens, exit_layer)
        if early:
            self.scheduler.observe_exit(exit_layer)
        emitted = len(accept.tokens)
        ledger.tokens_generated += emitted
        ledger.steps += 1
        if early:
            ledger.add(Event.KV_FILL, units=n_layers - 1 - exit_layer)
        result.tokens.extend(accept.tokens)
        result.iterations.append(IterationRecord(
            tree_size=m, accepted=len(accept.accepted_tokens), tokens_emitted=emitted,
            exit_layer=exit_layer, early_exit=early, predictor_evals=predictor_evals,
        ))

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _root_nodes(tree: DraftTree) -> List[int]:
        return [i for i, p in enumerate(tree.parents) if p < 0]

    @staticmethod
    def _argmax_walk(
        tree: DraftTree,
        per_node_logits: Sequence[np.ndarray],
        root_logits: np.ndarray,
    ) -> List[int]:
        """Follow the locally-preferred (argmax) child from the root down to
        a leaf; returns the node-index path."""
        walk: List[int] = []
        current_nodes = [i for i, p in enumerate(tree.parents) if p < 0]
        current_logits = np.asarray(root_logits)
        while current_nodes and current_logits.size:
            best = current_nodes[int(np.argmax(current_logits))]
            walk.append(best)
            current_nodes = tree.children_of(best)
            current_logits = np.asarray(per_node_logits[best])
        return walk

    def _head_matrix(self) -> np.ndarray:
        """Full LM-head weight ``[d, V]`` for the grouped GEMM."""
        model = self.model
        return (model.profile.gain * model._emb).T

    def _verify(
        self,
        state: SyntheticState,
        tree: DraftTree,
        hidden: np.ndarray,
        root_hidden: np.ndarray,
        ledger: CostLedger,
    ) -> AcceptResult:
        """Full-vocabulary argmax at every node + root, then greedy accept."""
        ledger.add(Event.LM_HEAD_FULL, calls=len(tree) + 1)
        node_outputs = [
            int(np.argmax(self.model.lm_head_full(hidden[i]))) for i in range(len(tree))
        ]
        root_output = int(np.argmax(self.model.lm_head_full(root_hidden)))
        return greedy_accept(tree, root_output, node_outputs)

    @staticmethod
    def _covered(accept: AcceptResult, fired: Sequence[HyperToken]) -> bool:
        """Is the accepted path a prefix of any fired hyper-token?

        An empty acceptance means the root's argmax is not among the draft's
        level-1 candidates — the tree-mode analogue of a failed verification
        — so the iteration must run to full depth (mirroring Sec. 4.3.3).
        """
        accepted = tuple(accept.accepted_nodes)
        if not accepted:
            return False
        return any(hyper.nodes[: len(accepted)] == accepted for hyper in fired)
