"""SpecEE core: the paper's contribution.

* :mod:`repro.core.features` — T1 feature extraction (Sec. 4.3.1).
* :mod:`repro.core.predictor` — the lightweight MLP exit predictor and the
  per-layer predictor bank (Sec. 4.3.2).
* :mod:`repro.core.predictor_training` — offline trace harvesting and
  training (Sec. 7.4.4).
* :mod:`repro.core.verification` — the global-argmax verification algorithm
  (Sec. 4.3.3).
* :mod:`repro.core.scheduling` — T2 two-level heuristic scheduling (Sec. 5).
* :mod:`repro.core.engine` — the autoregressive SpecEE engine (T1 + T2).
* :mod:`repro.core.spec_engine` — SpecEE under speculative decoding with
  context-aware merged mapping (T3, Sec. 6).
"""

from repro.core.engine import GenerationResult, SpecEEEngine
from repro.core.features import FeatureExtractor
from repro.core.predictor import ExitPredictor, PredictorBank
from repro.core.predictor_training import (
    TrainingCorpus,
    harvest_training_corpus,
    train_predictor_bank,
)
from repro.core.scheduling import (
    AllLayersScheduler,
    OfflineScheduler,
    OnlineScheduler,
    TwoLevelScheduler,
    make_scheduler,
)
from repro.core.spec_engine import SpecDecodeResult, SpecEESpeculativeEngine
from repro.core.verification import verify_exit

__all__ = [
    "AllLayersScheduler",
    "ExitPredictor",
    "FeatureExtractor",
    "GenerationResult",
    "OfflineScheduler",
    "OnlineScheduler",
    "PredictorBank",
    "SpecDecodeResult",
    "SpecEEEngine",
    "SpecEESpeculativeEngine",
    "TrainingCorpus",
    "TwoLevelScheduler",
    "harvest_training_corpus",
    "make_scheduler",
    "train_predictor_bank",
    "verify_exit",
]
