"""Verification algorithm (paper Sec. 4.3.3).

The predictor's features are *local* (softmax over the k candidates only),
so a positive prediction is confirmed with one full-vocabulary projection:
compute global logits, and exit only if the global argmax is one of the
speculative tokens.  This single check is what bounds SpecEE's accuracy loss
— an exit can only emit a token that is, at that layer, the model's own
greedy choice.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

from repro.model.base import LayeredLM

__all__ = ["VerifyResult", "verify_exit"]


class VerifyResult(NamedTuple):
    """Outcome of one verification: whether to exit and with which token."""

    ok: bool
    token: int


def verify_exit(
    model: LayeredLM, hidden: np.ndarray, spec_tokens: Sequence[int]
) -> VerifyResult:
    """Run the full LM head and test the global argmax against the candidates.

    The caller is responsible for charging the ``lm_head_full`` cost event —
    verification is exactly one full projection.
    """
    logits = model.lm_head_full(hidden)
    token = int(np.argmax(logits))
    return VerifyResult(ok=token in set(int(t) for t in spec_tokens), token=token)
