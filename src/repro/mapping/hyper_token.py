"""Context-aware merged mapping (paper Sec. 6.2).

Treating every tree node as an independent predictor search space makes the
joint mapping complexity the *product* of per-node complexities.  The merged
mapping collapses each root-to-leaf path into one **hyper-token**: the path
exits when its *rearmost-saturating* member does (the Cannikin/bucket law),
and context similarity along a path keeps that bottleneck close to the
front-runner, so merging costs little depth.

Feature aggregation follows the bottleneck semantics: per speculative slot,
the hyper-token's logits/probabilities are the element-wise minimum over the
path's member nodes of their (descending-sorted, padded) per-node features —
the least-saturated member dominates the decision, which is exactly the exit
rule the Cannikin law dictates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.model.draft import DraftTree

__all__ = ["HyperToken", "merged_mapping", "aggregate_path_logits"]


@dataclass(frozen=True)
class HyperToken:
    """One merged path: node indices from root-child to leaf."""

    nodes: Tuple[int, ...]
    tokens: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.nodes)


def merged_mapping(tree: DraftTree) -> List[HyperToken]:
    """Merge every root-to-leaf path of ``tree`` into a hyper-token.

    The number of hyper-tokens is the number of leaves — linear in tree size
    — versus the exponential product mapping of per-node predictors.
    """
    out: List[HyperToken] = []
    for path in tree.paths():
        out.append(HyperToken(
            nodes=tuple(path),
            tokens=tuple(tree.tokens[i] for i in path),
        ))
    return out


def aggregate_path_logits(
    per_node_logits: Sequence[np.ndarray],
    hyper: HyperToken,
    k: int,
    include_root: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Bottleneck-aggregate sliced logits along a hyper-token's path.

    ``per_node_logits[i]`` holds node ``i``'s logits over its own children
    (variable length; empty for leaves).  Each contributing vector is sorted
    descending and padded with the minimum observed value to length ``k``;
    the aggregate is the element-wise minimum across contributors — the
    least-confident member of the path gates the hyper-token's exit.
    ``include_root`` optionally adds the committed-context position's logits.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    contributors: List[np.ndarray] = []
    if include_root is not None and len(include_root):
        contributors.append(np.asarray(include_root, dtype=np.float64))
    for node in hyper.nodes:
        logits = np.asarray(per_node_logits[node], dtype=np.float64)
        if len(logits):
            contributors.append(logits)
    if not contributors:
        raise ValueError("hyper-token has no contributing logits")
    padded = np.full((len(contributors), k), np.inf)
    for row, logits in enumerate(contributors):
        ordered = np.sort(logits)[::-1][:k]
        padded[row, : len(ordered)] = ordered
        if len(ordered) < k:
            padded[row, len(ordered):] = ordered.min()
    return padded.min(axis=0)
