"""Tree-verification helpers shared by EAGLE and SpecEE+EAGLE.

Greedy speculative verification walks the draft tree from the root: at each
accepted node the target model's (argmax) output selects which child — if
any — is accepted next; the last accepted node's output is emitted as the
*bonus* token, so every verify forward yields ``accepted + 1`` tokens.
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence

from repro.model.draft import DraftTree

__all__ = ["AcceptResult", "greedy_accept"]


class AcceptResult(NamedTuple):
    """Outcome of greedy tree verification."""

    accepted_nodes: List[int]   # node indices along the accepted path
    accepted_tokens: List[int]  # their draft tokens
    bonus_token: int            # target-model output after the accepted path

    @property
    def tokens(self) -> List[int]:
        return self.accepted_tokens + [self.bonus_token]


def greedy_accept(
    tree: DraftTree,
    root_output: int,
    node_outputs: Sequence[int],
) -> AcceptResult:
    """Walk the tree accepting children that match the model's outputs.

    ``root_output`` is the model's argmax at the committed-context position;
    ``node_outputs[i]`` its argmax at tree node ``i``.
    """
    if len(node_outputs) != len(tree):
        raise ValueError(
            f"node_outputs length {len(node_outputs)} != tree size {len(tree)}"
        )
    accepted_nodes: List[int] = []
    accepted_tokens: List[int] = []
    current_parent = -1
    expected = int(root_output)
    while True:
        children = [i for i, p in enumerate(tree.parents) if p == current_parent]
        match = next((i for i in children if tree.tokens[i] == expected), None)
        if match is None:
            break
        accepted_nodes.append(match)
        accepted_tokens.append(tree.tokens[match])
        expected = int(node_outputs[match])
        current_parent = match
    return AcceptResult(
        accepted_nodes=accepted_nodes,
        accepted_tokens=accepted_tokens,
        bonus_token=expected,
    )
