"""Block-wise grouped GEMM (the MegaBlocks/cutlass-style operator of Fig. 13).

During tree verification every node needs logits over a *different* small
column set (its own children in the draft tree).  Launching one GEMV per node
wastes the GPU; the paper fuses them into a single block-wise grouped matmul.
This module reproduces the operator's semantics in numpy: variable-size
groups are padded to a block size and computed in one batched einsum, exactly
like a tiled group-GEMM kernel would, and the padding is stripped on output.
The tests verify equivalence with the naive per-group loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["GroupSpec", "grouped_gemm", "tree_children_logits"]


@dataclass(frozen=True)
class GroupSpec:
    """One group: row ``row`` of the activation matrix times a column subset
    of the weight matrix."""

    row: int
    columns: tuple

    def __post_init__(self) -> None:
        if len(self.columns) == 0:
            raise ValueError("a group must select at least one column")


def grouped_gemm(
    activations: np.ndarray,
    weight: np.ndarray,
    groups: Sequence[GroupSpec],
    block: int = 8,
) -> List[np.ndarray]:
    """Compute ``activations[g.row] @ weight[:, g.columns]`` for every group.

    Parameters
    ----------
    activations : ``[m, d]`` hidden states (one row per tree node).
    weight : ``[d, V]`` LM-head weight.
    groups : column subsets, one per node.
    block : tile width groups are padded to (kernel blocking granularity).

    Returns a list of 1-D logit arrays, one per group, padding removed.
    """
    activations = np.asarray(activations, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    if activations.ndim != 2 or weight.ndim != 2:
        raise ValueError("activations must be [m, d] and weight [d, V]")
    if activations.shape[1] != weight.shape[0]:
        raise ValueError(
            f"inner dims differ: {activations.shape[1]} vs {weight.shape[0]}"
        )
    if block < 1:
        raise ValueError("block must be >= 1")
    n_groups = len(groups)
    if n_groups == 0:
        return []
    widths = [len(g.columns) for g in groups]
    max_width = max(widths)
    padded = ((max_width + block - 1) // block) * block

    # Gather: build [G, d, padded] weight tiles (column 0 repeats as padding —
    # its results are discarded, mirroring a kernel's masked tail tile).
    col_index = np.zeros((n_groups, padded), dtype=np.int64)
    for gi, g in enumerate(groups):
        cols = np.asarray(g.columns, dtype=np.int64)
        col_index[gi, : len(cols)] = cols
    tiles = weight[:, col_index]              # [d, G, padded]
    tiles = np.moveaxis(tiles, 1, 0)          # [G, d, padded]
    rows = activations[[g.row for g in groups]]  # [G, d]

    out = np.einsum("gd,gdp->gp", rows, tiles)
    return [out[gi, : widths[gi]].copy() for gi in range(n_groups)]


def tree_children_logits(
    hidden: np.ndarray,
    lm_head_columns: np.ndarray,
    children_tokens: Sequence[Sequence[int]],
    block: int = 8,
) -> List[np.ndarray]:
    """Per-node logits over each node's child tokens, via one grouped GEMM.

    ``hidden`` is ``[m, d]`` (tree-node hidden states), ``lm_head_columns`` is
    the full ``[d, V]`` head; ``children_tokens[i]`` lists node ``i``'s child
    token ids (empty lists are skipped and return an empty array).
    """
    groups: List[GroupSpec] = []
    positions: List[int] = []
    for i, children in enumerate(children_tokens):
        if children:
            groups.append(GroupSpec(row=i, columns=tuple(int(t) for t in children)))
            positions.append(i)
    results = grouped_gemm(hidden, lm_head_columns, groups, block=block)
    out: List[np.ndarray] = [np.empty(0) for _ in children_tokens]
    for pos, res in zip(positions, results):
        out[pos] = res
    return out
