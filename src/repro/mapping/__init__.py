"""T3 machinery: token trees, hyper-token merged mapping, grouped GEMM."""

from repro.mapping.grouped_gemm import GroupSpec, grouped_gemm, tree_children_logits
from repro.mapping.hyper_token import HyperToken, merged_mapping
from repro.mapping.tree import greedy_accept

__all__ = [
    "GroupSpec",
    "HyperToken",
    "greedy_accept",
    "grouped_gemm",
    "merged_mapping",
    "tree_children_logits",
]
