"""Roofline latency model: prices a cost ledger for (model, device, framework).

Single-stream LLM decoding is memory-bound: a decoder layer's latency is its
weight (+KV) traffic over achieved bandwidth, floored by its FLOPs over
achieved compute, plus dispatch overhead.  Batched tree verification shares
the weight traffic across tree tokens and pays a per-token FLOP increment.
The draft model is priced like ~2 decoder layers of traffic (the paper notes
the speculative model costs about one executed layer per token; EAGLE's head
is 0.9-1.4 GB, Fig. 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import ModelSpec
from repro.hardware.devices import DeviceSpec, get_device
from repro.hardware.frameworks import FrameworkProfile, get_framework
from repro.hardware.ledger import CostLedger, Event

__all__ = ["LatencyBreakdown", "LatencyModel", "DRAFT_LAYER_EQUIVALENT"]

# EAGLE-style draft heads weigh about this many target-model decoder layers
# (0.9 GB for Llama2-7B => ~2.2 fp16 layers — Fig. 17).
DRAFT_LAYER_EQUIVALENT = 2.2


@dataclass
class LatencyBreakdown:
    """Priced ledger: total seconds, per-event seconds, tokens/s."""

    total_s: float
    per_event_s: Dict[str, float] = field(default_factory=dict)
    tokens_generated: int = 0

    @property
    def tokens_per_second(self) -> float:
        if self.total_s <= 0:
            return float("nan")
        return self.tokens_generated / self.total_s

    @property
    def seconds_per_token(self) -> float:
        if self.tokens_generated == 0:
            return float("nan")
        return self.total_s / self.tokens_generated

    def share(self, kind: str) -> float:
        """Fraction of total time spent in ``kind``."""
        if self.total_s <= 0:
            return float("nan")
        return self.per_event_s.get(kind, 0.0) / self.total_s


class LatencyModel:
    """Prices cost events using real model dimensions on a device profile."""

    def __init__(
        self,
        model: ModelSpec,
        device: DeviceSpec | str,
        framework: FrameworkProfile | str,
        cpu_device: DeviceSpec | str | None = None,
    ):
        self.model = model
        self.device = get_device(device) if isinstance(device, str) else device
        self.framework = get_framework(framework) if isinstance(framework, str) else framework
        if cpu_device is None:
            cpu = None
        else:
            cpu = get_device(cpu_device) if isinstance(cpu_device, str) else cpu_device
        if self.framework.gpu_weight_fraction < 1.0 and cpu is None:
            raise ValueError(
                f"framework {self.framework.name!r} offloads weights to the CPU; "
                "a cpu_device is required"
            )
        self.cpu = cpu

    # -- primitive op times ---------------------------------------------------
    def layer_weight_bytes(self) -> float:
        return self.model.layer_params * self.framework.weight_bytes_per_param

    def layer_flops(self, batch: float = 1.0) -> float:
        return 2.0 * self.model.layer_params * batch

    def decoder_layer_time(self, batch: float = 1.0) -> float:
        """One decoder layer processing ``batch`` decode tokens."""
        fw, dev = self.framework, self.device
        gpu_bytes = self.layer_weight_bytes() * fw.gpu_weight_fraction
        mem_t = gpu_bytes / (dev.bytes_per_second * fw.bw_efficiency)
        if self.cpu is not None and fw.gpu_weight_fraction < 1.0:
            cpu_bytes = self.layer_weight_bytes() * (1.0 - fw.gpu_weight_fraction)
            mem_t += cpu_bytes / (self.cpu.bytes_per_second * fw.cpu_bw_efficiency)
        # Batched verify tokens share weight traffic; FLOPs scale with batch.
        flop_t = self.layer_flops(batch) / (dev.flops_per_second * fw.flop_efficiency)
        extra = (batch - 1.0) * self.framework.batch_flop_share * mem_t
        return max(mem_t + extra, flop_t) + fw.layer_overhead_us * 1e-6

    def prefill_layer_time(self, tokens: float) -> float:
        """One layer over a ``tokens``-long prompt (compute-bound)."""
        fw, dev = self.framework, self.device
        flop_t = self.layer_flops(tokens) / (dev.flops_per_second * fw.flop_efficiency)
        mem_t = self.layer_weight_bytes() / (dev.bytes_per_second * fw.bw_efficiency)
        return max(flop_t, mem_t) + fw.layer_overhead_us * 1e-6

    def lm_head_time(self, columns: Optional[int] = None) -> float:
        """Full (or ``columns``-sliced) LM-head projection for one token."""
        fw, dev = self.framework, self.device
        cols = self.model.vocab_size if columns is None else columns
        bytes_ = self.model.hidden_dim * cols * fw.weight_bytes_per_param
        mem_t = bytes_ / (dev.bytes_per_second * fw.bw_efficiency)
        return mem_t + dev.kernel_overhead_us * 1e-6

    def predictor_time(self, feature_dim: int = 12, hidden: int = 512) -> float:
        """The lightweight predictor step: slice-feature assembly (softmax,
        deltas, concat) plus two tiny GEMVs and a sigmoid — ~6 kernel
        launches driven from the host loop, i.e. launch-bound, not
        FLOP-bound (the paper's 0.0009 s/token at ~10 evals)."""
        dev = self.device
        bytes_ = (feature_dim * hidden + hidden) * 2.0
        mem_t = bytes_ / dev.bytes_per_second
        dispatch = 6 * dev.kernel_overhead_us * 1e-6 + 30e-6
        return mem_t + dispatch

    def draft_step_time(self) -> float:
        """One autoregressive step of the EAGLE-style draft head."""
        fw, dev = self.framework, self.device
        bytes_ = DRAFT_LAYER_EQUIVALENT * self.model.layer_params * 2.0  # fp16 draft
        mem_t = bytes_ / (dev.bytes_per_second * fw.draft_efficiency)
        return mem_t + 3 * dev.kernel_overhead_us * 1e-6

    def retrieval_time(self, entries: float) -> float:
        """Brute-force kNN over the RAEE database (hidden-dim fp16 keys)."""
        dev = self.device
        bytes_ = entries * self.model.hidden_dim * 2.0
        return bytes_ / dev.bytes_per_second + dev.kernel_overhead_us * 1e-6

    def full_depth_token_time(self) -> float:
        """Ideal single-stream decode time for one token at full depth — the
        service-time unit SLO deadlines are scaled from (workload generation
        and the serve CLI must agree on this definition)."""
        return self.model.n_layers * self.decoder_layer_time(1.0)

    def kv_swap_time(self, tokens: float) -> float:
        """Moving ``tokens`` worth of paged KV across the host link, one way.

        Swap traffic is the *real* model's cache — every layer's K and V for
        each token (fp16, independent of the weight dtype) — DMA'd over PCIe.
        This is what preemption-by-swap costs; preemption-by-recompute pays
        :meth:`prefill_layer_time` over the context instead.
        """
        bytes_ = tokens * 2.0 * self.model.n_layers * self.model.kv_heads * self.model.head_dim * 2.0
        return bytes_ / self.device.pcie_bytes_per_second + self.device.kernel_overhead_us * 1e-6

    def preempt_costs(self, tokens: float, context_tokens: float) -> Dict[str, float]:
        """Modelled cost of evicting a ``tokens``-long paged sequence whose
        full context is ``context_tokens``: swap pays the link twice (out now,
        in at resume); recompute pays a prefill pass over the context."""
        return {
            "swap": 2.0 * self.kv_swap_time(tokens),
            "recompute": self.model.n_layers * self.prefill_layer_time(max(context_tokens, 1.0)),
        }

    def prefix_reuse_time(self, tokens: float) -> float:
        """Adopting ``tokens`` of already-resident shared-prefix KV.

        Reuse is metadata work — a radix-tree walk plus refcount bumps on
        the matched blocks — so it prices as one kernel-overhead dispatch
        plus a tiny host-side per-block term.  The point of the event is
        the prefill work it *replaces*: a matched token skips its
        :meth:`prefill_layer_time` share entirely.
        """
        blocks = tokens / 16.0  # host bookkeeping scales with blocks touched
        return self.device.kernel_overhead_us * 1e-6 + blocks * 1e-6

    def kv_fill_time(self, layers: float) -> float:
        """KV propagation for skipped layers: 2 projections per layer."""
        fw, dev = self.framework, self.device
        kv_dim = self.model.kv_heads * self.model.head_dim
        bytes_ = layers * 2.0 * self.model.hidden_dim * kv_dim * fw.weight_bytes_per_param
        return bytes_ / (dev.bytes_per_second * fw.bw_efficiency) + dev.kernel_overhead_us * 1e-6

    def feature_stats_time(self) -> float:
        """AdaInfer's full-vocabulary feature pass (top-prob, gap, entropy).

        In the reference implementation this is a host-driven sequence of
        softmax/sort/reduce calls over the 32K-vocabulary logits at *every*
        layer — the "heavy prediction" cost of Table 1 — so a host-dispatch
        term dominates the byte traffic."""
        dev = self.device
        bytes_ = self.model.vocab_size * 4.0 * 3  # read logits, write probs, reduce
        host = 250e-6  # python-side statistics over the full vocabulary
        return bytes_ / dev.bytes_per_second + host + 4 * dev.kernel_overhead_us * 1e-6

    def grouped_gemm_time(self, tokens: float, k: int = 4) -> float:
        """Block-wise grouped GEMM for tree features (one fused launch)."""
        dev = self.device
        bytes_ = tokens * self.model.hidden_dim * k * 2.0
        return bytes_ / (dev.bytes_per_second * self.framework.bw_efficiency) + dev.kernel_overhead_us * 1e-6

    # -- ledger pricing ---------------------------------------------------------
    def price(self, ledger: CostLedger) -> LatencyBreakdown:
        """Total latency of every event recorded in ``ledger``."""
        for kind in Event.CLUSTER_ONLY:
            if ledger.calls(kind):
                raise ValueError(
                    f"ledger contains cluster-only event {kind!r}; price it "
                    "with repro.distributed.ClusterLatencyModel"
                )
        return self._price_common(ledger)

    def _price_common(self, ledger: CostLedger) -> LatencyBreakdown:
        """Price the single-device event kinds (shared with the cluster model,
        whose overridden primitives already carry the tensor-parallel scaling)."""
        per: Dict[str, float] = {}

        def put(kind: str, seconds: float) -> None:
            if seconds > 0:
                per[kind] = per.get(kind, 0.0) + seconds

        e = Event
        calls, units = ledger.calls, ledger.units
        if calls(e.PREFILL_LAYER):
            avg_tokens = units(e.PREFILL_LAYER) / calls(e.PREFILL_LAYER)
            put(e.PREFILL_LAYER, calls(e.PREFILL_LAYER) * self.prefill_layer_time(avg_tokens))
        put(e.DECODER_LAYER, calls(e.DECODER_LAYER) * self.decoder_layer_time(1.0))
        if calls(e.TREE_VERIFY_LAYER):
            avg_batch = units(e.TREE_VERIFY_LAYER) / calls(e.TREE_VERIFY_LAYER)
            put(e.TREE_VERIFY_LAYER,
                calls(e.TREE_VERIFY_LAYER) * self.decoder_layer_time(avg_batch))
        if calls(e.BATCH_DECODER_LAYER):
            # Continuous-batching decode: one weight pass serves every
            # sequence still alive at that depth (units = batched tokens).
            avg_batch = units(e.BATCH_DECODER_LAYER) / calls(e.BATCH_DECODER_LAYER)
            put(e.BATCH_DECODER_LAYER,
                calls(e.BATCH_DECODER_LAYER) * self.decoder_layer_time(avg_batch))
        put(e.LM_HEAD_FULL, calls(e.LM_HEAD_FULL) * self.lm_head_time())
        if calls(e.LM_HEAD_SLICE):
            avg_cols = units(e.LM_HEAD_SLICE) / calls(e.LM_HEAD_SLICE)
            put(e.LM_HEAD_SLICE, calls(e.LM_HEAD_SLICE) * self.lm_head_time(int(avg_cols)))
        put(e.PREDICTOR, calls(e.PREDICTOR) * self.predictor_time())
        put(e.SVM_PREDICT, calls(e.SVM_PREDICT) * (self.predictor_time(feature_dim=3, hidden=1) + 120e-6))
        put(e.FEATURE_STATS, calls(e.FEATURE_STATS) * self.feature_stats_time())
        put(e.DRAFT_STEP, calls(e.DRAFT_STEP) * self.draft_step_time())
        if calls(e.RETRIEVAL):
            avg_entries = units(e.RETRIEVAL) / calls(e.RETRIEVAL)
            put(e.RETRIEVAL, calls(e.RETRIEVAL) * self.retrieval_time(avg_entries))
        if calls(e.KV_FILL):
            put(e.KV_FILL, self.kv_fill_time(units(e.KV_FILL)))
        if calls(e.KV_SWAP):
            put(e.KV_SWAP, self.kv_swap_time(units(e.KV_SWAP)))
        if calls(e.PREFIX_REUSE):
            put(e.PREFIX_REUSE, self.prefix_reuse_time(units(e.PREFIX_REUSE)))
        if calls(e.TREE_FEATURE_GEMM):
            avg_tokens = units(e.TREE_FEATURE_GEMM) / calls(e.TREE_FEATURE_GEMM)
            put(e.TREE_FEATURE_GEMM,
                calls(e.TREE_FEATURE_GEMM) * self.grouped_gemm_time(avg_tokens))
        total = sum(per.values()) + self._host_overhead_s(ledger)
        return LatencyBreakdown(
            total_s=total, per_event_s=per, tokens_generated=ledger.tokens_generated
        )

    def _host_overhead_s(self, ledger: CostLedger) -> float:
        """Host-loop overhead: accrues per decode step — once per token in
        autoregressive mode, once per verify iteration in tree mode.  The
        single definition both the single-device and cluster totals use."""
        steps = ledger.steps if ledger.steps else ledger.tokens_generated
        return steps * self.framework.token_overhead_us * 1e-6
