"""Hardware modelling: devices, framework profiles, cost ledger, latency,
energy and memory models.

Engines are hardware-agnostic — they record *cost events* (which ops ran, at
which sizes) into a :class:`~repro.hardware.ledger.CostLedger`; the models in
this package price a ledger for a (model, device, framework) triple.  This
decouples algorithm execution from hardware pricing: one decode trace can be
priced for an A100 and for a laptop 4060 without re-running (DESIGN.md §4).
"""

from repro.hardware.devices import DEVICES, DeviceSpec, get_device
from repro.hardware.frameworks import FRAMEWORKS, FrameworkProfile, get_framework
from repro.hardware.ledger import CostLedger, Event
from repro.hardware.latency import LatencyBreakdown, LatencyModel
from repro.hardware.energy import EnergyModel, EnergyReport
from repro.hardware.memory import MemoryModel, MemoryTimeline

__all__ = [
    "CostLedger",
    "DEVICES",
    "DeviceSpec",
    "EnergyModel",
    "EnergyReport",
    "Event",
    "FRAMEWORKS",
    "FrameworkProfile",
    "LatencyBreakdown",
    "LatencyModel",
    "MemoryModel",
    "MemoryTimeline",
    "get_device",
    "get_framework",
]
