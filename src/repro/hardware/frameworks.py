"""Framework execution profiles.

A framework profile captures *how well* an inference stack realises the
device roofline during single-stream decoding: achieved-bandwidth fraction,
per-layer dispatch overhead, per-token runtime overhead, weight storage
width, batched-verify FLOP sensitivity, and (for the PC stacks) GPU/CPU
weight placement.  Baseline profiles are calibrated once against the paper's
reported baseline throughputs (EXPERIMENTS.md records the calibration); all
SpecEE-side numbers then follow from the ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

__all__ = ["FrameworkProfile", "FRAMEWORKS", "get_framework"]


@dataclass(frozen=True)
class FrameworkProfile:
    """Efficiency profile of one serving stack on one device class."""

    name: str
    bw_efficiency: float          # achieved fraction of peak memory bandwidth
    flop_efficiency: float        # achieved fraction of peak tensor FLOPs
    layer_overhead_us: float      # dispatch overhead per decoder layer
    token_overhead_us: float      # runtime overhead per emitted token
    weight_bytes_per_param: float = 2.0   # fp16 by default; 0.56 ~= q4 + scales
    batch_flop_share: float = 0.08       # marginal cost per extra verify token
    gpu_weight_fraction: float = 1.0      # <1.0 = partial CPU offload
    cpu_bw_efficiency: float = 0.6        # for the offloaded fraction
    draft_bw_efficiency: Optional[float] = None  # draft model stream (defaults to bw)

    def __post_init__(self) -> None:
        if not 0.0 < self.bw_efficiency <= 1.0:
            raise ValueError("bw_efficiency must lie in (0, 1]")
        if not 0.0 < self.gpu_weight_fraction <= 1.0:
            raise ValueError("gpu_weight_fraction must lie in (0, 1]")

    @property
    def draft_efficiency(self) -> float:
        return self.draft_bw_efficiency if self.draft_bw_efficiency is not None else self.bw_efficiency

    def with_overrides(self, **kwargs) -> "FrameworkProfile":
        return replace(self, **kwargs)


FRAMEWORKS: Dict[str, FrameworkProfile] = {
    # HuggingFace transformers: eager kernels, python dispatch.  Calibrated to
    # ~42 tokens/s for Llama2-7B fp16 on A100 (paper Fig. 2d).
    "hf": FrameworkProfile(
        name="hf", bw_efficiency=0.50, flop_efficiency=0.35,
        layer_overhead_us=280.0, token_overhead_us=2000.0,
    ),
    # vLLM: paged attention, CUDA graphs - much lower dispatch overhead.
    "vllm": FrameworkProfile(
        name="vllm", bw_efficiency=0.68, flop_efficiency=0.45,
        layer_overhead_us=60.0, token_overhead_us=900.0,
    ),
    # AWQ int4 in the HF harness: 4-bit weights + scales, dequant cost eats
    # some of the bandwidth win.
    "awq": FrameworkProfile(
        name="awq", bw_efficiency=0.42, flop_efficiency=0.35,
        layer_overhead_us=280.0, token_overhead_us=2000.0,
        weight_bytes_per_param=0.56,
    ),
    # FlashAttention on the HF harness (Fig. 1a point): faster attention
    # kernels trim per-layer overhead slightly; decode stays weight-bound.
    "flashattention": FrameworkProfile(
        name="flashattention", bw_efficiency=0.53, flop_efficiency=0.50,
        layer_overhead_us=240.0, token_overhead_us=1800.0,
    ),
    # llama.cpp on the 8 GB laptop 4060: fp16 does not fit, so a fraction of
    # layers lives on the CPU; q4 quantisation is the norm, but the paper's
    # baseline runs fp16 GGUF - we model their measured operating point with
    # partial offload.
    "llama.cpp": FrameworkProfile(
        name="llama.cpp", bw_efficiency=0.72, flop_efficiency=0.30,
        layer_overhead_us=80.0, token_overhead_us=1500.0,
        gpu_weight_fraction=0.50, cpu_bw_efficiency=0.55,
    ),
    # PowerInfer: hot-neuron weights resident on GPU, cold neurons on CPU with
    # activation sparsity skipping most cold-neuron work.
    "powerinfer": FrameworkProfile(
        name="powerinfer", bw_efficiency=0.72, flop_efficiency=0.30,
        layer_overhead_us=110.0, token_overhead_us=1800.0,
        gpu_weight_fraction=0.80, cpu_bw_efficiency=0.55,
    ),
}


def get_framework(name: str) -> FrameworkProfile:
    try:
        return FRAMEWORKS[name]
    except KeyError:
        known = ", ".join(sorted(FRAMEWORKS))
        raise KeyError(f"unknown framework {name!r}; known: {known}") from None
