"""Cost-event ledger.

Engines record every hardware-relevant operation they execute — decoder
layers, LM-head projections (full and sliced), predictor forwards, draft
steps, tree verifications, retrievals — as named events with a call count
and a unit count (units capture size-dependence, e.g. tokens in a batched
tree-verify layer or columns in a sliced LM head).  The latency/energy models
price ledgers; experiments diff them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping

__all__ = ["Event", "CostLedger"]


# Canonical event kinds (string constants keep ledgers serialisable).
class Event:
    """Namespace of event-kind constants."""

    PREFILL_LAYER = "prefill_layer"          # units = prompt tokens
    DECODER_LAYER = "decoder_layer"          # one token through one layer
    BATCH_DECODER_LAYER = "batch_decoder_layer"  # units = batched decode tokens
    LM_HEAD_FULL = "lm_head_full"            # full-vocabulary projection
    LM_HEAD_SLICE = "lm_head_slice"          # units = columns (spec tokens)
    PREDICTOR = "predictor_forward"          # lightweight MLP forward
    SVM_PREDICT = "svm_predict"              # AdaInfer's classifier
    FEATURE_STATS = "feature_stats"          # AdaInfer full-vocab feature pass
    DRAFT_STEP = "draft_step"                # draft model autoregressive step
    TREE_VERIFY_LAYER = "tree_verify_layer"  # units = tree tokens in the batch
    TREE_FEATURE_GEMM = "tree_feature_gemm"  # grouped GEMM over tree (units = tokens)
    RETRIEVAL = "retrieval_lookup"           # RAEE database kNN
    KV_FILL = "kv_fill"                      # early-exit KV propagation (units = layers)
    KV_SWAP = "kv_swap"                      # paged-KV host transfer (units = tokens)
    PREFIX_REUSE = "prefix_reuse"            # shared-prefix adoption (units = tokens)
    ALLREDUCE = "allreduce"                  # TP collective (units = activation tokens)
    PIPELINE_BUBBLE = "pipeline_bubble"      # PP idle stage slots (units = slot tokens)
    ALL = (
        PREFILL_LAYER, DECODER_LAYER, BATCH_DECODER_LAYER, LM_HEAD_FULL,
        LM_HEAD_SLICE, PREDICTOR, SVM_PREDICT, FEATURE_STATS, DRAFT_STEP,
        TREE_VERIFY_LAYER, TREE_FEATURE_GEMM, RETRIEVAL, KV_FILL, KV_SWAP,
        PREFIX_REUSE, ALLREDUCE, PIPELINE_BUBBLE,
    )
    # Events only a multi-device cluster can emit or price; the single-device
    # LatencyModel refuses them so they are never silently dropped.
    CLUSTER_ONLY = (ALLREDUCE, PIPELINE_BUBBLE)


@dataclass
class _Entry:
    calls: float = 0.0
    units: float = 0.0


@dataclass
class CostLedger:
    """Accumulator of cost events plus headline decode statistics."""

    _entries: Dict[str, _Entry] = field(default_factory=dict)
    tokens_generated: int = 0
    prompt_tokens: int = 0
    steps: int = 0  # host-loop iterations (== tokens for AR, < tokens for trees)

    def add(self, kind: str, calls: float = 1.0, units: float | None = None) -> None:
        if kind not in Event.ALL:
            raise ValueError(f"unknown event kind {kind!r}")
        entry = self._entries.setdefault(kind, _Entry())
        entry.calls += calls
        entry.units += units if units is not None else calls

    def calls(self, kind: str) -> float:
        return self._entries.get(kind, _Entry()).calls

    def units(self, kind: str) -> float:
        return self._entries.get(kind, _Entry()).units

    def kinds(self) -> Iterator[str]:
        return iter(self._entries)

    def drop(self, kind: str) -> None:
        """Remove every recorded call of ``kind`` (used when a serving tick
        replaces per-sequence events with their batched equivalent)."""
        self._entries.pop(kind, None)

    # -- incremental accounting ------------------------------------------------
    def snapshot(self) -> Dict[str, tuple]:
        """Cheap point-in-time view for :meth:`delta_since`."""
        snap: Dict[str, tuple] = {
            kind: (entry.calls, entry.units) for kind, entry in self._entries.items()
        }
        snap["__counters__"] = (self.tokens_generated, self.prompt_tokens, self.steps)
        return snap

    def delta_since(self, snapshot: Dict[str, tuple]) -> "CostLedger":
        """Events accrued since ``snapshot`` (taken on this ledger) as a new
        ledger — how serving ticks attribute per-step costs to wall-clock."""
        out = CostLedger()
        for kind, entry in self._entries.items():
            calls0, units0 = snapshot.get(kind, (0.0, 0.0))
            calls, units = entry.calls - calls0, entry.units - units0
            if calls or units:
                out.add(kind, calls=calls, units=units)
        tokens0, prompt0, steps0 = snapshot.get("__counters__", (0, 0, 0))
        out.tokens_generated = self.tokens_generated - tokens0
        out.prompt_tokens = self.prompt_tokens - prompt0
        out.steps = self.steps - steps0
        return out

    # -- combinators ----------------------------------------------------------
    def merge(self, other: "CostLedger") -> "CostLedger":
        """Accumulate ``other`` into ``self`` (returns self for chaining)."""
        for kind, entry in other._entries.items():
            mine = self._entries.setdefault(kind, _Entry())
            mine.calls += entry.calls
            mine.units += entry.units
        self.tokens_generated += other.tokens_generated
        self.prompt_tokens += other.prompt_tokens
        self.steps += other.steps
        return self

    def copy(self) -> "CostLedger":
        out = CostLedger()
        out.merge(self)
        return out

    # -- derived statistics ------------------------------------------------------
    @property
    def decoder_layers_per_token(self) -> float:
        """Average executed decoder layers per generated token — the paper's
        '#Avg. L' column (Table 4).  Tree-verify and batched-decode layers
        count their batch once (one forward serves all batched tokens)."""
        if self.tokens_generated == 0:
            return float("nan")
        layers = (self.calls(Event.DECODER_LAYER) + self.calls(Event.TREE_VERIFY_LAYER)
                  + self.calls(Event.BATCH_DECODER_LAYER))
        return layers / self.tokens_generated

    def as_dict(self) -> Mapping[str, Dict[str, float]]:
        return {k: {"calls": e.calls, "units": e.units} for k, e in self._entries.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={e.calls:.0f}" for k, e in sorted(self._entries.items()))
        return f"CostLedger(tokens={self.tokens_generated}, {inner})"
