"""Device specifications (paper Table 2).

Numbers are public datasheet values; the latency model derates them with
framework efficiency factors, so absolute throughput is calibrated at the
*baseline* (e.g. HuggingFace Llama2-7B on A100 ~= 42 tokens/s) and every
comparison inherits consistent physics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["DeviceSpec", "DEVICES", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Compute device (GPU or CPU) roofline parameters."""

    name: str
    kind: str  # "gpu" | "cpu"
    fp16_tflops: float        # dense fp16 tensor throughput
    mem_bw_gbps: float        # peak DRAM/HBM bandwidth
    kernel_overhead_us: float  # per-kernel launch/dispatch latency
    tdp_w: float              # board/package power limit
    idle_w: float             # idle power draw
    vram_gb: float = 0.0      # device memory (0 = host memory, not enforced)
    pcie_gbps: float = 25.0   # achievable host link bandwidth (KV swap traffic)

    def __post_init__(self) -> None:
        if self.fp16_tflops <= 0 or self.mem_bw_gbps <= 0 or self.pcie_gbps <= 0:
            raise ValueError("throughput parameters must be positive")
        if self.kernel_overhead_us < 0:
            raise ValueError("kernel_overhead_us must be non-negative")
        if self.tdp_w < 0 or self.idle_w < 0 or self.vram_gb < 0:
            raise ValueError("tdp_w/idle_w/vram_gb must be non-negative")
        if self.idle_w > self.tdp_w:
            raise ValueError(
                f"idle_w={self.idle_w} exceeds tdp_w={self.tdp_w}; the energy "
                "model needs non-negative dynamic headroom"
            )
        if self.kind not in {"gpu", "cpu"}:
            raise ValueError(f"unknown device kind {self.kind!r}")

    @property
    def bytes_per_second(self) -> float:
        return self.mem_bw_gbps * 1e9

    @property
    def flops_per_second(self) -> float:
        return self.fp16_tflops * 1e12

    @property
    def pcie_bytes_per_second(self) -> float:
        return self.pcie_gbps * 1e9


DEVICES: Dict[str, DeviceSpec] = {
    # Cloud scenario (Table 2).
    "a100-80g": DeviceSpec(
        name="a100-80g", kind="gpu", fp16_tflops=312.0, mem_bw_gbps=2039.0,
        kernel_overhead_us=5.0, tdp_w=400.0, idle_w=60.0, vram_gb=80.0,
    ),
    "rtx4090": DeviceSpec(
        name="rtx4090", kind="gpu", fp16_tflops=330.0, mem_bw_gbps=1008.0,
        kernel_overhead_us=4.0, tdp_w=450.0, idle_w=25.0, vram_gb=24.0,
    ),
    # A 4x tensor-parallel A100 node for Llama2-70B (Fig. 14d): bandwidth
    # scales across shards, with a parallel-efficiency derate and higher
    # per-kernel overhead from collectives.
    "4xa100-80g": DeviceSpec(
        name="4xa100-80g", kind="gpu", fp16_tflops=4 * 312.0 * 0.82,
        mem_bw_gbps=4 * 2039.0 * 0.82, kernel_overhead_us=14.0,
        tdp_w=1600.0, idle_w=240.0, vram_gb=320.0,
    ),
    # PC scenario.
    "rtx4060-laptop": DeviceSpec(
        name="rtx4060-laptop", kind="gpu", fp16_tflops=44.0, mem_bw_gbps=256.0,
        kernel_overhead_us=7.0, tdp_w=115.0, idle_w=10.0, vram_gb=8.0,
    ),
    # Host CPUs.
    "xeon-8358": DeviceSpec(
        name="xeon-8358", kind="cpu", fp16_tflops=2.6, mem_bw_gbps=205.0,
        kernel_overhead_us=0.5, tdp_w=250.0, idle_w=90.0,
    ),
    "epyc-7542": DeviceSpec(
        name="epyc-7542", kind="cpu", fp16_tflops=2.3, mem_bw_gbps=205.0,
        kernel_overhead_us=0.5, tdp_w=225.0, idle_w=85.0,
    ),
    "i7-13650hx": DeviceSpec(
        name="i7-13650hx", kind="cpu", fp16_tflops=1.1, mem_bw_gbps=77.0,
        kernel_overhead_us=0.5, tdp_w=55.0, idle_w=12.0,
    ),
}


def get_device(name: str) -> DeviceSpec:
    try:
        return DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(DEVICES))
        raise KeyError(f"unknown device {name!r}; known: {known}") from None
