"""GPU memory model (paper Sec. 7.4.2, Fig. 17).

Memory during generation is weights + activations + a KV cache growing
linearly with emitted tokens, plus SpecEE's additions: the EAGLE-style draft
head (~0.9 GB for 7B, ~1.4 GB for 13B — the dominant overhead) and the
predictor bank (~416 KB for Llama2-7B: 32 MLPs of 12x512+512x1 fp32
parameters — negligible).  RAEE's retrieval database is also modelled for
the Table 1 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import ModelSpec
from repro.hardware.latency import DRAFT_LAYER_EQUIVALENT

__all__ = ["MemoryModel", "MemoryTimeline"]

_GIB = 1024.0**3


@dataclass
class MemoryTimeline:
    """Memory usage (GiB) as a function of generated tokens."""

    tokens: List[int] = field(default_factory=list)
    gib: List[float] = field(default_factory=list)

    def final(self) -> float:
        return self.gib[-1] if self.gib else float("nan")


class MemoryModel:
    """Sums the memory components of one engine configuration."""

    def __init__(
        self,
        model: ModelSpec,
        weight_bytes_per_param: float = 2.0,
        use_draft: bool = False,
        predictor_params: int = 0,
        raee_db_bytes: float = 0.0,
        activation_overhead_gib: float = 0.6,
    ):
        self.model = model
        self.weight_bytes_per_param = weight_bytes_per_param
        self.use_draft = use_draft
        self.predictor_params = predictor_params
        self.raee_db_bytes = raee_db_bytes
        self.activation_overhead_gib = activation_overhead_gib

    @property
    def weights_gib(self) -> float:
        return self.model.total_params * self.weight_bytes_per_param / _GIB

    @property
    def draft_gib(self) -> float:
        if not self.use_draft:
            return 0.0
        return DRAFT_LAYER_EQUIVALENT * self.model.layer_params * 2.0 / _GIB

    @property
    def predictors_gib(self) -> float:
        return self.predictor_params * 2.0 / _GIB  # fp16 MLPs (paper Sec. 7.4.2)

    @property
    def predictors_kib(self) -> float:
        return self.predictor_params * 2.0 / 1024.0

    @property
    def raee_db_gib(self) -> float:
        return self.raee_db_bytes / _GIB

    def kv_gib(self, tokens: int) -> float:
        return tokens * self.model.kv_bytes_per_token() / _GIB

    def usage_gib(self, tokens: int, prompt_tokens: int = 0) -> float:
        """Total usage after emitting ``tokens`` (prompt KV included)."""
        return (
            self.weights_gib
            + self.draft_gib
            + self.predictors_gib
            + self.raee_db_gib
            + self.activation_overhead_gib
            + self.kv_gib(tokens + prompt_tokens)
        )

    def timeline(
        self, max_tokens: int, points: int = 30, prompt_tokens: int = 64
    ) -> MemoryTimeline:
        """Fig. 17 series: usage vs generated tokens."""
        timeline = MemoryTimeline()
        for t in np.linspace(0, max_tokens, points).astype(int):
            timeline.tokens.append(int(t))
            timeline.gib.append(self.usage_gib(int(t), prompt_tokens))
        return timeline

    def overhead_vs(self, baseline: "MemoryModel") -> float:
        """Extra GiB relative to ``baseline`` at zero generated tokens."""
        return self.usage_gib(0) - baseline.usage_gib(0)
