"""Utilization-based power/energy model (paper Sec. 7.3).

Each event class drives the device at a characteristic *intensity* — the
fraction of dynamic power it sustains.  Decoder layers keep HBM and tensor
pipes busy; the lightweight predictor is a memory-bound trickle that leaves
most CUDA cores idle (the paper measures ~142 W during predictor execution
on a 400 W A100 vs ~201 W during dense decoding).  Average power is the
time-weighted mix, so SpecEE's power drop *emerges* from its ledger: fewer
layer-seconds, a few predictor-seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.devices import DeviceSpec
from repro.hardware.latency import LatencyBreakdown
from repro.hardware.ledger import Event

__all__ = ["EnergyReport", "EnergyModel", "EVENT_INTENSITY"]

# Fraction of (TDP - idle) dynamic power each event class sustains.
EVENT_INTENSITY: Dict[str, float] = {
    Event.PREFILL_LAYER: 0.80,       # compute-bound GEMMs
    Event.DECODER_LAYER: 0.42,       # bandwidth-bound decode GEMVs
    Event.BATCH_DECODER_LAYER: 0.55,  # batched decode GEMMs (serving)
    Event.TREE_VERIFY_LAYER: 0.50,   # small-batch GEMMs
    Event.LM_HEAD_FULL: 0.45,
    Event.LM_HEAD_SLICE: 0.15,
    Event.PREDICTOR: 0.24,           # ~142 W on A100 (Sec. 7.3.2)
    Event.SVM_PREDICT: 0.15,
    Event.FEATURE_STATS: 0.30,
    Event.DRAFT_STEP: 0.30,
    Event.RETRIEVAL: 0.35,
    Event.KV_FILL: 0.12,
    Event.KV_SWAP: 0.08,             # DMA over the host link, cores idle
    Event.TREE_FEATURE_GEMM: 0.30,
    Event.ALLREDUCE: 0.22,           # link DMA plus reduction kernels
    Event.PIPELINE_BUBBLE: 0.0,      # a stage waiting draws idle power only
}
_DEFAULT_INTENSITY = 0.35


@dataclass
class EnergyReport:
    """Energy and average power over one priced run."""

    energy_j: float
    avg_power_w: float
    duration_s: float
    tokens_generated: int

    @property
    def tokens_per_joule(self) -> float:
        if self.energy_j <= 0:
            return float("nan")
        return self.tokens_generated / self.energy_j

    @property
    def energy_per_token_j(self) -> float:
        if self.tokens_generated == 0:
            return float("nan")
        return self.energy_j / self.tokens_generated


class EnergyModel:
    """Integrates power over a latency breakdown."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    def power_during(self, kind: str) -> float:
        intensity = EVENT_INTENSITY.get(kind, _DEFAULT_INTENSITY)
        return self.device.idle_w + intensity * (self.device.tdp_w - self.device.idle_w)

    def report(self, latency: LatencyBreakdown) -> EnergyReport:
        energy = 0.0
        accounted = 0.0
        for kind, seconds in latency.per_event_s.items():
            energy += seconds * self.power_during(kind)
            accounted += seconds
        # Framework overhead time (dispatch, python) draws near-idle power.
        residual = max(latency.total_s - accounted, 0.0)
        energy += residual * (self.device.idle_w + 0.10 * (self.device.tdp_w - self.device.idle_w))
        avg_power = energy / latency.total_s if latency.total_s > 0 else float("nan")
        return EnergyReport(
            energy_j=energy, avg_power_w=avg_power,
            duration_s=latency.total_s, tokens_generated=latency.tokens_generated,
        )
