"""One-shot magnitude pruning (SparseGPT stand-in for the Fig. 1a frontier).

SparseGPT prunes LLM weights in one shot at 50% unstructured sparsity with a
modest accuracy drop.  On the synthetic substrate we model pruning as a
calibrated perturbation of the planted dynamics: pruning raises the hidden
noise floor (accuracy cost) while the hardware layer prices the halved
effective weight traffic (speed benefit).  The wrapper keeps the LayeredLM
interface so pruned models drop into any engine.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.model.base import LMState
from repro.model.synthetic import SyntheticLayeredLM

__all__ = ["magnitude_prune", "PrunedModelWrapper"]


def magnitude_prune(weight: np.ndarray, sparsity: float) -> Tuple[np.ndarray, float]:
    """Zero the smallest-|w| entries; returns (pruned copy, realised sparsity).

    This is the actual kernel used on real arrays (tests exercise it on the
    transformer backend's weights); the engine-level wrapper below only
    models its *semantic* effect on the planted substrate.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must lie in [0, 1)")
    w = np.asarray(weight, dtype=np.float64).copy()
    if sparsity == 0.0:
        return w, 0.0
    k = int(round(w.size * sparsity))
    if k == 0:
        return w, 0.0
    threshold = np.partition(np.abs(w).ravel(), k - 1)[k - 1]
    mask = np.abs(w) > threshold
    # Break ties deterministically to hit the exact count.
    deficit = int(mask.sum()) - (w.size - k)
    if deficit > 0:
        ties = np.argwhere(np.isclose(np.abs(w), threshold))
        for idx in ties[:deficit]:
            mask[tuple(idx)] = False
    out = np.where(mask, w, 0.0)
    return out, 1.0 - float(mask.sum()) / w.size


class PrunedModelWrapper(SyntheticLayeredLM):
    """Synthetic model with pruning-induced semantic degradation.

    ``noise_scale`` > 1 raises the hidden-mixture noise (more argmax errors
    near decision boundaries); ``flip_rate`` occasionally swaps the target
    for its strongest alternative, modelling pruning-induced top-1 flips.
    """

    def __init__(
        self,
        base: SyntheticLayeredLM,
        sparsity: float = 0.5,
        noise_scale: float = 1.6,
        flip_rate: float = 0.04,
    ):
        profile = base.profile.with_overrides(noise=base.profile.noise * noise_scale)
        super().__init__(profile, base.sim, seed=base.seed)
        self.sparsity = sparsity
        self.flip_rate = flip_rate

    def begin_step(self, state) -> None:
        super().begin_step(state)
        plan = state.plan
        if plan is not None and self.oracle.uniform_hash(
            state.context, "prune-flip"
        ) < self.flip_rate:
            # The pruned model's answer deviates: its target becomes the
            # strongest alternative (a wrong token relative to the dense model).
            alts = self.oracle.alternatives(state.context, 1)
            plan.target = int(alts[0])
