"""AdaInfer baseline (Fan et al., 2024 — "Not all layers are necessary").

AdaInfer attaches a classical classifier (SVM) after *every* decoder layer.
Its features are **global** statistics that require projecting the full LM
head at every layer — the vocabulary-sized search traversal SpecEE's key
insight eliminates: top-probability ("confidence"), the gap between the two
highest probabilities, and the attention-free entropy of the distribution.
Exits are **not verified**, which is why AdaInfer loses accuracy (Table 4)
while paying ~20% latency for its prediction pass (Sec. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.svm import LinearSVM
from repro.core.engine import GenerationResult, StepRecord
from repro.hardware.ledger import Event
from repro.model.base import LayeredLM
from repro.utils.mathx import softmax

__all__ = ["adainfer_features", "AdaInferEngine", "train_adainfer_gates"]

ADAINFER_FEATURE_DIM = 3


def adainfer_features(full_logits: np.ndarray) -> np.ndarray:
    """AdaInfer's per-layer features from full-vocabulary logits:
    [top probability, top-2 gap, normalised entropy]."""
    probs = softmax(np.asarray(full_logits, dtype=np.float64))
    top2 = np.partition(probs, -2)[-2:]
    entropy = -np.sum(probs * np.log(np.maximum(probs, 1e-12)))
    entropy /= np.log(len(probs))
    return np.asarray([top2[1], top2[1] - top2[0], entropy])


def train_adainfer_gates(
    model: LayeredLM,
    prompts: Sequence[Sequence[int]],
    tokens_per_prompt: int = 32,
    min_exit_layer: int = 2,
    epochs: int = 10,
    seed: int = 0,
) -> Dict[int, LinearSVM]:
    """Harvest full-vocab features layer-wise and fit one SVM per layer."""
    per_layer: Dict[int, List[Tuple[np.ndarray, int]]] = {}
    for prompt in prompts:
        state = model.start(prompt)
        for _ in range(tokens_per_prompt):
            model.begin_step(state)
            rows: List[Tuple[int, np.ndarray, int]] = []
            hidden = None
            for layer in range(model.n_layers):
                hidden = model.layer_forward(state, layer)
                if layer < min_exit_layer or layer >= model.n_layers - 1:
                    continue
                logits = model.lm_head_full(hidden)
                rows.append((layer, adainfer_features(logits), int(np.argmax(logits))))
            final = int(np.argmax(model.lm_head_full(hidden)))
            for layer, feats, tok in rows:
                per_layer.setdefault(layer, []).append((feats, int(tok == final)))
            model.commit(state, final, model.n_layers - 1)
    gates: Dict[int, LinearSVM] = {}
    for layer, samples in per_layer.items():
        x = np.stack([s[0] for s in samples])
        y = np.asarray([s[1] for s in samples], dtype=np.float64)
        if y.sum() == 0 or y.sum() == len(y):
            continue
        svm = LinearSVM(ADAINFER_FEATURE_DIM)
        svm.fit(x, y, epochs=epochs, seed=seed + layer)
        gates[layer] = svm
    return gates


@dataclass
class AdaInferEngine:
    """Early exit gated by per-layer SVMs on full-vocabulary features."""

    model: LayeredLM
    gates: Dict[int, LinearSVM]
    min_exit_layer: int = 2

    def generate(
        self,
        prompt: Sequence[int],
        max_new_tokens: int,
        script: Optional[Sequence[int]] = None,
        force_tokens: Optional[Sequence[int]] = None,
    ) -> GenerationResult:
        model = self.model
        state = model.start(prompt, script=script)
        result = GenerationResult()
        result.ledger.prompt_tokens = len(state.context)
        result.ledger.add(Event.PREFILL_LAYER, calls=model.n_layers,
                          units=model.n_layers * len(state.context))
        last = model.n_layers - 1
        if force_tokens is not None:
            max_new_tokens = len(force_tokens)
        for step in range(max_new_tokens):
            model.begin_step(state)
            token: Optional[int] = None
            exit_layer = last
            evals = 0
            hidden = None
            for layer in range(model.n_layers):
                hidden = model.layer_forward(state, layer)
                result.ledger.add(Event.DECODER_LAYER)
                if layer < self.min_exit_layer or layer >= last:
                    continue
                gate = self.gates.get(layer)
                if gate is None:
                    continue
                # Full LM head *every layer* — AdaInfer's structural cost.
                logits = model.lm_head_full(hidden)
                result.ledger.add(Event.LM_HEAD_FULL)
                result.ledger.add(Event.FEATURE_STATS)
                feats = adainfer_features(logits)
                result.ledger.add(Event.SVM_PREDICT)
                evals += 1
                if bool(gate.predict(feats)[0]):
                    token = int(np.argmax(logits))  # unverified exit
                    exit_layer = layer
                    break
            if token is None:
                result.ledger.add(Event.LM_HEAD_FULL)
                token = int(np.argmax(model.lm_head_full(hidden)))
                exit_layer = last
            else:
                result.ledger.add(Event.KV_FILL, units=last - exit_layer)
            if force_tokens is not None:
                from repro.utils.mathx import log_softmax

                token = int(force_tokens[step])
                result.logprobs.append(float(log_softmax(model.lm_head_full(hidden))[token]))
            model.commit(state, token, exit_layer)
            result.ledger.tokens_generated += 1
            result.ledger.steps += 1
            result.tokens.append(token)
            result.exit_layers.append(exit_layer)
            result.records.append(StepRecord(
                token=token, exit_layer=exit_layer, early_exit=exit_layer < last,
                predictor_evals=evals, verify_attempts=0,
                active_predictors=float(len(self.gates)), draft_hit=False,
            ))
        return result
