"""Full-depth autoregressive baseline (the HuggingFace stand-in).

Runs every decoder layer for every token and projects the full LM head once
per token.  All speedups in the paper's Figures 14-16 are relative to this
dataflow priced under the corresponding framework profile.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.engine import GenerationResult, StepRecord
from repro.hardware.ledger import Event
from repro.model.base import LayeredLM

__all__ = ["DenseEngine"]


class DenseEngine:
    """Greedy full-depth decoding with cost accounting."""

    def __init__(self, model: LayeredLM):
        self.model = model

    def generate(
        self,
        prompt: Sequence[int],
        max_new_tokens: int,
        script: Optional[Sequence[int]] = None,
        force_tokens: Optional[Sequence[int]] = None,
    ) -> GenerationResult:
        model = self.model
        state = model.start(prompt, script=script)
        result = GenerationResult()
        result.ledger.prompt_tokens = len(state.context)
        result.ledger.add(Event.PREFILL_LAYER, calls=model.n_layers,
                          units=model.n_layers * len(state.context))
        last = model.n_layers - 1
        if force_tokens is not None:
            max_new_tokens = len(force_tokens)
        for step in range(max_new_tokens):
            model.begin_step(state)
            hidden = model.run_to_layer(state, last)
            result.ledger.add(Event.DECODER_LAYER, calls=model.n_layers)
            result.ledger.add(Event.LM_HEAD_FULL)
            logits = model.lm_head_full(hidden)
            token = int(np.argmax(logits))
            if force_tokens is not None:
                from repro.utils.mathx import log_softmax

                token = int(force_tokens[step])
                result.logprobs.append(float(log_softmax(logits)[token]))
            model.commit(state, token, last)
            result.ledger.tokens_generated += 1
            result.ledger.steps += 1
            result.tokens.append(token)
            result.exit_layers.append(last)
            result.records.append(StepRecord(
                token=token, exit_layer=last, early_exit=False,
                predictor_evals=0, verify_attempts=0, active_predictors=0.0,
                draft_hit=False,
            ))
        result.saturations = list(getattr(state, "saturation_layers", []))
        return result
