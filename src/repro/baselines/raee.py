"""RAEE baseline (Huang et al., 2024) — retrieval-augmented early exiting.

RAEE pre-builds a database mapping context embeddings to observed exit
layers; at inference it retrieves the k nearest neighbours and predicts the
exit layer by probability superposition.  It is training-free but pays a
large memory footprint (the database) and per-token retrieval latency — the
"High memory / heavy prediction" row of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import GenerationResult, StepRecord
from repro.hardware.ledger import Event
from repro.model.base import LayeredLM

__all__ = ["RAEEDatabase", "RAEEEngine"]


class RAEEDatabase:
    """Flat (brute-force) kNN index of context embeddings -> exit layers."""

    def __init__(self, dim: int):
        self.dim = dim
        self._keys: List[np.ndarray] = []
        self._layers: List[int] = []
        self._matrix: Optional[np.ndarray] = None

    def add(self, embedding: np.ndarray, exit_layer: int) -> None:
        embedding = np.asarray(embedding, dtype=np.float64)
        if embedding.shape != (self.dim,):
            raise ValueError(f"expected dim {self.dim}, got {embedding.shape}")
        self._keys.append(embedding)
        self._layers.append(int(exit_layer))
        self._matrix = None

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def nbytes(self) -> int:
        """In the real system each entry stores a hidden-dim fp16 embedding
        plus metadata; we report the actual array footprint."""
        return len(self._keys) * self.dim * 8 + len(self._layers) * 8

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = np.stack(self._keys) if self._keys else np.empty((0, self.dim))
        return self._matrix

    def query(self, embedding: np.ndarray, k: int = 8) -> Tuple[int, float]:
        """Superpose the k nearest entries; returns (predicted layer, confidence)."""
        if not self._keys:
            raise RuntimeError("empty RAEE database")
        matrix = self._ensure_matrix()
        d = matrix - np.asarray(embedding, dtype=np.float64)
        dist = np.einsum("nd,nd->n", d, d)
        idx = np.argpartition(dist, min(k, len(dist)) - 1)[:k]
        weights = 1.0 / (1.0 + dist[idx])
        layers = np.asarray([self._layers[i] for i in idx], dtype=np.float64)
        predicted = int(round(float(np.average(layers, weights=weights))))
        spread = float(np.std(layers))
        confidence = 1.0 / (1.0 + spread)
        return predicted, confidence


def build_raee_database(
    model: LayeredLM,
    prompts: Sequence[Sequence[int]],
    tokens_per_prompt: int = 32,
    embed_window: int = 4,
) -> RAEEDatabase:
    """Populate the database from dense decodes: key = mean embedding of the
    recent context window, value = the token's earliest correct-exit layer."""
    db = RAEEDatabase(dim=model.hidden_dim)
    for prompt in prompts:
        state = model.start(prompt)
        for _ in range(tokens_per_prompt):
            model.begin_step(state)
            embedding = _context_embedding(model, state.context, embed_window)
            earliest: Optional[int] = None
            hidden = None
            argmaxes: List[int] = []
            for layer in range(model.n_layers):
                hidden = model.layer_forward(state, layer)
                argmaxes.append(int(np.argmax(model.lm_head_full(hidden))))
            final = argmaxes[-1]
            for layer, tok in enumerate(argmaxes):
                if tok == final and all(a == final for a in argmaxes[layer:]):
                    earliest = layer
                    break
            db.add(embedding, earliest if earliest is not None else model.n_layers - 1)
            model.commit(state, final, model.n_layers - 1)
    return db


def _context_embedding(model: LayeredLM, context: Sequence[int], window: int) -> np.ndarray:
    """Mean token embedding over the recent window (retrieval key)."""
    emb = getattr(model, "_emb", None)
    if emb is None:
        raise TypeError("RAEE requires a model exposing token embeddings")
    ids = np.asarray(context[-window:], dtype=np.int64)
    return np.mean(emb[ids], axis=0)


@dataclass
class RAEEEngine:
    """Exit at the retrieved layer (with the model's argmax at that depth)."""

    model: LayeredLM
    database: RAEEDatabase
    neighbours: int = 8
    embed_window: int = 4
    min_exit_layer: int = 2

    def generate(
        self,
        prompt: Sequence[int],
        max_new_tokens: int,
        script: Optional[Sequence[int]] = None,
        force_tokens: Optional[Sequence[int]] = None,
    ) -> GenerationResult:
        model = self.model
        state = model.start(prompt, script=script)
        result = GenerationResult()
        result.ledger.prompt_tokens = len(state.context)
        result.ledger.add(Event.PREFILL_LAYER, calls=model.n_layers,
                          units=model.n_layers * len(state.context))
        last = model.n_layers - 1
        if force_tokens is not None:
            max_new_tokens = len(force_tokens)
        for step in range(max_new_tokens):
            model.begin_step(state)
            embedding = _context_embedding(model, state.context, self.embed_window)
            predicted, _confidence = self.database.query(embedding, self.neighbours)
            result.ledger.add(Event.RETRIEVAL, units=len(self.database))
            exit_layer = int(np.clip(predicted, self.min_exit_layer, last))
            hidden = model.run_to_layer(state, exit_layer)
            result.ledger.add(Event.DECODER_LAYER, calls=exit_layer + 1)
            result.ledger.add(Event.LM_HEAD_FULL)
            token = int(np.argmax(model.lm_head_full(hidden)))
            if exit_layer < last:
                result.ledger.add(Event.KV_FILL, units=last - exit_layer)
            if force_tokens is not None:
                from repro.utils.mathx import log_softmax

                token = int(force_tokens[step])
                result.logprobs.append(
                    float(log_softmax(model.lm_head_full(hidden))[token]))
            model.commit(state, token, exit_layer)
            result.ledger.tokens_generated += 1
            result.ledger.steps += 1
            result.tokens.append(token)
            result.exit_layers.append(exit_layer)
            result.records.append(StepRecord(
                token=token, exit_layer=exit_layer, early_exit=exit_layer < last,
                predictor_evals=1, verify_attempts=0, active_predictors=0.0,
                draft_hit=False,
            ))
        result.saturations = list(getattr(state, "saturation_layers", []))
        return result
