"""Linear SVM trained with Pegasos (Shalev-Shwartz et al., 2011).

AdaInfer gates early exit with a classical SVM over statistical features.
This is a from-scratch primal sub-gradient implementation with hinge loss
and L2 regularisation — deterministic given the seed, no external deps.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import child_rng

__all__ = ["LinearSVM"]


class LinearSVM:
    """Binary linear SVM; labels are {0, 1} externally, {-1, +1} internally."""

    def __init__(self, n_features: int, lambda_reg: float = 1e-3):
        self.n_features = n_features
        self.lambda_reg = lambda_reg
        self.weights = np.zeros(n_features)
        self.bias = 0.0
        self._mu = np.zeros(n_features)
        self._sigma = np.ones(n_features)

    def _standardize(self, x: np.ndarray) -> np.ndarray:
        return (x - self._mu) / self._sigma

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 20,
        seed: int = 0,
    ) -> float:
        """Pegasos training; returns final training accuracy."""
        x = np.asarray(x, dtype=np.float64)
        y = np.where(np.asarray(y, dtype=np.float64).reshape(-1) > 0.5, 1.0, -1.0)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes x={x.shape} y={y.shape}")
        if x.shape[0] == 0:
            raise ValueError("empty training set")
        self._mu = x.mean(axis=0)
        self._sigma = np.maximum(x.std(axis=0), 1e-8)
        xs = self._standardize(x)
        n = xs.shape[0]
        rng = child_rng(seed, "pegasos")
        t = 0
        for _ in range(epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (self.lambda_reg * t)
                margin = y[i] * (xs[i] @ self.weights + self.bias)
                self.weights *= 1.0 - eta * self.lambda_reg
                if margin < 1.0:
                    self.weights += eta * y[i] * xs[i]
                    self.bias += eta * y[i]
        return self.accuracy(x, y > 0)

    def decision(self, x: np.ndarray) -> np.ndarray:
        """Signed margin(s); positive means the positive class."""
        xs = self._standardize(np.atleast_2d(np.asarray(x, dtype=np.float64)))
        return xs @ self.weights + self.bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.decision(x) > 0

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y).reshape(-1) > 0.5
        return float(np.mean(self.predict(x) == y))
