"""Baseline engines and comparators.

* :mod:`repro.baselines.dense` — full-depth autoregressive decoding (the
  HuggingFace stand-in every speedup is measured against).
* :mod:`repro.baselines.adainfer` — AdaInfer early exit: full-vocabulary
  statistical features + an SVM gate, no verification (Fan et al., 2024).
* :mod:`repro.baselines.svm` — the from-scratch Pegasos linear SVM AdaInfer
  uses.
* :mod:`repro.baselines.raee` — RAEE retrieval-based early exit (kNN over a
  pre-built exit database).
* :mod:`repro.baselines.eagle` — EAGLE tree speculative decoding without
  early exit.
* :mod:`repro.baselines.prune` — one-shot magnitude pruning (SparseGPT
  stand-in for the Fig. 1a Pareto frontier).
"""

from repro.baselines.adainfer import AdaInferEngine
from repro.baselines.dense import DenseEngine
from repro.baselines.eagle import EagleEngine
from repro.baselines.prune import PrunedModelWrapper, magnitude_prune
from repro.baselines.raee import RAEEDatabase, RAEEEngine
from repro.baselines.svm import LinearSVM

__all__ = [
    "AdaInferEngine",
    "DenseEngine",
    "EagleEngine",
    "LinearSVM",
    "PrunedModelWrapper",
    "RAEEDatabase",
    "RAEEEngine",
    "magnitude_prune",
]
