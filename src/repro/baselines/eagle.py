"""EAGLE baseline (Li et al., 2024): tree speculative decoding, no early exit.

Each iteration drafts a token tree, verifies it with one full-depth batched
forward of the target model, and emits the accepted path plus a bonus token.
SpecEE+EAGLE (:class:`~repro.core.spec_engine.SpecEESpeculativeEngine`)
shares the drafting and acceptance logic; the only difference is that the
verify forward here always runs all layers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.spec_engine import IterationRecord, SpecDecodeResult
from repro.hardware.ledger import Event
from repro.mapping.tree import greedy_accept
from repro.model.draft import TreeDrafter
from repro.model.synthetic import SyntheticLayeredLM

__all__ = ["EagleEngine"]


class EagleEngine:
    """Tree-based speculative decoding at full depth."""

    def __init__(self, model: SyntheticLayeredLM, drafter: TreeDrafter):
        self.model = model
        self.drafter = drafter

    def generate(self, prompt: Sequence[int], max_new_tokens: int) -> SpecDecodeResult:
        model = self.model
        state = model.start(prompt)
        result = SpecDecodeResult()
        result.ledger.prompt_tokens = len(state.context)
        result.ledger.add(Event.PREFILL_LAYER, calls=model.n_layers,
                          units=model.n_layers * len(state.context))
        n_layers = model.n_layers
        while len(result.tokens) < max_new_tokens:
            tree = self.drafter.build(state.context)
            result.ledger.add(Event.DRAFT_STEP, calls=self.drafter.depth)
            model.begin_tree(state, tree.tokens, tree.parents)
            m = len(tree)
            hidden = None
            root_hidden = None
            for layer in range(n_layers):
                hidden = model.tree_layer_forward(state, layer)
                root_hidden = model.root_hidden(state, layer)
                result.ledger.add(Event.TREE_VERIFY_LAYER, units=m + 1)
            result.ledger.add(Event.LM_HEAD_FULL, calls=m + 1)
            node_outputs = [
                int(np.argmax(model.lm_head_full(hidden[i]))) for i in range(m)
            ]
            root_output = int(np.argmax(model.lm_head_full(root_hidden)))
            accept = greedy_accept(tree, root_output, node_outputs)
            model.end_tree(state, accept.tokens, n_layers - 1)
            emitted = len(accept.tokens)
            result.ledger.tokens_generated += emitted
            result.ledger.steps += 1
            result.tokens.extend(accept.tokens)
            result.iterations.append(IterationRecord(
                tree_size=m, accepted=len(accept.accepted_tokens),
                tokens_emitted=emitted, exit_layer=n_layers - 1,
                early_exit=False, predictor_evals=0,
            ))
        del result.tokens[max_new_tokens:]
        return result
