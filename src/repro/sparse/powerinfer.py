"""PowerInfer-style activation sparsity (Song et al., 2023).

ReLU-family LLMs activate a power-law-distributed subset of FFN neurons:
a small *hot* set fires constantly, a long cold tail rarely.  PowerInfer
keeps hot neurons on the GPU, cold ones on the CPU, and skips inactive
neurons entirely — turning a consumer GPU + CPU into a viable 7B server.

This module implements the real statistics pipeline on arrays (activation
frequency collection, hot-set selection under a VRAM budget) plus the hybrid
latency formula the PC-scenario experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.hardware.devices import DeviceSpec

__all__ = ["ActivationStats", "NeuronPartition", "partition_neurons", "hybrid_ffn_time"]


@dataclass
class ActivationStats:
    """Per-neuron activation frequencies collected over calibration runs."""

    frequencies: np.ndarray  # [n_neurons] in [0, 1]

    def __post_init__(self) -> None:
        self.frequencies = np.asarray(self.frequencies, dtype=np.float64)
        if self.frequencies.ndim != 1:
            raise ValueError("frequencies must be 1-D")
        if np.any((self.frequencies < 0) | (self.frequencies > 1)):
            raise ValueError("frequencies must lie in [0, 1]")

    @classmethod
    def from_activations(cls, activations: np.ndarray, threshold: float = 0.0) -> "ActivationStats":
        """Frequencies from a ``[samples, neurons]`` activation matrix."""
        activations = np.asarray(activations, dtype=np.float64)
        return cls(frequencies=np.mean(activations > threshold, axis=0))

    @classmethod
    def power_law(cls, n_neurons: int, hot_fraction: float = 0.26,
                  hot_rate: float = 0.9, cold_rate: float = 0.08,
                  seed: int = 0) -> "ActivationStats":
        """Synthetic power-law profile matching the PowerInfer paper's
        observation (~26% of neurons cover ~80% of activations)."""
        rng = np.random.default_rng(seed)
        n_hot = int(round(n_neurons * hot_fraction))
        freqs = np.concatenate([
            np.clip(rng.normal(hot_rate, 0.05, n_hot), 0, 1),
            np.clip(rng.exponential(cold_rate, n_neurons - n_hot), 0, 1),
        ])
        return cls(frequencies=rng.permutation(freqs))


@dataclass
class NeuronPartition:
    """Hot (GPU-resident) / cold (CPU-resident) neuron split."""

    hot_index: np.ndarray
    cold_index: np.ndarray
    expected_active_cold_fraction: float

    @property
    def hot_fraction(self) -> float:
        total = len(self.hot_index) + len(self.cold_index)
        return len(self.hot_index) / total if total else 0.0


def partition_neurons(
    stats: ActivationStats, gpu_budget_fraction: float
) -> NeuronPartition:
    """Select the hottest neurons that fit the GPU budget.

    ``gpu_budget_fraction`` is the share of FFN weights the VRAM can hold.
    Cold neurons are executed on the CPU *only when active*, so the expected
    cold-side work is the mean activation rate of the cold set.
    """
    if not 0.0 <= gpu_budget_fraction <= 1.0:
        raise ValueError("gpu_budget_fraction must lie in [0, 1]")
    n = len(stats.frequencies)
    n_hot = int(round(n * gpu_budget_fraction))
    order = np.argsort(-stats.frequencies, kind="stable")
    hot = np.sort(order[:n_hot])
    cold = np.sort(order[n_hot:])
    cold_rate = float(np.mean(stats.frequencies[cold])) if len(cold) else 0.0
    return NeuronPartition(hot_index=hot, cold_index=cold,
                           expected_active_cold_fraction=cold_rate)


def hybrid_ffn_time(
    partition: NeuronPartition,
    ffn_bytes: float,
    gpu: DeviceSpec,
    cpu: DeviceSpec,
    gpu_bw_eff: float = 0.72,
    cpu_bw_eff: float = 0.55,
) -> Tuple[float, float]:
    """(gpu_seconds, cpu_seconds) for one FFN under the hot/cold split.

    GPU streams the hot weights every token; the CPU touches only the
    *active* cold neurons (activation sparsity is what PowerInfer banks on).
    """
    hot_bytes = ffn_bytes * partition.hot_fraction
    cold_bytes = ffn_bytes * (1.0 - partition.hot_fraction)
    gpu_t = hot_bytes / (gpu.bytes_per_second * gpu_bw_eff)
    cpu_t = cold_bytes * partition.expected_active_cold_fraction / (
        cpu.bytes_per_second * cpu_bw_eff
    )
    return gpu_t, cpu_t
