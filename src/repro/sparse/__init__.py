"""Sparse activation: PowerInfer-style hot/cold neuron partitioning."""

from repro.sparse.powerinfer import (
    ActivationStats,
    NeuronPartition,
    hybrid_ffn_time,
    partition_neurons,
)

__all__ = ["ActivationStats", "NeuronPartition", "hybrid_ffn_time", "partition_neurons"]
