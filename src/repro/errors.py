"""Typed errors shared across layers.

Lives at the package root so low-level substrates (``repro.nn``) and the
serving stack (``repro.serving``) can raise and catch the same exception
types without layering inversions.
"""

from __future__ import annotations

__all__ = ["KVCorruptionError"]


class KVCorruptionError(RuntimeError):
    """A KV swap blob failed its integrity checksum.

    Raised by :meth:`repro.serving.paged_kv.PagedKVCache.swap_in` and
    :meth:`repro.nn.attention.KVCache.swap_in` when the data about to be
    restored does not match the checksum stamped at swap-out time.  The
    serving failover path catches this and falls back to the deterministic
    recompute-from-context resume, so a corrupted blob costs extra prefill
    work but never corrupts decoded tokens.
    """
