"""Shared utilities: seeded RNG streams, stable math, containers, reporting."""

from repro.utils.mathx import (
    geometric_mean,
    log_softmax,
    logsumexp,
    sigmoid,
    softmax,
)
from repro.utils.ring import CircularQueue
from repro.utils.rng import RngFactory, child_rng, hash_to_uint64

__all__ = [
    "CircularQueue",
    "RngFactory",
    "child_rng",
    "geometric_mean",
    "hash_to_uint64",
    "log_softmax",
    "logsumexp",
    "sigmoid",
    "softmax",
]
