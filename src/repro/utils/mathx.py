"""Numerically stable math primitives used across the library."""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "logsumexp",
    "sigmoid",
    "geometric_mean",
    "normalize_rows",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``; rows sum to exactly one."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def logsumexp(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-sum-exp reduction along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    m = np.max(x, axis=axis, keepdims=True)
    out = np.log(np.sum(np.exp(x - m), axis=axis, keepdims=True)) + m
    return np.squeeze(out, axis=axis)


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Stable logistic function (no overflow for large |x|)."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    if out.ndim == 0:
        return float(out)
    return out


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (paper's Geo.Mean columns)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def normalize_rows(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """L2-normalize the last axis."""
    x = np.asarray(x, dtype=np.float64)
    norm = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norm, eps)
