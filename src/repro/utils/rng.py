"""Deterministic random-number streams.

Every stochastic component in the library receives an explicit seed.  To keep
independent subsystems decorrelated without threading generator objects
through every call, we derive child seeds from a root seed plus a string tag
using a stable (non-salted) hash.  The same ``(seed, tag)`` pair always yields
the same stream on every platform and process.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["hash_to_uint64", "child_rng", "RngFactory"]


def hash_to_uint64(*parts: object) -> int:
    """Map an arbitrary tuple of printable parts to a stable 64-bit integer.

    Python's builtin ``hash`` is salted per process for strings, so we use
    blake2b over the ``repr`` of the parts instead.
    """
    payload = "\x1f".join(repr(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def child_rng(seed: int, *tags: object) -> np.random.Generator:
    """Return a generator for the substream identified by ``tags``."""
    return np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, hash_to_uint64(*tags)]))


class RngFactory:
    """Factory producing named, reproducible random streams from one seed.

    >>> rngs = RngFactory(1234)
    >>> a = rngs.get("weights").standard_normal(3)
    >>> b = RngFactory(1234).get("weights").standard_normal(3)
    >>> bool(np.allclose(a, b))
    True
    """

    def __init__(self, seed: int):
        self.seed = int(seed)

    def get(self, *tags: object) -> np.random.Generator:
        """Return a fresh generator for the substream named by ``tags``."""
        return child_rng(self.seed, *tags)

    def derive(self, *tags: object) -> "RngFactory":
        """Return a new factory whose root is this factory's ``tags`` stream."""
        return RngFactory(hash_to_uint64(self.seed, *tags) & 0x7FFFFFFF)

    def uniform(self, *tags: object) -> float:
        """One deterministic uniform sample in [0, 1) for the tagged stream."""
        return float(self.get(*tags).random())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self.seed})"
