"""Plain-text table and series rendering for experiment reports.

Every experiment in :mod:`repro.experiments` prints the rows/series the paper
reports through these helpers, so benchmark output is directly comparable to
the paper's tables and figures.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value: object, precision: int = 2) -> str:
    """Render one cell: floats with fixed precision, everything else via str."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    cells = [[format_value(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[float]],
    x_label: str,
    x_values: Sequence[object],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render named y-series against a shared x-axis as a table."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return render_table(headers, rows, title=title, precision=precision)
