"""Fixed-capacity circular queue.

This is the data structure the paper's online scheduler maintains: a circular
queue of the exit-layer positions of the last ``N`` generated tokens
(Section 5.3, "Online Scheduling").
"""

from __future__ import annotations

from typing import Iterator, List, Optional

__all__ = ["CircularQueue"]


class CircularQueue:
    """Bounded FIFO that overwrites its oldest element when full.

    >>> q = CircularQueue(3)
    >>> for v in (1, 2, 3, 4):
    ...     _ = q.push(v)
    >>> list(q)
    [2, 3, 4]
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._buf: List[Optional[int]] = [None] * self.capacity
        self._start = 0
        self._size = 0

    def push(self, value: int) -> Optional[int]:
        """Append ``value``; return the evicted element if the queue was full."""
        evicted = None
        if self._size == self.capacity:
            evicted = self._buf[self._start]
            self._buf[self._start] = value
            self._start = (self._start + 1) % self.capacity
        else:
            self._buf[(self._start + self._size) % self.capacity] = value
            self._size += 1
        return evicted

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[int]:
        """Yield elements oldest first."""
        for i in range(self._size):
            value = self._buf[(self._start + i) % self.capacity]
            assert value is not None
            yield value

    def __contains__(self, value: int) -> bool:
        return any(v == value for v in self)

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    def newest(self) -> Optional[int]:
        """Most recently pushed element, or ``None`` when empty."""
        if self._size == 0:
            return None
        return self._buf[(self._start + self._size - 1) % self.capacity]

    def clear(self) -> None:
        self._buf = [None] * self.capacity
        self._start = 0
        self._size = 0

    def to_list(self) -> List[int]:
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircularQueue(capacity={self.capacity}, items={list(self)})"
