"""SpecEE reproduction: accelerating LLM inference with speculative early exiting.

Reproduction of Xu et al., *SpecEE: Accelerating Large Language Model
Inference with Speculative Early Exiting* (ISCA 2025).  See DESIGN.md for
the system inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import build_rig

    rig = build_rig("llama2-7b")
    engine = rig.specee_engine()          # T1 + T2 SpecEE engine
    result = engine.generate([5, 6, 7], 64)
    print(result.avg_exit_layer, "of", rig.model.n_layers, "layers")
"""

from repro.baselines import AdaInferEngine, DenseEngine, EagleEngine
from repro.config import MODELS, ModelSpec, SimDims, SpecEEConfig, get_model_spec
from repro.core import (
    PredictorBank,
    SpecEEEngine,
    SpecEESpeculativeEngine,
    harvest_training_corpus,
    train_predictor_bank,
)
from repro.data import DATASETS, get_dataset, make_items
from repro.eval import build_rig, priced_run, run_items
from repro.hardware import DEVICES, FRAMEWORKS, LatencyModel
from repro.model import (
    Speculator,
    SyntheticLayeredLM,
    TransformerLayeredLM,
    TreeDrafter,
    get_profile,
)
from repro.serving import PagedKVCache, Request, ServingEngine, ServingReport

__version__ = "1.0.0"

__all__ = [
    "AdaInferEngine",
    "DATASETS",
    "DEVICES",
    "DenseEngine",
    "EagleEngine",
    "FRAMEWORKS",
    "LatencyModel",
    "MODELS",
    "ModelSpec",
    "PagedKVCache",
    "PredictorBank",
    "Request",
    "ServingEngine",
    "ServingReport",
    "SimDims",
    "SpecEEConfig",
    "SpecEEEngine",
    "SpecEESpeculativeEngine",
    "Speculator",
    "SyntheticLayeredLM",
    "TransformerLayeredLM",
    "TreeDrafter",
    "build_rig",
    "get_dataset",
    "get_model_spec",
    "get_profile",
    "harvest_training_corpus",
    "make_items",
    "priced_run",
    "run_items",
    "train_predictor_bank",
    "__version__",
]
