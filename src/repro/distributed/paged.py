"""Per-stage paged KV ownership for pipeline-parallel serving.

Under pipeline parallelism each stage holds the KV cache for its own layer
range on its own device memory.  :class:`ShardedPagedKV` therefore keeps one
:class:`~repro.serving.paged_kv.PagedKVCache` pool *per stage* and mirrors
every sequence operation across them — an append lands one entry in every
stage's pool (each stage's share of that token's cache), an eviction frees
blocks on every stage, a swap parks every stage's share host-side.

Because the stages see identical append/free traffic they stay in lockstep:
each stage's allocator holds the same block count for the same sequences,
which is what makes the facade's aggregate accounting (``free_blocks`` =
the tightest stage, ``blocks_in_use`` = per-device blocks) exact rather than
approximate.  The serving engines drive this class through the same surface
as a single :class:`PagedKVCache`, so sharded and single-device runs make
identical admission/preemption decisions — one half of the token-identity
guarantee.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.serving.paged_kv import PagedKVCache

__all__ = ["ShardedPagedKV"]


class _MinAllocatorView:
    """Read-only allocator facade: the tightest stage bounds admission."""

    def __init__(self, stages: List[PagedKVCache]):
        """Wrap the per-stage allocators."""
        self._stages = stages

    @property
    def n_blocks(self) -> int:
        """Per-stage (= per-device) pool size."""
        return self._stages[0].allocator.n_blocks

    @property
    def free_blocks(self) -> int:
        """Free blocks on the most constrained stage."""
        return min(s.allocator.free_blocks for s in self._stages)


class ShardedPagedKV:
    """``n_stages`` per-stage paged pools behind one cache facade."""

    def __init__(
        self, n_stages: int, n_blocks: int, block_size: int,
        n_kv_heads: int, head_dim: int, prefix_share: bool = False,
    ):
        """Create ``n_stages`` pools of ``n_blocks`` blocks each."""
        if n_stages < 1:
            raise ValueError("n_stages must be >= 1")
        self.n_stages = n_stages
        self.prefix_share = bool(prefix_share)
        self.stages: List[PagedKVCache] = [
            PagedKVCache(n_blocks=n_blocks, block_size=block_size,
                         n_kv_heads=n_kv_heads, head_dim=head_dim,
                         prefix_share=prefix_share)
            for _ in range(n_stages)
        ]
        self.block_size = block_size
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.allocator = _MinAllocatorView(self.stages)

    # -- sequence management ---------------------------------------------------
    def add_sequence(self, seq_id: int) -> None:
        """Register ``seq_id`` on every stage."""
        for stage in self.stages:
            stage.add_sequence(seq_id)

    def free_sequence(self, seq_id: int) -> None:
        """Free ``seq_id``'s blocks on every stage."""
        for stage in self.stages:
            stage.free_sequence(seq_id)

    def length(self, seq_id: int) -> int:
        """Token count of ``seq_id`` (identical on every stage)."""
        return self.stages[0].length(seq_id)

    def block_table(self, seq_id: int) -> List[int]:
        """Stage-0 block table (stages allocate in lockstep)."""
        return self.stages[0].block_table(seq_id)

    # -- KV I/O ---------------------------------------------------------------
    def append(self, seq_id: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append one token's KV share to every owning stage."""
        for stage in self.stages:
            stage.append(seq_id, k, v)

    def gather(self, seq_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Stage-0 contiguous view (every stage's share is bit-identical)."""
        return self.stages[0].gather(seq_id)

    def append_needs_block(self, seq_id: int) -> bool:
        """Whether the next append allocates (identical on every stage)."""
        return self.stages[0].append_needs_block(seq_id)

    # -- prefix sharing ---------------------------------------------------------
    def prefill_prompt(self, seq_id: int, prompt: Iterable[int]) -> int:
        """Prefill ``prompt`` on every stage, adopting shared prefix blocks.

        The per-stage radix trees see identical prompt traffic, so every
        stage matches the same prefix; a divergence would mean the stages
        fell out of lockstep and is asserted fatal.
        """
        prompt = [int(t) for t in prompt]
        counts = {stage.prefill_prompt(seq_id, prompt) for stage in self.stages}
        if len(counts) != 1:
            raise AssertionError(
                f"stages diverged on prefill_prompt({seq_id}): {counts}")
        return counts.pop()

    def reset_prefix_cache(self) -> int:
        """Drop every stage's radix tree; returns stage-0 blocks released."""
        counts = [stage.reset_prefix_cache() for stage in self.stages]
        return counts[0]

    def evict_prefix_leaves(self, n_blocks: int) -> int:
        """Evict up to ``n_blocks`` cold tree leaves on every stage.

        The per-stage trees see identical traffic, so the same LRU leaf is
        chosen on each; a divergence breaks lockstep and is asserted fatal.
        Returns the per-stage blocks freed.
        """
        counts = {stage.evict_prefix_leaves(n_blocks) for stage in self.stages}
        if len(counts) != 1:
            raise AssertionError(
                f"stages diverged on evict_prefix_leaves: {counts}")
        return counts.pop()

    def prefix_hit_rate(self) -> float:
        """Shared-prefix token hit rate (identical on every stage)."""
        return self.stages[0].prefix_hit_rate()

    @property
    def prefix_prompt_tokens(self) -> int:
        """Prompt tokens prefilled through the prefix path (stage-0 view)."""
        return self.stages[0].prefix_prompt_tokens

    @property
    def prefix_matched_tokens(self) -> int:
        """Prompt tokens adopted from shared blocks (stage-0 view)."""
        return self.stages[0].prefix_matched_tokens

    @property
    def cow_copies(self) -> int:
        """Copy-on-write clones performed (stage-0 view; stages match)."""
        return self.stages[0].cow_copies

    # -- preemption -----------------------------------------------------------
    def swap_out(self, seq_id: int) -> int:
        """Park every stage's share host-side; returns tokens moved (logical,
        not multiplied by stage count — the swap is concurrent per device)."""
        counts = {stage.swap_out(seq_id) for stage in self.stages}
        if len(counts) != 1:
            raise AssertionError(f"stages diverged on swap_out({seq_id}): {counts}")
        return counts.pop()

    def swap_in(self, seq_id: int) -> int:
        """Restore every stage's share from the host pool.

        Capacity and blob checksums are checked across all stages *before*
        any mutation (using the pool's own
        :meth:`PagedKVCache.swap_in_blocks_needed`/:meth:`PagedKVCache.verify_host`)
        so a failed swap-in leaves every host copy intact — stages mutate all
        or none, preserving lockstep.
        """
        for stage in self.stages:
            needed = stage.swap_in_blocks_needed(seq_id)  # KeyError if absent
            if needed > stage.allocator.free_blocks:
                raise MemoryError(
                    f"swap-in of sequence {seq_id} needs {needed} blocks per "
                    f"stage, a stage has only {stage.allocator.free_blocks} free"
                )
            stage.verify_host(seq_id)  # KVCorruptionError before any mutation
        counts = {stage.swap_in(seq_id) for stage in self.stages}
        if len(counts) != 1:
            raise AssertionError(f"stages diverged on swap_in({seq_id}): {counts}")
        return counts.pop()

    def is_swapped(self, seq_id: int) -> bool:
        """Whether ``seq_id`` currently lives in the host pool."""
        return self.stages[0].is_swapped(seq_id)

    def drop_host(self, seq_id: int) -> int:
        """Discard every stage's parked blob (corruption fallback); returns
        the logical tokens discarded."""
        counts = {stage.drop_host(seq_id) for stage in self.stages}
        return counts.pop()

    def corrupt_host(self, seq_id: int, rng: "np.random.Generator") -> None:
        """Flip one parked value on one stage (fault injection) — lockstep
        restore then fails that stage's checksum before any stage mutates."""
        self.stages[int(rng.integers(self.n_stages))].corrupt_host(seq_id, rng)

    def host_tokens(self) -> int:
        """Logical tokens parked host-side (per-stage copies count once)."""
        return self.stages[0].host_tokens()

    # -- accounting ---------------------------------------------------------------
    def blocks_in_use(self) -> int:
        """Blocks allocated per device (stages are in lockstep)."""
        return self.stages[0].blocks_in_use()

    def utilization(self) -> float:
        """Fraction of allocated slots holding tokens (per-stage)."""
        return self.stages[0].utilization()
