"""Cluster topology: devices, interconnect links, and parallel layout.

A :class:`ClusterSpec` models a datacenter deployment of ``tp * pp``
accelerators: tensor-parallel groups of ``tp`` devices joined by a fast
intra-node link (NVLink-class), arranged into ``pp`` pipeline stages joined
by a slower inter-node link (PCIe-class).  The spec is pure topology — the
pricing of sharded work lives in
:class:`~repro.distributed.latency.ClusterLatencyModel`, and the event
rewriting that sharding implies lives in :mod:`repro.distributed.sharding`.

The layout convention mirrors Megatron-LM: tensor parallelism is kept inside
the fastest link domain because it synchronises twice per decoder layer,
while pipeline parallelism crosses the slow domain because it only hands an
activation batch between neighbouring stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hardware.devices import DeviceSpec, get_device

__all__ = ["LinkSpec", "LINKS", "get_link", "ClusterSpec", "make_cluster",
           "make_replica_clusters"]


@dataclass(frozen=True)
class LinkSpec:
    """One interconnect class: achievable bandwidth plus per-hop latency."""

    name: str
    bw_gbps: float      # achievable point-to-point bandwidth, GB/s
    latency_us: float   # per-hop launch + wire latency

    def __post_init__(self) -> None:
        """Reject non-physical link parameters."""
        if self.bw_gbps <= 0:
            raise ValueError("link bw_gbps must be positive")
        if self.latency_us < 0:
            raise ValueError("link latency_us must be non-negative")

    @property
    def bytes_per_second(self) -> float:
        """Link bandwidth in bytes/s."""
        return self.bw_gbps * 1e9


LINKS: Dict[str, LinkSpec] = {
    # NVLink-class intra-node fabric (NVLink3-era achievable point-to-point).
    "nvlink": LinkSpec(name="nvlink", bw_gbps=300.0, latency_us=3.0),
    # PCIe-class inter-node path (gen4 x16 achievable, plus NIC/switch hop).
    "pcie4": LinkSpec(name="pcie4", bw_gbps=25.0, latency_us=10.0),
}


def get_link(name: str) -> LinkSpec:
    """Look up a registered :class:`LinkSpec` by name."""
    try:
        return LINKS[name]
    except KeyError:
        known = ", ".join(sorted(LINKS))
        raise KeyError(f"unknown link {name!r}; known: {known}") from None


@dataclass(frozen=True)
class ClusterSpec:
    """``tp * pp`` devices plus the links that join them.

    ``devices`` is ordered stage-major: entries ``[s*tp : (s+1)*tp]`` form
    pipeline stage ``s``'s tensor-parallel group.  ``tp_link`` joins devices
    inside a TP group (crossed twice per decoder layer by all-reduce);
    ``pp_link`` joins neighbouring stages (crossed once per micro-batch per
    stage boundary).  ``micro_batches`` is how many micro-batches a serving
    tick is split into under pipeline parallelism (default: ``pp``, the
    minimum that keeps every stage busy in steady state).
    """

    devices: Tuple[DeviceSpec, ...]
    tp: int = 1
    pp: int = 1
    tp_link: LinkSpec = LINKS["nvlink"]
    pp_link: LinkSpec = LINKS["pcie4"]
    micro_batches: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate degrees, device count, and homogeneity."""
        if self.tp < 1 or self.pp < 1:
            raise ValueError("tp and pp must be >= 1")
        if len(self.devices) != self.tp * self.pp:
            raise ValueError(
                f"cluster needs tp*pp = {self.tp * self.pp} devices, "
                f"got {len(self.devices)}"
            )
        kinds = {d.kind for d in self.devices}
        if len(kinds) > 1:
            raise ValueError(f"cluster devices must share a kind, got {sorted(kinds)}")
        names = {d.name for d in self.devices}
        if len(names) > 1:
            raise ValueError(
                f"heterogeneous clusters are not modelled yet, got {sorted(names)}"
            )
        if self.micro_batches is not None and self.micro_batches < self.pp:
            raise ValueError(
                f"micro_batches={self.micro_batches} must be >= pp={self.pp} "
                "(fewer cannot fill the pipeline)"
            )

    # -- derived topology -----------------------------------------------------
    @property
    def world_size(self) -> int:
        """Total number of devices in the cluster."""
        return self.tp * self.pp

    @property
    def device(self) -> DeviceSpec:
        """The representative device (clusters are homogeneous)."""
        return self.devices[0]

    @property
    def is_single(self) -> bool:
        """True for the degenerate 1x1 cluster (single-device semantics)."""
        return self.tp == 1 and self.pp == 1

    def stage_devices(self, stage: int) -> Tuple[DeviceSpec, ...]:
        """The tensor-parallel device group of pipeline stage ``stage``."""
        if not 0 <= stage < self.pp:
            raise IndexError(f"stage {stage} out of range [0, {self.pp})")
        return self.devices[stage * self.tp:(stage + 1) * self.tp]

    def stage_layers(self, n_layers: int) -> List[range]:
        """Contiguous decoder-layer ranges, one per pipeline stage.

        Remainder layers go to the earliest stages so no stage ever trails
        another by more than one layer (balanced stage time, smallest bubble).
        """
        if n_layers < self.pp:
            raise ValueError(f"cannot split {n_layers} layers over pp={self.pp} stages")
        base, extra = divmod(n_layers, self.pp)
        ranges, start = [], 0
        for stage in range(self.pp):
            size = base + (1 if stage < extra else 0)
            ranges.append(range(start, start + size))
            start += size
        return ranges

    def layers_per_stage(self, n_layers: int) -> int:
        """Largest per-stage layer count — the stage time the bubble scales with."""
        return -(-n_layers // self.pp)

    def micro_batch_count(self, batch: int) -> int:
        """Micro-batches a ``batch``-sequence tick splits into (>=1, <=batch)."""
        if batch < 1:
            return 1
        target = self.micro_batches if self.micro_batches is not None else self.pp
        return max(1, min(target, batch))


def make_cluster(
    device: DeviceSpec | str = "a100-80g",
    tp: int = 1,
    pp: int = 1,
    tp_link: LinkSpec | str = "nvlink",
    pp_link: LinkSpec | str = "pcie4",
    micro_batches: Optional[int] = None,
) -> ClusterSpec:
    """Build a homogeneous ``tp x pp`` cluster of ``device`` accelerators.

    The common entry point for the CLI and benchmarks: ``make_cluster(
    "a100-80g", tp=2, pp=2)`` is a two-stage pipeline of two-way
    tensor-parallel A100 pairs, NVLink inside each pair, PCIe between stages.
    """
    spec = get_device(device) if isinstance(device, str) else device
    tpl = get_link(tp_link) if isinstance(tp_link, str) else tp_link
    ppl = get_link(pp_link) if isinstance(pp_link, str) else pp_link
    return ClusterSpec(
        devices=tuple(spec for _ in range(tp * pp)), tp=tp, pp=pp,
        tp_link=tpl, pp_link=ppl, micro_batches=micro_batches,
    )


def make_replica_clusters(
    n_replicas: int,
    device: DeviceSpec | str = "a100-80g",
    tp: int = 1,
    pp: int = 1,
    tp_link: LinkSpec | str = "nvlink",
    pp_link: LinkSpec | str = "pcie4",
    micro_batches: Optional[int] = None,
) -> List[Optional[ClusterSpec]]:
    """One independent ``tp x pp`` cluster per data-parallel replica.

    The fleet-tier convenience for
    :class:`~repro.serving.router.ServingRouter`: each replica of a
    data-parallel fleet owns its own modelled shard group, so the list holds
    ``n_replicas`` *distinct* :class:`ClusterSpec` objects (``None`` entries
    when ``tp * pp == 1`` — a single-device replica carries no cluster).
    """
    if n_replicas < 1:
        raise ValueError("n_replicas must be >= 1")
    if tp * pp == 1:
        return [None] * n_replicas
    return [make_cluster(device, tp=tp, pp=pp, tp_link=tp_link,
                         pp_link=pp_link, micro_batches=micro_batches)
            for _ in range(n_replicas)]
