"""Cluster roofline pricing: tensor-parallel shards, collectives, bubbles.

:class:`ClusterLatencyModel` extends the single-device
:class:`~repro.hardware.latency.LatencyModel` to a :class:`ClusterSpec`:

* **Tensor parallelism** — each decoder/prefill layer's weight traffic and
  FLOPs are divided ``tp`` ways (Megatron-style column/row sharding), so the
  overridden :meth:`decoder_layer_time` / :meth:`prefill_layer_time` price
  the *per-shard* layer.  The synchronisation this implies is not free: the
  engines emit two ``ALLREDUCE`` events per sharded layer execution, priced
  here as a ring all-reduce over the ``tp_link``.
* **Pipeline parallelism** — layers are distributed over ``pp`` stages that
  work concurrently in steady state, so the summed layer-event time divides
  by ``pp``; the fill/drain idleness that concurrency costs is priced
  explicitly from the ``PIPELINE_BUBBLE`` events the engines emit (idle
  stage-slots whose units carry the micro-batch size).
* **Preemption** — a sequence's paged KV is owned per-stage, so swap traffic
  moves ``1/pp`` of the bytes per owning device concurrently, and recompute
  re-runs a prefill that itself pipelines over the stages.

Everything else (LM head, predictor, draft, retrieval) stays replicated on a
single device — those paths are host-loop-bound trinkets next to the layer
stack, and sharding them would only add collectives.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import ModelSpec
from repro.distributed.cluster import ClusterSpec
from repro.hardware.devices import DeviceSpec
from repro.hardware.frameworks import FrameworkProfile
from repro.hardware.latency import LatencyBreakdown, LatencyModel
from repro.hardware.ledger import CostLedger, Event

__all__ = ["ClusterLatencyModel", "PIPELINED_EVENTS"]

# Layer-stack events that pipeline-parallel stages execute concurrently; the
# cluster price divides their summed time by pp (bubbles are separate).
PIPELINED_EVENTS = (
    Event.PREFILL_LAYER, Event.DECODER_LAYER, Event.BATCH_DECODER_LAYER,
    Event.TREE_VERIFY_LAYER,
)


class ClusterLatencyModel(LatencyModel):
    """Prices cost ledgers for (model, cluster, framework)."""

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        framework: FrameworkProfile | str,
        cpu_device: DeviceSpec | str | None = None,
    ):
        """Build the model; the cluster's representative device is the roofline.

        Fails fast when the pipeline has more stages than the model has
        decoder layers — a stage with no layers would otherwise keep
        inflating the modelled stage concurrency.
        """
        super().__init__(model, cluster.device, framework, cpu_device=cpu_device)
        cluster.stage_layers(model.n_layers)  # raises if pp > n_layers
        self.cluster = cluster

    # -- sharded primitives ---------------------------------------------------
    def decoder_layer_time(self, batch: float = 1.0) -> float:
        """One tensor-parallel *shard* of a decoder layer over ``batch`` tokens.

        Weight traffic and FLOPs divide ``tp``; dispatch overhead does not
        (every shard launches its own kernels).  With ``tp == 1`` this is
        exactly the single-device layer time.
        """
        tp = self.cluster.tp
        if tp == 1:
            return super().decoder_layer_time(batch)
        fw, dev = self.framework, self.device
        gpu_bytes = self.layer_weight_bytes() * fw.gpu_weight_fraction / tp
        mem_t = gpu_bytes / (dev.bytes_per_second * fw.bw_efficiency)
        if self.cpu is not None and fw.gpu_weight_fraction < 1.0:
            cpu_bytes = self.layer_weight_bytes() * (1.0 - fw.gpu_weight_fraction) / tp
            mem_t += cpu_bytes / (self.cpu.bytes_per_second * fw.cpu_bw_efficiency)
        flop_t = self.layer_flops(batch) / tp / (dev.flops_per_second * fw.flop_efficiency)
        extra = (batch - 1.0) * fw.batch_flop_share * mem_t
        return max(mem_t + extra, flop_t) + fw.layer_overhead_us * 1e-6

    def prefill_layer_time(self, tokens: float) -> float:
        """One tensor-parallel shard of a prefill layer over ``tokens``."""
        tp = self.cluster.tp
        if tp == 1:
            return super().prefill_layer_time(tokens)
        fw, dev = self.framework, self.device
        flop_t = self.layer_flops(tokens) / tp / (dev.flops_per_second * fw.flop_efficiency)
        mem_t = self.layer_weight_bytes() / tp / (dev.bytes_per_second * fw.bw_efficiency)
        return max(flop_t, mem_t) + fw.layer_overhead_us * 1e-6

    # -- collective and bubble pricing ---------------------------------------
    def allreduce_time(self, tokens: float) -> float:
        """Ring all-reduce of a ``tokens x hidden_dim`` fp16 activation over
        the TP group: ``2(tp-1)/tp`` of the payload crosses the ``tp_link``,
        plus ``2(tp-1)`` hop latencies (reduce-scatter then all-gather)."""
        tp = self.cluster.tp
        if tp == 1:
            return 0.0
        link = self.cluster.tp_link
        payload = tokens * self.model.hidden_dim * 2.0  # fp16 activations
        wire = 2.0 * (tp - 1) / tp * payload / link.bytes_per_second
        hops = 2.0 * (tp - 1) * link.latency_us * 1e-6
        return wire + hops

    def bubble_slot_time(self, micro_batch_tokens: float) -> float:
        """One idle pipeline layer-slot: the sharded layer time a waiting
        stage fails to overlap, plus the micro-batch hand-off across the
        ``pp_link`` (activation payload + one hop latency)."""
        link = self.cluster.pp_link
        handoff = (micro_batch_tokens * self.model.hidden_dim * 2.0
                   / link.bytes_per_second + link.latency_us * 1e-6)
        return self.decoder_layer_time(micro_batch_tokens) + handoff

    # -- preemption re-pricing ------------------------------------------------
    def kv_swap_time(self, tokens: float) -> float:
        """Per-stage-owned swap: each of the ``pp`` stage devices moves its
        own ``1/pp`` share of the cache concurrently over its host link."""
        return super().kv_swap_time(tokens / self.cluster.pp)

    def preempt_costs(self, tokens: float, context_tokens: float) -> Dict[str, float]:
        """Swap-vs-recompute costs with per-stage KV and pipelined prefill."""
        recompute = (self.model.n_layers
                     * self.prefill_layer_time(max(context_tokens, 1.0))
                     / self.cluster.pp)
        return {"swap": 2.0 * self.kv_swap_time(tokens), "recompute": recompute}

    # -- ledger pricing --------------------------------------------------------
    def price(self, ledger: CostLedger) -> LatencyBreakdown:
        """Price ``ledger`` on the cluster.

        The inherited event pricing already uses the tp-sharded primitives;
        on top of that the summed layer-stack time divides by ``pp`` (stages
        overlap in steady state) and the cluster-only events are added:
        ``ALLREDUCE`` calls at :meth:`allreduce_time` of their average token
        payload, ``PIPELINE_BUBBLE`` slots at :meth:`bubble_slot_time` of
        their average micro-batch.
        """
        breakdown = self._price_common(ledger)
        per = dict(breakdown.per_event_s)
        pp = self.cluster.pp
        if pp > 1:
            for kind in PIPELINED_EVENTS:
                if kind in per:
                    per[kind] /= pp
        if ledger.calls(Event.ALLREDUCE):
            avg_tokens = ledger.units(Event.ALLREDUCE) / ledger.calls(Event.ALLREDUCE)
            per[Event.ALLREDUCE] = (
                ledger.calls(Event.ALLREDUCE) * self.allreduce_time(avg_tokens))
        if ledger.calls(Event.PIPELINE_BUBBLE):
            avg_mb = (ledger.units(Event.PIPELINE_BUBBLE)
                      / ledger.calls(Event.PIPELINE_BUBBLE))
            per[Event.PIPELINE_BUBBLE] = (
                ledger.calls(Event.PIPELINE_BUBBLE) * self.bubble_slot_time(avg_mb))
        total = sum(per.values()) + self._host_overhead_s(ledger)
        return LatencyBreakdown(
            total_s=total, per_event_s=per, tokens_generated=ledger.tokens_generated
        )
