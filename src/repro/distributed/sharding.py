"""Event rewriting for sharded execution of a serving tick.

Sharding never changes *what* work a tick does — it changes how the work is
cut across devices, which the ledger must record so the cluster model can
price it:

* **Micro-batched layer executions.**  Under pipeline parallelism a tick's
  batch is split into ``m`` micro-batches; a decoder layer with full batch
  ``b`` therefore executes ``min(m, b)`` times at ``b / m`` tokens each
  instead of once at ``b``.  The recorded units are unchanged (total layer
  tokens are conserved — the serving invariant ``sum(units) ==
  per-sequence layer calls`` survives sharding), only the call granularity
  grows, which is exactly the extra weight re-reads micro-batching costs.
* **All-reduces.**  Tensor parallelism synchronises twice per layer
  execution (after attention and after the FFN), so every sharded layer
  call emits two ``ALLREDUCE`` events whose units carry the token payload.
* **Pipeline bubbles.**  Each tick's pipeline fills and drains once:
  ``(pp - 1) * ceil(L_exec / pp)`` idle layer-slots, where ``L_exec`` is the
  deepest layer the tick executed.  Units carry the average micro-batch so
  the bubble prices as the layer time the idle stage failed to overlap.
"""

from __future__ import annotations

from typing import Sequence

from repro.distributed.cluster import ClusterSpec
from repro.hardware.ledger import CostLedger, Event

__all__ = ["record_decode_batches", "record_prefill_allreduce",
           "record_tick_bubble", "shard_serving_ledger"]


def record_decode_batches(
    tick: CostLedger, batches: Sequence[int], cluster: ClusterSpec | None,
) -> None:
    """Ledger one tick's shared decode-layer executions, sharded if needed.

    ``batches[l]`` is the number of sequences still alive at layer depth
    ``l`` this tick (the single-device form).  Without a cluster (or on a
    1x1 cluster) each entry becomes one ``BATCH_DECODER_LAYER`` call; under
    sharding each entry becomes ``min(m, b)`` micro-batched calls plus the
    tensor-parallel all-reduces.
    """
    if not batches:
        return
    if cluster is None or cluster.is_single:
        tick.add(Event.BATCH_DECODER_LAYER, calls=len(batches), units=sum(batches))
        return
    m = cluster.micro_batch_count(batches[0])
    for b in batches:
        calls = min(m, b)
        tick.add(Event.BATCH_DECODER_LAYER, calls=calls, units=b)
        if cluster.tp > 1:
            tick.add(Event.ALLREDUCE, calls=2 * calls, units=2 * b)


def record_prefill_allreduce(
    tick: CostLedger, layer_calls: float, layer_tokens: float,
    cluster: ClusterSpec | None,
) -> None:
    """Add the TP collectives for ``layer_calls`` prefill-layer executions
    that together processed ``layer_tokens`` layer-tokens."""
    if cluster is None or cluster.tp <= 1 or layer_calls <= 0:
        return
    tick.add(Event.ALLREDUCE, calls=2 * layer_calls, units=2 * layer_tokens)


def record_tick_bubble(
    tick: CostLedger, deepest_layer: int, layer_tokens: float,
    batch: int, cluster: ClusterSpec | None,
) -> None:
    """Add one tick's pipeline fill/drain bubble.

    ``deepest_layer`` is the deepest decoder/prefill layer the tick
    executed, ``layer_tokens`` the tick's total layer-tokens (used to size
    the average micro-batch a bubble slot fails to overlap), ``batch`` the
    tick's sequence count (bounds the micro-batch split).
    """
    if cluster is None or cluster.pp <= 1 or deepest_layer <= 0:
        return
    slots = (cluster.pp - 1) * -(-deepest_layer // cluster.pp)
    m = cluster.micro_batch_count(max(batch, 1))
    avg_micro_batch = layer_tokens / deepest_layer / m
    tick.add(Event.PIPELINE_BUBBLE, calls=slots, units=slots * avg_micro_batch)


def shard_serving_ledger(
    merged: CostLedger,
    tick_batches: Sequence[Sequence[int]],
    n_steps: int,
    cluster: ClusterSpec,
) -> CostLedger:
    """Sharded serving-side ledger for a closed-batch run.

    The sharded counterpart of the serving engine's rebatching: per-sequence
    ``DECODER_LAYER`` calls are replaced by micro-batched
    ``BATCH_DECODER_LAYER`` executions from the recorded per-tick layer
    batches, with ``ALLREDUCE`` events for every sharded layer and prefill
    execution and one ``PIPELINE_BUBBLE`` per decode tick.  Total layer
    tokens are asserted conserved, so sharding can never hide or invent
    work.
    """
    total_units = sum(sum(b) for b in tick_batches)
    if total_units != merged.calls(Event.DECODER_LAYER):
        raise AssertionError(
            f"sharded layer-tokens {total_units} != per-sequence layer calls "
            f"{merged.calls(Event.DECODER_LAYER)}"
        )
    out = CostLedger()
    for kind in merged.kinds():
        if kind == Event.DECODER_LAYER:
            continue
        out.add(kind, calls=merged.calls(kind), units=merged.units(kind))
    record_prefill_allreduce(
        out, merged.calls(Event.PREFILL_LAYER), merged.units(Event.PREFILL_LAYER),
        cluster,
    )
    for batches in tick_batches:
        record_decode_batches(out, list(batches), cluster)
        if batches:
            record_tick_bubble(out, len(batches), float(sum(batches)),
                               batches[0], cluster)
    out.tokens_generated = merged.tokens_generated
    out.prompt_tokens = merged.prompt_tokens
    out.steps = n_steps
    return out
