"""Multi-device sharded serving: cluster topology, pricing, KV ownership.

``repro.distributed`` grows the single-``DeviceSpec`` roofline/ledger model
into a cluster model.  :class:`ClusterSpec` describes ``tp x pp`` devices
and their interconnect links; :class:`ClusterLatencyModel` prices sharded
ledgers (tensor-parallel layer shards plus ``ALLREDUCE`` collectives,
pipeline-stage concurrency plus ``PIPELINE_BUBBLE`` idleness);
:mod:`~repro.distributed.sharding` rewrites serving-tick events into their
sharded form; :class:`ShardedPagedKV` owns paged-KV blocks per pipeline
stage.  Sharded decoding is token-identical to single-device decoding —
sharding repartitions cost, never tokens.
"""

from repro.distributed.cluster import (
    LINKS,
    ClusterSpec,
    LinkSpec,
    get_link,
    make_cluster,
    make_replica_clusters,
)
from repro.distributed.latency import PIPELINED_EVENTS, ClusterLatencyModel
from repro.distributed.paged import ShardedPagedKV
from repro.distributed.sharding import (
    record_decode_batches,
    record_prefill_allreduce,
    record_tick_bubble,
    shard_serving_ledger,
)

__all__ = [
    "LINKS",
    "PIPELINED_EVENTS",
    "ClusterLatencyModel",
    "ClusterSpec",
    "LinkSpec",
    "ShardedPagedKV",
    "get_link",
    "make_cluster",
    "make_replica_clusters",
    "record_decode_batches",
    "record_prefill_allreduce",
    "record_tick_bubble",
    "shard_serving_ledger",
]
