"""Shared experiment infrastructure: scales, engine factories, caches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines import AdaInferEngine, DenseEngine, EagleEngine
from repro.baselines.adainfer import train_adainfer_gates
from repro.baselines.raee import RAEEEngine, build_raee_database
from repro.config import SpecEEConfig, get_model_spec
from repro.core import SpecEESpeculativeEngine
from repro.data import DatasetSpec, get_dataset, make_items
from repro.data.corpus import generate_prompts
from repro.eval import EvalRun, Rig, build_rig, priced_run, run_items
from repro.eval.speedup import PricedRun
from repro.model.draft import TreeDrafter

__all__ = [
    "Scale", "SCALES", "FIG14_DATASETS", "FIG16_DATASETS", "TABLE4_DATASETS",
    "engine_factory", "evaluate", "adainfer_gates", "raee_database",
    "tree_drafter", "price",
]

FIG14_DATASETS = ["mt_bench", "sum", "qa", "alpaca", "gsm8k", "humaneval", "mmlu", "csqa"]
FIG16_DATASETS = ["alpaca", "gsm8k", "humaneval", "mt_bench", "qa", "sum"]
TABLE4_DATASETS = ["mmlu", "csqa", "sst2", "gsm8k", "sum", "mt_bench", "alpaca"]


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs."""

    name: str
    n_items: int            # items per dataset
    gen_tokens: int         # free-running tokens per throughput measurement
    train_prompts: int      # predictor-training prompts
    train_tokens: int       # tokens per training prompt
    predictor_hidden: int
    epochs: int


SCALES: Dict[str, Scale] = {
    "small": Scale("small", n_items=8, gen_tokens=120, train_prompts=6,
                   train_tokens=30, predictor_hidden=128, epochs=10),
    "medium": Scale("medium", n_items=16, gen_tokens=200, train_prompts=8,
                    train_tokens=40, predictor_hidden=256, epochs=12),
    "full": Scale("full", n_items=40, gen_tokens=256, train_prompts=10,
                  train_tokens=40, predictor_hidden=512, epochs=15),
}


def get_scale(scale: str | Scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise KeyError(f"unknown scale {scale!r}; known: {known}") from None


def rig_for(model_name: str, dataset: Optional[str], scale: Scale,
            flavor: str = "dense", seed: int = 0) -> Rig:
    spec = get_dataset(dataset) if dataset else None
    return build_rig(
        model_name, spec, flavor=flavor, seed=seed,
        train_prompts=scale.train_prompts, train_tokens=scale.train_tokens,
        epochs=scale.epochs, predictor_hidden=scale.predictor_hidden,
    )


# -- auxiliary trained assets (cached per process) ---------------------------
_ADAINFER_CACHE: Dict[Tuple, Dict] = {}
_RAEE_CACHE: Dict[Tuple, object] = {}


def adainfer_gates(rig: Rig, scale: Scale, seed: int = 0) -> Dict:
    key = (rig.model_name, rig.flavor, scale.name, seed)
    if key not in _ADAINFER_CACHE:
        prompts = generate_prompts(max(scale.train_prompts // 2, 3),
                                   rig.model.vocab_size, seed=seed + 31)
        _ADAINFER_CACHE[key] = train_adainfer_gates(
            rig.fresh_model(), prompts, tokens_per_prompt=scale.train_tokens, seed=seed,
        )
    return _ADAINFER_CACHE[key]


def raee_database(rig: Rig, scale: Scale, seed: int = 0):
    key = (rig.model_name, rig.flavor, scale.name, seed)
    if key not in _RAEE_CACHE:
        prompts = generate_prompts(max(scale.train_prompts // 2, 3),
                                   rig.model.vocab_size, seed=seed + 47)
        _RAEE_CACHE[key] = build_raee_database(
            rig.fresh_model(), prompts, tokens_per_prompt=scale.train_tokens,
        )
    return _RAEE_CACHE[key]


def tree_drafter(rig: Rig, depth: int = 4) -> TreeDrafter:
    return TreeDrafter(rig.model.oracle, depth=depth, top_branches=4,
                       level_hit_rate=rig.model.profile.tree_level_hit_rate)


def engine_factory(kind: str, rig: Rig, scale: Scale, seed: int = 0) -> Callable[[], object]:
    """Factory of fresh engines over ``rig``'s model semantics.

    Kinds: ``dense``, ``specee`` (T1+T2), ``specee_t1`` (all-layer
    predictors), ``adainfer``, ``raee``, ``eagle``, ``specee_eagle``.
    """
    if kind == "dense":
        return lambda: DenseEngine(rig.fresh_model())
    if kind == "specee":
        return lambda: rig.specee_engine("two_level")
    if kind == "specee_t1":
        return lambda: rig.specee_engine("all")
    if kind == "adainfer":
        gates = adainfer_gates(rig, scale, seed)
        return lambda: AdaInferEngine(rig.fresh_model(), gates)
    if kind == "raee":
        database = raee_database(rig, scale, seed)
        return lambda: RAEEEngine(rig.fresh_model(), database)
    if kind == "eagle":
        return lambda: EagleEngine(rig.fresh_model(), tree_drafter(rig))
    if kind == "specee_eagle":
        return lambda: SpecEESpeculativeEngine(
            rig.fresh_model(), tree_drafter(rig), rig.bank, SpecEEConfig(),
        )
    raise ValueError(f"unknown engine kind {kind!r}")


def evaluate(kind: str, rig: Rig, dataset: str, scale: Scale, seed: int = 0) -> EvalRun:
    """Run engine ``kind`` over the dataset's items."""
    spec = get_dataset(dataset)
    items = make_items(spec, rig.model.oracle, rig.model_name,
                       flavor=rig.flavor, n_items=scale.n_items, seed=seed)
    factory = engine_factory(kind, rig, scale, seed)
    return run_items(factory, spec, items, engine_name=kind,
                     n_layers=rig.model.n_layers)


def throughput_run(kind: str, rig: Rig, scale: Scale, seed: int = 0) -> EvalRun:
    """Free-running decode over several prompts (throughput measurements)."""
    import numpy as np

    factory = engine_factory(kind, rig, scale, seed)
    run = EvalRun(dataset="freerun", engine=kind)
    exits: list = []
    n_prompts = 3
    for j in range(n_prompts):
        engine = factory()
        result = engine.generate([5 + seed + 13 * j, 9 + j, 2], scale.gen_tokens // n_prompts)
        run.ledger.merge(result.ledger)
        exits.extend(getattr(result, "exit_layers", []))
    if exits:
        run.avg_layers = float(np.mean(np.asarray(exits) + 1))
    return run


def price(run: EvalRun, model_name: str, device: str, framework: str,
          cpu_device: Optional[str] = None) -> PricedRun:
    return priced_run(run, get_model_spec(model_name), device, framework,
                      cpu_device=cpu_device)
