"""One module per paper artifact (table/figure) — see DESIGN.md §3.

Every module exposes ``run(scale="small", seed=0) -> ExperimentResult``.
``scale="small"`` keeps test runtime low; ``scale="full"`` is what the
benchmarks run and what EXPERIMENTS.md records.
"""

from repro.experiments import (
    fig01_layer_share,
    fig01_pareto,
    fig05_probability_shift,
    fig06_feature_necessity,
    fig07_forward_layers,
    fig08_dse,
    fig10_distribution,
    fig11_context_similarity,
    fig14_cloud_ar,
    fig15_cloud_spec,
    fig16_pc,
    fig17_memory,
    fig18_training_ratio,
    fig19_ablation,
    sec73_energy,
    sec74_overhead,
    table01_related,
    table02_03_configs,
    table04_accuracy,
)

REGISTRY = {
    "fig01_pareto": fig01_pareto,
    "fig01_layer_share": fig01_layer_share,
    "fig05_probability_shift": fig05_probability_shift,
    "fig06_feature_necessity": fig06_feature_necessity,
    "fig07_forward_layers": fig07_forward_layers,
    "fig08_dse": fig08_dse,
    "fig10_distribution": fig10_distribution,
    "fig11_context_similarity": fig11_context_similarity,
    "fig14_cloud_ar": fig14_cloud_ar,
    "fig15_cloud_spec": fig15_cloud_spec,
    "fig16_pc": fig16_pc,
    "fig17_memory": fig17_memory,
    "fig18_training_ratio": fig18_training_ratio,
    "fig19_ablation": fig19_ablation,
    "table01_related": table01_related,
    "table02_03_configs": table02_03_configs,
    "table04_accuracy": table04_accuracy,
    "sec73_energy": sec73_energy,
    "sec74_overhead": sec74_overhead,
}

__all__ = ["REGISTRY"] + sorted(REGISTRY)
