"""Figure 7: actual vs theoretical average forward layers.

The ideal early-exit engine exits exactly at each token's earliest possible
depth.  Per dataset we compare SpecEE's measured average forward layers to
the theoretical average (saturation depth on draft hits, full depth on
misses) and report the normalized closeness — the paper's SpecEE stays at
93-99% while AdaInfer lands far lower (62-75%) because its unverified exits
scatter both above and below the optimum.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.eval.metrics import normalized_layers
from repro.eval.reporting import ExperimentResult
from repro.experiments.common import TABLE4_DATASETS, evaluate, get_scale, rig_for

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    models = ["llama2-7b", "llama2-13b"] if sc.name != "small" else ["llama2-7b"]
    datasets = TABLE4_DATASETS if sc.name != "small" else ["mmlu", "gsm8k", "alpaca"]
    result = ExperimentResult(
        experiment="fig07_forward_layers",
        title="Actual vs theoretical average forward layers (Fig. 7)",
    )
    for model_name in models:
        rig = rig_for(model_name, None, sc, seed=seed)
        rows: List[List[object]] = []
        norm_specee: List[float] = []
        norm_adainfer: List[float] = []
        for dataset in datasets:
            specee = evaluate("specee", rig, dataset, sc, seed)
            adainfer = evaluate("adainfer", rig, dataset, sc, seed)
            n_spec = normalized_layers(specee.theoretical_layers, specee.avg_layers)
            # AdaInfer shares the same theoretical optimum; its normalized
            # score uses |log-ratio| distance folded to <=100%, penalising
            # both too-early and too-late exits.
            ratio = adainfer.avg_layers / specee.theoretical_layers
            n_ada = 100.0 * min(ratio, 1.0 / ratio)
            norm_specee.append(n_spec)
            norm_adainfer.append(n_ada)
            rows.append([dataset, specee.theoretical_layers, specee.avg_layers,
                         n_spec, adainfer.avg_layers, n_ada])
        result.add_table(
            f"{model_name}: forward layers",
            ["dataset", "theoretical", "SpecEE actual", "SpecEE norm %",
             "AdaInfer actual", "AdaInfer norm %"], rows,
        )
        result.headline[f"specee_norm_{model_name}"] = float(np.mean(norm_specee))
        result.headline[f"adainfer_norm_{model_name}"] = float(np.mean(norm_adainfer))
    result.notes.append("paper anchors: SpecEE 93.7-99.7%, AdaInfer 62-76%")
    return result
