"""Figure 15: speculative decoding — EAGLE vs SpecEE+EAGLE on A100.

The paper reports 1.05x (Llama2-7B) and 1.06x (Llama2-13B) average speedup
of SpecEE+EAGLE over EAGLE, with throughput around 120 tokens/s.
"""

from __future__ import annotations

from typing import List

from repro.eval.reporting import ExperimentResult
from repro.experiments.common import FIG14_DATASETS, get_scale, rig_for, price
from repro.experiments.common import engine_factory
from repro.eval.harness import EvalRun
from repro.utils.mathx import geometric_mean

__all__ = ["run"]


def _spec_run(kind: str, rig, sc, dataset_seed: int) -> EvalRun:
    """Free-running speculative decode over several prompts (tree engines
    are throughput-only; multiple prompts bound the influence of any one
    degenerate context)."""
    run = EvalRun(dataset=str(dataset_seed), engine=kind)
    n_prompts = 3
    for j in range(n_prompts):
        engine = engine_factory(kind, rig, sc)()
        prompt = [3 + dataset_seed + 17 * j, 7 + j, 11]
        result = engine.generate(prompt, sc.gen_tokens // n_prompts)
        run.ledger.merge(result.ledger)
    return run


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    models = ["llama2-7b", "llama2-13b"] if sc.name != "small" else ["llama2-7b"]
    datasets = FIG14_DATASETS if sc.name != "small" else FIG14_DATASETS[:3]
    result = ExperimentResult(
        experiment="fig15_cloud_spec",
        title="Speculative decoding: EAGLE vs SpecEE+EAGLE @ A100 (Fig. 15)",
    )
    for model_name in models:
        rig = rig_for(model_name, None, sc, seed=seed)
        rows: List[List[object]] = []
        speedups: List[float] = []
        for i, dataset in enumerate(datasets):
            base = _spec_run("eagle", rig, sc, seed + i)
            fast = _spec_run("specee_eagle", rig, sc, seed + i)
            base_tps = price(base, model_name, "a100-80g", "hf").tokens_per_second
            fast_tps = price(fast, model_name, "a100-80g", "hf").tokens_per_second
            ratio = fast_tps / base_tps
            speedups.append(ratio)
            rows.append([dataset, base_tps, fast_tps, ratio])
        gm = geometric_mean(speedups)
        rows.append(["Geo.Mean",
                     geometric_mean([r[1] for r in rows]),
                     geometric_mean([r[2] for r in rows]), gm])
        result.add_table(
            f"{model_name} @ a100-80g",
            ["dataset", "EAGLE tok/s", "SpecEE+EAGLE tok/s", "speedup"], rows,
        )
        result.headline[f"speedup_eagle_{model_name}"] = gm
    result.notes.append("paper anchors: 1.05x (7B), 1.06x (13B)")
    return result
