"""Figure 17: GPU memory usage during generation.

HuggingFace vs SpecEE memory timelines for Llama2-7B and -13B.  SpecEE's
overhead over the dense baseline is the EAGLE-style draft model (~0.9 GB for
7B, ~1.4 GB for 13B); the 32 predictors total ~416 KB — negligible
(Sec. 7.4.2).
"""

from __future__ import annotations

from repro.config import get_model_spec
from repro.core.predictor import PredictorBank
from repro.eval.reporting import ExperimentResult
from repro.hardware.memory import MemoryModel

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig17_memory",
        title="GPU memory usage vs generated tokens (Fig. 17)",
    )
    for model_name, max_tokens in (("llama2-7b", 3000), ("llama2-13b", 2400)):
        spec = get_model_spec(model_name)
        bank = PredictorBank(spec.n_layers, feature_dim=12, hidden_dim=512, depth=2)
        base = MemoryModel(spec)
        specee = MemoryModel(spec, use_draft=True, predictor_params=bank.total_params)
        base_tl = base.timeline(max_tokens)
        specee_tl = specee.timeline(max_tokens)
        result.add_series(
            f"memory (GiB) vs tokens ({model_name})", "tokens", base_tl.tokens,
            {"HuggingFace": base_tl.gib, "SpecEE": specee_tl.gib},
        )
        overhead = specee.overhead_vs(base)
        result.headline[f"overhead_gib_{model_name}"] = overhead
        result.headline[f"draft_gib_{model_name}"] = specee.draft_gib
        result.headline[f"predictors_kib_{model_name}"] = specee.predictors_kib
    result.notes.append("paper anchors: +0.9 GB (7B) and +1.4 GB (13B) from the "
                        "draft model; all predictors ~416 KB for 7B")
    return result
