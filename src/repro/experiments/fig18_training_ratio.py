"""Figure 18: predictor accuracy vs training-set ratio.

Training the per-layer predictors on a sweep of data fractions: the paper
finds ~2% of the ~16K-sample corpus already reaches the accuracy plateau
(Sec. 7.4.4), making the offline training cost minutes, not hours.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.predictor import PredictorBank
from repro.core.predictor_training import harvest_training_corpus, train_predictor_bank
from repro.data.corpus import generate_prompts
from repro.eval.reporting import ExperimentResult
from repro.experiments.common import get_scale, rig_for

__all__ = ["run"]

_RATIOS_SMALL = [0.05, 0.20, 0.50, 1.0]
_RATIOS_FULL = [0.001, 0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.0]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    models = ["llama2-7b", "llama2-13b"] if sc.name == "full" else ["llama2-7b"]
    ratios = _RATIOS_FULL if sc.name == "full" else _RATIOS_SMALL
    result = ExperimentResult(
        experiment="fig18_training_ratio",
        title="Predictor accuracy vs training-set ratio (Fig. 18)",
    )
    for model_name in models:
        rig = rig_for(model_name, None, sc, seed=seed)
        model = rig.fresh_model()
        prompts = generate_prompts(sc.train_prompts, model.vocab_size, seed=seed + 5)
        corpus = harvest_training_corpus(model, rig.speculator, prompts,
                                         tokens_per_prompt=sc.train_tokens)
        train, test = corpus.split(0.25, seed=seed)
        accs: List[float] = []
        for ratio in ratios:
            bank = PredictorBank(model.n_layers, feature_dim=12,
                                 hidden_dim=sc.predictor_hidden, depth=2, seed=seed)
            metrics = train_predictor_bank(bank, train.subsample(ratio, seed=seed),
                                           epochs=sc.epochs, seed=seed,
                                           test_corpus=test)
            accs.append(100 * metrics.get("test_accuracy", float("nan")))
        result.add_series(f"accuracy vs training ratio ({model_name})",
                          "ratio", ratios, {"accuracy %": accs})
        low_ratio = 0.02 if 0.02 in ratios else ratios[0]
        result.headline[f"acc_at_low_ratio_{model_name}"] = accs[ratios.index(low_ratio)]
        result.headline[f"acc_at_full_{model_name}"] = accs[-1]
        # Plateau: the curve must have flattened by the penultimate ratio.
        result.headline[f"plateau_gap_{model_name}"] = accs[-1] - accs[-2]
        result.headline[f"corpus_samples_{model_name}"] = float(corpus.n_samples)
    result.notes.append("paper: ~2% of ~16K samples reaches the plateau")
    return result
