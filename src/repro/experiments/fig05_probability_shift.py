"""Figure 5(a): the probability-shift insight.

Layer-resolved probability curves of the speculative tokens: when the final
result is inside the reduced (speculative) space, its probability rises
sharply at a specific layer while others stay flat; when it is not, every
speculative token's probability stays low.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.eval.reporting import ExperimentResult
from repro.experiments.common import get_scale, rig_for

__all__ = ["run"]


def _find_case(rig, want_hit: bool, seed: int):
    """Locate a decode step whose draft hits (or misses) the target."""
    model = rig.fresh_model()
    state = model.start([7 + seed, 3, 11])
    for _ in range(200):
        hit = rig.speculator.is_hit(state.context)
        spec_tokens = rig.speculator.propose(state.context)
        model.begin_step(state)
        plan = state.plan
        good_depth = 6 <= plan.saturation_layer <= model.n_layers - 4
        if hit == want_hit and good_depth and plan.transient is None:
            traj = model.probability_trajectory(state, list(spec_tokens))
            return spec_tokens, plan, traj
        hidden = model.run_to_layer(state, model.n_layers - 1)
        model.commit(state, model.greedy_token(hidden), model.n_layers - 1)
    raise RuntimeError("no suitable case found")


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    rig = rig_for("llama2-7b", None, sc, seed=seed)
    result = ExperimentResult(
        experiment="fig05_probability_shift",
        title="Probability shift of speculative tokens across layers (Fig. 5a)",
    )
    for want_hit, label in ((True, "successful (result in reduced space)"),
                            (False, "unsuccessful (result outside)")):
        spec_tokens, plan, traj = _find_case(rig, want_hit, seed)
        series = {f"token_{i}": traj[:, i] for i in range(traj.shape[1])}
        result.add_series(label, "layer", list(range(traj.shape[0])), series)
        peak = float(np.max(traj[-1]))
        if want_hit:
            result.headline["hit_final_top_prob"] = peak
            # The target's probability must jump within +/-2 layers of L*.
            target_col = list(spec_tokens).index(plan.target)
            jump_layer = int(np.argmax(np.diff(traj[:, target_col])))
            result.headline["shift_layer_error"] = float(
                abs(jump_layer - plan.saturation_layer)
            )
        else:
            result.headline["miss_final_top_prob"] = peak
    result.notes.append("paper: sharp single-layer rise on hits, flat-low curves on misses")
    return result
