"""Figure 14: cloud autoregressive decoding — speedup and throughput.

Llama2-7B on RTX 4090 and A100, Llama2-13B on A100, Llama2-70B on 4xA100;
engines HF, SpecEE+HF, vLLM, SpecEE+vLLM, AWQ, AWQ+SpecEE over the eight
datasets of Sec. 7.1.3, with the Geo.Mean column the paper reports.

Paper anchors: average SpecEE speedups of 1.43x/1.12x/1.13x (7B @ 4090 over
HF/vLLM/AWQ), 1.27x/1.12x/1.09x (7B @ A100), 1.43x/1.14x/1.12x (13B) and
1.23x/1.12x/1.12x (70B).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.eval.reporting import ExperimentResult
from repro.experiments.common import (
    FIG14_DATASETS,
    evaluate,
    get_scale,
    price,
    rig_for,
)
from repro.utils.mathx import geometric_mean

__all__ = ["run", "CONFIGS"]

# (model, device, datasets restricted at small scale)
CONFIGS: List[Tuple[str, str]] = [
    ("llama2-7b", "rtx4090"),
    ("llama2-7b", "a100-80g"),
    ("llama2-13b", "a100-80g"),
    ("llama2-70b", "4xa100-80g"),
]

_PAIRS = [  # (baseline framework, label), SpecEE is priced on the same stack
    ("hf", "HF"),
    ("vllm", "vLLM"),
    ("awq", "AWQ"),
]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    datasets = FIG14_DATASETS if sc.name != "small" else FIG14_DATASETS[:4]
    configs = CONFIGS if sc.name != "small" else CONFIGS[:2]
    result = ExperimentResult(
        experiment="fig14_cloud_ar",
        title="Cloud autoregressive decoding: speedup & throughput (Fig. 14)",
    )
    for model_name, device in configs:
        rows = []
        per_stack_speedups: Dict[str, List[float]] = {label: [] for _, label in _PAIRS}
        rigs = {
            "dense": rig_for(model_name, None, sc, flavor="dense", seed=seed),
            "awq": rig_for(model_name, None, sc, flavor="awq", seed=seed),
        }
        for dataset in datasets:
            row: List[object] = [dataset]
            for framework, label in _PAIRS:
                flavor = "awq" if framework == "awq" else "dense"
                rig = rigs[flavor]
                base = evaluate("dense", rig, dataset, sc, seed)
                fast = evaluate("specee", rig, dataset, sc, seed)
                base_tps = price(base, model_name, device, framework).tokens_per_second
                fast_tps = price(fast, model_name, device, framework).tokens_per_second
                speedup = fast_tps / base_tps
                per_stack_speedups[label].append(speedup)
                row.extend([base_tps, fast_tps, speedup])
            rows.append(row)
        geo_row: List[object] = ["Geo.Mean"]
        for _, label in _PAIRS:
            speedups = per_stack_speedups[label]
            base_gm = geometric_mean([r[1 + 3 * i] for i, (_, l2) in enumerate(_PAIRS)
                                      if l2 == label for r in rows])
            fast_gm = geometric_mean([r[2 + 3 * i] for i, (_, l2) in enumerate(_PAIRS)
                                      if l2 == label for r in rows])
            gm = geometric_mean(speedups)
            geo_row.extend([base_gm, fast_gm, gm])
            result.headline[f"speedup_{label.lower()}_{model_name}_{device}"] = gm
        rows.append(geo_row)
        headers = ["dataset"]
        for _, label in _PAIRS:
            headers.extend([f"{label} tok/s", f"SpecEE+{label} tok/s", "speedup"])
        result.add_table(f"{model_name} @ {device}", headers, rows)
    result.notes.append(
        "paper anchors: 1.43/1.12/1.13 (7B@4090), 1.27/1.12/1.09 (7B@A100), "
        "1.43/1.14/1.12 (13B@A100), 1.23/1.12/1.12 (70B@4xA100)"
    )
    return result
