"""Figure 1(a): the accuracy-speedup Pareto frontier.

Normalized accuracy (vs dense) and speedup (vs HuggingFace) for the engine
zoo on Llama2-7B @ RTX 4090: HF, FlashAttention, vLLM, AWQ, pruning
(SparseGPT stand-in), EAGLE, SpecEE+HF/vLLM/AWQ/EAGLE.  The paper's claim:
SpecEE points push the frontier forward (higher speedup at iso-accuracy).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.baselines import DenseEngine
from repro.baselines.prune import PrunedModelWrapper
from repro.data import get_dataset, make_items
from repro.eval import run_items
from repro.eval.harness import EvalRun
from repro.eval.reporting import ExperimentResult
from repro.experiments.common import engine_factory, evaluate, get_scale, price, rig_for
from repro.utils.mathx import geometric_mean

__all__ = ["run"]

_ACC_DATASET = "mmlu"
_TPS_DATASET = "mt_bench"
_MODEL = "llama2-7b"
_DEVICE = "rtx4090"


def _pruned_run(rig, spec, items, sc) -> EvalRun:
    factory = lambda: DenseEngine(PrunedModelWrapper(rig.fresh_model()))
    return run_items(factory, spec, items, engine_name="pruned",
                     n_layers=rig.model.n_layers)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    result = ExperimentResult(
        experiment="fig01_pareto",
        title="Accuracy vs speedup Pareto frontier, Llama2-7B @ RTX 4090 (Fig. 1a)",
    )
    rig = rig_for(_MODEL, None, sc, seed=seed)
    rig_awq = rig_for(_MODEL, None, sc, flavor="awq", seed=seed)
    acc_spec = get_dataset(_ACC_DATASET)
    acc_items = make_items(acc_spec, rig.model.oracle, _MODEL,
                           n_items=max(sc.n_items, 16), seed=seed)
    acc_items_awq = make_items(acc_spec, rig_awq.model.oracle, _MODEL, flavor="awq",
                               n_items=max(sc.n_items, 16), seed=seed)

    # Accuracy per engine point.
    def acc_of(kind: str, rig_, items) -> float:
        factory = engine_factory(kind, rig_, sc, seed)
        return run_items(factory, acc_spec, items, n_layers=rig_.model.n_layers).accuracy

    dense_acc = acc_of("dense", rig, acc_items)
    points: Dict[str, Tuple[float, float]] = {}  # name -> (norm accuracy, speedup)

    # Throughput per engine point, all priced on the same decode workload.
    base_run = evaluate("dense", rig, _TPS_DATASET, sc, seed)
    specee_run = evaluate("specee", rig, _TPS_DATASET, sc, seed)
    base_awq_run = evaluate("dense", rig_awq, _TPS_DATASET, sc, seed)
    specee_awq_run = evaluate("specee", rig_awq, _TPS_DATASET, sc, seed)
    hf_tps = price(base_run, _MODEL, _DEVICE, "hf").tokens_per_second

    def add_point(name: str, run_, framework: str, accuracy: float) -> None:
        tps = price(run_, _MODEL, _DEVICE, framework).tokens_per_second
        points[name] = (accuracy / dense_acc, tps / hf_tps)

    add_point("HF", base_run, "hf", dense_acc)
    add_point("FlashAttention", base_run, "flashattention", dense_acc)
    add_point("vLLM", base_run, "vllm", dense_acc)
    add_point("AWQ", base_awq_run, "awq", acc_of("dense", rig_awq, acc_items_awq))
    add_point("SpecEE+HF", specee_run, "hf", acc_of("specee", rig, acc_items))
    add_point("SpecEE+vLLM", specee_run, "vllm", points["SpecEE+HF"][0] * dense_acc)
    add_point("AWQ+SpecEE", specee_awq_run, "awq", acc_of("specee", rig_awq, acc_items_awq))

    # Pruning point (SparseGPT stand-in).
    pruned = _pruned_run(rig, acc_spec, acc_items, sc)
    pruned_tps_run = _pruned_run(rig, get_dataset(_TPS_DATASET),
                                 make_items(get_dataset(_TPS_DATASET), rig.model.oracle,
                                            _MODEL, n_items=sc.n_items, seed=seed), sc)
    pruned_framework_tps = price(pruned_tps_run, _MODEL, _DEVICE, "hf").tokens_per_second
    points["SparseGPT"] = (pruned.accuracy / dense_acc,
                           1.45 * pruned_framework_tps / hf_tps)  # 50% sparsity speedup

    # EAGLE and SpecEE+EAGLE points (free-running throughput).
    from repro.experiments.fig15_cloud_spec import _spec_run

    eagle_tps = price(_spec_run("eagle", rig, sc, seed), _MODEL, _DEVICE, "hf").tokens_per_second
    se_tps = price(_spec_run("specee_eagle", rig, sc, seed), _MODEL, _DEVICE, "hf").tokens_per_second
    points["EAGLE"] = (1.0, eagle_tps / hf_tps)
    points["SpecEE+EAGLE"] = (points["SpecEE+HF"][0], se_tps / hf_tps)

    rows: List[List[object]] = [
        [name, acc, spd] for name, (acc, spd) in sorted(points.items())
    ]
    result.add_table("pareto points", ["engine", "norm accuracy", "speedup vs HF"], rows)
    result.headline["specee_hf_speedup"] = points["SpecEE+HF"][1]
    result.headline["specee_eagle_speedup"] = points["SpecEE+EAGLE"][1]
    result.headline["specee_norm_accuracy"] = points["SpecEE+HF"][0]
    # Frontier property: SpecEE+EAGLE dominates every >=99% accuracy baseline.
    best_baseline = max(spd for name, (acc, spd) in points.items()
                        if "SpecEE" not in name and acc >= 0.99)
    result.headline["frontier_push"] = points["SpecEE+EAGLE"][1] / best_baseline
    result.notes.append("paper: SpecEE points extend the frontier past EAGLE/vLLM/AWQ")
    return result
