"""Table 1: measured characteristics of the early-exit family.

The paper's qualitative table (memory / prediction cost / training cost /
latency for AdaInfer, RAEE, MoD, D-LLM, SpecEE) is reproduced with measured
quantities where our implementations exist: per-token prediction latency
from priced ledgers, auxiliary memory from the memory model, and measured
throughput.  MoD and D-LLM (pretraining-based skip-layer methods we do not
train) keep their qualitative rows.
"""

from __future__ import annotations

from repro.config import get_model_spec
from repro.core.predictor import PredictorBank
from repro.eval.reporting import ExperimentResult
from repro.experiments.common import (
    evaluate,
    get_scale,
    price,
    raee_database,
    rig_for,
)
from repro.hardware.ledger import Event
from repro.hardware.memory import MemoryModel

__all__ = ["run"]

_GIB = 1024.0**3


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    result = ExperimentResult(
        experiment="table01_related",
        title="Early-exit family characteristics, measured (Table 1)",
    )
    rig = rig_for("llama2-7b", None, sc, seed=seed)
    spec_model = get_model_spec("llama2-7b")
    bank = PredictorBank(spec_model.n_layers, feature_dim=12, hidden_dim=512, depth=2)
    db = raee_database(rig, sc, seed)
    # Scale the toy database footprint to real dimensions: entries x hidden
    # fp16 (what RAEE stores per key), plus metadata.
    raee_real_bytes = len(db) * spec_model.hidden_dim * 2.0 * 200  # 200x corpus scale

    rows = []
    runs = {}
    for label, kind in (("AdaInfer", "adainfer"), ("RAEE", "raee"), ("SpecEE", "specee")):
        run_ = evaluate(kind, rig, "mt_bench", sc, seed)
        priced = price(run_, "llama2-7b", "a100-80g", "hf")
        runs[label] = (run_, priced)
        predict_share = sum(priced.latency.share(k) for k in (
            Event.PREDICTOR, Event.SVM_PREDICT, Event.FEATURE_STATS,
            Event.RETRIEVAL, Event.LM_HEAD_SLICE,
        ) if priced.latency.share(k) == priced.latency.share(k))
        # Per-layer full-head projections are AdaInfer's hidden prediction
        # cost; count them too when they exceed one per token.
        full_heads_per_token = priced.run.ledger.calls(Event.LM_HEAD_FULL) / max(
            priced.run.ledger.tokens_generated, 1)
        if full_heads_per_token > 1.5:
            predict_share += priced.latency.share(Event.LM_HEAD_FULL) * (
                1 - 1 / full_heads_per_token)
        if label == "AdaInfer":
            aux_gib = 0.001  # per-layer SVMs
        elif label == "RAEE":
            aux_gib = raee_real_bytes / _GIB
        else:
            aux_gib = MemoryModel(spec_model, use_draft=True,
                                  predictor_params=bank.total_params).draft_gib
        rows.append([label, aux_gib, 100 * predict_share,
                     "low" if label != "RAEE" else "none",
                     priced.tokens_per_second])
        result.headline[f"predict_share_{label.lower()}"] = 100 * predict_share
        result.headline[f"aux_memory_gib_{label.lower()}"] = aux_gib
        result.headline[f"tps_{label.lower()}"] = priced.tokens_per_second
    rows.append(["MoD (qualitative)", 0.0, 5.0, "high (pretraining)", float("nan")])
    rows.append(["D-LLM (qualitative)", 0.0, 5.0, "high (fine-tuning)", float("nan")])
    result.add_table(
        "measured characteristics (Llama2-7B @ A100, MT-Bench)",
        ["method", "aux memory GiB", "prediction share %", "training cost", "tokens/s"],
        rows,
    )
    result.notes.append("paper: AdaInfer/RAEE = heavy prediction & high latency; "
                        "SpecEE = low memory, light prediction, low latency")
    return result
