"""Figure 8: design-space exploration of the predictor.

Sweep the MLP depth (hidden dim fixed at 512) and the hidden dimension
(depth fixed at 2): held-out accuracy and modelled execution time per
configuration.  The paper's optimum — and ours — is the 2-layer, 512-hidden
MLP: deeper/wider buys no accuracy but costs latency.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.config import get_model_spec
from repro.core.predictor import ExitPredictor
from repro.core.predictor_training import harvest_training_corpus
from repro.data.corpus import generate_prompts
from repro.eval.reporting import ExperimentResult
from repro.experiments.common import get_scale, rig_for
from repro.hardware.latency import LatencyModel

__all__ = ["run"]


def _pooled(corpus, n_layers: int) -> Tuple[np.ndarray, np.ndarray]:
    xs, ys = [], []
    for layer in range(4, n_layers - 2):
        x, y = corpus.layer_arrays(layer)
        if len(y):
            xs.append(x)
            ys.append(y)
    return np.concatenate(xs), np.concatenate(ys)


def _predictor_time_ms(hidden: int, depth: int) -> float:
    """Modelled execution time on A100 (depth extra layers add GEMVs)."""
    model = LatencyModel(get_model_spec("llama2-7b"), "a100-80g", "hf")
    base = model.predictor_time(feature_dim=12, hidden=hidden)
    extra = (depth - 1) * model.predictor_time(feature_dim=hidden, hidden=hidden)
    return 1000.0 * (base + max(extra, 0.0))


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    rig = rig_for("llama2-7b", None, sc, seed=seed)
    model = rig.fresh_model()
    prompts = generate_prompts(sc.train_prompts, model.vocab_size, seed=seed + 77)
    corpus = harvest_training_corpus(model, rig.speculator, prompts,
                                     tokens_per_prompt=sc.train_tokens)
    train, test = corpus.split(0.25, seed=seed)
    x_train, y_train = _pooled(train, model.n_layers)
    x_test, y_test = _pooled(test, model.n_layers)

    def acc_for(hidden: int, depth: int) -> float:
        clf = ExitPredictor(12, hidden_dim=hidden, depth=depth, seed=seed)
        clf.fit(x_train, y_train, epochs=sc.epochs, seed=seed)
        probs = clf.mlp.forward(x_test)
        return float(np.mean((np.asarray(probs) >= 0.5) == (y_test > 0.5)))

    result = ExperimentResult(
        experiment="fig08_dse",
        title="Predictor design-space exploration (Fig. 8)",
    )
    depths = [1, 2, 3, 4]
    depth_rows: List[List[object]] = []
    for depth in depths:
        acc = acc_for(512 if sc.name != "small" else sc.predictor_hidden, depth)
        depth_rows.append([depth, 100 * acc, _predictor_time_ms(512, depth)])
    result.add_table("(a) layers sweep @ hidden 512",
                     ["layers", "accuracy %", "time ms"], depth_rows)

    hiddens = [64, 128, 256, 512, 1024]
    hidden_rows: List[List[object]] = []
    for hidden in hiddens:
        acc = acc_for(hidden, 2)
        hidden_rows.append([hidden, 100 * acc, _predictor_time_ms(hidden, 2)])
    result.add_table("(b) hidden-dim sweep @ 2 layers",
                     ["hidden", "accuracy %", "time ms"], hidden_rows)

    acc_2x512 = next(r[1] for r in hidden_rows if r[0] == 512)
    best_acc = max(r[1] for r in hidden_rows + depth_rows)
    result.headline["acc_2layer_512"] = acc_2x512
    result.headline["optimality_gap"] = best_acc - acc_2x512
    result.headline["time_2layer_512_ms"] = _predictor_time_ms(512, 2)
    result.notes.append("paper optimum: 2 layers x 512 hidden, ~93.5% accuracy")
    return result
