"""Figure 11: context similarity of exit-layer positions.

For N = 1..8, the probability that the current token's exit layer lands
within +/-2 layers of one of the last N tokens' exits (actual hit ratio),
the size of the union set those exits induce (average layers), and the
theoretical hit ratio if exits were independent (union size / total layers).
Paper anchors: ~80% actual at N = 5 vs ~31.8% theoretical, union ~10.2.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.eval.reporting import ExperimentResult
from repro.experiments.common import evaluate, get_scale, rig_for
from repro.utils.ring import CircularQueue

__all__ = ["run", "similarity_stats"]


def similarity_stats(exits: List[int], n_layers: int, window: int, vicinity: int = 2):
    """(actual hit ratio, avg union-set size) for the last-``window`` rule."""
    hits = 0
    total = 0
    union_sizes: List[int] = []
    recent = CircularQueue(window)
    for e in exits:
        if len(recent):
            union = set()
            for r in recent:
                union.update(range(max(0, r - vicinity), min(n_layers, r + vicinity + 1)))
            union_sizes.append(len(union))
            total += 1
            if e in union:
                hits += 1
        if e < n_layers - 1:  # only true early exits enter the queue
            recent.push(e)
    actual = hits / total if total else float("nan")
    avg_union = float(np.mean(union_sizes)) if union_sizes else float("nan")
    return actual, avg_union


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    rig = rig_for("llama2-7b", None, sc, seed=seed)
    run_ = evaluate("specee_t1", rig, "mt_bench", sc, seed)
    exits = run_.exit_layers
    n_layers = rig.model.n_layers

    result = ExperimentResult(
        experiment="fig11_context_similarity",
        title="Context similarity of exit layers (Fig. 11)",
    )
    ns = list(range(1, 9))
    actuals: List[float] = []
    unions: List[float] = []
    theoreticals: List[float] = []
    for n in ns:
        actual, avg_union = similarity_stats(exits, n_layers, window=n)
        actuals.append(100 * actual)
        unions.append(avg_union)
        theoreticals.append(100 * avg_union / n_layers)
    result.add_series(
        "hit ratio and union size vs window N", "N",
        ns, {"actual hit %": actuals, "theoretical hit %": theoreticals,
             "avg union layers": unions},
    )
    result.headline["actual_hit_n5"] = actuals[4]
    result.headline["theoretical_hit_n5"] = theoreticals[4]
    result.headline["avg_union_n5"] = unions[4]
    result.headline["similarity_gap"] = actuals[4] - theoreticals[4]
    result.notes.append("paper anchors @ N=5: ~80% actual vs ~31.8% theoretical, "
                        "union ~10.2 layers")
    return result
