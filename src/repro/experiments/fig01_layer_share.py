"""Figure 1(b): decoder layers dominate end-to-end inference time.

For autoregressive (HF) and speculative (EAGLE) decoding on 7B/13B/70B, the
share of total latency spent inside decoder layers is 70-95% — the paper's
motivation for attacking layer count.
"""

from __future__ import annotations

from typing import List

from repro.eval.reporting import ExperimentResult
from repro.experiments.common import engine_factory, get_scale, price, rig_for
from repro.eval.harness import EvalRun
from repro.hardware.ledger import Event

__all__ = ["run"]


def _share(run: EvalRun, model_name: str, device: str) -> float:
    priced = price(run, model_name, device, "hf")
    layer_time = (priced.latency.per_event_s.get(Event.DECODER_LAYER, 0.0)
                  + priced.latency.per_event_s.get(Event.TREE_VERIFY_LAYER, 0.0)
                  + priced.latency.per_event_s.get(Event.PREFILL_LAYER, 0.0))
    return layer_time / priced.latency.total_s


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    models = ["llama2-7b", "llama2-13b", "llama2-70b"] if sc.name != "small" else ["llama2-7b", "llama2-13b"]
    result = ExperimentResult(
        experiment="fig01_layer_share",
        title="Decoder-layer share of end-to-end time (Fig. 1b)",
    )
    rows: List[List[object]] = []
    for model_name in models:
        device = "4xa100-80g" if model_name == "llama2-70b" else "a100-80g"
        rig = rig_for(model_name, None, sc, seed=seed)
        ar = EvalRun(dataset="freerun", engine="dense")
        ar.ledger.merge(engine_factory("dense", rig, sc)()
                        .generate([5, 9, 2], sc.gen_tokens).ledger)
        spec = EvalRun(dataset="freerun", engine="eagle")
        spec.ledger.merge(engine_factory("eagle", rig, sc)()
                          .generate([5, 9, 2], sc.gen_tokens).ledger)
        ar_share = _share(ar, model_name, device)
        spec_share = _share(spec, model_name, device)
        rows.append([model_name, 100 * ar_share, 100 * spec_share])
        result.headline[f"ar_share_{model_name}"] = 100 * ar_share
        result.headline[f"spec_share_{model_name}"] = 100 * spec_share
    result.add_table(
        "decoder-layer time share (%)",
        ["model", "autoregressive (HF)", "speculative (EAGLE)"], rows,
    )
    result.notes.append("paper: decoder layers account for 70-95% of end-to-end time")
    return result
