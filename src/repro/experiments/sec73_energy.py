"""Section 7.3.1: energy efficiency.

The predictor is memory-bound and leaves compute idle, so SpecEE lowers the
A100's average power while raising tokens/s — the paper measures 201 W ->
182 W (~10% reduction, ~1.57x energy efficiency) on MT-Bench with Llama2-7B.
Section 7.3.2's hardware insight (predictor power A100 ~142 W vs laptop
~85 W) is reported alongside.
"""

from __future__ import annotations

from repro.config import get_model_spec
from repro.eval.reporting import ExperimentResult
from repro.experiments.common import evaluate, get_scale, price, rig_for
from repro.hardware.devices import get_device
from repro.hardware.energy import EnergyModel
from repro.hardware.ledger import Event

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    result = ExperimentResult(
        experiment="sec73_energy",
        title="Energy efficiency of SpecEE vs dense (Sec. 7.3)",
    )
    rig = rig_for("llama2-7b", None, sc, seed=seed)
    device = get_device("a100-80g")
    energy = EnergyModel(device)

    dense = price(evaluate("dense", rig, "mt_bench", sc, seed),
                  "llama2-7b", "a100-80g", "hf")
    specee = price(evaluate("specee", rig, "mt_bench", sc, seed),
                   "llama2-7b", "a100-80g", "hf")
    dense_rep = energy.report(dense.latency)
    specee_rep = energy.report(specee.latency)

    efficiency_gain = specee_rep.tokens_per_joule / dense_rep.tokens_per_joule
    result.add_table(
        "average power and energy, Llama2-7B @ A100, MT-Bench",
        ["engine", "avg power W", "tokens/s", "J/token", "tokens/J"],
        [["dense (HF)", dense_rep.avg_power_w, dense.tokens_per_second,
          dense_rep.energy_per_token_j, dense_rep.tokens_per_joule],
         ["SpecEE", specee_rep.avg_power_w, specee.tokens_per_second,
          specee_rep.energy_per_token_j, specee_rep.tokens_per_joule]],
    )
    result.headline["dense_power_w"] = dense_rep.avg_power_w
    result.headline["specee_power_w"] = specee_rep.avg_power_w
    result.headline["power_reduction_pct"] = 100 * (
        1 - specee_rep.avg_power_w / dense_rep.avg_power_w
    )
    result.headline["energy_efficiency_x"] = efficiency_gain

    # Sec. 7.3.2 hardware insight: predictor power on A100 vs laptop GPU.
    laptop = EnergyModel(get_device("rtx4060-laptop"))
    result.headline["predictor_power_a100_w"] = energy.power_during(Event.PREDICTOR)
    result.headline["predictor_power_laptop_w"] = laptop.power_during(Event.PREDICTOR)
    result.notes.append("paper anchors: 201 W -> 182 W (~10%), ~1.57x energy "
                        "efficiency; predictor ~142 W on A100 vs ~85 W on laptop")
    return result
