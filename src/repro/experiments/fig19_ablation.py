"""Figure 19 + Fig. 2(d): the T1/T2/T3 ablation waterfall.

Llama2-7B on A100 with HuggingFace as base: HF -> +T1 (speculation-based
predictor, all layers) -> +T1+T2 (two-level scheduling) -> +T1+T2+T3
(speculative decoding with merged mapping).  Paper anchors: ~1.08x after T1,
~1.27x after T2, and 2.25x total (42.32 -> 95.21 tokens/s on MT-Bench).
"""

from __future__ import annotations

from typing import Dict, List

from repro.eval.harness import EvalRun
from repro.eval.reporting import ExperimentResult
from repro.experiments.common import (
    FIG14_DATASETS,
    engine_factory,
    evaluate,
    get_scale,
    price,
    rig_for,
)
from repro.utils.mathx import geometric_mean

__all__ = ["run"]

_STAGES = ["HF", "HF+T1", "HF+T1+T2", "HF+T1+T2+T3"]


def _tree_run(rig, sc, seed) -> EvalRun:
    run = EvalRun(dataset="freerun", engine="specee_eagle")
    for j in range(3):
        engine = engine_factory("specee_eagle", rig, sc)()
        result = engine.generate([5 + seed + 17 * j, 9 + j, 2], sc.gen_tokens // 3)
        run.ledger.merge(result.ledger)
    return run


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    datasets = FIG14_DATASETS if sc.name != "small" else FIG14_DATASETS[:3]
    result = ExperimentResult(
        experiment="fig19_ablation",
        title="Ablation of T1/T2/T3, Llama2-7B @ A100, HF base (Fig. 19 / Fig. 2d)",
    )
    rig = rig_for("llama2-7b", None, sc, seed=seed)
    per_stage: Dict[str, List[float]] = {s: [] for s in _STAGES}
    rows: List[List[object]] = []
    for i, dataset in enumerate(datasets):
        base = price(evaluate("dense", rig, dataset, sc, seed),
                     "llama2-7b", "a100-80g", "hf").tokens_per_second
        t1 = price(evaluate("specee_t1", rig, dataset, sc, seed),
                   "llama2-7b", "a100-80g", "hf").tokens_per_second
        t2 = price(evaluate("specee", rig, dataset, sc, seed),
                   "llama2-7b", "a100-80g", "hf").tokens_per_second
        t3 = price(_tree_run(rig, sc, seed + i),
                   "llama2-7b", "a100-80g", "hf").tokens_per_second
        for stage, tps in zip(_STAGES, (base, t1, t2, t3)):
            per_stage[stage].append(tps)
        rows.append([dataset, base, t1 / base, t2 / base, t3 / base])
    geo = {s: geometric_mean(v) for s, v in per_stage.items()}
    rows.append(["Geo.Mean", geo["HF"], geo["HF+T1"] / geo["HF"],
                 geo["HF+T1+T2"] / geo["HF"], geo["HF+T1+T2+T3"] / geo["HF"]])
    result.add_table(
        "speedup over HF per technique stage",
        ["dataset", "HF tok/s", "+T1", "+T1+T2", "+T1+T2+T3"], rows,
    )
    result.headline["speedup_t1"] = geo["HF+T1"] / geo["HF"]
    result.headline["speedup_t1_t2"] = geo["HF+T1+T2"] / geo["HF"]
    result.headline["speedup_total"] = geo["HF+T1+T2+T3"] / geo["HF"]
    result.headline["hf_tps"] = geo["HF"]
    result.headline["specee_tps"] = geo["HF+T1+T2+T3"]
    result.notes.append(
        "paper anchors: +T1 ~1.08-1.12x, +T2 ~1.27x cumulative, total 2.25x "
        "(42.32 -> 95.21 tok/s on MT-Bench)"
    )
    return result
