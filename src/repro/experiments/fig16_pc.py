"""Figure 16 + Fig. 2(d) PC waterfall: the laptop scenario.

Llama2-7B on a Lenovo Legion (RTX 4060 Laptop 8 GB + i7-13650HX): SpecEE
integrated into llama.cpp (partial CPU offload) and PowerInfer (hot/cold
neuron split).  Paper anchors: 1.25x over llama.cpp, 1.15x over PowerInfer,
and the SUM-dataset waterfall 5.63 -> 13.70 tokens/s (2.43x) with all
techniques.
"""

from __future__ import annotations

from typing import List

from repro.eval.reporting import ExperimentResult
from repro.experiments.common import (
    FIG16_DATASETS,
    evaluate,
    get_scale,
    price,
    rig_for,
)
from repro.utils.mathx import geometric_mean

__all__ = ["run"]

_DEVICE = "rtx4060-laptop"
_CPU = "i7-13650hx"


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    datasets = FIG16_DATASETS if sc.name != "small" else FIG16_DATASETS[:3]
    result = ExperimentResult(
        experiment="fig16_pc",
        title="PC scenario: llama.cpp and PowerInfer +/- SpecEE (Fig. 16)",
    )
    rig = rig_for("llama2-7b", None, sc, seed=seed)
    for framework in ("llama.cpp", "powerinfer"):
        rows: List[List[object]] = []
        speedups: List[float] = []
        for dataset in datasets:
            base = evaluate("dense", rig, dataset, sc, seed)
            fast = evaluate("specee", rig, dataset, sc, seed)
            base_tps = price(base, "llama2-7b", _DEVICE, framework,
                             cpu_device=_CPU).tokens_per_second
            fast_tps = price(fast, "llama2-7b", _DEVICE, framework,
                             cpu_device=_CPU).tokens_per_second
            ratio = fast_tps / base_tps
            speedups.append(ratio)
            rows.append([dataset, base_tps, fast_tps, ratio])
        gm = geometric_mean(speedups)
        rows.append(["Geo.Mean", geometric_mean([r[1] for r in rows]),
                     geometric_mean([r[2] for r in rows]), gm])
        result.add_table(
            f"llama2-7b @ {_DEVICE} ({framework})",
            ["dataset", f"{framework} tok/s", f"SpecEE+{framework} tok/s", "speedup"],
            rows,
        )
        result.headline[f"speedup_{framework}"] = gm
    result.notes.append("paper anchors: 1.25x (llama.cpp), 1.15x (PowerInfer)")
    return result
