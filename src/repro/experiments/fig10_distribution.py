"""Figure 10: exit-layer skew and fixed-vs-dynamic predictor placement.

(a)/(c) statistical exiting probability per layer for Llama2-7B and
Vicuna-7B — skewed, with ~50% of layers below the uniform average;
(b) average forward layers when only a fixed number of randomly placed
predictors run — up to ~3 layers worse; (d) end-to-end speedup for fixed
predictor counts vs SpecEE's dynamic set (~10 layers on average), which
wins with fewer predictors.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import SpecEEConfig
from repro.core.engine import SpecEEEngine
from repro.core.scheduling import FixedSetScheduler, OfflineScheduler, make_scheduler
from repro.eval.harness import EvalRun
from repro.eval.reporting import ExperimentResult
from repro.experiments.common import evaluate, get_scale, price, rig_for
from repro.utils.rng import child_rng

__all__ = ["run"]


def _fixed_run(rig, layers, sc) -> EvalRun:
    engine = SpecEEEngine(rig.fresh_model(), rig.speculator, rig.bank,
                          SpecEEConfig(), scheduler=FixedSetScheduler(layers))
    result = engine.generate([5, 9, 2], sc.gen_tokens)
    run = EvalRun(dataset="freerun", engine=f"fixed-{len(layers)}")
    run.ledger.merge(result.ledger)
    run.avg_layers = float(np.mean(np.asarray(result.exit_layers) + 1))
    return run


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    result = ExperimentResult(
        experiment="fig10_distribution",
        title="Exit-layer skew and predictor placement (Fig. 10)",
    )
    # (a)/(c): exit probability distributions.
    for model_name in ("llama2-7b", "vicuna-7b"):
        rig = rig_for(model_name, None, sc, seed=seed)
        run_ = evaluate("specee_t1", rig, "mt_bench", sc, seed)
        hist = np.zeros(rig.model.n_layers)
        for e in run_.exit_layers:
            if e < rig.model.n_layers - 1:
                hist[e] += 1
        probs = hist / max(hist.sum(), 1.0)
        result.add_series(f"exit probability by layer ({model_name})", "layer",
                          list(range(rig.model.n_layers)), {"probability": probs})
        report = OfflineScheduler(hist).skewness_report()
        result.headline[f"below_avg_layer_share_{model_name}"] = report["below_avg_layer_share"]
        result.headline[f"bottom_half_mass_{model_name}"] = report["bottom_half_mass"]

    # (b) fixed random placements and (d) fixed vs dynamic speedup.
    rig = rig_for("llama2-7b", None, sc, seed=seed)
    n_layers = rig.model.n_layers
    rng = child_rng(seed, "fig10-random")
    rows_b: List[List[object]] = []
    rows_d: List[List[object]] = []
    dense_run = evaluate("dense", rig, "mt_bench", sc, seed)
    dense_tps = price(dense_run, "llama2-7b", "a100-80g", "hf").tokens_per_second

    for count in (8, 12, 16, 24):
        layers = sorted(int(l) for l in rng.choice(np.arange(2, n_layers - 1),
                                                   size=count, replace=False))
        fixed = _fixed_run(rig, layers, sc)
        rows_b.append([count, fixed.avg_layers])
        tps = price(fixed, "llama2-7b", "a100-80g", "hf").tokens_per_second
        rows_d.append([f"fixed-{count}", float(count), tps / dense_tps])
    all_run = _fixed_run(rig, range(2, n_layers - 1), sc)
    rows_b.append([n_layers - 3, all_run.avg_layers])

    dynamic = evaluate("specee", rig, "mt_bench", sc, seed)
    dyn_tps = price(dynamic, "llama2-7b", "a100-80g", "hf").tokens_per_second
    dyn_engine = rig.specee_engine("two_level")
    dyn_free = dyn_engine.generate([5, 9, 2], sc.gen_tokens)
    avg_active = dyn_free.avg_active_predictors
    rows_d.append(["dynamic (SpecEE)", avg_active, dyn_tps / dense_tps])

    result.add_table("(b) avg forward layers vs fixed predictor count",
                     ["#predictors (random)", "avg forward layers"], rows_b)
    result.add_table("(d) speedup vs predictor budget",
                     ["configuration", "avg #predictors", "speedup vs HF"], rows_d)
    gap = max(r[1] for r in rows_b[:-1]) - rows_b[-1][1]
    result.headline["random_placement_gap_layers"] = float(gap)
    result.headline["dynamic_avg_predictors"] = float(avg_active)
    result.headline["dynamic_speedup"] = rows_d[-1][2]
    result.headline["best_fixed_speedup"] = max(r[2] for r in rows_d[:-1])
    result.notes.append("paper anchors: ~3.1-layer gap for random placement; "
                        "dynamic ~10.2 predictors beats all fixed counts")
    return result
