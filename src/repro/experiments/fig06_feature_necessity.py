"""Figure 6: all three features are necessary.

The paper argues by counterexample that probability variation alone aliases
(the same delta from different bases) and that local probabilities alone
alias across logit scales.  We reproduce the claim quantitatively: train the
predictor on feature subsets and compare held-out accuracy — the full
12-dim set must win, and each ablated set must lose measurably.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.predictor import ExitPredictor
from repro.core.predictor_training import harvest_training_corpus
from repro.data.corpus import generate_prompts
from repro.eval.reporting import ExperimentResult
from repro.experiments.common import get_scale, rig_for

__all__ = ["run", "FEATURE_SUBSETS"]

# Column blocks of the 12-dim feature vector (k = 4).
_LOGITS = slice(0, 4)
_PROBS = slice(4, 8)
_VARIATION = slice(8, 12)

FEATURE_SUBSETS: Dict[str, List[slice]] = {
    "all three (SpecEE)": [_LOGITS, _PROBS, _VARIATION],
    "variation only": [_VARIATION],
    "probs only": [_PROBS],
    "logits only": [_LOGITS],
    "probs + variation": [_PROBS, _VARIATION],
    "logits + probs": [_LOGITS, _PROBS],
}


def _columns(subset: List[slice]) -> List[int]:
    cols: List[int] = []
    for block in subset:
        cols.extend(range(block.start, block.stop))
    return cols


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    rig = rig_for("llama2-7b", None, sc, seed=seed)
    model = rig.fresh_model()
    prompts = generate_prompts(sc.train_prompts, model.vocab_size, seed=seed + 91)
    corpus = harvest_training_corpus(model, rig.speculator, prompts,
                                     tokens_per_prompt=sc.train_tokens)
    train, test = corpus.split(0.25, seed=seed)

    # Pool the mid-depth layers where the decision is non-trivial.
    layers = [l for l in range(6, model.n_layers - 2)]
    def pooled(c):
        xs, ys = [], []
        for layer in layers:
            x, y = c.layer_arrays(layer)
            if len(y):
                xs.append(x)
                ys.append(y)
        return np.concatenate(xs), np.concatenate(ys)

    x_train, y_train = pooled(train)
    x_test, y_test = pooled(test)

    result = ExperimentResult(
        experiment="fig06_feature_necessity",
        title="Necessity of all three predictor features (Fig. 6)",
    )
    rows: List[List[object]] = []
    accs: Dict[str, float] = {}
    for name, subset in FEATURE_SUBSETS.items():
        cols = _columns(subset)
        clf = ExitPredictor(len(cols), hidden_dim=sc.predictor_hidden, seed=seed)
        clf.fit(x_train[:, cols], y_train, epochs=sc.epochs, seed=seed)
        probs = clf.mlp.forward(x_test[:, cols])
        acc = float(np.mean((np.asarray(probs) >= 0.5) == (y_test > 0.5)))
        accs[name] = acc
        rows.append([name, 100 * acc])
    result.add_table("held-out predictor accuracy by feature subset",
                     ["features", "accuracy %"], rows)
    full = accs["all three (SpecEE)"]
    result.headline["full_accuracy"] = 100 * full
    result.headline["variation_only_gap"] = 100 * (full - accs["variation only"])
    result.headline["probs_only_gap"] = 100 * (full - accs["probs only"])
    result.notes.append("paper: single-feature predictors misjudge (Fig. 6 cases)")
    return result
