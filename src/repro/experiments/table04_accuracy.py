"""Table 4: accuracy / perplexity / average forward layers.

Dense, AdaInfer, SpecEE, AWQ and AWQ+SpecEE over seven datasets for
Llama2-7B/13B/70B.  Paper anchors: SpecEE accuracy within 1% of dense at
~23/32 (7B), ~25/40 (13B) and ~50-57/80 (70B) average forward layers;
AdaInfer loses several points (0.0 on GSM8K).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.eval.reporting import ExperimentResult
from repro.experiments.common import TABLE4_DATASETS, evaluate, get_scale, rig_for

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    models = ["llama2-7b", "llama2-13b", "llama2-70b"] if sc.name != "small" else ["llama2-7b"]
    datasets = TABLE4_DATASETS if sc.name != "small" else ["mmlu", "gsm8k", "sum"]
    result = ExperimentResult(
        experiment="table04_accuracy",
        title="Accuracy / PPL / average forward layers (Table 4)",
    )
    for model_name in models:
        rigs = {
            "dense": rig_for(model_name, None, sc, flavor="dense", seed=seed),
            "awq": rig_for(model_name, None, sc, flavor="awq", seed=seed),
        }
        engines = [
            ("Dense", "dense", "dense"),
            ("AdaInfer", "adainfer", "dense"),
            ("SpecEE", "specee", "dense"),
            ("AWQ", "dense", "awq"),
            ("AWQ+SpecEE", "specee", "awq"),
        ]
        rows: List[List[object]] = []
        acc_dense: dict = {}
        acc_specee: dict = {}
        for label, kind, flavor in engines:
            row: List[object] = [label]
            for dataset in datasets:
                run_ = evaluate(kind, rigs[flavor], dataset, sc, seed)
                metric = run_.accuracy if not np.isnan(run_.accuracy) else run_.ppl
                row.extend([metric, run_.avg_layers])
                if label == "Dense":
                    acc_dense[dataset] = metric
                if label == "SpecEE":
                    acc_specee[dataset] = metric
                    result.headline[f"specee_layers_{model_name}_{dataset}"] = run_.avg_layers
            rows.append(row)
        headers = ["engine"]
        for dataset in datasets:
            headers.extend([f"{dataset} acc/ppl", "#Avg.L"])
        result.add_table(f"{model_name}", headers, rows)
        # Headline: worst accuracy degradation of SpecEE vs dense on
        # classification datasets (paper: < 1 point).
        deltas = [abs(acc_specee[d] - acc_dense[d]) for d in datasets
                  if d in ("mmlu", "csqa", "sst2", "gsm8k") and d in acc_specee]
        if deltas:
            result.headline[f"max_acc_delta_{model_name}"] = float(max(deltas))
    result.notes.append("paper anchors: SpecEE within ~1 point of dense; "
                        "avg layers ~23/32 (7B), ~25/40 (13B), ~50-57/80 (70B)")
    return result
