"""Section 7.4.3-7.4.4: training and runtime overheads of the predictor.

The paper reports ~16K training samples per predictor harvested in ~1 hour,
full training in ~10 minutes (~5 minutes at the 2% plateau), and a runtime
predictor overhead of 0.0009 s/token against 0.016 s/token total — about
5.6% of inference latency.
"""

from __future__ import annotations

import time

from repro.core.predictor import PredictorBank
from repro.core.predictor_training import harvest_training_corpus, train_predictor_bank
from repro.data.corpus import generate_prompts
from repro.eval.reporting import ExperimentResult
from repro.experiments.common import evaluate, get_scale, price, rig_for
from repro.hardware.ledger import Event

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    result = ExperimentResult(
        experiment="sec74_overhead",
        title="Predictor training and runtime overhead (Sec. 7.4.3-7.4.4)",
    )
    rig = rig_for("llama2-7b", None, sc, seed=seed)

    # Offline training cost (wall-clock of the actual pipeline at this scale).
    model = rig.fresh_model()
    prompts = generate_prompts(sc.train_prompts, model.vocab_size, seed=seed + 3)
    t0 = time.perf_counter()
    corpus = harvest_training_corpus(model, rig.speculator, prompts,
                                     tokens_per_prompt=sc.train_tokens)
    harvest_s = time.perf_counter() - t0
    bank = PredictorBank(model.n_layers, feature_dim=12,
                         hidden_dim=sc.predictor_hidden, depth=2, seed=seed)
    t0 = time.perf_counter()
    train_predictor_bank(bank, corpus, epochs=sc.epochs, seed=seed)
    train_s = time.perf_counter() - t0
    result.headline["harvest_samples"] = float(corpus.n_samples)
    result.headline["harvest_seconds"] = harvest_s
    result.headline["train_seconds"] = train_s

    # Runtime predictor overhead from the priced ledger.
    specee = price(evaluate("specee", rig, "mt_bench", sc, seed),
                   "llama2-7b", "a100-80g", "hf")
    predictor_share = specee.latency.share(Event.PREDICTOR)
    slice_share = specee.latency.share(Event.LM_HEAD_SLICE)
    overhead_share = predictor_share + slice_share
    per_token = specee.latency.seconds_per_token
    result.add_table(
        "runtime overhead, Llama2-7B @ A100",
        ["quantity", "value"],
        [["total s/token", per_token],
         ["predictor s/token", per_token * overhead_share],
         ["predictor share %", 100 * overhead_share]],
    )
    result.headline["seconds_per_token"] = per_token
    result.headline["predictor_seconds_per_token"] = per_token * overhead_share
    result.headline["predictor_share_pct"] = 100 * overhead_share
    result.notes.append("paper anchors: 0.016 s/token total, 0.0009 s/token "
                        "predictor (~5.6%)")
    return result
