"""Tables 2-3: hardware platforms and model configurations.

Registry dumps, so benchmark reports carry the same context the paper's
setup section does.
"""

from __future__ import annotations

from repro.config import MODELS
from repro.eval.reporting import ExperimentResult
from repro.hardware.devices import DEVICES

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table02_03_configs",
        title="Hardware platforms and model configurations (Tables 2-3)",
    )
    result.add_table(
        "hardware platforms (Table 2)",
        ["device", "kind", "fp16 TFLOPS", "mem GB/s", "TDP W", "VRAM GB"],
        [[d.name, d.kind, d.fp16_tflops, d.mem_bw_gbps, d.tdp_w, d.vram_gb]
         for d in DEVICES.values()],
    )
    result.add_table(
        "model configurations (Table 3)",
        ["model", "dim", "heads", "layers", "context", "params (B)"],
        [[m.name, m.hidden_dim, m.n_heads, m.n_layers, m.context_length,
          m.total_params / 1e9]
         for m in MODELS.values()],
    )
    result.headline["n_devices"] = float(len(DEVICES))
    result.headline["n_models"] = float(len(MODELS))
    return result
