"""Command-line interface: regenerate paper artifacts from the shell.

Usage::

    python -m repro list
    python -m repro run fig19_ablation --scale medium
    python -m repro run all --scale small --out report.txt
    python -m repro info llama2-7b
    python -m repro serve --requests 16 --batch-capacity 8
    python -m repro train-exits --steps 160 --contrast
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import IO, List, Optional

from repro.config import MODELS, get_model_spec
from repro.distributed.cluster import LINKS, make_cluster, make_replica_clusters
from repro.experiments import REGISTRY
from repro.hardware.devices import DEVICES
from repro.serving.control import CONTROL_POLICIES
from repro.serving.router import ROUTING_POLICIES
from repro.serving.scheduler import SCHEDULING_POLICIES
from repro.utils.tables import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpecEE reproduction: regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every reproducible artifact")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment name from 'list', or 'all'")
    run.add_argument("--scale", default="small", choices=["small", "medium", "full"],
                     help="workload size (default: small)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--out", default=None, help="write the report to a file")

    info = sub.add_parser("info", help="show a model or device spec")
    info.add_argument("name", help="model (llama2-7b, ...) or device (a100-80g, ...)")

    train = sub.add_parser(
        "train-exits",
        help="LayerSkip-train the tiny transformer, distill its draft, and "
             "decode with verified early exits",
    )
    train.add_argument("--steps", type=int, default=160,
                       help="LayerSkip training steps")
    train.add_argument("--curriculum", default="rotational",
                       choices=["rotational", "gradual", "all"],
                       help="which exit layers get a loss each step")
    train.add_argument("--max-layer-dropout", type=float, default=0.3,
                       help="dropout probability of the deepest layer "
                            "(shallower layers scale down linearly)")
    train.add_argument("--early-exit-scale", type=float, default=0.5,
                       help="weight of the mean early-exit loss vs the final CE")
    train.add_argument("--prompts", type=int, default=6,
                       help="prompts to decode with the trained rig")
    train.add_argument("--max-new-tokens", type=int, default=24)
    train.add_argument("--contrast", action="store_true",
                       help="also decode the untrained random-weight rig for "
                            "the before/after exit-rate contrast")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", default=None, help="write the report to a file")

    serve = sub.add_parser(
        "serve", help="continuous-batching serving run vs sequential SpecEE",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "policy flags and their precedence:\n"
            "  --sched    orders service *within* one replica (admission/resume\n"
            "             order, preemption victims); always in effect on the\n"
            "             async paths (--trace on, or any fleet run).\n"
            "  --route    picks *which* replica each request lands on; only in\n"
            "             effect on fleet runs (--replicas > 1 or --clients\n"
            "             closed:M), after router-level rejection and before\n"
            "             --sched sees the request.\n"
            "  --control  adapts *how* each admitted request decodes (exit\n"
            "             threshold / draft length per tick from observed\n"
            "             load); applied last, inside the replica, on the same\n"
            "             async paths as --sched.  'static' is token-identical\n"
            "             to the pre-controller engine; 'pressure' and\n"
            "             'bandit' trade exit depth against load.\n"
            "  --faults   injects replica failures (crash/restart/drain,\n"
            "             slowdowns, predictor anomalies, KV corruption); a\n"
            "             non-'none' plan forces the fleet path even at\n"
            "             --replicas 1, is resolved before any routing\n"
            "             happens, and --route only ever sees replicas the\n"
            "             plan left healthy.  --fault-seed resolves\n"
            "             replica=any picks; --no-failover is the ablation\n"
            "             that loses crashed work.\n"
            "  --prefix-share  pages prompts through the copy-on-write radix\n"
            "             tree inside each replica's paged KV, orthogonal to\n"
            "             all four: admission adopts shared prefixes before\n"
            "             --sched orders service, on every serving path\n"
            "             (closed batch, --trace, fleets).  Tokens are\n"
            "             identical with it on or off.\n"
            "  A closed batch (--trace off, --replicas 1, --clients open) uses\n"
            "  none of --sched/--route/--control/--faults.  --control-seed\n"
            "  seeds the bandit only.\n"
        ))
    serve.add_argument("--backend", default="synthetic",
                       choices=["synthetic", "transformer"],
                       help="decode substrate: the synthetic semantic model, or "
                            "the real numpy transformer with batched wall-clock decode")
    serve.add_argument("--model", default="llama2-7b", choices=sorted(MODELS))
    serve.add_argument("--requests", type=int, default=12)
    serve.add_argument("--max-new-tokens", type=int, default=48)
    serve.add_argument("--batch-capacity", type=int, default=8)
    serve.add_argument("--kv-blocks", type=int, default=512)
    serve.add_argument("--block-size", type=int, default=16)
    serve.add_argument("--scheduler", default="two_level",
                       choices=["all", "offline", "online", "two_level"])
    serve.add_argument("--device", default="a100-80g", choices=sorted(DEVICES))
    serve.add_argument("--framework", default="vllm",
                       choices=["hf", "vllm", "awq", "flashattention"])
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--out", default=None, help="write the report to a file")
    # Async trace-driven serving (ignored when --trace off).
    serve.add_argument("--trace", default="off",
                       choices=["off", "poisson", "bursty", "chat"],
                       help="drive an async arrival trace instead of a closed batch")
    serve.add_argument("--rate", type=float, default=10.0,
                       help="poisson arrival rate, requests per modelled second "
                            "(chat: session-opening rate)")
    # Multi-turn chat traffic and shared-prefix KV reuse.
    serve.add_argument("--sessions", type=int, default=8,
                       help="chat sessions in a --trace chat workload")
    serve.add_argument("--tenants", type=int, default=2,
                       help="tenants (shared system prompts) in a chat trace")
    serve.add_argument("--turns", type=int, default=3,
                       help="turns per chat session (each extends the last)")
    serve.add_argument("--prefix-share", action="store_true",
                       help="page prompts through the copy-on-write shared-"
                            "prefix radix tree (adopted prefixes skip prefill)")
    serve.add_argument("--burst-size", type=int, default=4)
    serve.add_argument("--burst-gap", type=float, default=0.5,
                       help="seconds between bursts (bursty trace)")
    serve.add_argument("--slo-scale", type=float, default=3.0,
                       help="deadline = slo-scale x ideal service time")
    serve.add_argument("--admission", default="optimistic",
                       choices=["optimistic", "reserve"])
    serve.add_argument("--preemption", default="auto",
                       choices=["auto", "swap", "recompute", "never"])
    serve.add_argument("--chunk-prefill", type=int, default=32,
                       help="prefill tokens per tick (0 = unchunked, monopolising)")
    serve.add_argument("--sched", default="fifo_priority",
                       choices=sorted(SCHEDULING_POLICIES),
                       help="async scheduling policy: service order and "
                            "preemption-victim selection")
    serve.add_argument("--control", default="static",
                       choices=sorted(CONTROL_POLICIES),
                       help="load-adaptive speculation control: per-request "
                            "exit-threshold/draft-length actuation from "
                            "observed load (async paths only)")
    serve.add_argument("--control-seed", type=int, default=0,
                       help="seed for the bandit control policy's Thompson "
                            "sampling stream")
    # Data-parallel fleet routing (replicas > 1 or closed-loop clients).
    serve.add_argument("--replicas", type=int, default=1,
                       help="data-parallel replica count (> 1 routes through "
                            "the fleet router)")
    serve.add_argument("--route", default="round_robin",
                       choices=sorted(ROUTING_POLICIES),
                       help="fleet routing policy")
    serve.add_argument("--clients", default="open",
                       help="'open' (trace arrivals) or 'closed:M' "
                            "(M closed-loop clients with think time)")
    serve.add_argument("--think-time", type=float, default=0.05,
                       help="mean closed-loop client think time, modelled "
                            "seconds")
    # Fault injection and recovery (fleet runs).
    serve.add_argument("--faults", default="none",
                       help="fault plan: a preset (none, single-crash, "
                            "crash-restart, degraded-spec, chaos) or a spec "
                            "string like 'crash@0.3:replica=0,down=1.0;"
                            "slow@0.2:factor=3,duration=0.5'")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed resolving replica=any picks and corruption "
                            "RNG streams in the fault plan")
    serve.add_argument("--no-failover", action="store_true",
                       help="ablation: lose a crashed replica's in-flight "
                            "work instead of re-routing it")
    # Multi-device sharding (modelled cluster; 1/1 = single device).
    serve.add_argument("--tp", type=int, default=1,
                       help="tensor-parallel degree (devices per layer shard)")
    serve.add_argument("--pp", type=int, default=1,
                       help="pipeline-parallel degree (stages of contiguous layers)")
    serve.add_argument("--tp-link", default="nvlink", choices=sorted(LINKS),
                       help="interconnect inside a tensor-parallel group")
    serve.add_argument("--pp-link", default="pcie4", choices=sorted(LINKS),
                       help="interconnect between pipeline stages")
    return parser


def _cmd_list(out: IO[str]) -> int:
    rows = [[name, module.run.__module__.rsplit(".", 1)[-1],
             (module.__doc__ or "").strip().splitlines()[0]]
            for name, module in sorted(REGISTRY.items())]
    print(render_table(["experiment", "module", "description"], rows), file=out)
    return 0


def _cmd_run(experiment: str, scale: str, seed: int, out: IO[str]) -> int:
    names: List[str]
    if experiment == "all":
        names = sorted(REGISTRY)
    elif experiment in REGISTRY:
        names = [experiment]
    else:
        known = ", ".join(sorted(REGISTRY))
        print(f"unknown experiment {experiment!r}; known: all, {known}", file=sys.stderr)
        return 2
    for name in names:
        start = time.perf_counter()
        result = REGISTRY[name].run(scale, seed=seed)
        elapsed = time.perf_counter() - start
        print(result.render(), file=out)
        print(f"[{name} completed in {elapsed:.1f}s]\n", file=out)
    return 0


def _cmd_info(name: str, out: IO[str]) -> int:
    if name in MODELS:
        spec = get_model_spec(name)
        rows = [["hidden_dim", spec.hidden_dim], ["heads", spec.n_heads],
                ["layers", spec.n_layers], ["vocab", spec.vocab_size],
                ["params (B)", spec.total_params / 1e9],
                ["fp16 weights (GiB)", spec.weight_bytes / 1024**3]]
        print(render_table(["field", "value"], rows, title=name), file=out)
        return 0
    if name in DEVICES:
        device = DEVICES[name]
        rows = [["kind", device.kind], ["fp16 TFLOPS", device.fp16_tflops],
                ["mem GB/s", device.mem_bw_gbps], ["TDP W", device.tdp_w],
                ["VRAM GB", device.vram_gb]]
        print(render_table(["field", "value"], rows, title=name), file=out)
        return 0
    print(f"unknown model/device {name!r}", file=sys.stderr)
    return 2


def _decode_exit_stats(rig, n_prompts: int, max_new_tokens: int) -> dict:
    """Verified-exit statistics of a batch-1 SpecEE decode on ``rig``."""
    import numpy as np

    from repro.config import SpecEEConfig
    from repro.data.corpus import generate_prompts

    config = SpecEEConfig(scheduler="offline", exit_threshold=0.3)
    rates, layers = [], []
    for prompt in generate_prompts(n_prompts, rig.model.vocab_size, seed=31):
        engine = rig.specee_engine("offline", config=config, offline_top_k=2)
        result = engine.generate(prompt, max_new_tokens)
        rates.append(result.early_exit_rate)
        layers.extend(result.exit_layers)
    return {"exit_rate": float(np.mean(rates)),
            "avg_exit_layer": float(np.mean(layers)) + 1}


def _cmd_train_exits(args, out: IO[str]) -> int:
    """Run the full repro.training loop and decode with the trained rig."""
    from repro.eval.harness import (
        build_trained_transformer_rig, build_transformer_rig,
        trained_transformer_config,
    )

    start = time.perf_counter()
    try:
        rig = build_trained_transformer_rig(
            seed=args.seed, steps=args.steps, curriculum=args.curriculum,
            max_layer_dropout=args.max_layer_dropout,
            early_exit_scale=args.early_exit_scale)
    except ValueError as exc:
        print(f"train-exits: {exc}", file=sys.stderr)
        return 2
    stats = _decode_exit_stats(rig, args.prompts, args.max_new_tokens)
    meta = rig.metadata
    agreement = "/".join(f"{a:.2f}" for a in meta["layer_agreement"])
    rows = [
        ["training steps", args.steps],
        ["curriculum", args.curriculum],
        ["max layer dropout", f"{args.max_layer_dropout:.2f}"],
        ["early-exit loss scale", f"{args.early_exit_scale:.2f}"],
        ["final training loss", f"{meta['training_final_loss']:.3f}"],
        ["held-out next-token accuracy", f"{meta['training_accuracy']:.1%}"],
        ["per-layer argmax agreement", agreement],
        ["distilled draft hit rate", f"{meta['draft_hit_rate']:.2f}"],
        ["verified early-exit rate", f"{stats['exit_rate']:.2f}"],
        ["avg exit layer (1-based)",
         f"{stats['avg_exit_layer']:.1f} / {rig.model.n_layers}"],
    ]
    if args.contrast:
        untrained = build_transformer_rig(trained_transformer_config(),
                                          seed=args.seed, max_tokens=256)
        u = _decode_exit_stats(untrained, args.prompts, args.max_new_tokens)
        rows.extend([
            ["untrained verified exit rate", f"{u['exit_rate']:.2f}"],
            ["untrained avg exit layer",
             f"{u['avg_exit_layer']:.1f} / {untrained.model.n_layers}"],
        ])
    elapsed = time.perf_counter() - start
    title = (f"train-exits: LayerSkip recipe on the tiny transformer "
             f"({args.prompts} prompts x {args.max_new_tokens} tokens)")
    print(render_table(["metric", "value"], rows, title=title), file=out)
    print(f"[train-exits completed in {elapsed:.1f}s]", file=out)
    return 0


def _cluster_from_args(args):
    """The ``ClusterSpec`` the serve flags describe, or None for one device."""
    if args.tp < 1 or args.pp < 1:
        raise ValueError(f"--tp/--pp must be >= 1, got tp={args.tp} pp={args.pp}")
    if args.tp * args.pp == 1:
        return None
    return make_cluster(args.device, tp=args.tp, pp=args.pp,
                        tp_link=args.tp_link, pp_link=args.pp_link)


def _parse_clients(spec: str) -> Optional[int]:
    """Client count from a ``--clients`` spec: None for 'open', M for
    'closed:M'."""
    if spec == "open":
        return None
    if spec.startswith("closed:"):
        try:
            n_clients = int(spec.split(":", 1)[1])
        except ValueError:
            n_clients = 0
        if n_clients >= 1:
            return n_clients
    raise ValueError(f"--clients must be 'open' or 'closed:M', got {spec!r}")


def _trace_kwargs(args, rig, per_token_s: float) -> dict:
    """Workload knobs shared by the open-loop traces and closed-loop
    clients; deadlines scale from the latency model pricing the run."""
    return dict(
        vocab_size=rig.model.vocab_size, slo_scale=args.slo_scale,
        per_token_s=per_token_s, seed=args.seed + 7,
        max_new_tokens_range=(max(args.max_new_tokens // 2, 1),
                              args.max_new_tokens),
    )


def _cmd_serve_fleet(args, rig, out: IO[str]) -> int:
    """Data-parallel fleet serving: replica router, goodput accounting."""
    from repro.serving import (
        ClosedLoopClients, bursty_trace, chat_trace, poisson_trace,
    )

    start = time.perf_counter()
    try:
        n_clients = _parse_clients(args.clients)
        if n_clients is None and args.trace == "off":
            raise ValueError(
                "fleet serving needs a workload: pass --trace "
                "poisson|bursty|chat or --clients closed:M")
        if n_clients is not None and args.trace != "off":
            raise ValueError(
                "--clients closed:M and --trace are both workloads; pass one "
                "(closed-loop clients issue their own arrivals)")
        if args.tp < 1 or args.pp < 1:
            raise ValueError(
                f"--tp/--pp must be >= 1, got tp={args.tp} pp={args.pp}")
        cluster_factory = None
        if args.tp * args.pp > 1:
            # One independent modelled cluster per data-parallel replica.
            replica_clusters = iter(make_replica_clusters(
                args.replicas, args.device, tp=args.tp, pp=args.pp,
                tp_link=args.tp_link, pp_link=args.pp_link))
            cluster_factory = lambda: next(replica_clusters)
        fleet = rig.router_fleet(
            args.replicas, route=args.route, scheduling=args.sched,
            cluster_factory=cluster_factory,
            faults=args.faults, fault_seed=args.fault_seed,
            failover=not args.no_failover,
            scheduler_kind=args.scheduler, device=args.device,
            framework=args.framework, batch_capacity=args.batch_capacity,
            kv_blocks=args.kv_blocks, block_size=args.block_size,
            admission=args.admission, preemption=args.preemption,
            chunk_prefill_tokens=args.chunk_prefill or None,
            control=args.control, control_seed=args.control_seed,
            prefix_share=args.prefix_share,
        )
        kwargs = _trace_kwargs(
            args, rig, fleet.replicas[0].latency.full_depth_token_time())
        if n_clients is not None:
            # Ceiling: never issue fewer total requests than --requests asks.
            rounds = max(1, -(-args.requests // n_clients))
            workload = ClosedLoopClients(
                n_clients, rounds, think_time_s=args.think_time, **kwargs)
        elif args.trace == "poisson":
            workload = poisson_trace(args.requests, args.rate, **kwargs)
        elif args.trace == "chat":
            workload = chat_trace(args.sessions, tenants=args.tenants,
                                  turns=args.turns, rate_per_s=args.rate,
                                  **kwargs)
        else:
            workload = bursty_trace(args.requests, args.burst_size,
                                    args.burst_gap, **kwargs)
        report = fleet.run(workload)
    except (MemoryError, ValueError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    layers = "/".join(f"{l:.1f}" for l in report.replica_layers_per_token)
    rows = [
        ["requests served", len(report.results)],
        ["requests rejected", len(report.rejected)],
        ["tokens generated", report.total_tokens],
        ["fleet makespan (modelled s)", f"{report.makespan_s:.3f}"],
        ["throughput tokens/s", f"{report.throughput_tps:.1f}"],
        ["goodput tokens/s (met SLO)", f"{report.goodput_tps:.1f}"],
        ["SLO attainment", f"{report.slo_attainment:.0%}"],
        ["mean latency (s)", f"{report.mean_latency_s:.3f}"],
        ["p95 latency (s)", f"{report.p95_latency_s():.3f}"],
        ["preemptions", report.preemptions],
        ["requests per replica",
         "/".join(str(c) for c in report.replica_request_counts)],
        ["observed layers/token per replica", layers],
        ["control policy", report.control],
        ["mean threshold offset per replica",
         "/".join(f"{o:+.2f}" for o in report.replica_threshold_offsets)],
    ]
    if args.prefix_share:
        rows.extend([
            ["prefix hit rate (fleet)", f"{report.prefix_hit_rate:.0%}"],
            ["prompt tokens adopted",
             f"{report.prefix_matched_tokens} / {report.prefix_prompt_tokens}"],
            ["mean TTFT (s)", f"{report.mean_ttft_s:.3f}"],
        ])
    if report.faults != "none":
        frac = report.recovered_fraction
        rows += [
            ["fault plan", f"{report.faults} (seed {report.fault_seed})"],
            ["crashes / restarts / drains",
             f"{report.crashes} / {report.restarts} / {report.drains}"],
            ["failover",
             "on" if report.failover else "off (ablation: crashed work lost)"],
            ["requests recovered / lost",
             f"{report.requests_recovered} / {report.requests_lost}"],
            ["recovered fraction",
             "n/a" if frac != frac else f"{frac:.0%}"],
            ["failover retries", report.retries],
            ["tokens salvaged / lost",
             f"{report.tokens_salvaged} / {report.tokens_lost}"],
            ["kv corruptions detected", report.kv_corruptions],
            ["degraded ticks / trips",
             f"{report.degraded_ticks} / {report.degraded_events}"],
            ["watchdog timeouts", report.watchdog_timeouts],
            ["replica health", "/".join(report.replica_health)],
        ]
    workload_desc = (f"closed:{n_clients} clients" if n_clients is not None
                     else f"{args.trace} trace")
    served = (f"tiny-transformer (priced as {args.model})"
              if args.backend == "transformer" else args.model)
    title = (f"fleet serving: {args.replicas}x {served} @ "
             f"{args.device}/{args.framework}, tp={args.tp} pp={args.pp}, "
             f"{workload_desc}, route={args.route}, sched={args.sched}, "
             f"control={args.control}")
    print(render_table(["metric", "value"], rows, title=title), file=out)
    print(f"[serve completed in {elapsed:.1f}s]", file=out)
    return 0


def _cmd_serve_trace(args, rig, out: IO[str]) -> int:
    """Async trace-driven serving: arrivals, SLOs, preemption, chunking."""
    from repro.serving import bursty_trace, chat_trace, poisson_trace

    start = time.perf_counter()
    try:
        serving = rig.async_serving_engine(
            scheduler_kind=args.scheduler, device=args.device,
            framework=args.framework, batch_capacity=args.batch_capacity,
            kv_blocks=args.kv_blocks, block_size=args.block_size,
            admission=args.admission, preemption=args.preemption,
            chunk_prefill_tokens=args.chunk_prefill or None,
            scheduling=args.sched,
            cluster=_cluster_from_args(args),
            control=args.control, control_seed=args.control_seed,
            prefix_share=args.prefix_share,
        )
        # Deadlines scale from the same latency model that prices the run.
        trace_kwargs = _trace_kwargs(
            args, rig, serving.latency.full_depth_token_time())
        if args.trace == "poisson":
            trace = poisson_trace(args.requests, args.rate, **trace_kwargs)
        elif args.trace == "chat":
            trace = chat_trace(args.sessions, tenants=args.tenants,
                               turns=args.turns, rate_per_s=args.rate,
                               **trace_kwargs)
        else:
            trace = bursty_trace(args.requests, args.burst_size, args.burst_gap,
                                 **trace_kwargs)
        report = serving.run(trace)
    except (MemoryError, ValueError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    rows = [
        ["requests served", len(report.results)],
        ["requests rejected", len(report.rejected)],
        ["tokens generated", report.total_tokens],
        ["scheduler ticks", report.n_steps],
        ["makespan (modelled s)", f"{report.makespan_s:.3f}"],
        ["throughput tokens/s", f"{report.throughput_tps:.1f}"],
        ["sequential tokens/s", f"{report.sequential_tps:.1f}"],
        ["throughput speedup", f"{report.speedup:.2f}x"],
        ["SLO attainment", f"{report.slo_attainment:.0%}"],
        ["mean latency (s)", f"{report.mean_latency_s:.3f}"],
        ["p95 latency (s)", f"{report.p95_latency_s():.3f}"],
        ["avg batch occupancy", f"{report.avg_batch_occupancy:.2f}"],
        ["peak KV blocks", f"{report.peak_kv_blocks} / {serving.cache.allocator.n_blocks}"],
        ["preemptions (swap/recompute)",
         f"{report.preemptions} ({report.swaps}/{report.recomputes})"],
        ["peak host-pool tokens", report.peak_host_tokens],
        ["control policy", report.control],
        ["mean threshold offset", f"{report.mean_threshold_offset:+.2f}"],
    ]
    if args.prefix_share:
        rows.extend([
            ["prefix hit rate", f"{report.prefix_hit_rate:.0%}"],
            ["prompt tokens adopted",
             f"{report.prefix_matched_tokens} / {report.prefix_prompt_tokens}"],
            ["copy-on-write clones", report.cow_copies],
            ["mean TTFT (s)", f"{report.mean_ttft_s:.3f}"],
            ["p95 TTFT (s)", f"{report.p95_ttft_s():.3f}"],
        ])
    if args.backend == "transformer":
        # Real backend: measured wall-clock numbers next to the modelled ones.
        rows.extend([
            ["batched decode", "on" if serving.batched else "off"],
            ["wall time (s)", f"{report.wall_time_s:.3f}"],
            ["measured tokens/s (wall-clock)", f"{report.measured_tps:.1f}"],
        ])
    served = (f"tiny-transformer (priced as {args.model})"
              if args.backend == "transformer" else args.model)
    title = (f"async serving: {served} @ {args.device}/{args.framework}, "
             f"tp={args.tp} pp={args.pp}, {args.trace} trace, "
             f"{args.admission} admission, "
             f"{args.preemption} preemption, chunk={args.chunk_prefill}, "
             f"sched={args.sched}, control={args.control}")
    print(render_table(["metric", "value"], rows, title=title), file=out)
    print(f"[serve completed in {elapsed:.1f}s]", file=out)
    return 0


def _cmd_serve(args, out: IO[str]) -> int:
    from repro.data.corpus import generate_prompts
    from repro.eval.harness import build_rig, build_transformer_rig
    from repro.serving import Request

    # Fault injection is a fleet concern (health, failover, routing), so a
    # non-empty --faults plan routes through the fleet path even at width 1.
    fleet_mode = (args.replicas > 1 or args.clients != "open"
                  or args.faults != "none")
    if args.replicas < 1:
        print(f"serve: --replicas must be >= 1, got {args.replicas}",
              file=sys.stderr)
        return 2
    if args.backend == "transformer":
        # Real numpy decode under every serving mode: closed batch, async
        # traces, fleets and tp/pp sharding all drive the same rig; ledgers
        # are priced as --model on --device either way.
        rig = build_transformer_rig(seed=args.seed, priced_as=args.model)
    else:
        rig = build_rig(args.model, seed=args.seed, train_prompts=6, train_tokens=30,
                        predictor_hidden=128, epochs=10)
    if fleet_mode:
        return _cmd_serve_fleet(args, rig, out)
    if args.trace != "off":
        return _cmd_serve_trace(args, rig, out)
    start = time.perf_counter()
    try:
        serving = rig.serving_engine(
            scheduler_kind=args.scheduler, batch_capacity=args.batch_capacity,
            kv_blocks=args.kv_blocks, block_size=args.block_size,
            cluster=_cluster_from_args(args),
            prefix_share=args.prefix_share,
        )
        prompts = generate_prompts(args.requests, rig.model.vocab_size, seed=args.seed + 7)
        requests = [Request(i, prompt, args.max_new_tokens)
                    for i, prompt in enumerate(prompts)]
        report = serving.run(requests)
    except (MemoryError, ValueError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    priced = report.priced_speedup(get_model_spec(args.model), args.device, args.framework)
    rows = [
        ["requests served", len(report.results)],
        ["tokens generated", report.total_tokens],
        ["scheduler steps", report.n_steps],
        ["avg batch occupancy", f"{report.avg_batch_occupancy:.2f}"],
        ["peak KV blocks", f"{report.peak_kv_blocks} / {serving.cache.allocator.n_blocks}"],
        ["mean queue wait (steps)", f"{report.mean_queue_wait_steps:.1f}"],
        ["mean latency (steps)", f"{report.mean_latency_steps:.1f}"],
        ["p95 latency (steps)", f"{report.p95_latency_steps():.1f}"],
        ["sequential tokens/s", f"{priced['sequential_tps']:.1f}"],
        ["serving tokens/s", f"{priced['serving_tps']:.1f}"],
        ["throughput speedup", f"{priced['speedup']:.2f}x"],
    ]
    if args.prefix_share:
        rows.extend([
            ["prefix hit rate", f"{report.prefix_hit_rate:.3f}"],
            ["prompt tokens adopted", report.prefix_matched_tokens],
            ["copy-on-write clones", report.cow_copies],
        ])
    if args.backend == "transformer":
        # Real backend: measured wall-clock numbers next to the modelled ones.
        rows.extend([
            ["batched decode", "on" if report.batched_decode else "off"],
            ["wall time (s)", f"{report.wall_time_s:.3f}"],
            ["measured tokens/s (wall-clock)", f"{report.measured_tps:.1f}"],
        ])
    # The modelled rows follow the repo's "real algorithms, modelled
    # hardware" convention: the ledger records this run's schedule and the
    # roofline prices it as --model on --device, whichever backend executed.
    served = (f"tiny-transformer (priced as {args.model})"
              if args.backend == "transformer" else args.model)
    title = (f"continuous batching: {args.backend} backend, "
             f"{served} @ {args.device}/{args.framework}, "
             f"tp={args.tp} pp={args.pp}, {args.scheduler} scheduler, "
             f"capacity {args.batch_capacity}")
    print(render_table(["metric", "value"], rows, title=title), file=out)
    print(f"[serve completed in {elapsed:.1f}s]", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    sink: IO[str] = sys.stdout
    close = False
    if getattr(args, "out", None):
        sink = open(args.out, "w")
        close = True
    try:
        if args.command == "list":
            return _cmd_list(sink)
        if args.command == "run":
            return _cmd_run(args.experiment, args.scale, args.seed, sink)
        if args.command == "info":
            return _cmd_info(args.name, sink)
        if args.command == "train-exits":
            return _cmd_train_exits(args, sink)
        if args.command == "serve":
            return _cmd_serve(args, sink)
        return 2
    finally:
        if close:
            sink.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
