"""LayeredLM adapter over the real numpy transformer.

This backend runs genuine attention/FFN math through the same interface the
engines drive, which keeps the whole SpecEE pipeline honest: every feature
extraction, predictor call and verification step that works on the synthetic
backend also works on a real transformer.  With random weights its outputs
are not a trained language, so experiments use the synthetic backend; tests
use this one to validate the interface contract (KV-cache consistency,
early-exit KV propagation, layer ordering).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.model.base import LayeredLM, LMState
from repro.nn.attention import KVCache
from repro.nn.transformer import TinyTransformerLM, TransformerConfig

__all__ = ["TransformerLayeredLM", "TransformerState"]


class TransformerState(LMState):
    """LMState plus the transformer's KV cache and current activations."""

    def __init__(self, context: List[int], prompt_len: int, cache: KVCache):
        super().__init__(context=context, prompt_len=prompt_len)
        self.cache = cache
        self.hidden: Optional[np.ndarray] = None  # [1, dim] current activations
        self.host_kv: Optional[dict] = None  # swap-out blob while preempted


class TransformerLayeredLM(LayeredLM):
    """Layer-resolved decoding over :class:`TinyTransformerLM`.

    On an early exit, KV entries for the skipped layers are synthesised from
    the exit-layer hidden state (hidden-state propagation), so later tokens
    attend over a complete cache — the standard treatment in early-exit LLM
    systems.
    """

    supports_batched_decode = True

    def __init__(self, cfg: TransformerConfig | None = None, seed: int = 0, max_tokens: int = 512):
        self.cfg = cfg or TransformerConfig()
        self.lm = TinyTransformerLM(self.cfg, seed=seed)
        self.max_tokens = max_tokens

    @property
    def n_layers(self) -> int:
        return self.cfg.n_layers

    @property
    def hidden_dim(self) -> int:
        return self.cfg.dim

    @property
    def vocab_size(self) -> int:
        return self.cfg.vocab_size

    # -- generation ----------------------------------------------------------
    def start(self, prompt: Sequence[int], script: Optional[Sequence[int]] = None) -> TransformerState:
        if script is not None:
            raise ValueError("the transformer backend cannot plant scripted outputs")
        prompt = [int(t) % self.vocab_size for t in prompt]
        if not prompt:
            raise ValueError("prompt must contain at least one token")
        cache = self.lm.new_cache(self.max_tokens)
        state = TransformerState(context=list(prompt), prompt_len=len(prompt), cache=cache)
        # Prefill all layers over the prompt.
        self.lm.forward_all(np.asarray(prompt), cache, np.arange(len(prompt)))
        return state

    def begin_step(self, state: TransformerState) -> None:
        last = state.context[-1]
        state.hidden = self.lm.embed(np.asarray([last]))
        state.layer_cursor = -1

    def layer_forward(self, state: TransformerState, layer: int) -> np.ndarray:
        if state.hidden is None:
            raise RuntimeError("begin_step must be called before layer_forward")
        if layer != state.layer_cursor + 1:
            raise ValueError(
                f"layers must run in order: expected {state.layer_cursor + 1}, got {layer}"
            )
        position = np.asarray([len(state.context) - 1])
        state.hidden = self.lm.layer_forward(state.hidden, layer, state.cache, position)
        state.layer_cursor = layer
        return state.hidden[0]

    def lm_head_full(self, hidden: np.ndarray) -> np.ndarray:
        return self.lm.lm_head(hidden)

    def lm_head_slice(self, hidden: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
        return self.lm.lm_head_slice(hidden, token_ids)

    def commit(self, state: TransformerState, token: int, exit_layer: int) -> None:
        if state.hidden is None:
            raise RuntimeError("commit without begin_step")
        # Hidden-state propagation: fill KV for skipped layers so the cache
        # stays rectangular.
        position = np.asarray([len(state.context) - 1])
        hidden = state.hidden
        for layer in range(state.layer_cursor + 1, self.n_layers):
            hidden = self.lm.layer_forward(hidden, layer, state.cache, position)
        state.context.append(int(token))
        state.exit_layers.append(int(exit_layer))
        state.step_index += 1
        state.hidden = None
        state.layer_cursor = -1

    # -- batched decode ------------------------------------------------------
    def begin_step_batch(self, states: Sequence[TransformerState]) -> np.ndarray:
        """Embed every sequence's last token with one table gather."""
        last = [state.context[-1] for state in states]
        batch = self.lm.embed(np.asarray(last, dtype=np.int64))  # [B, dim]
        for i, state in enumerate(states):
            state.hidden = batch[i : i + 1]
            state.layer_cursor = -1
        return batch

    def layer_forward_batch(
        self,
        states: Sequence[TransformerState],
        layer: int,
        hidden: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One batched layer over the live sequences (stacked QKV GEMM,
        per-sequence ragged KV gather)."""
        for state in states:
            if state.hidden is None:
                raise RuntimeError("begin_step_batch must precede layer_forward_batch")
            if layer != state.layer_cursor + 1:
                raise ValueError(
                    f"layers must run in order: expected {state.layer_cursor + 1}, "
                    f"got {layer}")
        if hidden is None:
            hidden = np.vstack([state.hidden for state in states])
        positions = np.asarray([len(state.context) - 1 for state in states])
        caches = [state.cache for state in states]
        new = self.lm.layer_decode_batch(hidden, layer, caches, positions)
        for i, state in enumerate(states):
            state.hidden = new[i : i + 1]
            state.layer_cursor = layer
        return new

    def lm_head_full_batch(self, hidden: np.ndarray) -> np.ndarray:
        """Final norm + LM-head projection of the whole ``[B, dim]`` batch."""
        return self.lm.lm_head(hidden)

    def lm_head_slice_batch(self, hidden: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
        """Speculative LM head for the whole batch: the final norm broadcasts
        over rows and the column slice makes it one ``[B, dim] x [dim, k]``
        GEMM."""
        return self.lm.lm_head_slice(hidden, token_ids)

    def commit_batch(
        self,
        states: Sequence[TransformerState],
        tokens: Sequence[int],
        exit_layers: Sequence[int],
    ) -> None:
        """Commit one token per sequence with batched KV propagation.

        Sequences exited at different depths, so the hidden-state fill runs
        layer by layer over the subset of sequences whose cursor is still
        above that depth — the batch grows as the depth passes each exit
        layer, mirroring how it shrank on the way down.
        """
        if not states:
            return
        for state in states:
            if state.hidden is None:
                raise RuntimeError("commit_batch without begin_step_batch")
        hidden = np.vstack([state.hidden for state in states])
        positions = np.asarray([len(state.context) - 1 for state in states])
        cursors = [state.layer_cursor for state in states]
        for layer in range(self.n_layers):
            idx = [i for i, cursor in enumerate(cursors) if cursor < layer]
            if not idx:
                continue
            sub = self.lm.layer_decode_batch(
                hidden[idx], layer, [states[i].cache for i in idx], positions[idx])
            hidden[idx] = sub
        for state, token, exit_layer in zip(states, tokens, exit_layers):
            state.context.append(int(token))
            state.exit_layers.append(int(exit_layer))
            state.step_index += 1
            state.hidden = None
            state.layer_cursor = -1

    # -- preemption (serving) ------------------------------------------------
    def swap_out_state(self, state: TransformerState) -> None:
        """Move the real KV tensors to a host blob, bit for bit."""
        state.host_kv = state.cache.swap_out()

    def swap_in_state(self, state: TransformerState) -> None:
        """Restore the tensors evicted by :meth:`swap_out_state` bit-exactly."""
        if state.host_kv is None:
            raise RuntimeError("swap_in_state without a prior swap_out_state")
        state.cache.swap_in(state.host_kv)
        state.host_kv = None

    def drop_state_kv(self, state: TransformerState) -> None:
        """Free the device KV entirely; :meth:`recompute_state` rebuilds it."""
        state.cache = self.lm.new_cache(self.max_tokens)
        state.host_kv = None

    def recompute_state(self, state: TransformerState) -> None:
        """Rebuild dropped KV by deterministic full-depth replay.

        Every commit fills all layers' KV for the step's input token
        (hidden-state propagation continues the exit hidden through the
        remaining layers), so the cache content never depends on where the
        sequence exited: entry ``j < prompt_len`` is prompt token ``j`` at
        position ``j``, and each decode step appended its input token — the
        previous context tail — at its decode position.  One prefill-shaped
        pass over that token stream reproduces the cache, so resumed decode
        matches an uninterrupted run token for token.
        """
        p, n = state.prompt_len, len(state.context)
        tokens = state.context[:p] + state.context[p - 1 : n - 1]
        positions = list(range(p)) + list(range(p - 1, n - 1))
        state.cache = self.lm.new_cache(self.max_tokens)
        state.host_kv = None
        self.lm.forward_all(np.asarray(tokens, dtype=np.int64), state.cache,
                            np.asarray(positions, dtype=np.int64))
