"""LayeredLM adapter over the real numpy transformer.

This backend runs genuine attention/FFN math through the same interface the
engines drive, which keeps the whole SpecEE pipeline honest: every feature
extraction, predictor call and verification step that works on the synthetic
backend also works on a real transformer.  With random weights its outputs
are not a trained language, so experiments use the synthetic backend; tests
use this one to validate the interface contract (KV-cache consistency,
early-exit KV propagation, layer ordering).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.model.base import LayeredLM, LMState
from repro.nn.attention import KVCache
from repro.nn.transformer import TinyTransformerLM, TransformerConfig

__all__ = ["TransformerLayeredLM", "TransformerState"]


class TransformerState(LMState):
    """LMState plus the transformer's KV cache and current activations."""

    def __init__(self, context: List[int], prompt_len: int, cache: KVCache):
        super().__init__(context=context, prompt_len=prompt_len)
        self.cache = cache
        self.hidden: Optional[np.ndarray] = None  # [1, dim] current activations
        self.host_kv: Optional[dict] = None  # swap-out blob while preempted


#: How the KV slots of layers skipped by an early exit are filled.
#:
#: * ``"full"`` — continue the exit hidden state through the remaining
#:   *complete* layers (attention + FFN).  Semantically closest to not
#:   exiting at all and replayable with one dense pass, but it pays the full
#:   per-layer cost, so early exits save no wall-clock time.
#: * ``"propagate"`` — project the exit hidden state through each skipped
#:   layer's K/V weights only (hidden-state propagation, the standard
#:   treatment in early-exit LLM systems).  Two GEMVs + a rotation per
#:   skipped layer instead of a full layer, which is what turns exits into
#:   measured speedup; replay happens per step at the recorded exit depths.
KV_FILL_MODES = ("full", "propagate")


class TransformerLayeredLM(LayeredLM):
    """Layer-resolved decoding over :class:`TinyTransformerLM`.

    On an early exit, KV entries for the skipped layers are synthesised from
    the exit-layer hidden state so later tokens attend over a complete
    cache; :data:`KV_FILL_MODES` selects between the faithful-but-costly
    full-layer fill and the cheap propagation fill the trained rigs use.
    """

    supports_batched_decode = True

    def __init__(
        self,
        cfg: TransformerConfig | None = None,
        seed: int = 0,
        max_tokens: int = 512,
        kv_fill: str = "full",
        lm: TinyTransformerLM | None = None,
    ):
        if kv_fill not in KV_FILL_MODES:
            raise ValueError(f"kv_fill must be one of {KV_FILL_MODES}, got {kv_fill!r}")
        if lm is not None:
            # Wrap an existing (e.g. LayerSkip-trained and exported) stack
            # instead of rolling fresh random weights.
            if cfg is not None and cfg != lm.cfg:
                raise ValueError("cfg disagrees with the provided lm's config")
            self.cfg = lm.cfg
            self.lm = lm
        else:
            self.cfg = cfg or TransformerConfig()
            self.lm = TinyTransformerLM(self.cfg, seed=seed)
        self.kv_fill = kv_fill
        self.max_tokens = max_tokens

    @property
    def n_layers(self) -> int:
        return self.cfg.n_layers

    @property
    def hidden_dim(self) -> int:
        return self.cfg.dim

    @property
    def vocab_size(self) -> int:
        return self.cfg.vocab_size

    # -- generation ----------------------------------------------------------
    def start(self, prompt: Sequence[int], script: Optional[Sequence[int]] = None) -> TransformerState:
        if script is not None:
            raise ValueError("the transformer backend cannot plant scripted outputs")
        prompt = [int(t) % self.vocab_size for t in prompt]
        if not prompt:
            raise ValueError("prompt must contain at least one token")
        cache = self.lm.new_cache(self.max_tokens)
        state = TransformerState(context=list(prompt), prompt_len=len(prompt), cache=cache)
        # Prefill all layers over the prompt.
        self.lm.forward_all(np.asarray(prompt), cache, np.arange(len(prompt)))
        return state

    def begin_step(self, state: TransformerState) -> None:
        last = state.context[-1]
        state.hidden = self.lm.embed(np.asarray([last]))
        state.layer_cursor = -1

    def layer_forward(self, state: TransformerState, layer: int) -> np.ndarray:
        if state.hidden is None:
            raise RuntimeError("begin_step must be called before layer_forward")
        if layer != state.layer_cursor + 1:
            raise ValueError(
                f"layers must run in order: expected {state.layer_cursor + 1}, got {layer}"
            )
        position = np.asarray([len(state.context) - 1])
        state.hidden = self.lm.layer_forward(state.hidden, layer, state.cache, position)
        state.layer_cursor = layer
        return state.hidden[0]

    def lm_head_full(self, hidden: np.ndarray) -> np.ndarray:
        return self.lm.lm_head(hidden)

    def lm_head_slice(self, hidden: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
        return self.lm.lm_head_slice(hidden, token_ids)

    def commit(self, state: TransformerState, token: int, exit_layer: int) -> None:
        if state.hidden is None:
            raise RuntimeError("commit without begin_step")
        # Fill KV for skipped layers so the cache stays rectangular: cheap
        # K/V projection of the exit hidden per layer in "propagate" mode,
        # full remaining layers in "full" mode.
        position = np.asarray([len(state.context) - 1])
        if self.kv_fill == "propagate":
            for layer in range(state.layer_cursor + 1, self.n_layers):
                self.lm.layer_kv_fill(state.hidden, layer, [state.cache], position)
        else:
            hidden = state.hidden
            for layer in range(state.layer_cursor + 1, self.n_layers):
                hidden = self.lm.layer_forward(hidden, layer, state.cache, position)
        state.context.append(int(token))
        state.exit_layers.append(int(exit_layer))
        state.step_index += 1
        state.hidden = None
        state.layer_cursor = -1

    # -- batched decode ------------------------------------------------------
    def begin_step_batch(self, states: Sequence[TransformerState]) -> np.ndarray:
        """Embed every sequence's last token with one table gather."""
        last = [state.context[-1] for state in states]
        batch = self.lm.embed(np.asarray(last, dtype=np.int64))  # [B, dim]
        for i, state in enumerate(states):
            state.hidden = batch[i : i + 1]
            state.layer_cursor = -1
        return batch

    def layer_forward_batch(
        self,
        states: Sequence[TransformerState],
        layer: int,
        hidden: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One batched layer over the live sequences (stacked QKV GEMM,
        per-sequence ragged KV gather)."""
        for state in states:
            if state.hidden is None:
                raise RuntimeError("begin_step_batch must precede layer_forward_batch")
            if layer != state.layer_cursor + 1:
                raise ValueError(
                    f"layers must run in order: expected {state.layer_cursor + 1}, "
                    f"got {layer}")
        if hidden is None:
            hidden = np.vstack([state.hidden for state in states])
        positions = np.asarray([len(state.context) - 1 for state in states])
        caches = [state.cache for state in states]
        new = self.lm.layer_decode_batch(hidden, layer, caches, positions)
        for i, state in enumerate(states):
            state.hidden = new[i : i + 1]
            state.layer_cursor = layer
        return new

    def lm_head_full_batch(self, hidden: np.ndarray) -> np.ndarray:
        """Final norm + LM-head projection of the whole ``[B, dim]`` batch."""
        return self.lm.lm_head(hidden)

    def lm_head_slice_batch(self, hidden: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
        """Speculative LM head for the whole batch: the final norm broadcasts
        over rows and the column slice makes it one ``[B, dim] x [dim, k]``
        GEMM."""
        return self.lm.lm_head_slice(hidden, token_ids)

    def commit_batch(
        self,
        states: Sequence[TransformerState],
        tokens: Sequence[int],
        exit_layers: Sequence[int],
    ) -> None:
        """Commit one token per sequence with batched KV propagation.

        Sequences exited at different depths, so the hidden-state fill runs
        layer by layer over the subset of sequences whose cursor is still
        above that depth — the batch grows as the depth passes each exit
        layer, mirroring how it shrank on the way down.
        """
        if not states:
            return
        for state in states:
            if state.hidden is None:
                raise RuntimeError("commit_batch without begin_step_batch")
        hidden = np.vstack([state.hidden for state in states])
        positions = np.asarray([len(state.context) - 1 for state in states])
        cursors = [state.layer_cursor for state in states]
        for layer in range(self.n_layers):
            idx = [i for i, cursor in enumerate(cursors) if cursor < layer]
            if not idx:
                continue
            if self.kv_fill == "propagate":
                # One stacked K/V projection of the exit hiddens per layer;
                # the hidden states are not advanced (the fill reads the exit
                # activation for every skipped depth).
                self.lm.layer_kv_fill(
                    hidden[idx], layer, [states[i].cache for i in idx],
                    positions[idx])
                continue
            sub = self.lm.layer_decode_batch(
                hidden[idx], layer, [states[i].cache for i in idx], positions[idx])
            hidden[idx] = sub
        for state, token, exit_layer in zip(states, tokens, exit_layers):
            state.context.append(int(token))
            state.exit_layers.append(int(exit_layer))
            state.step_index += 1
            state.hidden = None
            state.layer_cursor = -1

    # -- preemption (serving) ------------------------------------------------
    def swap_out_state(self, state: TransformerState) -> None:
        """Move the real KV tensors to a host blob, bit for bit."""
        state.host_kv = state.cache.swap_out()

    def swap_in_state(self, state: TransformerState) -> None:
        """Restore the tensors evicted by :meth:`swap_out_state` bit-exactly."""
        if state.host_kv is None:
            raise RuntimeError("swap_in_state without a prior swap_out_state")
        state.cache.swap_in(state.host_kv)
        state.host_kv = None

    def drop_state_kv(self, state: TransformerState) -> None:
        """Free the device KV entirely; :meth:`recompute_state` rebuilds it."""
        state.cache = self.lm.new_cache(self.max_tokens)
        state.host_kv = None

    def recompute_state(self, state: TransformerState) -> None:
        """Rebuild dropped KV by deterministic replay.

        In ``"full"`` fill mode every commit ran all layers for the step's
        input token, so the cache content never depends on where the sequence
        exited: entry ``j < prompt_len`` is prompt token ``j`` at position
        ``j``, and each decode step appended its input token — the previous
        context tail — at its decode position.  One prefill-shaped pass over
        that token stream reproduces the cache.

        In ``"propagate"`` mode skipped layers hold K/V synthesised from the
        exit hidden, so the replay walks the recorded ``exit_layers`` step by
        step: run layers up to each step's exit depth, then re-synthesise the
        skipped layers' K/V from the same exit hidden — exactly what the
        original commits did.  Either way, resumed decode matches an
        uninterrupted run token for token.
        """
        p, n = state.prompt_len, len(state.context)
        state.cache = self.lm.new_cache(self.max_tokens)
        state.host_kv = None
        if self.kv_fill != "propagate" or n == p:
            tokens = state.context[:p] + state.context[p - 1 : n - 1]
            positions = list(range(p)) + list(range(p - 1, n - 1))
            self.lm.forward_all(np.asarray(tokens, dtype=np.int64), state.cache,
                                np.asarray(positions, dtype=np.int64))
            return
        if len(state.exit_layers) != n - p:
            raise RuntimeError(
                f"cannot replay propagate-mode KV: {len(state.exit_layers)} "
                f"recorded exits for {n - p} generated tokens")
        self.lm.forward_all(np.asarray(state.context[:p], dtype=np.int64),
                            state.cache, np.arange(p))
        for i, exit_layer in enumerate(state.exit_layers):
            position = np.asarray([p - 1 + i])
            hidden = self.lm.embed(np.asarray([state.context[p - 1 + i]]))
            for layer in range(int(exit_layer) + 1):
                hidden = self.lm.layer_forward(hidden, layer, state.cache, position)
            for layer in range(int(exit_layer) + 1, self.n_layers):
                self.lm.layer_kv_fill(hidden, layer, [state.cache], position)
