"""Per-model semantic profiles.

A :class:`SemanticProfile` gathers every knob of the synthetic substrate for
one target model: the saturation-layer distribution (Fig. 10), the context
similarity strength (Fig. 11), the draft model's hit rate, the rate of
transient premature argmax spikes (the residual-error mechanism behind the
paper's <1% accuracy delta), and the hidden-dynamics coefficients realising
the probability shift of Fig. 5.

Dataset stand-ins (:mod:`repro.data.datasets`) start from the model profile
and apply small per-task modifiers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

from repro.model.difficulty import ExitProfile

__all__ = ["SemanticProfile", "MODEL_PROFILES", "get_profile"]


@dataclass(frozen=True)
class SemanticProfile:
    """All semantic knobs of the synthetic LLM substrate for one model."""

    name: str
    n_layers: int
    # Saturation-layer (difficulty) distribution — see ExitProfile.from_params.
    peak_frac: float = 0.58
    spread_frac: float = 0.13
    right_skew: float = 1.6
    full_depth_rate: float = 0.10
    min_layer: int = 4
    spike_seed: int = 7
    # Context similarity of saturation layers (Fig. 11).
    similarity: float = 0.82
    window: int = 5
    vicinity: int = 2
    # Draft model quality.
    draft_hit_rate: float = 0.80
    tree_level_hit_rate: float = 0.82
    # Rate of transient premature top-1 spikes (residual error source).
    transient_rate: float = 0.03
    # Hidden-dynamics coefficients (paper Fig. 5 probability shift).
    c_target_lo: float = 0.15
    c_target_hi: float = 1.0
    c_dom_hi: float = 0.85
    c_dom_lo: float = 0.15
    c_secondary: float = 0.20
    # Post-saturation consolidation of plausible alternatives: as depth grows
    # the language's probability mass concentrates on plausible tokens, so
    # the in-speculative-set distractors also rise (keeps features informative
    # on draft-miss steps).
    secondary_rise: float = 0.55
    shift_sharpness: float = 6.0
    noise: float = 0.05
    gain: float = 12.0
    transient_peak: float = 0.95
    transient_dom: float = 0.30

    def exit_profile(self) -> ExitProfile:
        """Materialise the stationary saturation-layer distribution."""
        return ExitProfile.from_params(
            n_layers=self.n_layers,
            peak_frac=self.peak_frac,
            spread_frac=self.spread_frac,
            right_skew=self.right_skew,
            full_depth_rate=self.full_depth_rate,
            min_layer=self.min_layer,
            spike_seed=self.spike_seed,
        )

    def with_overrides(self, **kwargs) -> "SemanticProfile":
        """Functional update (used by dataset modifiers)."""
        return dataclasses.replace(self, **kwargs)


MODEL_PROFILES: Dict[str, SemanticProfile] = {
    # Average forward layers calibration targets (paper Table 4):
    #   llama2-7b  ~23 / 32,   llama2-13b ~25-26 / 40,   llama2-70b ~50-57 / 80.
    "llama2-7b": SemanticProfile(
        name="llama2-7b", n_layers=32, peak_frac=0.54, full_depth_rate=0.09,
        draft_hit_rate=0.80, spike_seed=7,
    ),
    "llama2-13b": SemanticProfile(
        name="llama2-13b", n_layers=40, peak_frac=0.50, full_depth_rate=0.10,
        draft_hit_rate=0.82, spike_seed=13,
    ),
    "llama2-70b": SemanticProfile(
        name="llama2-70b", n_layers=80, peak_frac=0.55, full_depth_rate=0.12,
        draft_hit_rate=0.85, spike_seed=70,
    ),
    "vicuna-7b": SemanticProfile(
        name="vicuna-7b", n_layers=32, peak_frac=0.52, full_depth_rate=0.11,
        draft_hit_rate=0.80, spike_seed=21, spread_frac=0.15,
    ),
}


def get_profile(name: str) -> SemanticProfile:
    try:
        return MODEL_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_PROFILES))
        raise KeyError(f"unknown profile {name!r}; known: {known}") from None
