"""The layer-resolved language-model interface every engine drives.

SpecEE (and the baselines it is compared against) interact with the target
LLM only through this narrow surface:

* start a generation from a prompt,
* advance the current token's hidden state one decoder layer at a time,
* project a hidden state through the LM head — either over the full
  vocabulary or over a handful of columns (the *speculative LM head* of
  paper Sec. 4.3.1),
* commit a chosen token (possibly decided before the final layer).

Because early exit is about *not running* the remaining layers, the interface
is deliberately incremental: ``layer_forward`` must be called for layer ``l``
before ``l + 1``, and committing mid-depth is legal.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["LMState", "LayeredLM"]


@dataclass
class LMState:
    """Mutable per-generation state shared by all backends.

    ``context`` holds prompt plus committed tokens; ``layer_cursor`` tracks
    how deep the current token's forward pass has progressed (``-1`` before
    the first layer).  Backends attach their own fields via subclassing.
    """

    context: List[int]
    prompt_len: int
    step_index: int = 0
    layer_cursor: int = -1
    script: Optional[List[int]] = None
    exit_layers: List[int] = field(default_factory=list)

    @property
    def generated(self) -> List[int]:
        return self.context[self.prompt_len :]


class LayeredLM(abc.ABC):
    """Abstract layer-resolved LM (see module docstring).

    Besides the scalar per-sequence interface, the class defines a *batched
    decode* surface (``begin_step_batch`` / ``layer_forward_batch`` /
    ``lm_head_full_batch`` / ``commit_batch`` / ``step_batch``) that advances
    many sequences one layer at a time, so per-sequence early exits shrink
    the batch mid-stack.  The default implementations fall back to the scalar
    methods (correct for every backend); backends that can run genuinely
    batched math set ``supports_batched_decode = True`` and override them —
    see :class:`~repro.model.transformer_backend.TransformerLayeredLM`.
    """

    #: Whether the batched-decode overrides run real [B, dim] math (True) or
    #: the scalar fallbacks (False).  Serving uses this to pick the wall-clock
    #: fast path.
    supports_batched_decode: bool = False

    # -- static shape ------------------------------------------------------
    @property
    @abc.abstractmethod
    def n_layers(self) -> int:
        """Number of decoder layers."""

    @property
    @abc.abstractmethod
    def hidden_dim(self) -> int:
        """Simulation hidden width."""

    @property
    @abc.abstractmethod
    def vocab_size(self) -> int:
        """Simulation vocabulary size."""

    # -- generation --------------------------------------------------------
    @abc.abstractmethod
    def start(self, prompt: Sequence[int], script: Optional[Sequence[int]] = None) -> LMState:
        """Begin a generation; ``script`` optionally pins the model's intended
        outputs for the first ``len(script)`` steps (used by dataset items to
        plant calibrated answers — see DESIGN.md)."""

    @abc.abstractmethod
    def begin_step(self, state: LMState) -> None:
        """Prepare internal state for generating the next token."""

    @abc.abstractmethod
    def layer_forward(self, state: LMState, layer: int) -> np.ndarray:
        """Run decoder layer ``layer`` for the current token; returns the
        hidden state after that layer.  Must be called in depth order."""

    @abc.abstractmethod
    def lm_head_full(self, hidden: np.ndarray) -> np.ndarray:
        """Full-vocabulary logits for ``hidden`` (the expensive projection)."""

    @abc.abstractmethod
    def lm_head_slice(self, hidden: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
        """Logits restricted to ``token_ids`` — the speculative LM head."""

    @abc.abstractmethod
    def commit(self, state: LMState, token: int, exit_layer: int) -> None:
        """Accept ``token`` as the step's output, generated at ``exit_layer``."""

    # -- batched decode ------------------------------------------------------
    def begin_step_batch(self, states: Sequence[LMState]) -> Optional[np.ndarray]:
        """Prepare every state for its next token.

        Returns the ``[B, hidden]`` batch of current activations when the
        backend runs genuinely batched math, else ``None`` (the scalar
        fallback keeps activations inside each state).
        """
        for state in states:
            self.begin_step(state)
        return None

    def layer_forward_batch(
        self,
        states: Sequence[LMState],
        layer: int,
        hidden: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run decoder layer ``layer`` for every state; returns ``[B, hidden]``.

        ``hidden`` is the batch returned by the previous call (ignored by the
        scalar fallback, which reads each state's own activation).  Callers
        shrink ``states`` between layers as sequences exit early — that is
        the SpecEE layer-skip shape, and for batched backends it shrinks the
        GEMMs accordingly.
        """
        return np.stack([self.layer_forward(state, layer) for state in states])

    def lm_head_full_batch(self, hidden: np.ndarray) -> np.ndarray:
        """Full-vocabulary logits for a ``[B, hidden]`` batch.

        Tries one :meth:`lm_head_full` call over the whole batch — a single
        GEMM for heads that broadcast over a leading batch axis — and only
        falls back to per-row projection for backends whose head cannot.
        """
        hidden = np.asarray(hidden)
        try:
            logits = np.asarray(self.lm_head_full(hidden))
        except Exception:
            logits = None
        if logits is not None and logits.shape == (hidden.shape[0], self.vocab_size):
            return logits
        return np.stack([self.lm_head_full(h) for h in hidden])

    def lm_head_slice_batch(self, hidden: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
        """Sliced logits ``[B, len(token_ids)]`` for a ``[B, hidden]`` batch
        over one shared candidate set — the batched speculative LM head.
        Batched backends override this with a single ``[B, dim] x [dim, k]``
        GEMM; the default loops per row."""
        return np.stack([self.lm_head_slice(h, token_ids) for h in hidden])

    def commit_batch(
        self,
        states: Sequence[LMState],
        tokens: Sequence[int],
        exit_layers: Sequence[int],
    ) -> None:
        """Accept one token per state (each possibly decided mid-depth)."""
        for state, token, exit_layer in zip(states, tokens, exit_layers):
            self.commit(state, int(token), int(exit_layer))

    def step_batch(
        self, states: Sequence[LMState], exit_layers: Sequence[int]
    ) -> List[int]:
        """Greedy-decode one token for every state with per-sequence exit
        depths.

        Sequence ``i`` runs layers ``0 .. exit_layers[i]`` and commits the
        argmax of the full LM head at its exit activation; sequences drop out
        of the batch as the depth passes their exit layer.  Used by dense
        batched decoding and by callers that decide exits up front; the
        SpecEE engine drives the finer-grained primitives directly because
        its exits are decided layer by layer.
        """
        if len(states) != len(exit_layers):
            raise ValueError(
                f"{len(states)} states but {len(exit_layers)} exit layers")
        if not states:
            return []
        exits = [int(e) for e in exit_layers]
        for e in exits:
            if not 0 <= e < self.n_layers:
                raise ValueError(f"exit layer {e} outside [0, {self.n_layers})")
        b = len(states)
        batch = self.begin_step_batch(states)
        hidden: Optional[np.ndarray] = batch
        for layer in range(max(exits) + 1):
            idx = [i for i in range(b) if exits[i] >= layer]
            sub = None if hidden is None else hidden[idx]
            new = self.layer_forward_batch([states[i] for i in idx], layer, sub)
            if hidden is None:
                hidden = np.zeros((b, new.shape[-1]))
            hidden[idx] = new
        logits = self.lm_head_full_batch(hidden)
        tokens = [int(t) for t in np.argmax(logits, axis=-1)]
        self.commit_batch(states, tokens, exits)
        return tokens

    # -- preemption (serving) ------------------------------------------------
    # The async serving engine evicts sequences under KV pressure.  Modelled
    # costs (KV_SWAP traffic, recompute prefill) are charged by the engine;
    # these hooks keep any *real* per-state tensors consistent with that
    # story.  Stateless backends (the synthetic LM recomputes activations
    # from plans) need no action, so the defaults are no-ops.
    def swap_out_state(self, state: LMState) -> None:
        """Evict ``state``'s device KV to host memory (swap preemption).

        Backends with real KV tensors must move them bit-exactly to a
        host-side blob so :meth:`swap_in_state` can restore them."""

    def swap_in_state(self, state: LMState) -> None:
        """Restore KV previously evicted by :meth:`swap_out_state`."""

    def drop_state_kv(self, state: LMState) -> None:
        """Discard ``state``'s device KV outright (recompute preemption)."""

    def recompute_state(self, state: LMState) -> None:
        """Rebuild KV dropped by :meth:`drop_state_kv` by deterministically
        replaying ``state``'s context at full depth.  Must leave the state
        indistinguishable from one that was never preempted."""

    # -- conveniences --------------------------------------------------------
    def run_to_layer(self, state: LMState, layer: int) -> np.ndarray:
        """Advance from the current cursor through ``layer`` inclusive."""
        hidden: Optional[np.ndarray] = None
        for l in range(state.layer_cursor + 1, layer + 1):
            hidden = self.layer_forward(state, l)
        if hidden is None:
            raise ValueError(f"cursor already past layer {layer}")
        return hidden

    def greedy_token(self, hidden: np.ndarray) -> int:
        """Argmax over the full LM head."""
        return int(np.argmax(self.lm_head_full(hidden)))

    def generate_dense(self, state: LMState, n_tokens: int) -> List[int]:
        """Reference full-depth greedy decode (used by tests and baselines)."""
        out = []
        for _ in range(n_tokens):
            self.begin_step(state)
            hidden = self.run_to_layer(state, self.n_layers - 1)
            token = self.greedy_token(hidden)
            self.commit(state, token, self.n_layers - 1)
            out.append(token)
        return out
