"""Draft (speculative) models.

:class:`Speculator` is the per-token draft used by SpecEE's autoregressive
mode (paper Sec. 3.2): it proposes ``k`` candidate tokens whose hit rate —
how often the target model's final output is among them — is the calibrated
stand-in for a trained EAGLE head.  :class:`TreeDrafter` grows the left-heavy
token trees used by speculative decoding (Sec. 6.1, Fig. 13).

Both are coupled to the target model only through the shared
:class:`~repro.model.oracle.NGramOracle` — the draft approximates the same
language the target model speaks, which is exactly the relationship a
distilled draft head has with its target LLM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.model.oracle import NGramOracle

__all__ = ["Speculator", "DraftTree", "TreeDrafter"]


class Speculator:
    """Top-``k`` draft proposer with a calibrated hit rate.

    On a *hit* (probability ``hit_rate``, decided deterministically per
    context) the proposal set contains the oracle target, usually in the
    first slot; on a miss it contains only plausible alternatives.  Memory
    and latency of the draft model are accounted by the hardware layer, not
    here.
    """

    def __init__(self, oracle: NGramOracle, k: int = 4, hit_rate: float = 0.80):
        if k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 <= hit_rate <= 1.0:
            raise ValueError("hit_rate must lie in [0, 1]")
        self.oracle = oracle
        self.k = k
        self.hit_rate = hit_rate

    def propose(self, context: Sequence[int]) -> np.ndarray:
        """Return ``k`` distinct candidate tokens for the next position."""
        hit = self.oracle.uniform_hash(context, "draft-hit") < self.hit_rate
        alts = self.oracle.alternatives(context, self.k)
        if hit:
            target = self.oracle.target(context)
            # The draft ranks the target first ~75% of the time; otherwise it
            # appears lower in the candidate list.
            slot_roll = self.oracle.uniform_hash(context, "draft-slot")
            slot = 0 if slot_roll < 0.75 else 1 + int(slot_roll * 97) % (self.k - 1) if self.k > 1 else 0
            tokens = alts[: self.k - 1]
            tokens.insert(min(slot, len(tokens)), target)
        else:
            tokens = alts[: self.k]
        return np.asarray(tokens[: self.k], dtype=np.int64)

    def is_hit(self, context: Sequence[int]) -> bool:
        """Whether the proposal for ``context`` contains the oracle target."""
        return bool(self.oracle.uniform_hash(context, "draft-hit") < self.hit_rate)


@dataclass
class DraftTree:
    """A token tree: ``tokens[i]`` with parent ``parents[i]`` (-1 = root child)."""

    tokens: List[int] = field(default_factory=list)
    parents: List[int] = field(default_factory=list)

    def add(self, token: int, parent: int) -> int:
        self.tokens.append(int(token))
        self.parents.append(int(parent))
        return len(self.tokens) - 1

    def __len__(self) -> int:
        return len(self.tokens)

    def children_of(self, node: int) -> List[int]:
        return [i for i, p in enumerate(self.parents) if p == node]

    def path_to(self, node: int) -> List[int]:
        """Node indices from a root child down to ``node`` inclusive."""
        path: List[int] = []
        i = node
        while i >= 0:
            path.append(i)
            i = self.parents[i]
        return path[::-1]

    def leaves(self) -> List[int]:
        with_children = set(p for p in self.parents if p >= 0)
        return [i for i in range(len(self.tokens)) if i not in with_children]

    def paths(self) -> List[List[int]]:
        """All root-to-leaf node-index paths (the hyper-token candidates)."""
        return [self.path_to(leaf) for leaf in self.leaves()]


class TreeDrafter:
    """Left-heavy draft tree builder (EAGLE-style static topology).

    The highest-confidence chain is expanded deepest; side branches get
    single-token chains.  Per level, the *correct* continuation appears with
    probability ``level_hit_rate`` — conditional on all previous levels being
    correct — which yields the geometric accepted-length distribution
    speculative decoding engines exhibit in practice.
    """

    def __init__(
        self,
        oracle: NGramOracle,
        depth: int = 4,
        top_branches: int = 4,
        level_hit_rate: float = 0.76,
    ):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.oracle = oracle
        self.depth = depth
        self.top_branches = top_branches
        self.level_hit_rate = level_hit_rate

    def build(self, context: Sequence[int]) -> DraftTree:
        """Grow a tree for the next positions after ``context``."""
        tree = DraftTree()
        ctx = list(context)
        # Level 1: top_branches children of the committed context.
        main = self._level_tokens(ctx, level=0)
        main_idx = -1
        for rank, tok in enumerate(main):
            idx = tree.add(tok, -1)
            if rank == 0:
                main_idx = idx
        # Deeper levels: expand only the main chain; give one side chain a
        # single extension so multiple path lengths exist.
        for level in range(1, self.depth):
            parent_path = tree.path_to(main_idx)
            parent_ctx = ctx + [tree.tokens[i] for i in parent_path]
            toks = self._level_tokens(parent_ctx, level=level, count=2)
            new_main = tree.add(toks[0], main_idx)
            if len(toks) > 1:
                tree.add(toks[1], main_idx)
            main_idx = new_main
        return tree

    def _level_tokens(self, context: List[int], level: int, count: int | None = None) -> List[int]:
        count = count if count is not None else self.top_branches
        hit = self.oracle.uniform_hash(context, f"tree-hit-{level}") < self.level_hit_rate
        alts = self.oracle.alternatives(context, count)
        if hit:
            tokens = [self.oracle.target(context)] + alts[: count - 1]
        else:
            tokens = alts[:count]
        return tokens
