"""Deterministic n-gram oracle language.

The oracle defines the synthetic language both the target LLM and the draft
model approximate: given the last ``order`` tokens it deterministically
produces the "true" next token, a ranked list of plausible alternatives and a
full next-token distribution.  All values derive from a stable hash of
``(seed, context window)``, so the language is reproducible, has long-range
consistency (the same context always continues the same way), and exhibits a
Zipf-like unigram frequency profile, like natural text.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.mathx import softmax
from repro.utils.rng import child_rng, hash_to_uint64

__all__ = ["NGramOracle"]


class NGramOracle:
    """Hash-based deterministic n-gram language model.

    Parameters
    ----------
    vocab_size : size of the synthetic vocabulary.
    order : context window length defining the n-gram.
    seed : language seed; different seeds are unrelated languages.
    zipf_a : Zipf exponent shaping the marginal token distribution.
    """

    def __init__(self, vocab_size: int, order: int = 3, seed: int = 0, zipf_a: float = 1.1):
        if vocab_size < 8:
            raise ValueError("vocab_size must be >= 8")
        if order < 1:
            raise ValueError("order must be >= 1")
        self.vocab_size = vocab_size
        self.order = order
        self.seed = seed
        # Zipf-ranked marginal: token id -> probability rank (a fixed seeded
        # permutation decouples token id from frequency rank).
        ranks = child_rng(seed, "oracle-ranks").permutation(vocab_size)
        weights = 1.0 / np.power(np.arange(1, vocab_size + 1, dtype=np.float64), zipf_a)
        self._marginal = np.empty(vocab_size)
        self._marginal[ranks] = weights / weights.sum()

    # -- internals -----------------------------------------------------------
    # Position bucket width: the language drifts slowly with absolute
    # position, which (a) is how real text behaves and (b) prevents greedy
    # decoding from entering absorbing repetition cycles — a pure n-gram
    # language has fixed points (target(t,t,t) == t) that freeze every
    # hash-coupled decision downstream.
    _DRIFT_BUCKET = 48

    def _window(self, context: Sequence[int]) -> tuple:
        bucket = len(context) // self._DRIFT_BUCKET
        return (bucket,) + tuple(int(t) for t in context[-self.order :])

    def _ctx_rng(self, context: Sequence[int], tag: str) -> np.random.Generator:
        return child_rng(self.seed, "oracle", tag, self._window(context))

    # -- queries ---------------------------------------------------------------
    def target(self, context: Sequence[int]) -> int:
        """The language's true next token for ``context``."""
        rng = self._ctx_rng(context, "target")
        # Sample once from the marginal so frequent tokens recur, like text.
        return int(rng.choice(self.vocab_size, p=self._marginal))

    def alternatives(self, context: Sequence[int], count: int) -> List[int]:
        """Plausible non-target continuations, ranked; disjoint from target."""
        target = self.target(context)
        rng = self._ctx_rng(context, "alts")
        alts: List[int] = []
        seen = {target}
        while len(alts) < count:
            tok = int(rng.choice(self.vocab_size, p=self._marginal))
            if tok not in seen:
                seen.add(tok)
                alts.append(tok)
        return alts

    def offspec_distractor(self, context: Sequence[int], exclude: Sequence[int]) -> int:
        """A plausible token guaranteed outside ``exclude`` (pre-saturation
        argmax that must not collide with speculative tokens)."""
        banned = set(int(t) for t in exclude)
        banned.add(self.target(context))
        rng = self._ctx_rng(context, "offspec")
        while True:
            tok = int(rng.choice(self.vocab_size, p=self._marginal))
            if tok not in banned:
                return tok

    def distribution(self, context: Sequence[int], sharpness: float = 4.0) -> np.ndarray:
        """Full next-token distribution: target-dominated with plausible
        alternatives and a Zipf tail.  ``sharpness`` controls target mass."""
        logits = np.log(self._marginal)
        logits = logits - logits.max()
        target = self.target(context)
        logits = logits.copy()
        # Boosts are absolute (relative to the most frequent token's zero
        # logit) so the target tops the distribution regardless of its own
        # marginal frequency.
        logits[target] = 0.9 * sharpness
        for rank, alt in enumerate(self.alternatives(context, 4)):
            logits[alt] = sharpness * (0.5 - 0.08 * rank)
        return softmax(logits)

    def continuation(self, context: Sequence[int], length: int) -> List[int]:
        """Greedy rollout of ``length`` target tokens."""
        ctx = [int(t) for t in context]
        out: List[int] = []
        for _ in range(length):
            tok = self.target(ctx)
            out.append(tok)
            ctx.append(tok)
        return out

    def uniform_hash(self, context: Sequence[int], tag: str) -> float:
        """Deterministic U[0,1) draw tied to this context (for coupled
        decisions like draft hits and transient spikes)."""
        h = hash_to_uint64(self.seed, tag, self._window(context))
        return (h & 0xFFFFFFFFFFFF) / float(1 << 48)
