"""Semantic LLM substrate.

The engines in :mod:`repro.core` and :mod:`repro.baselines` drive any model
implementing the :class:`~repro.model.base.LayeredLM` interface one decoder
layer at a time.  Two backends are provided:

* :class:`~repro.model.synthetic.SyntheticLayeredLM` — the calibrated
  probability-shift simulator standing in for Llama2 checkpoints (see
  DESIGN.md, "Substitutions").
* :class:`~repro.model.transformer_backend.TransformerLayeredLM` — a real
  numpy transformer behind the same interface.
"""

from repro.model.base import LayeredLM, LMState
from repro.model.difficulty import ExitLayerProcess, ExitProfile
from repro.model.draft import Speculator, TreeDrafter
from repro.model.oracle import NGramOracle
from repro.model.profiles import SemanticProfile, get_profile
from repro.model.synthetic import SyntheticLayeredLM
from repro.model.transformer_backend import TransformerLayeredLM

__all__ = [
    "ExitLayerProcess",
    "ExitProfile",
    "LayeredLM",
    "LMState",
    "NGramOracle",
    "SemanticProfile",
    "Speculator",
    "SyntheticLayeredLM",
    "TransformerLayeredLM",
    "TreeDrafter",
    "get_profile",
]
