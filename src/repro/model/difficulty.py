"""Saturation-depth ("difficulty") process.

Each generated token has a *saturation layer* ``L*`` — the depth at which the
target token's probability shifts upward and becomes the global argmax
(paper Sec. 4.2).  Empirically the paper observes two structural properties
that SpecEE's scheduler exploits:

* **Skewed distribution** (Fig. 10a/c): exits concentrate on a model-specific
  subset of layers; ~50% of layers carry < average probability.
* **Context similarity** (Fig. 11): the exit layer of the current token falls
  within +/-2 layers of one of the previous five tokens' exits ~80% of the
  time, far above the ~32% expected from the stationary distribution alone.

:class:`ExitLayerProcess` *generates* a saturation sequence with both
properties, so the scheduler's statistics are discovered, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.ring import CircularQueue
from repro.utils.rng import child_rng

__all__ = ["ExitProfile", "ExitLayerProcess"]


@dataclass(frozen=True)
class ExitProfile:
    """Stationary saturation-layer distribution for one (model, dataset).

    ``weights[l]`` is the probability that a token saturates at layer ``l``
    (0-based).  Mass at ``n_layers - 1`` means "only the final layer reveals
    the target" (no early exit possible for that token).
    """

    n_layers: int
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != self.n_layers:
            raise ValueError(
                f"weights length {len(self.weights)} != n_layers {self.n_layers}"
            )
        total = float(sum(self.weights))
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"weights must sum to 1, got {total}")

    @classmethod
    def from_params(
        cls,
        n_layers: int,
        peak_frac: float = 0.60,
        spread_frac: float = 0.13,
        right_skew: float = 1.6,
        full_depth_rate: float = 0.10,
        min_layer: int = 4,
        spike_seed: Optional[int] = None,
        spike_strength: float = 0.55,
    ) -> "ExitProfile":
        """Build a skewed, spiky profile from interpretable parameters.

        A split-normal bump centred at ``peak_frac * n_layers`` (wider on the
        deep side by ``right_skew``) is modulated by multiplicative spikes at
        seeded layer positions — reproducing the jagged histograms of
        Fig. 10 — and topped with a ``full_depth_rate`` atom at the last layer.
        """
        layers = np.arange(n_layers, dtype=np.float64)
        peak = peak_frac * n_layers
        spread = max(spread_frac * n_layers, 1.0)
        left = np.exp(-0.5 * ((layers - peak) / spread) ** 2)
        right = np.exp(-0.5 * ((layers - peak) / (spread * right_skew)) ** 2)
        bump = np.where(layers <= peak, left, right)
        bump[:min_layer] = 0.0
        bump[-1] = 0.0  # the final layer gets its own atom below
        if spike_seed is not None:
            rng = child_rng(spike_seed, "exit-spikes")
            spikes = 1.0 + spike_strength * (rng.random(n_layers) - 0.3)
            bump *= np.clip(spikes, 0.2, None)
        if bump.sum() <= 0:
            raise ValueError("profile parameters leave no early-exit mass")
        weights = bump / bump.sum() * (1.0 - full_depth_rate)
        weights[-1] = full_depth_rate
        weights = weights / weights.sum()
        return cls(n_layers=n_layers, weights=tuple(float(w) for w in weights))

    @property
    def mean_layer(self) -> float:
        return float(np.dot(np.arange(self.n_layers), np.asarray(self.weights)))

    def theoretical_vicinity_hit(self, vicinity: int = 2) -> float:
        """Probability two independent draws land within ``vicinity`` layers —
        the paper's ~31.8% 'theoretical hit ratio' baseline (Fig. 11)."""
        w = np.asarray(self.weights)
        hit = 0.0
        for l in range(self.n_layers):
            lo, hi = max(0, l - vicinity), min(self.n_layers, l + vicinity + 1)
            hit += w[l] * w[lo:hi].sum()
        return float(hit)


class ExitLayerProcess:
    """Sequential saturation-layer generator with context similarity.

    With probability ``similarity`` the next saturation layer is drawn near
    (within ``vicinity``) a uniformly chosen exit among the last ``window``
    tokens; otherwise it is a fresh draw from the stationary profile.  Tokens
    that saturate only at the final layer are excluded from anchoring, like
    the paper excludes non-exits from the circular queue.
    """

    def __init__(
        self,
        profile: ExitProfile,
        seed: int = 0,
        similarity: float = 0.72,
        window: int = 5,
        vicinity: int = 2,
    ):
        if not 0.0 <= similarity <= 1.0:
            raise ValueError("similarity must lie in [0, 1]")
        self.profile = profile
        self.similarity = similarity
        self.window = window
        self.vicinity = vicinity
        self._rng = child_rng(seed, "exit-process")
        self._recent = CircularQueue(window)
        self._weights = np.asarray(profile.weights)

    @property
    def n_layers(self) -> int:
        return self.profile.n_layers

    def _fresh(self) -> int:
        return int(self._rng.choice(self.n_layers, p=self._weights))

    def sample(self) -> int:
        """Draw the next token's saturation layer and update history."""
        anchors = [l for l in self._recent if l < self.n_layers - 1]
        if anchors and self._rng.random() < self.similarity:
            anchor = int(self._rng.choice(anchors))
            offset = int(self._rng.integers(-self.vicinity, self.vicinity + 1))
            layer = int(np.clip(anchor + offset, 0, self.n_layers - 1))
            # Respect the profile's floor: never saturate before any mass.
            first_valid = int(np.argmax(self._weights > 0))
            layer = max(layer, first_valid)
        else:
            layer = self._fresh()
        self._recent.push(layer)
        return layer

    def sequence(self, length: int) -> List[int]:
        return [self.sample() for _ in range(length)]

    def reset(self) -> None:
        self._recent.clear()


def measured_vicinity_hit(
    exits: Sequence[int], window: int = 5, vicinity: int = 2,
    exclude_layer: Optional[int] = None,
) -> float:
    """Fraction of exits landing within ``vicinity`` of any of the previous
    ``window`` exits (the Fig. 11 'actual hit ratio' statistic)."""
    hits = 0
    total = 0
    recent = CircularQueue(window)
    for e in exits:
        if len(recent):
            total += 1
            if any(abs(e - r) <= vicinity for r in recent):
                hits += 1
        if exclude_layer is None or e != exclude_layer:
            recent.push(e)
    return hits / total if total else float("nan")
