"""Synthetic layered LM with planted probability shift.

This is the calibrated stand-in for Llama2 checkpoints (see DESIGN.md).  For
every generated token the model draws a *plan*:

* the target token (from the n-gram oracle or a dataset script),
* a saturation layer ``L*`` from the context-similar difficulty process,
* a dominant *off-speculative* distractor that holds the global argmax
  before ``L*``,
* secondary distractors (the oracle's plausible alternatives, which overlap
  the draft model's proposals and give the speculative-token features their
  signal),
* optionally a *transient spike*: for a few layers shortly before ``L*`` a
  plausible alternative — one the draft model likely proposed — briefly
  becomes the global argmax.  This is the only mechanism by which a verified
  early exit can emit a token that differs from the dense model's output,
  i.e. the source of SpecEE's sub-1% accuracy delta in Table 4.

The hidden state after layer ``l`` is a noisy, RMS-normalised mixture of the
planned tokens' embeddings whose coefficients follow logistic schedules
crossing at ``L*`` — reproducing the probability-shift curves of Fig. 5:
the target's probability rises sharply at ``L*`` while other tokens stay low.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SimDims
from repro.model.base import LayeredLM, LMState
from repro.model.difficulty import ExitLayerProcess
from repro.model.oracle import NGramOracle
from repro.model.profiles import SemanticProfile
from repro.utils.mathx import sigmoid
from repro.utils.rng import child_rng, hash_to_uint64

__all__ = ["StepPlan", "SyntheticState", "SyntheticLayeredLM", "TreeStep"]

# How many oracle alternatives are reserved for draft proposals; the dominant
# distractor is drawn outside this set so that, absent a transient spike, the
# pre-saturation argmax can never pass verification.
_ALT_POOL = 8


@dataclass
class StepPlan:
    """Planned dynamics of one generated token."""

    target: int
    saturation_layer: int
    dominant: int
    secondary: Tuple[int, ...]
    transient: Optional[Tuple[int, int, int]]  # (token, first_layer, last_layer)
    noise_key: int

    @property
    def has_transient(self) -> bool:
        return self.transient is not None


class SyntheticState(LMState):
    """LMState plus the difficulty process and the current plan."""

    def __init__(
        self,
        context: List[int],
        prompt_len: int,
        process: ExitLayerProcess,
        script: Optional[List[int]] = None,
    ):
        super().__init__(context=context, prompt_len=prompt_len, script=script)
        self.process = process
        self.plan: Optional[StepPlan] = None
        self.hidden: Optional[np.ndarray] = None
        self.saturation_layers: List[int] = []  # model-internal L* per step
        self.tree: Optional["TreeStep"] = None


@dataclass
class TreeStep:
    """Per-node plans for a tree-verification forward (T3 support).

    ``tokens[i]`` is the draft token at node ``i``; ``parents[i]`` its parent
    node (-1 for children of the committed context).  ``plans[i]`` describes
    the model's *output* at node ``i`` — the token it would generate after
    consuming the path ending at node ``i``.
    """

    tokens: List[int]
    parents: List[int]
    plans: List[StepPlan]
    root_plan: StepPlan
    hidden: Optional[np.ndarray] = None
    layer_cursor: int = -1


class SyntheticLayeredLM(LayeredLM):
    """Layer-resolved synthetic LM (see module docstring)."""

    def __init__(
        self,
        profile: SemanticProfile,
        sim: SimDims | None = None,
        seed: int = 0,
    ):
        self.profile = profile
        self.sim = sim or SimDims()
        self.seed = seed
        d, v = self.sim.hidden_dim, self.sim.vocab_size
        rng = child_rng(seed, "embeddings", profile.name)
        self._emb = rng.normal(0.0, 1.0 / np.sqrt(d), size=(v, d))
        # Normalise rows to unit norm so planted coefficients map directly
        # onto logit magnitudes.
        self._emb /= np.linalg.norm(self._emb, axis=1, keepdims=True)
        self.oracle = NGramOracle(v, order=3, seed=hash_to_uint64(seed, "oracle") & 0x7FFFFFFF)
        self._exit_profile = profile.exit_profile()

    # -- static shape --------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return self.profile.n_layers

    @property
    def hidden_dim(self) -> int:
        return self.sim.hidden_dim

    @property
    def vocab_size(self) -> int:
        return self.sim.vocab_size

    # -- generation ------------------------------------------------------------
    def start(self, prompt: Sequence[int], script: Optional[Sequence[int]] = None) -> SyntheticState:
        prompt = [int(t) % self.vocab_size for t in prompt]
        if not prompt:
            raise ValueError("prompt must contain at least one token")
        process = ExitLayerProcess(
            self._exit_profile,
            seed=hash_to_uint64(self.seed, "process", tuple(prompt)) & 0x7FFFFFFF,
            similarity=self.profile.similarity,
            window=self.profile.window,
            vicinity=self.profile.vicinity,
        )
        return SyntheticState(
            context=list(prompt),
            prompt_len=len(prompt),
            process=process,
            script=[int(t) % self.vocab_size for t in script] if script is not None else None,
        )

    def _plan_for_context(
        self, state: SyntheticState, context: Sequence[int], saturation: int,
        scripted: Optional[int] = None,
    ) -> StepPlan:
        """Build the dynamics plan for the model output after ``context``."""
        target = scripted if scripted is not None else self.oracle.target(context)
        alts = self.oracle.alternatives(context, _ALT_POOL)
        secondary = tuple(alts[1:4])
        transient = None
        window_ok = saturation - 2 > self.profile.min_layer
        if window_ok and self.oracle.uniform_hash(context, "transient") < self.profile.transient_rate:
            first = max(self.profile.min_layer, saturation - 4)
            last = max(first, saturation - 2)
            transient = (alts[0], first, last)
        dominant = self.oracle.offspec_distractor(context, exclude=list(alts) + [target])
        return StepPlan(
            target=int(target),
            saturation_layer=int(saturation),
            dominant=int(dominant),
            secondary=secondary,
            transient=transient,
            noise_key=hash_to_uint64(self.seed, "noise", tuple(context[-6:])) & 0x7FFFFFFF,
        )

    def begin_step(self, state: SyntheticState) -> None:
        scripted = None
        if state.script is not None and state.step_index < len(state.script):
            scripted = state.script[state.step_index]
        saturation = state.process.sample()
        state.plan = self._plan_for_context(state, state.context, saturation, scripted)
        state.saturation_layers.append(state.plan.saturation_layer)
        state.layer_cursor = -1
        state.hidden = None

    # -- hidden dynamics ------------------------------------------------------
    def _coefficients(self, plan: StepPlan, layer: int) -> List[Tuple[int, float]]:
        """(token, coefficient) pairs for the hidden mixture after ``layer``."""
        p = self.profile
        shift = sigmoid(p.shift_sharpness * (layer - plan.saturation_layer + 0.5))
        c_target = p.c_target_lo + (p.c_target_hi - p.c_target_lo) * shift
        c_dom = p.c_dom_hi - (p.c_dom_hi - p.c_dom_lo) * shift
        pairs: List[Tuple[int, float]] = [(plan.target, float(c_target))]
        in_transient = plan.transient is not None and (
            plan.transient[1] <= layer <= plan.transient[2]
        )
        if in_transient:
            assert plan.transient is not None
            pairs.append((plan.transient[0], p.transient_peak))
            pairs.append((plan.dominant, min(float(c_dom), p.transient_dom)))
        else:
            pairs.append((plan.dominant, float(c_dom)))
        for j, tok in enumerate(plan.secondary):
            # Small deterministic per-layer wiggle keeps the feature streams
            # informative rather than constant; the secondary_rise term makes
            # plausible alternatives consolidate after saturation too, so the
            # predictor has signal even on draft-miss steps.
            wiggle = 0.04 * np.sin(0.9 * layer + 1.7 * j)
            pairs.append((tok, p.c_secondary * (1.0 + wiggle) * (1.0 + p.secondary_rise * shift)))
        return pairs

    def _hidden_for(self, plan: StepPlan, layer: int) -> np.ndarray:
        d = self.hidden_dim
        h = np.zeros(d)
        for tok, coeff in self._coefficients(plan, layer):
            h += coeff * self._emb[tok]
        noise_rng = child_rng(plan.noise_key, "layer", layer)
        h += self.profile.noise * noise_rng.standard_normal(d)
        # RMS-normalise (unit-RMS output like a final RMSNorm).
        norm = np.linalg.norm(h) + 1e-12
        return h / norm

    def layer_forward(self, state: SyntheticState, layer: int) -> np.ndarray:
        if state.plan is None:
            raise RuntimeError("begin_step must be called before layer_forward")
        if layer != state.layer_cursor + 1:
            raise ValueError(
                f"layers must run in order: expected {state.layer_cursor + 1}, got {layer}"
            )
        if layer >= self.n_layers:
            raise ValueError(f"layer {layer} out of range (n_layers={self.n_layers})")
        state.hidden = self._hidden_for(state.plan, layer)
        state.layer_cursor = layer
        return state.hidden

    # -- LM head ---------------------------------------------------------------
    def lm_head_full(self, hidden: np.ndarray) -> np.ndarray:
        return self.profile.gain * (self._emb @ hidden)

    def lm_head_slice(self, hidden: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(token_ids, dtype=np.int64)
        return self.profile.gain * (self._emb[ids] @ hidden)

    def lm_head_full_batch(self, hidden: np.ndarray) -> np.ndarray:
        """One ``[B, dim] x [dim, vocab]`` GEMM instead of B GEMVs."""
        return self.profile.gain * (np.asarray(hidden) @ self._emb.T)

    def lm_head_slice_batch(self, hidden: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
        """Batched speculative LM head: one GEMM over the candidate columns."""
        ids = np.asarray(token_ids, dtype=np.int64)
        return self.profile.gain * (np.asarray(hidden) @ self._emb[ids].T)

    def commit(self, state: SyntheticState, token: int, exit_layer: int) -> None:
        if state.plan is None:
            raise RuntimeError("commit without begin_step")
        state.context.append(int(token))
        state.exit_layers.append(int(exit_layer))
        state.step_index += 1
        state.plan = None
        state.hidden = None
        state.layer_cursor = -1

    # -- tree verification mode (T3) --------------------------------------------
    def begin_tree(self, state: SyntheticState, tokens: Sequence[int], parents: Sequence[int]) -> TreeStep:
        """Prepare a verification forward over a draft token tree.

        Saturation layers of tree nodes are anchored to their parent's value
        with the profile's similarity/vicinity — the within-path context
        similarity that makes hyper-token merging effective (Sec. 6.2).
        """
        if len(tokens) != len(parents):
            raise ValueError("tokens and parents must align")
        root_sat = state.process.sample()
        root_plan = self._plan_for_context(state, state.context, root_sat)
        plans: List[StepPlan] = []
        rng = child_rng(self.seed, "tree-sat", tuple(state.context[-4:]), state.step_index)
        sats: List[int] = []
        for i, (tok, par) in enumerate(zip(tokens, parents)):
            parent_sat = root_sat if par < 0 else sats[par]
            if rng.random() < self.profile.similarity:
                offset = int(rng.integers(-self.profile.vicinity, self.profile.vicinity + 1))
                sat = int(np.clip(parent_sat + offset, self.profile.min_layer, self.n_layers - 1))
            else:
                sat = int(rng.choice(self.n_layers, p=np.asarray(self._exit_profile.weights)))
            sats.append(sat)
            path = self._path_context(state, list(tokens), list(parents), i)
            plans.append(self._plan_for_context(state, path, sat))
        tree = TreeStep(tokens=list(map(int, tokens)), parents=list(map(int, parents)),
                        plans=plans, root_plan=root_plan)
        state.tree = tree
        return tree

    def _path_context(
        self, state: SyntheticState, tokens: List[int], parents: List[int], node: int
    ) -> List[int]:
        path: List[int] = []
        i = node
        while i >= 0:
            path.append(tokens[i])
            i = parents[i]
        return state.context + path[::-1]

    def tree_layer_forward(self, state: SyntheticState, layer: int) -> np.ndarray:
        """Hidden states for every tree node after ``layer`` — ``[m, d]``."""
        tree = state.tree
        if tree is None:
            raise RuntimeError("begin_tree must be called before tree_layer_forward")
        if layer != tree.layer_cursor + 1:
            raise ValueError(
                f"tree layers must run in order: expected {tree.layer_cursor + 1}, got {layer}"
            )
        hidden = np.stack([self._hidden_for(plan, layer) for plan in tree.plans])
        tree.hidden = hidden
        tree.layer_cursor = layer
        return hidden

    def root_hidden(self, state: SyntheticState, layer: int) -> np.ndarray:
        """Hidden state of the committed-context position at ``layer``."""
        if state.tree is None:
            raise RuntimeError("no active tree step")
        return self._hidden_for(state.tree.root_plan, layer)

    def end_tree(self, state: SyntheticState, accepted: Sequence[int], exit_layer: int) -> None:
        """Commit the accepted token sequence and clear the tree step."""
        for tok in accepted:
            state.context.append(int(tok))
            state.exit_layers.append(int(exit_layer))
            state.step_index += 1
        state.tree = None

    # -- introspection helpers (used by experiments/tests) --------------------
    def probability_trajectory(
        self, state: SyntheticState, tokens: Sequence[int]
    ) -> np.ndarray:
        """Softmax probability of ``tokens`` (within the full vocabulary) after
        each layer for the *current* step — the Fig. 5 curves."""
        if state.plan is None:
            raise RuntimeError("begin_step must be called first")
        from repro.utils.mathx import softmax

        probs = np.zeros((self.n_layers, len(tokens)))
        for layer in range(self.n_layers):
            h = self._hidden_for(state.plan, layer)
            full = softmax(self.lm_head_full(h))
            probs[layer] = full[np.asarray(tokens, dtype=np.int64)]
        return probs
