"""Synthetic corpus/prompt generation over the oracle language.

Used for predictor training traces, offline scheduling profiling, the tiny
trainable transformer example, and anywhere a stream of in-distribution
token sequences is needed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.model.oracle import NGramOracle
from repro.utils.rng import child_rng

__all__ = ["generate_prompts", "generate_corpus", "sample_reference"]


def generate_prompts(
    n_prompts: int,
    vocab_size: int,
    length_range: tuple[int, int] = (4, 16),
    seed: int = 0,
) -> List[List[int]]:
    """Deterministic batch of prompts with Zipf-flavoured token choice."""
    lo, hi = length_range
    if lo < 1 or hi < lo:
        raise ValueError(f"bad length_range {length_range}")
    rng = child_rng(seed, "prompts")
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = (1.0 / ranks**1.1)
    probs /= probs.sum()
    prompts = []
    for _ in range(n_prompts):
        length = int(rng.integers(lo, hi + 1))
        prompts.append([int(t) for t in rng.choice(vocab_size, size=length, p=probs)])
    return prompts


def generate_corpus(
    oracle: NGramOracle,
    n_sequences: int,
    seq_len: int,
    seed: int = 0,
) -> np.ndarray:
    """``[n_sequences, seq_len]`` token matrix of oracle rollouts (greedy
    continuations from random seeds) — a consistent synthetic language."""
    rng = child_rng(seed, "corpus")
    out = np.empty((n_sequences, seq_len), dtype=np.int64)
    for i in range(n_sequences):
        start = [int(t) for t in rng.integers(0, oracle.vocab_size, size=3)]
        seq = list(start)
        seq.extend(oracle.continuation(start, seq_len))
        out[i] = seq[:seq_len]
    return out


def sample_reference(
    oracle: NGramOracle,
    prompt: List[int],
    length: int,
    match_rate: float,
    seed: int = 0,
    alt_share: float = 0.7,
) -> List[int]:
    """Reference continuation for teacher-forced perplexity.

    Each reference token equals the oracle target with probability
    ``match_rate`` (text the model predicts well), otherwise a plausible
    alternative (``alt_share`` of misses) or a random Zipf token — the
    unpredictable remainder that dominates measured perplexity.
    """
    if not 0.0 <= match_rate <= 1.0:
        raise ValueError("match_rate must lie in [0, 1]")
    rng = child_rng(seed, "reference", tuple(prompt[-4:]))
    ctx = list(prompt)
    out: List[int] = []
    for _ in range(length):
        roll = rng.random()
        if roll < match_rate:
            tok = oracle.target(ctx)
        elif roll < match_rate + (1.0 - match_rate) * alt_share:
            alts = oracle.alternatives(ctx, 3)
            tok = int(alts[int(rng.integers(len(alts)))])
        else:
            tok = int(rng.integers(oracle.vocab_size))
        out.append(tok)
        ctx.append(tok)
    return out
