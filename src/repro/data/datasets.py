"""The nine evaluation workloads (paper Sec. 7.1.3) as calibrated stand-ins.

Each dataset is a generator of items over the synthetic language:

* **classification** items (MMLU, CommonsenseQA, SST-2, GSM8K) carry a gold
  answer among a small option set; the *model's* intended answer is planted
  via the script mechanism so that the dense baseline reproduces the paper's
  Table 4 accuracy, and every engine's measured accuracy then emerges from
  how faithfully it reproduces the dense model's outputs.
* **generation** items (MT-Bench, SUM, QA, Alpaca, HumanEval) carry a
  reference continuation sampled around the oracle with a match rate derived
  from the paper's dense perplexity; perplexity is measured teacher-forced.

Dataset difficulty modifiers perturb the model's semantic profile (deeper
saturation for reasoning-heavy tasks, more transients for free-form ones),
so exit-layer statistics differ across tasks as in Fig. 7 / Table 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.data.corpus import sample_reference
from repro.model.oracle import NGramOracle
from repro.model.profiles import SemanticProfile
from repro.utils.rng import child_rng

__all__ = [
    "DatasetSpec", "DatasetItem", "Calibration", "DATASETS", "CALIBRATION",
    "get_dataset", "make_items", "match_rate_for_ppl",
]

# Anchors of the perplexity -> reference-match-rate mapping: the measured
# cross-entropy of a matched token (~0.1 nats) and of a missed token (~7.5
# nats) on the default substrate.  Calibration is approximate by design —
# EXPERIMENTS.md records paper vs measured.
_CE_HIT = 0.12
_CE_MISS = 8.9


def match_rate_for_ppl(target_ppl: float) -> float:
    """Reference match rate whose mixed cross-entropy yields ``target_ppl``."""
    if target_ppl <= 1.0:
        raise ValueError("perplexity must exceed 1")
    ce = math.log(target_ppl)
    q = (_CE_MISS - ce) / (_CE_MISS - _CE_HIT)
    return float(min(max(q, 0.02), 0.995))


@dataclass(frozen=True)
class DatasetSpec:
    """Shape and difficulty profile of one workload."""

    name: str
    paper_name: str
    kind: str  # "classification" | "generation"
    prompt_len: Tuple[int, int] = (6, 18)
    reasoning_tokens: int = 6       # scripted tokens before the answer (cls)
    answer_tokens: int = 1          # tokens that must all match (cls)
    gen_len: int = 32               # reference length (generation)
    n_items: int = 24
    # Difficulty modifiers applied to the model's semantic profile.
    peak_shift: float = 0.0
    full_depth_delta: float = 0.0
    hit_delta: float = 0.0
    transient_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in {"classification", "generation"}:
            raise ValueError(f"unknown dataset kind {self.kind!r}")

    def apply_to_profile(self, profile: SemanticProfile) -> SemanticProfile:
        """Model profile adjusted for this task's difficulty."""
        return profile.with_overrides(
            peak_frac=min(max(profile.peak_frac + self.peak_shift, 0.15), 0.92),
            full_depth_rate=min(max(profile.full_depth_rate + self.full_depth_delta, 0.01), 0.6),
            draft_hit_rate=min(max(profile.draft_hit_rate + self.hit_delta, 0.05), 0.99),
            transient_rate=profile.transient_rate * self.transient_scale,
        )


@dataclass
class DatasetItem:
    """One evaluation item."""

    prompt: List[int]
    gold: Optional[List[int]] = None        # classification answer tokens
    script: Optional[List[int]] = None      # planted model outputs (cls)
    reference: Optional[List[int]] = None   # teacher-forcing text (gen)
    answer_start: int = 0                   # step index of the first answer token
    options: Optional[List[int]] = None     # the option token set (cls)


@dataclass(frozen=True)
class Calibration:
    """Paper Table 4 dense-baseline anchors."""

    accuracy: Optional[float] = None  # percent
    ppl: Optional[float] = None


DATASETS: Dict[str, DatasetSpec] = {
    "mt_bench": DatasetSpec(
        name="mt_bench", paper_name="MT-Bench", kind="generation", gen_len=40,
        transient_scale=1.2,
    ),
    "sum": DatasetSpec(
        name="sum", paper_name="SUM", kind="generation", gen_len=44,
        peak_shift=0.02, prompt_len=(16, 40),
    ),
    "qa": DatasetSpec(
        name="qa", paper_name="QA", kind="generation", gen_len=28,
        peak_shift=-0.02,
    ),
    "alpaca": DatasetSpec(
        name="alpaca", paper_name="Alpaca", kind="generation", gen_len=36,
        peak_shift=-0.04, hit_delta=0.02,
    ),
    "gsm8k": DatasetSpec(
        name="gsm8k", paper_name="GSM8K", kind="classification",
        reasoning_tokens=10, answer_tokens=2, peak_shift=0.02,
        full_depth_delta=0.02, transient_scale=1.3,
    ),
    "humaneval": DatasetSpec(
        name="humaneval", paper_name="HumanEval", kind="generation", gen_len=40,
        peak_shift=0.03, full_depth_delta=0.02,
    ),
    "mmlu": DatasetSpec(
        name="mmlu", paper_name="MMLU", kind="classification",
        reasoning_tokens=4, peak_shift=0.01,
    ),
    "csqa": DatasetSpec(
        name="csqa", paper_name="CommonsenseQA", kind="classification",
        reasoning_tokens=4, peak_shift=-0.01,
    ),
    "sst2": DatasetSpec(
        name="sst2", paper_name="SST-2", kind="classification",
        reasoning_tokens=2, peak_shift=0.02,
    ),
}

# Dense-model anchors from paper Table 4 ("dense" and "awq" flavors).
# Keys: (model, flavor, dataset).
CALIBRATION: Dict[Tuple[str, str, str], Calibration] = {
    # Llama2-7B
    ("llama2-7b", "dense", "mmlu"): Calibration(accuracy=45.30),
    ("llama2-7b", "dense", "csqa"): Calibration(accuracy=61.43),
    ("llama2-7b", "dense", "sst2"): Calibration(accuracy=86.24),
    ("llama2-7b", "dense", "gsm8k"): Calibration(accuracy=20.62),
    ("llama2-7b", "dense", "sum"): Calibration(ppl=10.09),
    ("llama2-7b", "dense", "mt_bench"): Calibration(ppl=6.49),
    ("llama2-7b", "dense", "alpaca"): Calibration(ppl=6.86),
    ("llama2-7b", "dense", "qa"): Calibration(ppl=7.40),
    ("llama2-7b", "dense", "humaneval"): Calibration(ppl=5.90),
    ("llama2-7b", "awq", "mmlu"): Calibration(accuracy=44.61),
    ("llama2-7b", "awq", "csqa"): Calibration(accuracy=58.31),
    ("llama2-7b", "awq", "sst2"): Calibration(accuracy=84.98),
    ("llama2-7b", "awq", "gsm8k"): Calibration(accuracy=23.16),
    ("llama2-7b", "awq", "sum"): Calibration(ppl=7.95),
    ("llama2-7b", "awq", "mt_bench"): Calibration(ppl=5.80),
    ("llama2-7b", "awq", "alpaca"): Calibration(ppl=10.01),
    ("llama2-7b", "awq", "qa"): Calibration(ppl=7.80),
    ("llama2-7b", "awq", "humaneval"): Calibration(ppl=6.30),
    # Llama2-13B
    ("llama2-13b", "dense", "mmlu"): Calibration(accuracy=53.58),
    ("llama2-13b", "dense", "csqa"): Calibration(accuracy=67.57),
    ("llama2-13b", "dense", "sst2"): Calibration(accuracy=93.00),
    ("llama2-13b", "dense", "gsm8k"): Calibration(accuracy=33.87),
    ("llama2-13b", "dense", "sum"): Calibration(ppl=8.76),
    ("llama2-13b", "dense", "mt_bench"): Calibration(ppl=6.64),
    ("llama2-13b", "dense", "alpaca"): Calibration(ppl=4.93),
    ("llama2-13b", "dense", "qa"): Calibration(ppl=6.60),
    ("llama2-13b", "dense", "humaneval"): Calibration(ppl=5.20),
    ("llama2-13b", "awq", "mmlu"): Calibration(accuracy=49.70),
    ("llama2-13b", "awq", "csqa"): Calibration(accuracy=64.95),
    ("llama2-13b", "awq", "sst2"): Calibration(accuracy=91.74),
    ("llama2-13b", "awq", "gsm8k"): Calibration(accuracy=28.42),
    ("llama2-13b", "awq", "sum"): Calibration(ppl=6.53),
    ("llama2-13b", "awq", "mt_bench"): Calibration(ppl=4.66),
    ("llama2-13b", "awq", "alpaca"): Calibration(ppl=5.81),
    ("llama2-13b", "awq", "qa"): Calibration(ppl=6.90),
    ("llama2-13b", "awq", "humaneval"): Calibration(ppl=5.50),
    # Llama2-70B
    ("llama2-70b", "dense", "mmlu"): Calibration(accuracy=60.74),
    ("llama2-70b", "dense", "csqa"): Calibration(accuracy=76.82),
    ("llama2-70b", "dense", "sst2"): Calibration(accuracy=94.27),
    ("llama2-70b", "dense", "gsm8k"): Calibration(accuracy=55.79),
    ("llama2-70b", "dense", "sum"): Calibration(ppl=5.88),
    ("llama2-70b", "dense", "mt_bench"): Calibration(ppl=4.25),
    ("llama2-70b", "dense", "alpaca"): Calibration(ppl=2.44),
    ("llama2-70b", "dense", "qa"): Calibration(ppl=5.10),
    ("llama2-70b", "dense", "humaneval"): Calibration(ppl=4.00),
    ("llama2-70b", "awq", "mmlu"): Calibration(accuracy=59.53),
    ("llama2-70b", "awq", "csqa"): Calibration(accuracy=71.72),
    ("llama2-70b", "awq", "sst2"): Calibration(accuracy=94.15),
    ("llama2-70b", "awq", "gsm8k"): Calibration(accuracy=55.05),
    ("llama2-70b", "awq", "sum"): Calibration(ppl=6.63),
    ("llama2-70b", "awq", "mt_bench"): Calibration(ppl=4.93),
    ("llama2-70b", "awq", "alpaca"): Calibration(ppl=2.55),
    ("llama2-70b", "awq", "qa"): Calibration(ppl=5.40),
    ("llama2-70b", "awq", "humaneval"): Calibration(ppl=4.30),
}


def get_dataset(name: str) -> DatasetSpec:
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None


def get_calibration(model: str, flavor: str, dataset: str) -> Calibration:
    """Calibration anchor, with sensible fallbacks for unlisted combos."""
    key = (model, flavor, dataset)
    if key in CALIBRATION:
        return CALIBRATION[key]
    fallback = (model, "dense", dataset)
    if fallback in CALIBRATION:
        return CALIBRATION[fallback]
    spec = get_dataset(dataset)
    if spec.kind == "classification":
        return Calibration(accuracy=60.0)
    return Calibration(ppl=7.0)


def make_items(
    spec: DatasetSpec,
    oracle: NGramOracle,
    model: str,
    flavor: str = "dense",
    n_items: Optional[int] = None,
    seed: int = 0,
) -> List[DatasetItem]:
    """Generate the item list for (dataset, model, flavor)."""
    n = n_items if n_items is not None else spec.n_items
    calib = get_calibration(model, flavor, spec.name)
    rng = child_rng(seed, "dataset", spec.name, model, flavor)
    items: List[DatasetItem] = []
    vocab = oracle.vocab_size
    for i in range(n):
        p_lo, p_hi = spec.prompt_len
        prompt = [int(t) for t in rng.integers(8, vocab, size=int(rng.integers(p_lo, p_hi + 1)))]
        if spec.kind == "classification":
            if calib.accuracy is None:
                raise ValueError(f"{spec.name} lacks an accuracy calibration")
            # Fixed option set per item; gold drawn uniformly.  Options avoid
            # the first 8 ids (reserved for specials by the tokenizer).
            options = sorted(int(t) + 8 for t in rng.choice(vocab - 8, size=4, replace=False))
            gold = [int(rng.choice(options)) for _ in range(spec.answer_tokens)]
            correct = rng.random() < calib.accuracy / 100.0
            answer = list(gold)
            if not correct:
                # The model's intended answer deviates on >=1 answer token.
                flip = int(rng.integers(spec.answer_tokens))
                wrong = [o for o in options if o != gold[flip]]
                answer[flip] = int(rng.choice(wrong))
            script = oracle.continuation(prompt, spec.reasoning_tokens) + answer
            items.append(DatasetItem(
                prompt=prompt, gold=gold, script=script,
                answer_start=spec.reasoning_tokens, options=options,
            ))
        else:
            if calib.ppl is None:
                raise ValueError(f"{spec.name} lacks a perplexity calibration")
            reference = sample_reference(
                oracle, prompt, spec.gen_len,
                match_rate=match_rate_for_ppl(calib.ppl),
                seed=seed + 1000 + i,
            )
            items.append(DatasetItem(prompt=prompt, reference=reference))
    return items
