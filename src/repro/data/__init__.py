"""Workloads: synthetic tokenizer, corpus generator, and the nine dataset
stand-ins used by the paper's evaluation (Sec. 7.1.3)."""

from repro.data.corpus import generate_corpus, generate_prompts
from repro.data.datasets import (
    CALIBRATION,
    DATASETS,
    Calibration,
    DatasetItem,
    DatasetSpec,
    get_dataset,
    make_items,
)
from repro.data.tokenizer import SyntheticTokenizer

__all__ = [
    "CALIBRATION",
    "Calibration",
    "DATASETS",
    "DatasetItem",
    "DatasetSpec",
    "SyntheticTokenizer",
    "generate_corpus",
    "generate_prompts",
    "get_dataset",
    "make_items",
]
