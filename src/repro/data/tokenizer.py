"""Deterministic word-level tokenizer over the synthetic vocabulary.

The simulation vocabulary is abstract token ids; this tokenizer gives them a
human-readable surface form (``w042``-style words plus a small set of
punctuation/control tokens) so examples can print text, and maps arbitrary
input words back to ids by stable hashing — the same word always tokenizes
to the same id.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.utils.rng import hash_to_uint64

__all__ = ["SyntheticTokenizer"]

_SPECIALS = ["<bos>", "<eos>", "<pad>", ".", ",", "?", "!"]


class SyntheticTokenizer:
    """Bidirectional id <-> word mapping with hash fallback for OOV words."""

    def __init__(self, vocab_size: int = 512, seed: int = 0):
        if vocab_size <= len(_SPECIALS):
            raise ValueError(f"vocab_size must exceed {len(_SPECIALS)}")
        self.vocab_size = vocab_size
        self.seed = seed
        self._id_to_word: List[str] = list(_SPECIALS)
        width = len(str(vocab_size))
        for i in range(len(_SPECIALS), vocab_size):
            self._id_to_word.append(f"w{i:0{width}d}")
        self._word_to_id: Dict[str, int] = {w: i for i, w in enumerate(self._id_to_word)}

    @property
    def bos_id(self) -> int:
        return 0

    @property
    def eos_id(self) -> int:
        return 1

    def id_to_word(self, token_id: int) -> str:
        return self._id_to_word[int(token_id) % self.vocab_size]

    def word_to_id(self, word: str) -> int:
        known = self._word_to_id.get(word)
        if known is not None:
            return known
        # OOV words hash to a stable id outside the specials range.
        base = len(_SPECIALS)
        return base + hash_to_uint64(self.seed, "oov", word) % (self.vocab_size - base)

    def encode(self, text: str, add_bos: bool = False) -> List[int]:
        ids = [self.bos_id] if add_bos else []
        ids.extend(self.word_to_id(w) for w in text.split())
        return ids

    def decode(self, token_ids: Sequence[int]) -> str:
        return " ".join(self.id_to_word(t) for t in token_ids)

    def roundtrips(self, text: str) -> bool:
        """Whether every word of ``text`` is in-vocabulary (exact roundtrip)."""
        return all(w in self._word_to_id for w in text.split())
