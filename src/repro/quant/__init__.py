"""Quantization: group-wise activation-aware int4 (AWQ stand-in)."""

from repro.quant.awq import AWQQuantizer, QuantizedLinear, quantize_groupwise

__all__ = ["AWQQuantizer", "QuantizedLinear", "quantize_groupwise"]
