"""Activation-aware group-wise int4 weight quantization (AWQ, Lin et al.).

AWQ's observation: a small fraction of weight channels matters far more than
the rest, and *activation magnitudes* identify them.  Scaling salient
channels up before quantization (and folding the inverse scale into the
activation path) preserves them through the 4-bit grid.  This module
implements the full pipeline on numpy arrays:

* :func:`quantize_groupwise` — symmetric round-to-nearest int4 with per-group
  scales (the storage format, ~0.56 bytes/param at group size 128),
* :class:`AWQQuantizer` — grid search over the activation-aware scaling
  exponent alpha minimising reconstruction error on calibration activations,
* :class:`QuantizedLinear` — a drop-in linear that stores int4 + scales and
  dequantizes on the fly.

The hardware layer prices quantized engines with
``weight_bytes_per_param=0.56``; tests verify the error bounds and that
activation-aware scaling beats plain RTN on skewed activations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["quantize_groupwise", "dequantize_groupwise", "AWQQuantizer", "QuantizedLinear"]


def quantize_groupwise(
    weight: np.ndarray, group_size: int = 128, n_bits: int = 4
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric round-to-nearest quantization with per-group scales.

    Groups run along the input dimension (axis 0) of a ``[in, out]`` weight.
    Returns ``(q, scales)`` with ``q`` int8-storing the signed levels and
    ``scales`` shaped ``[n_groups, out]``.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ValueError("weight must be 2-D [in, out]")
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    n_in, n_out = weight.shape
    n_groups = (n_in + group_size - 1) // group_size
    q = np.zeros_like(weight, dtype=np.int8)
    scales = np.zeros((n_groups, n_out))
    qmax = 2 ** (n_bits - 1) - 1
    for g in range(n_groups):
        lo, hi = g * group_size, min((g + 1) * group_size, n_in)
        block = weight[lo:hi]
        max_abs = np.max(np.abs(block), axis=0)
        scale = np.where(max_abs > 0, max_abs / qmax, 1.0)
        q[lo:hi] = np.clip(np.round(block / scale), -qmax - 1, qmax).astype(np.int8)
        scales[g] = scale
    return q, scales


def dequantize_groupwise(
    q: np.ndarray, scales: np.ndarray, group_size: int = 128
) -> np.ndarray:
    """Inverse of :func:`quantize_groupwise`."""
    q = np.asarray(q, dtype=np.float64)
    n_in = q.shape[0]
    out = np.empty_like(q)
    for g in range(scales.shape[0]):
        lo, hi = g * group_size, min((g + 1) * group_size, n_in)
        out[lo:hi] = q[lo:hi] * scales[g]
    return out


@dataclass
class QuantizedLinear:
    """Int4 weight storage with on-the-fly dequantization.

    ``input_scale`` holds the AWQ channel scaling folded into the activation
    path (``y = (x / s) @ W_q_dequant_scaled``).
    """

    q: np.ndarray
    scales: np.ndarray
    group_size: int
    input_scale: Optional[np.ndarray] = None

    @property
    def in_features(self) -> int:
        return self.q.shape[0]

    @property
    def out_features(self) -> int:
        return self.q.shape[1]

    @property
    def storage_bytes(self) -> float:
        """4-bit weights plus fp16 group scales."""
        return self.q.size * 0.5 + self.scales.size * 2.0

    def dequantized(self) -> np.ndarray:
        w = dequantize_groupwise(self.q, self.scales, self.group_size)
        if self.input_scale is not None:
            w = w * self.input_scale[:, None]
        return w

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.input_scale is not None:
            x = x / self.input_scale
        w = dequantize_groupwise(self.q, self.scales, self.group_size)
        return x @ w


class AWQQuantizer:
    """Activation-aware quantizer: searches the saliency exponent alpha.

    Per AWQ, channel scales are ``s_c = mean(|activation_c|)^alpha`` with
    alpha chosen on a small grid to minimise output reconstruction MSE over
    the calibration set.
    """

    def __init__(self, group_size: int = 128, n_bits: int = 4,
                 alpha_grid: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)):
        self.group_size = group_size
        self.n_bits = n_bits
        self.alpha_grid = alpha_grid

    def quantize(self, weight: np.ndarray, calibration: np.ndarray) -> QuantizedLinear:
        """Quantize ``weight`` [in, out] using ``calibration`` [n, in]."""
        weight = np.asarray(weight, dtype=np.float64)
        calibration = np.asarray(calibration, dtype=np.float64)
        if calibration.ndim != 2 or calibration.shape[1] != weight.shape[0]:
            raise ValueError(
                f"calibration shape {calibration.shape} does not match weight "
                f"input dim {weight.shape[0]}"
            )
        act_magnitude = np.mean(np.abs(calibration), axis=0) + 1e-8
        reference = calibration @ weight
        best: Optional[QuantizedLinear] = None
        best_err = np.inf
        for alpha in self.alpha_grid:
            scale = act_magnitude**alpha
            scale = scale / np.exp(np.mean(np.log(scale)))  # normalise geomean to 1
            q, scales = quantize_groupwise(weight * scale[:, None],
                                           self.group_size, self.n_bits)
            candidate = QuantizedLinear(q=q, scales=scales,
                                        group_size=self.group_size, input_scale=scale)
            err = float(np.mean((reference - candidate(calibration)) ** 2))
            if err < best_err:
                best_err = err
                best = candidate
        assert best is not None
        return best

    @staticmethod
    def reconstruction_error(weight: np.ndarray, quantized: QuantizedLinear,
                             activations: np.ndarray) -> float:
        """Mean squared output error on ``activations``."""
        reference = np.asarray(activations) @ np.asarray(weight)
        return float(np.mean((reference - quantized(activations)) ** 2))
