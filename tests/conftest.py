"""Shared session-scoped rig fixtures.

Building a rig trains predictor banks (and, for the trained-transformer rig,
the whole LayerSkip recipe), so test files must not rebuild them
independently: the fixtures here construct each flavour once per session and
every module's ``rig`` fixture aliases one of them.  The harness's in-process
asset caches already dedupe the *training* cost; these fixtures also dedupe
the rig objects themselves so engines built from them share speculator and
bank instances.
"""

import pytest

from repro.eval.harness import (
    build_rig,
    build_trained_transformer_rig,
    build_transformer_rig,
)
from repro.nn.transformer import TransformerConfig

#: Geometry shared by every real-transformer serving test: small enough that
#: a full serving run is milliseconds, deep enough that exits/preemption have
#: room to act.
SMALL_TRANSFORMER_CFG = TransformerConfig(vocab_size=128, dim=32, n_layers=4,
                                          n_heads=4, intermediate_dim=48,
                                          max_positions=256)


@pytest.fixture(scope="session")
def small_transformer_rig():
    """Random-weight real-transformer rig (undistilled NGram draft)."""
    return build_transformer_rig(SMALL_TRANSFORMER_CFG, seed=0, max_tokens=256)


@pytest.fixture(scope="session")
def control_rig():
    """Synthetic vicuna-7b rig the speculation-control tests drive."""
    return build_rig("vicuna-7b", seed=0, train_prompts=4, train_tokens=20,
                     predictor_hidden=32, epochs=4)


@pytest.fixture(scope="session")
def trained_transformer_rig():
    """LayerSkip-trained rig: trained weights, distilled draft,
    ``kv_fill="propagate"`` backend.  Expensive (runs the full
    ``repro.training`` loop once per session) — tests using it should carry
    the ``slow`` marker."""
    return build_trained_transformer_rig()
