"""Tests for layers (autograd vs numpy paths) and rotary embeddings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.autograd import Tensor
from repro.nn.layers import Embedding, Linear, RMSNorm, SwiGLU
from repro.nn.rope import RotaryEmbedding, apply_rope


class TestLinear:
    def test_paths_agree(self):
        rng = np.random.default_rng(0)
        layer = Linear(6, 4, rng)
        x = rng.standard_normal((3, 6))
        assert np.allclose(layer(Tensor(x)).data, layer.forward_np(x))

    def test_no_bias(self):
        layer = Linear(4, 2, np.random.default_rng(0), bias=False)
        assert layer.bias is None
        assert np.allclose(layer.forward_np(np.zeros((1, 4))), 0.0)

    def test_parameters_collected(self):
        layer = Linear(4, 2, np.random.default_rng(0))
        assert len(layer.parameters()) == 2


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, np.random.default_rng(0))
        ids = np.array([1, 1, 9])
        out = emb.forward_np(ids)
        assert out.shape == (3, 4)
        assert np.array_equal(out[0], out[1])

    def test_paths_agree(self):
        emb = Embedding(10, 4, np.random.default_rng(0))
        ids = np.array([[0, 3], [2, 5]])
        assert np.allclose(emb(ids).data, emb.forward_np(ids))


class TestRMSNorm:
    def test_unit_rms_output(self):
        norm = RMSNorm(8)
        x = np.random.default_rng(0).standard_normal((5, 8)) * 10
        out = norm.forward_np(x)
        rms = np.sqrt(np.mean(out**2, axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_paths_agree(self):
        norm = RMSNorm(8)
        x = np.random.default_rng(1).standard_normal((3, 8))
        assert np.allclose(norm(Tensor(x)).data, norm.forward_np(x), atol=1e-9)

    def test_scale_applied(self):
        norm = RMSNorm(4)
        norm.weight.data[:] = 2.0
        out = norm.forward_np(np.ones((1, 4)))
        assert np.allclose(out, 2.0)


class TestSwiGLU:
    def test_paths_agree(self):
        rng = np.random.default_rng(2)
        ffn = SwiGLU(6, 12, rng)
        x = rng.standard_normal((4, 6))
        assert np.allclose(ffn(Tensor(x)).data, ffn.forward_np(x), atol=1e-9)

    def test_zero_input_zero_output(self):
        ffn = SwiGLU(4, 8, np.random.default_rng(0))
        assert np.allclose(ffn.forward_np(np.zeros((1, 4))), 0.0)


class TestRope:
    def test_rejects_odd_head_dim(self):
        with pytest.raises(ValueError):
            RotaryEmbedding(7)

    def test_position_zero_identity(self):
        rope = RotaryEmbedding(8, max_positions=16)
        cos, sin = rope.tables_for(np.array([0]))
        x = np.random.default_rng(0).standard_normal((1, 8))
        assert np.allclose(apply_rope(x, cos, sin), x)

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=20, deadline=None)
    def test_norm_preserved(self, pos):
        rope = RotaryEmbedding(16, max_positions=64)
        cos, sin = rope.tables_for(np.array([pos]))
        x = np.random.default_rng(pos).standard_normal((1, 16))
        out = apply_rope(x, cos, sin)
        assert np.linalg.norm(out) == pytest.approx(np.linalg.norm(x))

    def test_relative_property(self):
        """Dot products of rotated q/k depend only on relative offset."""
        rope = RotaryEmbedding(8, max_positions=128)
        rng = np.random.default_rng(3)
        q = rng.standard_normal(8)
        k = rng.standard_normal(8)

        def score(pq, pk):
            cq, sq = rope.tables_for(np.array([pq]))
            ck, sk = rope.tables_for(np.array([pk]))
            out = apply_rope(q[None], cq, sq) @ apply_rope(k[None], ck, sk).T
            return float(out[0, 0])

        assert score(5, 3) == pytest.approx(score(25, 23), abs=1e-9)

    def test_table_overflow_raises(self):
        rope = RotaryEmbedding(8, max_positions=4)
        with pytest.raises(ValueError):
            rope.tables_for(np.array([4]))
