"""Tests for the fast MLP classifier and the optimizers."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.mlp import MLPClassifier
from repro.nn.optim import SGD, Adam


def make_blob_data(n=600, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 12))
    y = (x[:, 0] + 0.5 * x[:, 1] - 0.3 * x[:, 2] > 0).astype(float)
    return x, y


class TestMLPClassifier:
    def test_learns_separable_data(self):
        x, y = make_blob_data()
        clf = MLPClassifier(12, hidden_dim=64, depth=2, seed=0)
        report = clf.fit(x, y, epochs=40, lr=3e-3)
        assert report.train_accuracy > 0.95

    def test_loss_monotone_trend(self):
        x, y = make_blob_data()
        clf = MLPClassifier(12, hidden_dim=32, depth=2, seed=1)
        report = clf.fit(x, y, epochs=20, lr=3e-3)
        assert report.losses[-1] < report.losses[0]

    def test_depth_one_is_logistic_regression(self):
        x, y = make_blob_data()
        clf = MLPClassifier(12, hidden_dim=64, depth=1, seed=0)
        assert len(clf.weights) == 1
        report = clf.fit(x, y, epochs=40, lr=1e-2)
        assert report.train_accuracy > 0.9

    def test_forward_single_vs_batch(self):
        clf = MLPClassifier(4, hidden_dim=8, seed=0)
        x = np.random.default_rng(0).standard_normal((3, 4))
        batch = clf.forward(x)
        singles = [clf.forward(row) for row in x]
        assert np.allclose(batch, singles)

    def test_probability_range(self):
        clf = MLPClassifier(4, hidden_dim=8, seed=0)
        probs = clf.forward(np.random.default_rng(1).standard_normal((50, 4)) * 100)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_class_balance_handles_skew(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((500, 4))
        y = (x[:, 0] > 1.6).astype(float)  # ~5% positives
        clf = MLPClassifier(4, hidden_dim=32, seed=0)
        clf.fit(x, y, epochs=40, lr=3e-3, class_balance=True)
        recall = np.mean(clf.predict(x[y == 1]))
        assert recall > 0.6

    def test_state_dict_roundtrip(self):
        x, y = make_blob_data(200)
        clf = MLPClassifier(12, hidden_dim=16, seed=0)
        clf.fit(x, y, epochs=5)
        clone = MLPClassifier.from_state_dict(clf.state_dict())
        assert np.allclose(clf.forward(x), clone.forward(x))

    def test_rejects_bad_shapes(self):
        clf = MLPClassifier(4)
        with pytest.raises(ValueError):
            clf.fit(np.zeros((3, 4)), np.zeros(5))
        with pytest.raises(ValueError):
            clf.fit(np.zeros((0, 4)), np.zeros(0))

    def test_n_params_formula(self):
        clf = MLPClassifier(12, hidden_dim=512, depth=2)
        assert clf.n_params == 12 * 512 + 512 + 512 * 1 + 1


class TestOptimizers:
    def _quadratic(self, opt_cls, **kwargs):
        t = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = opt_cls([t], **kwargs)
        for _ in range(150):
            opt.zero_grad()
            (t * t).sum().backward()
            opt.step()
        return np.abs(t.data).max()

    def test_sgd_converges(self):
        assert self._quadratic(SGD, lr=0.1) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic(SGD, lr=0.05, momentum=0.9) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic(Adam, lr=0.2) < 1e-2

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
