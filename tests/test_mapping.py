"""Tests for T3 machinery: grouped GEMM, greedy acceptance, hyper-tokens."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.grouped_gemm import GroupSpec, grouped_gemm, tree_children_logits
from repro.mapping.hyper_token import HyperToken, aggregate_path_logits, merged_mapping
from repro.mapping.tree import greedy_accept
from repro.model.draft import DraftTree


class TestGroupedGemm:
    def test_matches_naive_loop(self):
        rng = np.random.default_rng(0)
        acts = rng.standard_normal((5, 8))
        weight = rng.standard_normal((8, 20))
        groups = [GroupSpec(row=0, columns=(1, 3)),
                  GroupSpec(row=2, columns=(0, 5, 9, 19)),
                  GroupSpec(row=4, columns=(7,))]
        out = grouped_gemm(acts, weight, groups, block=4)
        for g, o in zip(groups, out):
            expected = acts[g.row] @ weight[:, list(g.columns)]
            assert np.allclose(o, expected)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=16))
    @settings(max_examples=25, deadline=None)
    def test_block_size_irrelevant_to_result(self, n_groups, block):
        rng = np.random.default_rng(n_groups * 100 + block)
        acts = rng.standard_normal((4, 6))
        weight = rng.standard_normal((6, 12))
        groups = [GroupSpec(row=i % 4, columns=tuple(
            int(c) for c in rng.choice(12, size=rng.integers(1, 5), replace=False)))
            for i in range(n_groups)]
        base = grouped_gemm(acts, weight, groups, block=1)
        other = grouped_gemm(acts, weight, groups, block=block)
        for a, b in zip(base, other):
            assert np.allclose(a, b)

    def test_empty_groups(self):
        assert grouped_gemm(np.zeros((1, 2)), np.zeros((2, 3)), []) == []

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            grouped_gemm(np.zeros((1, 3)), np.zeros((2, 3)), [GroupSpec(0, (0,))])

    def test_rejects_empty_columns(self):
        with pytest.raises(ValueError):
            GroupSpec(row=0, columns=())

    def test_tree_children_logits_skips_leaves(self):
        rng = np.random.default_rng(1)
        hidden = rng.standard_normal((3, 4))
        head = rng.standard_normal((4, 10))
        out = tree_children_logits(hidden, head, [[1, 2], [], [5]])
        assert out[1].size == 0
        assert np.allclose(out[0], hidden[0] @ head[:, [1, 2]])
        assert np.allclose(out[2], hidden[2] @ head[:, [5]])


class TestGreedyAccept:
    def _tree(self):
        tree = DraftTree()
        a = tree.add(10, -1)   # root children
        b = tree.add(11, -1)
        c = tree.add(20, a)    # a's child
        d = tree.add(30, c)    # chain
        return tree, (a, b, c, d)

    def test_full_chain_accepted(self):
        tree, (a, b, c, d) = self._tree()
        outputs = [20, 0, 30, 40]  # node a predicts 20, c predicts 30, d predicts 40
        res = greedy_accept(tree, root_output=10, node_outputs=outputs)
        assert res.accepted_tokens == [10, 20, 30]
        assert res.bonus_token == 40
        assert res.tokens == [10, 20, 30, 40]

    def test_no_match_gives_bonus_only(self):
        tree, _ = self._tree()
        res = greedy_accept(tree, root_output=99, node_outputs=[0, 0, 0, 0])
        assert res.accepted_tokens == []
        assert res.bonus_token == 99

    def test_partial_chain(self):
        tree, _ = self._tree()
        res = greedy_accept(tree, root_output=11, node_outputs=[0, 55, 0, 0])
        assert res.accepted_tokens == [11]
        assert res.bonus_token == 55

    def test_rejects_misaligned_outputs(self):
        tree, _ = self._tree()
        with pytest.raises(ValueError):
            greedy_accept(tree, 0, [1, 2])


class TestHyperToken:
    def test_merged_mapping_one_per_leaf(self):
        tree = DraftTree()
        a = tree.add(1, -1)
        b = tree.add(2, -1)
        c = tree.add(3, a)
        hypers = merged_mapping(tree)
        assert len(hypers) == 2
        assert {h.tokens for h in hypers} == {(2,), (1, 3)}

    def test_hashable(self):
        h = HyperToken(nodes=(0, 1), tokens=(5, 6))
        assert h in {h}

    def test_aggregation_is_bottleneck(self):
        """The least-saturated path member gates the aggregate."""
        per_node = [np.array([10.0, 2.0]), np.array([1.5, 1.0])]
        hyper = HyperToken(nodes=(0, 1), tokens=(5, 6))
        agg = aggregate_path_logits(per_node, hyper, k=2)
        assert agg[0] == pytest.approx(1.5)  # node 1 bottlenecks
        strong = aggregate_path_logits([np.array([10.0, 2.0]), np.array([9.0, 1.0])],
                                       hyper, k=2)
        assert strong[0] == pytest.approx(9.0)

    def test_aggregation_pads_with_min(self):
        per_node = [np.array([4.0])]
        hyper = HyperToken(nodes=(0,), tokens=(5,))
        agg = aggregate_path_logits(per_node, hyper, k=3)
        assert np.allclose(agg, [4.0, 4.0, 4.0])

    def test_leaves_skipped_root_included(self):
        per_node = [np.empty(0)]
        hyper = HyperToken(nodes=(0,), tokens=(5,))
        agg = aggregate_path_logits(per_node, hyper, k=2,
                                    include_root=np.array([3.0, 1.0]))
        assert np.allclose(agg, [3.0, 1.0])

    def test_no_contributors_raises(self):
        with pytest.raises(ValueError):
            aggregate_path_logits([np.empty(0)], HyperToken((0,), (5,)), k=2)
