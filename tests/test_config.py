"""Tests for model/engine configuration."""

import pytest

from repro.config import MODELS, ModelSpec, SimDims, SpecEEConfig, get_model_spec


class TestModelSpec:
    def test_llama2_7b_parameter_count(self):
        spec = get_model_spec("llama2-7b")
        assert 6.4e9 < spec.total_params < 7.1e9

    def test_llama2_70b_uses_gqa(self):
        spec = get_model_spec("llama2-70b")
        assert spec.kv_heads == 8
        assert spec.head_dim == 128

    def test_weight_bytes_fp16(self):
        spec = get_model_spec("llama2-7b")
        assert spec.weight_bytes == pytest.approx(spec.total_params * 2.0)

    def test_kv_bytes_per_token(self):
        spec = get_model_spec("llama2-7b")
        # 2 (K and V) x layers x hidden x 2 bytes.
        assert spec.kv_bytes_per_token() == 2 * 32 * 4096 * 2

    def test_with_dtype(self):
        spec = get_model_spec("llama2-7b").with_dtype_bytes(0.5)
        assert spec.weight_bytes == pytest.approx(spec.total_params * 0.5)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model_spec("gpt-5")

    def test_registry_members(self):
        assert {"llama2-7b", "llama2-13b", "llama2-70b", "vicuna-7b"} <= set(MODELS)


class TestSimDims:
    def test_defaults(self):
        dims = SimDims()
        assert dims.hidden_dim == 64 and dims.vocab_size == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            SimDims(hidden_dim=4)
        with pytest.raises(ValueError):
            SimDims(vocab_size=8)


class TestSpecEEConfig:
    def test_defaults_match_paper(self):
        cfg = SpecEEConfig()
        assert cfg.num_speculative == 4
        assert cfg.predictor_hidden == 512
        assert cfg.predictor_layers == 2
        assert cfg.exit_threshold == 0.5
        assert cfg.context_window == 5
        assert cfg.layer_vicinity == 2
        assert cfg.feature_dim == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            SpecEEConfig(num_speculative=0)
        with pytest.raises(ValueError):
            SpecEEConfig(exit_threshold=1.0)
        with pytest.raises(ValueError):
            SpecEEConfig(scheduler="nope")
