"""Multi-device sharded serving: cluster/link validation, sharded-event
accounting invariants, cluster pricing physics, per-stage paged KV, and the
token-identity guarantee for sync and async engines under TP/PP."""

import numpy as np
import pytest

from repro.config import get_model_spec
from repro.distributed import (
    ClusterLatencyModel,
    ClusterSpec,
    LinkSpec,
    ShardedPagedKV,
    make_cluster,
    make_replica_clusters,
    record_decode_batches,
    record_prefill_allreduce,
    record_tick_bubble,
    shard_serving_ledger,
)
from repro.eval.harness import build_rig
from repro.hardware.devices import get_device
from repro.hardware.latency import LatencyModel
from repro.hardware.ledger import CostLedger, Event
from repro.serving import Request, poisson_trace

# Same asset-cache key as the other serving tests, so training happens once.
RIG_KWARGS = dict(train_prompts=6, train_tokens=30, predictor_hidden=128, epochs=10)
SPEC = get_model_spec("llama2-7b")


@pytest.fixture(scope="module")
def rig():
    return build_rig("llama2-7b", **RIG_KWARGS)


# ---------------------------------------------------------------------------
# topology validation
# ---------------------------------------------------------------------------
class TestClusterSpec:
    def test_make_cluster_shapes(self):
        cluster = make_cluster("a100-80g", tp=2, pp=3)
        assert cluster.world_size == 6
        assert len(cluster.devices) == 6
        assert len(cluster.stage_devices(1)) == 2
        assert not cluster.is_single
        assert make_cluster(tp=1, pp=1).is_single

    def test_bad_degrees_rejected(self):
        with pytest.raises(ValueError, match="tp and pp"):
            make_cluster(tp=0)
        device = get_device("a100-80g")
        with pytest.raises(ValueError, match="devices"):
            ClusterSpec(devices=(device,), tp=2, pp=1)

    def test_heterogeneous_rejected(self):
        a100, rtx = get_device("a100-80g"), get_device("rtx4090")
        with pytest.raises(ValueError, match="heterogeneous"):
            ClusterSpec(devices=(a100, rtx), tp=2, pp=1)

    def test_micro_batches_below_pp_rejected(self):
        with pytest.raises(ValueError, match="micro_batches"):
            make_cluster(tp=1, pp=4, micro_batches=2)

    def test_link_validation(self):
        with pytest.raises(ValueError, match="bw_gbps"):
            LinkSpec(name="bad", bw_gbps=0.0, latency_us=1.0)
        with pytest.raises(ValueError, match="latency_us"):
            LinkSpec(name="bad", bw_gbps=10.0, latency_us=-1.0)

    def test_stage_layers_partition(self):
        cluster = make_cluster(tp=1, pp=3)
        ranges = cluster.stage_layers(32)
        assert [r.start for r in ranges] == [0, 11, 22]
        assert sum(len(r) for r in ranges) == 32
        flat = [l for r in ranges for l in r]
        assert flat == list(range(32))
        assert cluster.layers_per_stage(32) == 11
        with pytest.raises(ValueError, match="split"):
            cluster.stage_layers(2)

    def test_micro_batch_count_bounds(self):
        cluster = make_cluster(tp=1, pp=4)
        assert cluster.micro_batch_count(8) == 4
        assert cluster.micro_batch_count(2) == 2  # never more than sequences
        assert cluster.micro_batch_count(0) == 1
        wide = make_cluster(tp=1, pp=2, micro_batches=6)
        assert wide.micro_batch_count(8) == 6

    def test_replica_clusters_are_distinct(self):
        clusters = make_replica_clusters(3, "a100-80g", tp=2, pp=2)
        assert len(clusters) == 3
        assert all(c.tp == 2 and c.pp == 2 for c in clusters)
        assert len({id(c) for c in clusters}) == 3  # one spec per replica

    def test_replica_clusters_single_device_is_none(self):
        assert make_replica_clusters(4, "a100-80g", tp=1, pp=1) == [None] * 4
        with pytest.raises(ValueError, match="n_replicas"):
            make_replica_clusters(0, "a100-80g", tp=2)


# ---------------------------------------------------------------------------
# sharded event accounting
# ---------------------------------------------------------------------------
class TestShardingEvents:
    BATCHES = [5, 5, 4, 2, 1]  # early-exit style depth profile

    def test_single_device_form_unchanged(self):
        tick = CostLedger()
        record_decode_batches(tick, self.BATCHES, None)
        assert tick.calls(Event.BATCH_DECODER_LAYER) == len(self.BATCHES)
        assert tick.units(Event.BATCH_DECODER_LAYER) == sum(self.BATCHES)
        assert tick.calls(Event.ALLREDUCE) == 0

    def test_units_conserved_under_sharding(self):
        for tp, pp in [(2, 1), (1, 2), (2, 2), (4, 2)]:
            tick = CostLedger()
            record_decode_batches(tick, self.BATCHES, make_cluster(tp=tp, pp=pp))
            assert tick.units(Event.BATCH_DECODER_LAYER) == sum(self.BATCHES)

    def test_micro_batching_multiplies_calls(self):
        tick = CostLedger()
        record_decode_batches(tick, self.BATCHES, make_cluster(tp=1, pp=2))
        # min(m, b) calls per layer: [2, 2, 2, 2, 1]
        assert tick.calls(Event.BATCH_DECODER_LAYER) == 9

    def test_tp_emits_two_allreduces_per_layer_call(self):
        tick = CostLedger()
        record_decode_batches(tick, self.BATCHES, make_cluster(tp=2, pp=1))
        assert tick.calls(Event.ALLREDUCE) == 2 * tick.calls(Event.BATCH_DECODER_LAYER)
        # Average payload per collective equals the average layer batch.
        avg = tick.units(Event.ALLREDUCE) / tick.calls(Event.ALLREDUCE)
        assert avg == sum(self.BATCHES) / len(self.BATCHES)

    def test_bubble_only_under_pp(self):
        tick = CostLedger()
        record_tick_bubble(tick, 32, 160.0, 8, make_cluster(tp=2, pp=1))
        assert tick.calls(Event.PIPELINE_BUBBLE) == 0
        record_tick_bubble(tick, 32, 160.0, 8, make_cluster(tp=1, pp=2))
        assert tick.calls(Event.PIPELINE_BUBBLE) == 16  # (pp-1) * ceil(32/2)

    def test_prefill_allreduce_only_under_tp(self):
        tick = CostLedger()
        record_prefill_allreduce(tick, 32, 512.0, make_cluster(tp=1, pp=2))
        assert tick.calls(Event.ALLREDUCE) == 0
        record_prefill_allreduce(tick, 32, 512.0, make_cluster(tp=2, pp=1))
        assert tick.calls(Event.ALLREDUCE) == 64

    def test_shard_serving_ledger_conserves_and_checks(self):
        merged = CostLedger()
        merged.add(Event.DECODER_LAYER, calls=17)
        merged.add(Event.LM_HEAD_FULL, calls=5)
        merged.tokens_generated = 5
        ticks = [[5, 5, 4], [2, 1]]
        out = shard_serving_ledger(merged, ticks, 2, make_cluster(tp=2, pp=2))
        assert out.calls(Event.DECODER_LAYER) == 0
        assert out.units(Event.BATCH_DECODER_LAYER) == 17
        assert out.calls(Event.LM_HEAD_FULL) == 5
        assert out.calls(Event.PIPELINE_BUBBLE) > 0
        with pytest.raises(AssertionError, match="layer-tokens"):
            shard_serving_ledger(merged, [[5, 5]], 1, make_cluster(tp=2, pp=1))


# ---------------------------------------------------------------------------
# cluster pricing physics
# ---------------------------------------------------------------------------
class TestClusterPricing:
    def test_pp_beyond_model_depth_rejected(self):
        """A 64-stage pipeline of a 32-layer model must fail fast, not
        mint throughput out of empty stages."""
        with pytest.raises(ValueError, match="split"):
            ClusterLatencyModel(SPEC, make_cluster(tp=1, pp=SPEC.n_layers * 2), "vllm")

    def test_tp_shards_layer_time(self):
        single = LatencyModel(SPEC, "a100-80g", "vllm")
        tp4 = ClusterLatencyModel(SPEC, make_cluster(tp=4), "vllm")
        assert tp4.decoder_layer_time(1.0) < single.decoder_layer_time(1.0) / 2
        assert tp4.prefill_layer_time(256.0) < single.prefill_layer_time(256.0) / 2

    def test_allreduce_time_monotone_and_zero_at_tp1(self):
        tp1 = ClusterLatencyModel(SPEC, make_cluster(tp=1, pp=2), "vllm")
        assert tp1.allreduce_time(64.0) == 0.0
        tp4 = ClusterLatencyModel(SPEC, make_cluster(tp=4), "vllm")
        assert 0 < tp4.allreduce_time(8.0) < tp4.allreduce_time(64.0)

    def test_slow_link_prices_allreduce_higher(self):
        fast = ClusterLatencyModel(SPEC, make_cluster(tp=4, tp_link="nvlink"), "vllm")
        slow = ClusterLatencyModel(SPEC, make_cluster(tp=4, tp_link="pcie4"), "vllm")
        assert slow.allreduce_time(32.0) > fast.allreduce_time(32.0)

    def test_base_model_rejects_cluster_events(self):
        ledger = CostLedger()
        ledger.add(Event.ALLREDUCE, calls=2, units=16)
        ledger.tokens_generated = 1
        with pytest.raises(ValueError, match="cluster-only"):
            LatencyModel(SPEC, "a100-80g", "vllm").price(ledger)

    def test_pp_divides_layer_stack_and_prices_bubble(self):
        ledger = CostLedger()
        ledger.add(Event.BATCH_DECODER_LAYER, calls=64, units=256)
        ledger.tokens_generated = 8
        ledger.steps = 1
        single = LatencyModel(SPEC, "a100-80g", "vllm").price(ledger)
        sharded = ledger.copy()
        sharded.add(Event.PIPELINE_BUBBLE, calls=16, units=64)
        pp2 = ClusterLatencyModel(SPEC, make_cluster(tp=1, pp=2), "vllm").price(sharded)
        assert pp2.per_event_s[Event.BATCH_DECODER_LAYER] == pytest.approx(
            single.per_event_s[Event.BATCH_DECODER_LAYER] / 2)
        assert pp2.per_event_s[Event.PIPELINE_BUBBLE] > 0

    def test_preempt_costs_repriced_per_stage(self):
        single = LatencyModel(SPEC, "a100-80g", "vllm")
        pp2 = ClusterLatencyModel(SPEC, make_cluster(tp=1, pp=2), "vllm")
        assert pp2.kv_swap_time(64.0) < single.kv_swap_time(64.0)
        s_costs, p_costs = single.preempt_costs(64, 128), pp2.preempt_costs(64, 128)
        assert p_costs["swap"] < s_costs["swap"]
        assert p_costs["recompute"] < s_costs["recompute"]

    def test_tp2_beats_tp1_on_a_synthetic_decode_ledger(self):
        base = CostLedger()
        base.add(Event.BATCH_DECODER_LAYER, calls=32, units=256)
        base.tokens_generated = 8
        base.steps = 1
        tp1 = LatencyModel(SPEC, "a100-80g", "vllm").price(base)
        sharded = base.copy()
        sharded.add(Event.ALLREDUCE, calls=64, units=512)
        tp2 = ClusterLatencyModel(SPEC, make_cluster(tp=2), "vllm").price(sharded)
        assert tp2.total_s < tp1.total_s


# ---------------------------------------------------------------------------
# per-stage paged KV
# ---------------------------------------------------------------------------
class TestShardedPagedKV:
    def make(self, n_stages=2, n_blocks=4, block_size=2):
        return ShardedPagedKV(n_stages=n_stages, n_blocks=n_blocks,
                              block_size=block_size, n_kv_heads=2, head_dim=2)

    def entry(self, t):
        return np.full((2, 2), float(t)), np.full((2, 2), -float(t))

    def test_stages_stay_in_lockstep(self):
        cache = self.make()
        cache.add_sequence(0)
        for t in range(3):
            cache.append(0, *self.entry(t))
        assert cache.length(0) == 3
        for stage in cache.stages:
            assert stage.length(0) == 3
            assert stage.block_table(0) == cache.stages[0].block_table(0)
        assert cache.blocks_in_use() == 2  # per-device blocks, not summed
        assert cache.allocator.free_blocks == 2

    def test_gather_bit_exact_per_stage(self):
        cache = self.make()
        cache.add_sequence(7)
        for t in range(5):
            cache.append(7, *self.entry(t))
        k0, v0 = cache.gather(7)
        for stage in cache.stages:
            k, v = stage.gather(7)
            assert np.array_equal(k, k0) and np.array_equal(v, v0)

    def test_swap_roundtrip_restores_every_stage(self):
        cache = self.make()
        cache.add_sequence(1)
        for t in range(4):
            cache.append(1, *self.entry(t))
        k_before, v_before = cache.gather(1)
        assert cache.swap_out(1) == 4
        assert cache.is_swapped(1)
        assert cache.host_tokens() == 4
        assert cache.blocks_in_use() == 0
        assert cache.swap_in(1) == 4
        k_after, v_after = cache.gather(1)
        assert np.array_equal(k_before, k_after)
        assert np.array_equal(v_before, v_after)

    def test_failed_swap_in_keeps_all_host_copies(self):
        cache = self.make(n_blocks=2)
        cache.add_sequence(1)
        for t in range(4):
            cache.append(1, *self.entry(t))
        cache.swap_out(1)
        cache.add_sequence(2)
        for t in range(3):
            cache.append(2, *self.entry(10 + t))
        with pytest.raises(MemoryError):
            cache.swap_in(1)
        assert cache.is_swapped(1)
        for stage in cache.stages:
            assert stage.is_swapped(1)

    def test_free_sequence_frees_every_stage(self):
        cache = self.make()
        cache.add_sequence(3)
        for t in range(4):
            cache.append(3, *self.entry(t))
        cache.free_sequence(3)
        assert cache.allocator.free_blocks == 4
        for stage in cache.stages:
            assert stage.allocator.free_blocks == 4


# ---------------------------------------------------------------------------
# token identity: sharded == single-device
# ---------------------------------------------------------------------------
class TestTokenIdentity:
    def requests(self):
        return [Request(i, [i + 3, 2 * i + 1, (5 * i) % 200 + 2], 16)
                for i in range(6)]

    def test_sync_engine_rejects_pp_beyond_depth(self, rig):
        with pytest.raises(ValueError, match="split"):
            rig.serving_engine(
                batch_capacity=4, kv_blocks=64, block_size=4,
                cluster=make_cluster("a100-80g", pp=rig.model.n_layers * 2))

    @pytest.mark.parametrize("tp,pp", [(2, 1), (1, 2), (2, 2)])
    def test_sync_engine_token_identical(self, rig, tp, pp):
        base = rig.serving_engine(batch_capacity=4, kv_blocks=64, block_size=4)
        sharded = rig.serving_engine(
            batch_capacity=4, kv_blocks=64, block_size=4,
            cluster=make_cluster("a100-80g", tp=tp, pp=pp))
        ref = base.run(self.requests())
        out = sharded.run(self.requests())
        assert set(ref.results) == set(out.results)
        for rid in ref.results:
            assert ref.results[rid].tokens == out.results[rid].tokens
        # The sharded ledger conserves layer-token work.
        assert (out.serving_ledger.units(Event.BATCH_DECODER_LAYER)
                == ref.serving_ledger.units(Event.BATCH_DECODER_LAYER))

    @pytest.mark.parametrize("tp,pp", [(2, 1), (2, 2)])
    def test_async_engine_token_identical(self, rig, tp, pp):
        trace = poisson_trace(8, 50.0, rig.model.vocab_size, seed=3,
                              max_new_tokens_range=(8, 16))
        base = rig.async_serving_engine(
            batch_capacity=4, kv_blocks=16, block_size=4,
            chunk_prefill_tokens=8)
        sharded = rig.async_serving_engine(
            batch_capacity=4, kv_blocks=16, block_size=4,
            chunk_prefill_tokens=8,
            cluster=make_cluster("a100-80g", tp=tp, pp=pp))
        ref = base.run(trace)
        out = sharded.run(trace)
        assert set(ref.results) == set(out.results)
        for rid in ref.results:
            assert ref.results[rid].tokens == out.results[rid].tokens

    def test_async_sharded_preemption_token_identical(self, rig):
        """A pool tight enough to force preemption, per-stage owned."""
        trace = poisson_trace(8, 80.0, rig.model.vocab_size, seed=5,
                              max_new_tokens_range=(8, 16))
        base = rig.async_serving_engine(
            batch_capacity=4, kv_blocks=8, block_size=4,
            admission="optimistic", preemption="auto", chunk_prefill_tokens=8)
        sharded = rig.async_serving_engine(
            batch_capacity=4, kv_blocks=8, block_size=4,
            admission="optimistic", preemption="auto", chunk_prefill_tokens=8,
            cluster=make_cluster("a100-80g", tp=2, pp=2))
        ref = base.run(trace)
        out = sharded.run(trace)
        assert out.preemptions > 0, "config never exercised sharded preemption"
        for rid in ref.results:
            assert ref.results[rid].tokens == out.results[rid].tokens

    def test_sharded_tps_beats_single_on_tp2(self, rig):
        """The modelled TP=2 cluster out-serves one device on the same run."""
        engine = rig.serving_engine(batch_capacity=4, kv_blocks=64, block_size=4)
        report = engine.run(self.requests())
        tp1 = report.priced_speedup(SPEC, "a100-80g", "vllm")
        tp2 = report.priced_speedup(SPEC, "a100-80g", "vllm",
                                    cluster=make_cluster("a100-80g", tp=2))
        assert tp2["serving_tps"] > tp1["serving_tps"]
