"""Tests for the two-level heuristic scheduling engine (T2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduling import (
    AllLayersScheduler,
    FixedSetScheduler,
    OfflineScheduler,
    OnlineScheduler,
    TwoLevelScheduler,
    make_scheduler,
    profile_exit_frequencies,
)


class TestOfflineScheduler:
    def test_profile_histogram_excludes_final_layer(self):
        hist = profile_exit_frequencies([0, 5, 5, 31, 30], n_layers=32)
        assert hist[5] == 2
        assert hist[31] == 0  # final layer never hosts a predictor
        assert hist[30] == 1

    def test_top_k(self):
        sched = OfflineScheduler([0, 5, 1, 9, 0, 2])
        assert sched.select_top_k(2) == frozenset({3, 1})

    def test_top_k_skips_zero_frequency(self):
        sched = OfflineScheduler([3, 0, 0, 0])
        assert sched.select_top_k(3) == frozenset({0})

    def test_select_mass_covers_fraction(self):
        freqs = np.array([50, 30, 10, 5, 5], dtype=float)
        chosen = OfflineScheduler(freqs).select_mass(0.8)
        assert freqs[list(chosen)].sum() >= 0.8 * freqs.sum()
        assert len(chosen) <= 3

    def test_select_mass_all_when_uniform_zero(self):
        sched = OfflineScheduler(np.zeros(4))
        assert sched.select_mass(0.5) == frozenset(range(4))

    def test_skewness_report(self):
        freqs = np.zeros(10)
        freqs[3] = 90
        freqs[4] = 10
        report = OfflineScheduler(freqs).skewness_report()
        assert report["below_avg_layer_share"] == pytest.approx(0.8)
        assert report["bottom_half_mass"] == pytest.approx(0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            OfflineScheduler([-1.0, 2.0])


class TestOnlineScheduler:
    def test_vicinity_activation(self):
        sched = OnlineScheduler(32, window=5, vicinity=2)
        sched.observe_exit(10)
        assert sched.active_set() == frozenset(range(8, 13))

    def test_eviction_deactivates(self):
        sched = OnlineScheduler(32, window=1, vicinity=1)
        sched.observe_exit(10)
        sched.observe_exit(20)
        assert not sched.is_active(10)
        assert sched.is_active(20)

    def test_boundary_clamping(self):
        sched = OnlineScheduler(8, window=3, vicinity=2)
        sched.observe_exit(0)
        assert sched.active_set() == frozenset({0, 1, 2})
        sched.observe_exit(7)
        assert 7 in sched.active_set()

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            OnlineScheduler(8).observe_exit(8)

    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_counts_match_recompute(self, exits):
        """Incremental counter array == brute-force recompute from queue."""
        from collections import deque

        sched = OnlineScheduler(16, window=4, vicinity=2)
        model = deque(maxlen=4)
        for e in exits:
            sched.observe_exit(e)
            model.append(e)
            expected = set()
            for r in model:
                expected.update(range(max(0, r - 2), min(16, r + 3)))
            assert sched.active_set() == frozenset(expected)


class TestTwoLevelScheduler:
    def test_cold_start_full_coverage_without_offline(self):
        sched = TwoLevelScheduler(16, offline=None, offline_top_k=0)
        assert all(sched.is_active(l) for l in range(15))

    def test_cold_start_offline_only(self):
        off = OfflineScheduler([0, 9, 0, 5, 0, 0])
        sched = TwoLevelScheduler(6, offline=off, offline_top_k=2)
        active = [l for l in range(6) if sched.is_active(l)]
        assert active == [1, 3]

    def test_union_after_warmup(self):
        off = OfflineScheduler([9, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        sched = TwoLevelScheduler(10, offline=off, offline_top_k=1)
        sched.observe_exit(6)
        assert sched.is_active(0)  # offline member
        assert sched.is_active(5) and sched.is_active(8)  # online vicinity
        assert not sched.is_active(3)

    def test_reset_restores_cold_start(self):
        sched = TwoLevelScheduler(10, offline=None, offline_top_k=0)
        sched.observe_exit(4)
        assert not sched.is_active(9 - 1) or True  # warm now
        sched.reset()
        assert all(sched.is_active(l) for l in range(9))

    def test_active_count(self):
        sched = TwoLevelScheduler(16, offline=None, offline_top_k=0)
        sched.observe_exit(8)
        assert sched.active_count() == 5


class TestFactory:
    def test_all_kind(self):
        sched = make_scheduler("all", 8)
        assert isinstance(sched, AllLayersScheduler)
        assert sched.is_active(6) and not sched.is_active(7)

    def test_offline_requires_frequencies(self):
        with pytest.raises(ValueError):
            make_scheduler("offline", 8)

    def test_offline_kind(self):
        sched = make_scheduler("offline", 4, offline=OfflineScheduler([5, 1, 0, 0]),
                               offline_top_fraction=0.8)
        assert isinstance(sched, FixedSetScheduler)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_scheduler("bogus", 8)
