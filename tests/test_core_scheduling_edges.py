"""Edge cases for predictor scheduling: empty exit profiles, single-layer
models, and all-layers-active configurations."""

import numpy as np
import pytest

from repro.core.scheduling import (
    AllLayersScheduler,
    FixedSetScheduler,
    OfflineScheduler,
    OnlineScheduler,
    TwoLevelScheduler,
    make_scheduler,
    profile_exit_frequencies,
)
from repro.eval.harness import build_rig

RIG_KWARGS = dict(train_prompts=6, train_tokens=30, predictor_hidden=128, epochs=10)


class TestEmptyProfile:
    def test_empty_exit_trace_gives_zero_histogram(self):
        freqs = profile_exit_frequencies([], 8)
        assert freqs.shape == (8,) and not freqs.any()

    def test_offline_kind_on_empty_profile_covers_all_layers(self):
        """With no profiled exits there is nothing to rank: the offline
        scheduler degrades to full coverage rather than zero coverage."""
        scheduler = make_scheduler("offline", 8, offline=OfflineScheduler(np.zeros(8)))
        assert all(scheduler.is_active(l) for l in range(8))

    def test_two_level_empty_offline_cold_starts_fully_active(self):
        scheduler = TwoLevelScheduler(8, offline=OfflineScheduler(np.zeros(8)),
                                      offline_top_k=4)
        assert scheduler.offline_set == frozenset()
        assert all(scheduler.is_active(l) for l in range(7))
        scheduler.observe_exit(3)
        assert not scheduler.is_active(0)  # warmed up: vicinity of 3 only
        assert scheduler.is_active(3)

    def test_top_k_of_empty_profile_is_empty(self):
        assert OfflineScheduler(np.zeros(6)).select_top_k(4) == frozenset()


class TestSingleLayerModel:
    def test_all_layers_scheduler_has_no_exit_site(self):
        scheduler = AllLayersScheduler(1)
        assert not scheduler.is_active(0)
        assert scheduler.active_count() == 0.0

    def test_online_scheduler_rejects_single_layer(self):
        with pytest.raises(ValueError):
            OnlineScheduler(1)
        with pytest.raises(ValueError):
            make_scheduler("online", 1)

    def test_two_layer_model_can_only_exit_at_layer_zero(self):
        scheduler = make_scheduler("online", 2, window=3, vicinity=1)
        scheduler.observe_exit(0)
        assert scheduler.is_active(0)
        assert scheduler.active_count() >= 1.0


class TestAllLayersActive:
    def test_fixed_full_set_matches_all_layers_scheduler(self):
        """A fixed set covering every exit site is behaviourally identical to
        AllLayersScheduler over an entire generation."""
        rig = build_rig("llama2-7b", **RIG_KWARGS)
        n = rig.model.n_layers
        engine_all = rig.specee_engine("all")
        result_all = engine_all.generate([3, 1, 4], 40)
        fixed = FixedSetScheduler(range(n - 1))
        from repro.config import SpecEEConfig
        from repro.core.engine import SpecEEEngine

        engine_fixed = SpecEEEngine(rig.model, rig.speculator, rig.bank,
                                    SpecEEConfig(), scheduler=fixed)
        result_fixed = engine_fixed.generate([3, 1, 4], 40)
        assert result_fixed.tokens == result_all.tokens
        assert result_fixed.exit_layers == result_all.exit_layers

    def test_all_active_exits_respect_min_exit_layer(self):
        rig = build_rig("llama2-7b", **RIG_KWARGS)
        result = rig.specee_engine("all").generate([2, 7, 1], 60)
        early = [e for e, r in zip(result.exit_layers, result.records) if r.early_exit]
        assert early, "all-layers-active run should exit early somewhere"
        assert all(e >= rig.specee_engine("all").config.min_exit_layer for e in early)
