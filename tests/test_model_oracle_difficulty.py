"""Tests for the oracle language and the exit-layer (difficulty) process."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model.difficulty import ExitLayerProcess, ExitProfile, measured_vicinity_hit
from repro.model.oracle import NGramOracle


class TestOracle:
    def setup_method(self):
        self.oracle = NGramOracle(128, order=3, seed=7)

    def test_target_deterministic(self):
        ctx = [3, 5, 9]
        assert self.oracle.target(ctx) == self.oracle.target(list(ctx))

    def test_target_in_vocab(self):
        for i in range(40):
            assert 0 <= self.oracle.target([i, i + 1, i + 2]) < 128

    def test_alternatives_exclude_target(self):
        ctx = [4, 4, 8]
        target = self.oracle.target(ctx)
        alts = self.oracle.alternatives(ctx, 6)
        assert target not in alts
        assert len(set(alts)) == 6

    def test_offspec_distractor_excluded(self):
        ctx = [1, 2, 3]
        alts = self.oracle.alternatives(ctx, 8)
        d = self.oracle.offspec_distractor(ctx, exclude=alts)
        assert d not in alts
        assert d != self.oracle.target(ctx)

    def test_distribution_is_probability(self):
        dist = self.oracle.distribution([9, 9, 9])
        assert np.isclose(dist.sum(), 1.0)
        assert np.all(dist >= 0)
        assert int(np.argmax(dist)) == self.oracle.target([9, 9, 9])

    def test_continuation_consistency(self):
        ctx = [5, 6, 7]
        cont = self.oracle.continuation(ctx, 10)
        replay = []
        c = list(ctx)
        for _ in range(10):
            t = self.oracle.target(c)
            replay.append(t)
            c.append(t)
        assert cont == replay

    def test_no_absorbing_repetition(self):
        """The positional drift bucket must break fixed-point loops."""
        ctx = [10, 10, 10]
        cont = self.oracle.continuation(ctx, 200)
        # Some token may repeat locally, but not for the whole horizon.
        assert len(set(cont)) > 3

    def test_zipf_marginal_is_skewed(self):
        targets = [self.oracle.target([i, 2 * i, 3 * i]) for i in range(800)]
        counts = np.bincount(targets, minlength=128)
        top10 = np.sort(counts)[-10:].sum()
        assert top10 > 0.3 * len(targets)

    def test_uniform_hash_range_and_determinism(self):
        u = self.oracle.uniform_hash([1, 2, 3], "tag")
        assert 0.0 <= u < 1.0
        assert u == self.oracle.uniform_hash([1, 2, 3], "tag")

    def test_different_seeds_different_language(self):
        other = NGramOracle(128, order=3, seed=8)
        same = sum(self.oracle.target([i, i, i]) == other.target([i, i, i])
                   for i in range(100))
        assert same < 30

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NGramOracle(4)
        with pytest.raises(ValueError):
            NGramOracle(64, order=0)


class TestExitProfile:
    def test_weights_sum_to_one(self):
        p = ExitProfile.from_params(32)
        assert np.isclose(sum(p.weights), 1.0)

    def test_full_depth_atom(self):
        p = ExitProfile.from_params(32, full_depth_rate=0.15)
        assert p.weights[-1] == pytest.approx(0.15, abs=1e-6)

    def test_min_layer_floor(self):
        p = ExitProfile.from_params(32, min_layer=6)
        assert all(w == 0 for w in p.weights[:6])

    def test_mean_layer_tracks_peak(self):
        low = ExitProfile.from_params(32, peak_frac=0.4, full_depth_rate=0.0)
        high = ExitProfile.from_params(32, peak_frac=0.7, full_depth_rate=0.0)
        assert low.mean_layer < high.mean_layer

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            ExitProfile(n_layers=4, weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            ExitProfile(n_layers=2, weights=(0.7, 0.7))

    def test_theoretical_vicinity_hit_bounds(self):
        p = ExitProfile.from_params(32)
        hit = p.theoretical_vicinity_hit()
        assert 0.0 < hit < 1.0


class TestExitLayerProcess:
    def test_samples_in_range(self):
        proc = ExitLayerProcess(ExitProfile.from_params(32), seed=1)
        seq = proc.sequence(200)
        assert all(0 <= s <= 31 for s in seq)

    def test_context_similarity_exceeds_independent(self):
        profile = ExitProfile.from_params(32)
        similar = ExitLayerProcess(profile, seed=2, similarity=0.85)
        independent = ExitLayerProcess(profile, seed=2, similarity=0.0)
        hit_sim = measured_vicinity_hit(similar.sequence(800), exclude_layer=31)
        hit_ind = measured_vicinity_hit(independent.sequence(800), exclude_layer=31)
        assert hit_sim > hit_ind + 0.15

    def test_reset_clears_history(self):
        proc = ExitLayerProcess(ExitProfile.from_params(32), seed=3)
        proc.sequence(10)
        proc.reset()
        assert len(proc._recent) == 0

    def test_rejects_bad_similarity(self):
        with pytest.raises(ValueError):
            ExitLayerProcess(ExitProfile.from_params(32), similarity=1.5)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_deterministic_given_seed(self, seed):
        p = ExitProfile.from_params(16, min_layer=2)
        a = ExitLayerProcess(p, seed=seed).sequence(20)
        b = ExitLayerProcess(p, seed=seed).sequence(20)
        assert a == b
