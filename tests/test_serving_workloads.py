"""Workload generators: seeded determinism of the open-loop traces and the
closed-loop client generator, closed-loop mechanics, and the EDF-vs-FIFO
goodput property under deadline pressure."""

import pytest

from repro.eval.harness import build_rig
from repro.serving import (
    ClosedLoopClients,
    bursty_trace,
    make_scheduling_policy,
    poisson_trace,
)

# Same asset-cache key as the other serving tests, so training happens once.
RIG_KWARGS = dict(train_prompts=6, train_tokens=30, predictor_hidden=128, epochs=10)


@pytest.fixture(scope="module")
def rig():
    return build_rig("llama2-7b", **RIG_KWARGS)


def request_fingerprint(request):
    return (request.request_id, round(request.arrival_s, 12), request.prompt,
            request.max_new_tokens, request.slo_s, request.priority,
            request.client_id)


# ---------------------------------------------------------------------------
# seeded determinism
# ---------------------------------------------------------------------------
class TestSeededDeterminism:
    def test_poisson_identical_across_builds(self):
        a = poisson_trace(30, 12.0, 512, seed=9, priority_levels=3)
        b = poisson_trace(30, 12.0, 512, seed=9, priority_levels=3)
        assert ([request_fingerprint(r) for r in a]
                == [request_fingerprint(r) for r in b])

    def test_poisson_seed_changes_arrivals(self):
        a = poisson_trace(30, 12.0, 512, seed=9)
        b = poisson_trace(30, 12.0, 512, seed=10)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in b]

    def test_bursty_identical_across_builds(self):
        a = bursty_trace(24, 4, 0.5, 512, jitter_s=0.1, seed=5)
        b = bursty_trace(24, 4, 0.5, 512, jitter_s=0.1, seed=5)
        assert ([request_fingerprint(r) for r in a]
                == [request_fingerprint(r) for r in b])

    def test_closed_loop_identical_arrival_sequence(self):
        """Same seed -> the full issued sequence is identical: initial
        rounds match, and every follow-up issued for the same completion
        time matches (prompts, budgets, SLOs and think-gap arrivals)."""
        a = ClosedLoopClients(5, 4, 512, think_time_s=0.08, seed=11)
        b = ClosedLoopClients(5, 4, 512, think_time_s=0.08, seed=11)
        first_a, first_b = a.initial_requests(), b.initial_requests()
        assert ([request_fingerprint(r) for r in first_a]
                == [request_fingerprint(r) for r in first_b])
        for request in first_a:
            finish = request.arrival_s + 0.5
            na = a.next_request(request.request_id, finish)
            nb = b.next_request(request.request_id, finish)
            assert request_fingerprint(na) == request_fingerprint(nb)

    def test_closed_loop_seed_changes_think_gaps(self):
        a = ClosedLoopClients(5, 4, 512, think_time_s=0.08, seed=11)
        b = ClosedLoopClients(5, 4, 512, think_time_s=0.08, seed=12)
        assert ([r.arrival_s for r in a.initial_requests()]
                != [r.arrival_s for r in b.initial_requests()])


# ---------------------------------------------------------------------------
# closed-loop mechanics
# ---------------------------------------------------------------------------
class TestClosedLoopClients:
    def test_ids_and_client_tags(self):
        clients = ClosedLoopClients(3, 4, 512, seed=0)
        assert clients.total_requests == 12
        for client, request in enumerate(clients.initial_requests()):
            assert request.request_id == client * 4
            assert request.client_id == client

    def test_next_request_waits_one_think_gap(self):
        clients = ClosedLoopClients(2, 3, 512, think_time_s=0.2,
                                    think="constant", seed=1)
        first = clients.initial_requests()[0]
        nxt = clients.next_request(first.request_id, finish_s=7.0)
        assert nxt.request_id == first.request_id + 1
        assert nxt.client_id == first.client_id
        assert nxt.arrival_s == pytest.approx(7.2)

    def test_last_round_returns_none(self):
        clients = ClosedLoopClients(2, 2, 512, seed=0)
        assert clients.next_request(1, finish_s=1.0) is None  # client 0 round 1
        assert clients.next_request(3, finish_s=1.0) is None  # client 1 round 1

    def test_unknown_request_id_raises(self):
        clients = ClosedLoopClients(2, 2, 512, seed=0)
        with pytest.raises(ValueError, match="belongs to no client"):
            clients.next_request(99, finish_s=1.0)

    def test_constant_think_is_exact(self):
        clients = ClosedLoopClients(4, 2, 512, think_time_s=0.5,
                                    think="constant", seed=3)
        for request in clients.initial_requests():
            assert request.arrival_s == pytest.approx(0.5)

    def test_exponential_think_varies(self):
        clients = ClosedLoopClients(8, 2, 512, think_time_s=0.5, seed=3)
        arrivals = [r.arrival_s for r in clients.initial_requests()]
        assert len(set(arrivals)) > 1

    def test_slo_follows_budget(self):
        clients = ClosedLoopClients(3, 2, 512, slo_scale=2.0,
                                    per_token_s=0.01, seed=0)
        for request in clients.initial_requests():
            expected = 2.0 * 0.01 * (request.max_new_tokens
                                     + 0.1 * len(request.prompt))
            assert request.slo_s == pytest.approx(expected)

    def test_no_slo_mode(self):
        clients = ClosedLoopClients(3, 2, 512, slo_scale=None, seed=0)
        assert all(r.slo_s is None for r in clients.initial_requests())

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            ClosedLoopClients(0, 2, 512)
        with pytest.raises(ValueError):
            ClosedLoopClients(2, 0, 512)
        with pytest.raises(ValueError):
            ClosedLoopClients(2, 2, 512, think_time_s=-1.0)
        with pytest.raises(ValueError):
            ClosedLoopClients(2, 2, 512, think="uniform")
        with pytest.raises(ValueError):
            ClosedLoopClients(2, 2, 512, max_new_tokens_range=(8, 4))


# ---------------------------------------------------------------------------
# scheduling policies
# ---------------------------------------------------------------------------
class TestSchedulingPolicies:
    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_scheduling_policy("lifo")

    def test_instances_pass_through(self):
        policy = make_scheduling_policy("edf")
        assert make_scheduling_policy(policy) is policy

    def test_edf_orders_feasible_before_hopeless(self):
        from repro.serving import Request
        policy = make_scheduling_policy("edf")
        feasible = Request(0, [1, 2], 4, arrival_s=0.0, slo_s=100.0)
        hopeless = Request(1, [1, 2], 4, arrival_s=0.0, slo_s=0.001)
        free = Request(2, [1, 2], 4, arrival_s=0.0)
        keys = {r.request_id: policy.queue_key(r, now_s=50.0, per_token_s=0.01)
                for r in (feasible, hopeless, free)}
        assert keys[0] < keys[2] < keys[1]

    def test_fifo_orders_by_priority_then_arrival(self):
        from repro.serving import Request
        policy = make_scheduling_policy("fifo_priority")
        vip = Request(3, [1, 2], 4, arrival_s=5.0, priority=2)
        early = Request(1, [1, 2], 4, arrival_s=0.0)
        late = Request(2, [1, 2], 4, arrival_s=9.0)
        order = sorted((late, vip, early), key=policy.queue_key)
        assert [r.request_id for r in order] == [3, 1, 2]


# ---------------------------------------------------------------------------
# EDF-vs-FIFO goodput property
# ---------------------------------------------------------------------------
class TestEdfGoodputProperty:
    """Under deadline pressure, EDF's feasibility-aware service order and
    slack-aware victim picker must not lose goodput to deadline-blind
    fifo_priority on the same trace — and tokens must be identical."""

    PRESSURE = dict(batch_capacity=4, kv_blocks=24, block_size=4,
                    chunk_prefill_tokens=16)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_edf_goodput_at_least_fifo(self, rig, seed):
        engines = {
            sched: rig.async_serving_engine(scheduling=sched, **self.PRESSURE)
            for sched in ("fifo_priority", "edf")
        }
        per_token_s = engines["edf"].latency.full_depth_token_time()
        trace = poisson_trace(
            24, 12.0, rig.model.vocab_size, seed=seed,
            prompt_len_range=(8, 48), max_new_tokens_range=(16, 48),
            slo_scale=3.0, per_token_s=per_token_s, priority_levels=3,
        )
        reports = {name: engine.run(trace) for name, engine in engines.items()}
        fifo, edf = reports["fifo_priority"], reports["edf"]
        for request in trace:
            assert (edf.results[request.request_id].tokens
                    == fifo.results[request.request_id].tokens)
        assert fifo.slo_attainment < 1.0, "no deadline pressure, test is vacuous"
        assert edf.goodput_tps >= fifo.goodput_tps
