"""Tests for pricing/speedup tables and the experiment infrastructure."""

import numpy as np
import pytest

from repro.config import get_model_spec
from repro.eval.harness import EvalRun
from repro.eval.speedup import priced_run, speedup_table
from repro.experiments.common import (
    SCALES,
    engine_factory,
    get_scale,
    rig_for,
    throughput_run,
)
from repro.hardware.ledger import CostLedger, Event


def run_with(layers_per_token: float, tokens: int = 10) -> EvalRun:
    run = EvalRun(dataset="d", engine="e")
    run.ledger.add(Event.DECODER_LAYER, calls=layers_per_token * tokens)
    run.ledger.add(Event.LM_HEAD_FULL, calls=tokens)
    run.ledger.tokens_generated = tokens
    run.ledger.steps = tokens
    return run


class TestSpeedupTable:
    def test_ratio_and_geomean(self):
        model = get_model_spec("llama2-7b")
        base = {"a": priced_run(run_with(32), model, "a100-80g", "hf"),
                "b": priced_run(run_with(32), model, "a100-80g", "hf")}
        fast = {"a": priced_run(run_with(24), model, "a100-80g", "hf"),
                "b": priced_run(run_with(20), model, "a100-80g", "hf")}
        table = speedup_table(base, fast)
        assert table["a"]["speedup"] > 1.1
        assert table["b"]["speedup"] > table["a"]["speedup"]
        geo = table["geomean"]["speedup"]
        assert min(table["a"]["speedup"], table["b"]["speedup"]) < geo
        assert geo < max(table["a"]["speedup"], table["b"]["speedup"])

    def test_missing_keys_skipped(self):
        model = get_model_spec("llama2-7b")
        base = {"a": priced_run(run_with(32), model, "a100-80g", "hf")}
        table = speedup_table(base, {})
        assert "a" not in table


class TestScales:
    def test_registry(self):
        assert {"small", "medium", "full"} == set(SCALES)
        assert SCALES["small"].n_items < SCALES["full"].n_items

    def test_get_scale_passthrough(self):
        sc = SCALES["small"]
        assert get_scale(sc) is sc
        assert get_scale("medium").name == "medium"
        with pytest.raises(KeyError):
            get_scale("enormous")


class TestEngineFactory:
    @pytest.fixture(scope="class")
    def rig(self):
        return rig_for("llama2-7b", None, get_scale("small"))

    def test_unknown_kind(self, rig):
        with pytest.raises(ValueError):
            engine_factory("warp-drive", rig, get_scale("small"))

    def test_factories_produce_fresh_engines(self, rig):
        factory = engine_factory("dense", rig, get_scale("small"))
        assert factory() is not factory()

    def test_all_kinds_generate(self, rig):
        sc = get_scale("small")
        for kind in ("dense", "specee", "specee_t1", "adainfer", "raee",
                     "eagle", "specee_eagle"):
            engine = engine_factory(kind, rig, sc)()
            result = engine.generate([4, 8, 2], 12)
            assert len(result.tokens) == 12, kind

    def test_throughput_run_merges_prompts(self, rig):
        sc = get_scale("small")
        run = throughput_run("dense", rig, sc)
        assert run.ledger.tokens_generated >= sc.gen_tokens - 3
        assert run.avg_layers == pytest.approx(32.0)


class TestLedgerPricingConsistency:
    def test_same_ledger_two_devices(self):
        """One trace, two devices: the slower device must not change the
        relative event mix, only the absolute times."""
        model = get_model_spec("llama2-7b")
        run = run_with(24)
        fast = priced_run(run, model, "a100-80g", "vllm")
        slow = priced_run(run, model, "rtx4090", "vllm")
        assert slow.latency.total_s > fast.latency.total_s
        assert fast.latency.tokens_generated == slow.latency.tokens_generated

    def test_price_is_pure(self):
        model = get_model_spec("llama2-7b")
        run = run_with(24)
        a = priced_run(run, model, "a100-80g", "hf").latency.total_s
        b = priced_run(run, model, "a100-80g", "hf").latency.total_s
        assert a == b
