"""Data-parallel replica router: routing-policy selection, token identity
against single-replica serving, fleet-report aggregation, closed-loop client
interaction, and per-replica cluster sharding."""

import math

import pytest

from repro.distributed import make_cluster
from repro.eval.harness import build_rig
from repro.serving import (
    ClosedLoopClients,
    Request,
    ServingRouter,
    make_routing_policy,
    poisson_trace,
)

# Same asset-cache key as the other serving tests, so training happens once.
RIG_KWARGS = dict(train_prompts=6, train_tokens=30, predictor_hidden=128, epochs=10)
FLEET_KWARGS = dict(batch_capacity=4, kv_blocks=24, block_size=4,
                    chunk_prefill_tokens=16)


@pytest.fixture(scope="module")
def rig():
    return build_rig("llama2-7b", **RIG_KWARGS)


@pytest.fixture(scope="module")
def trace(rig):
    engine = rig.async_serving_engine(**FLEET_KWARGS)
    return poisson_trace(
        16, 30.0, rig.model.vocab_size, seed=7, slo_scale=4.0,
        per_token_s=engine.latency.full_depth_token_time(),
        priority_levels=2,
    )


@pytest.fixture(scope="module")
def single_report(rig, trace):
    return rig.async_serving_engine(**FLEET_KWARGS).run(trace)


# ---------------------------------------------------------------------------
# routing policies
# ---------------------------------------------------------------------------
class TestRoutingPolicies:
    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_routing_policy("random")

    def test_instances_pass_through(self):
        policy = make_routing_policy("least_kv_load")
        assert make_routing_policy(policy) is policy

    def test_round_robin_balances_exactly(self, rig, trace):
        fleet = rig.router_fleet(4, route="round_robin", **FLEET_KWARGS)
        report = fleet.run(trace)
        assert report.replica_request_counts == [4, 4, 4, 4]

    def test_empty_fleet_raises(self):
        with pytest.raises(ValueError, match="at least one replica"):
            ServingRouter([])

    def test_repeated_runs_are_reproducible(self, rig):
        """Policy state (e.g. the round-robin cursor) must reset per run:
        re-running one fleet on the same workload gives identical
        assignments even when requests don't divide evenly by replicas."""
        fleet = rig.router_fleet(2, route="round_robin", **FLEET_KWARGS)
        requests = [Request(i, [i + 3, i + 5], 8) for i in range(5)]
        first = fleet.run(requests).assignments
        second = fleet.run(requests).assignments
        assert first == second

    @pytest.mark.parametrize("route", ["round_robin", "least_kv_load",
                                       "exit_aware"])
    def test_every_policy_serves_everything(self, rig, trace, route):
        fleet = rig.router_fleet(3, route=route, **FLEET_KWARGS)
        report = fleet.run(trace)
        assert set(report.results) == {r.request_id for r in trace}
        assert set(report.assignments) == {r.request_id for r in trace}
        assert report.route == route


# ---------------------------------------------------------------------------
# token identity
# ---------------------------------------------------------------------------
class TestTokenIdentity:
    @pytest.mark.parametrize("route,sched", [
        ("round_robin", "fifo_priority"),
        ("least_kv_load", "fifo_priority"),
        ("exit_aware", "edf"),
    ])
    def test_routed_tokens_match_single_replica(self, rig, trace,
                                                single_report, route, sched):
        fleet = rig.router_fleet(3, route=route, scheduling=sched,
                                 **FLEET_KWARGS)
        report = fleet.run(trace)
        for request in trace:
            routed = report.results[request.request_id]
            alone = single_report.results[request.request_id]
            assert routed.tokens == alone.tokens
            assert routed.exit_layers == alone.exit_layers

    def test_per_replica_clusters_keep_tokens(self, rig, trace, single_report):
        """A fleet of modelled tp=2 shards serves the same tokens (sharding
        repartitions cost, never computation)."""
        fleet = rig.router_fleet(
            2, route="round_robin",
            cluster_factory=lambda: make_cluster("a100-80g", tp=2),
            **FLEET_KWARGS)
        report = fleet.run(trace)
        for request in trace:
            assert (report.results[request.request_id].tokens
                    == single_report.results[request.request_id].tokens)
        for replica in fleet.replicas:
            assert replica.cluster is not None and replica.cluster.tp == 2


# ---------------------------------------------------------------------------
# fleet report aggregation
# ---------------------------------------------------------------------------
class TestFleetReport:
    @pytest.fixture(scope="class")
    def report(self, rig, trace):
        fleet = rig.router_fleet(3, route="least_kv_load", scheduling="edf",
                                 **FLEET_KWARGS)
        return fleet.run(trace)

    def test_totals_are_replica_sums(self, report):
        assert report.total_tokens == sum(
            r.total_tokens for r in report.replica_reports)
        assert report.preemptions == sum(
            r.preemptions for r in report.replica_reports)

    def test_makespan_is_latest_replica(self, report):
        assert report.makespan_s == max(
            r.makespan_s for r in report.replica_reports)

    def test_throughput_and_goodput(self, report):
        assert report.throughput_tps == pytest.approx(
            report.total_tokens / report.makespan_s)
        assert report.goodput_tps <= report.throughput_tps + 1e-9
        assert report.good_tokens <= report.total_tokens

    def test_metrics_merge_is_disjoint(self, report):
        total = sum(len(r.metrics) for r in report.replica_reports)
        assert len(report.metrics) == total

    def test_slo_attainment_bounds(self, report):
        assert 0.0 <= report.slo_attainment <= 1.0

    def test_scheduling_name_recorded(self, report):
        assert report.scheduling == "edf"

    def test_replica_stats_have_fleet_width(self, report):
        assert len(report.replica_layers_per_token) == 3
        assert len(report.replica_request_counts) == 3
        assert all(l > 0 for l in report.replica_layers_per_token)

    def test_latency_percentiles(self, report):
        assert report.mean_latency_s > 0
        assert report.p95_latency_s() >= report.mean_latency_s * 0.5


# ---------------------------------------------------------------------------
# router-level rejection
# ---------------------------------------------------------------------------
class TestRouterRejection:
    def test_oversized_request_rejected_at_router(self, rig):
        fleet = rig.router_fleet(2, **FLEET_KWARGS)
        requests = [Request(0, [3, 4], 8, slo_s=100.0),
                    Request(1, [5, 6], 1000, slo_s=100.0),  # 250 blocks vs 24
                    Request(2, [7, 8], 8, slo_s=100.0)]
        report = fleet.run(requests)
        assert set(report.results) == {0, 2}
        assert 1 in report.rejected
        assert "no replica can hold it" in report.rejected[1]
        assert report.rejected_with_slo == 1
        # 2 of the 3 deadline-carrying requests can ever finish.
        assert report.slo_attainment <= 2 / 3

    def test_empty_workload(self, rig):
        fleet = rig.router_fleet(2, **FLEET_KWARGS)
        report = fleet.run([])
        assert report.results == {}
        assert math.isnan(report.slo_attainment)
        assert report.makespan_s == 0.0


# ---------------------------------------------------------------------------
# closed-loop clients through the router
# ---------------------------------------------------------------------------
class TestClosedLoopThroughRouter:
    def make_clients(self, rig, seed=3):
        return ClosedLoopClients(
            4, 3, rig.model.vocab_size, think_time_s=0.05, seed=seed,
            per_token_s=0.006, slo_scale=6.0)

    def test_all_rounds_served(self, rig):
        fleet = rig.router_fleet(2, route="exit_aware", scheduling="edf",
                                 **FLEET_KWARGS)
        clients = self.make_clients(rig)
        report = fleet.run(clients)
        assert len(report.results) == clients.total_requests

    def test_next_round_arrives_after_previous_finish(self, rig):
        fleet = rig.router_fleet(2, **FLEET_KWARGS)
        clients = self.make_clients(rig)
        report = fleet.run(clients)
        metrics = report.metrics
        for client in range(clients.n_clients):
            for round_ in range(clients.requests_per_client - 1):
                prev = metrics[client * clients.requests_per_client + round_]
                nxt = metrics[client * clients.requests_per_client + round_ + 1]
                assert nxt.arrival_s > prev.finish_s

    def test_closed_loop_run_is_deterministic(self, rig):
        def issue_log():
            fleet = rig.router_fleet(2, route="least_kv_load", **FLEET_KWARGS)
            report = fleet.run(self.make_clients(rig))
            return sorted((m.request_id, round(m.arrival_s, 9),
                           round(m.finish_s, 9))
                          for m in report.metrics.values())
        assert issue_log() == issue_log()

    def test_at_most_one_request_in_flight_per_client(self, rig):
        fleet = rig.router_fleet(2, **FLEET_KWARGS)
        clients = self.make_clients(rig)
        report = fleet.run(clients)
        metrics = report.metrics
        for client in range(clients.n_clients):
            ids = [client * clients.requests_per_client + r
                   for r in range(clients.requests_per_client)]
            intervals = [(metrics[i].arrival_s, metrics[i].finish_s)
                         for i in ids]
            for (_, f0), (a1, _) in zip(intervals, intervals[1:]):
                assert a1 > f0  # rounds never overlap
