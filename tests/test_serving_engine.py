"""Continuous-batching serving engine: determinism vs unbatched decoding,
admission/queueing behaviour, KV lifecycle, and ledger consistency."""

import numpy as np
import pytest

from repro.eval.harness import build_rig
from repro.hardware.ledger import Event
from repro.config import get_model_spec
from repro.serving import (
    AdmissionPolicy,
    ContinuousBatchScheduler,
    Request,
    RequestQueue,
)

# Same asset-cache key as the CLI serve path, so training happens once.
RIG_KWARGS = dict(train_prompts=6, train_tokens=30, predictor_hidden=128, epochs=10)

MIXED_LENGTHS = [12, 20, 9, 16, 25, 14]


@pytest.fixture(scope="module")
def rig():
    return build_rig("llama2-7b", **RIG_KWARGS)


def make_requests(lengths=MIXED_LENGTHS):
    return [Request(i, [i + 3, 2 * i + 1, (5 * i) % 200 + 2], n)
            for i, n in enumerate(lengths)]


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue()
        for i in range(3):
            queue.submit(Request(i, [1], 4))
        assert [queue.pop().request_id for _ in range(3)] == [0, 1, 2]

    def test_duplicate_id_rejected(self):
        queue = RequestQueue([Request(1, [1], 4)])
        with pytest.raises(ValueError):
            queue.submit(Request(1, [2], 4))

    def test_pop_after_resubmit_allowed(self):
        queue = RequestQueue([Request(1, [1], 4)])
        queue.pop()
        queue.submit(Request(1, [1], 4))
        assert len(queue) == 1

    def test_empty_peek_and_pop_raise(self):
        queue = RequestQueue()
        with pytest.raises(IndexError):
            queue.peek()
        with pytest.raises(IndexError):
            queue.pop()

    def test_bad_request_rejected(self):
        with pytest.raises(ValueError):
            Request(0, [], 4)
        with pytest.raises(ValueError):
            Request(0, [1], 0)


class TestAdmissionPolicy:
    def test_blocks_needed_rounds_up(self):
        policy = AdmissionPolicy(n_blocks=8, block_size=4, batch_capacity=4)
        assert policy.blocks_needed(Request(0, [1], 4)) == 1
        assert policy.blocks_needed(Request(0, [1], 5)) == 2

    def test_capacity_and_pool_limits(self):
        policy = AdmissionPolicy(n_blocks=8, block_size=4, batch_capacity=2)
        request = Request(0, [1], 8)  # needs 2 blocks
        assert policy.admissible(request, reserved_blocks=0, running=0)
        assert not policy.admissible(request, reserved_blocks=0, running=2)
        assert not policy.admissible(request, reserved_blocks=7, running=1)

    def test_impossible_request_raises(self):
        policy = AdmissionPolicy(n_blocks=2, block_size=4, batch_capacity=4)
        with pytest.raises(MemoryError):
            policy.admissible(Request(0, [1], 100), reserved_blocks=0, running=0)


class TestServingDeterminism:
    @pytest.mark.parametrize("flavor", ["offline", "online", "two_level"])
    def test_token_identical_to_sequential(self, rig, flavor):
        """Continuous batching must not change a single token, for every
        scheduler flavor and a mixed-length batch."""
        serving = rig.serving_engine(scheduler_kind=flavor, batch_capacity=4,
                                     kv_blocks=64, block_size=4)
        requests = make_requests()
        report = serving.run(requests)
        sequential = rig.specee_engine(flavor)
        for request in requests:
            reference = sequential.generate(request.prompt, request.max_new_tokens)
            assert report.results[request.request_id].tokens == reference.tokens
            assert (report.results[request.request_id].exit_layers
                    == reference.exit_layers)

    def test_capacity_does_not_change_tokens(self, rig):
        requests = make_requests()
        outputs = []
        for capacity in (1, 4):
            serving = rig.serving_engine(batch_capacity=capacity,
                                         kv_blocks=64, block_size=4)
            report = serving.run(make_requests())
            outputs.append({i: r.tokens for i, r in report.results.items()})
        assert outputs[0] == outputs[1]
        assert len(outputs[0]) == len(requests)


class TestServingEdgeCases:
    def test_zero_requests(self, rig):
        report = rig.serving_engine(batch_capacity=4).run([])
        assert report.results == {} and report.n_steps == 0
        assert np.isnan(report.avg_batch_occupancy)
        assert report.total_tokens == 0

    def test_single_request(self, rig):
        serving = rig.serving_engine(batch_capacity=4, kv_blocks=16, block_size=4)
        report = serving.run([Request(0, [5, 6, 7], 10)])
        assert len(report.results[0].tokens) == 10
        assert report.n_steps == 10
        assert report.metrics[0].queue_wait_steps == 0
        assert report.metrics[0].latency_steps == 10

    def test_more_requests_than_kv_blocks(self, rig):
        """Pool holds one request's worst case at a time: requests serve in
        waves, later ones queue, everyone completes."""
        serving = rig.serving_engine(batch_capacity=4, kv_blocks=4, block_size=4)
        requests = [Request(i, [i + 1, i + 2], 16) for i in range(5)]  # 4 blocks each
        report = serving.run(requests)
        assert len(report.results) == 5
        assert all(len(r.tokens) == 16 for r in report.results.values())
        assert max(report.batch_occupancy) == 1  # pool admits one at a time
        waits = sorted(m.queue_wait_steps for m in report.metrics.values())
        assert waits == [0, 16, 32, 48, 64]

    def test_request_bigger_than_pool_raises(self, rig):
        serving = rig.serving_engine(batch_capacity=4, kv_blocks=2, block_size=4)
        with pytest.raises(MemoryError):
            serving.run([Request(0, [1, 2], 100)])

    def test_occupancy_never_exceeds_capacity(self, rig):
        serving = rig.serving_engine(batch_capacity=3, kv_blocks=64, block_size=4)
        report = serving.run(make_requests())
        assert max(report.batch_occupancy) <= 3


class TestKVLifecycle:
    def test_blocks_all_freed_after_run(self, rig):
        serving = rig.serving_engine(batch_capacity=4, kv_blocks=32, block_size=4)
        serving.run(make_requests())
        assert serving.cache.allocator.free_blocks == 32
        assert serving.cache.blocks_in_use() == 0

    def test_peak_counts_blocks_freed_on_final_tick(self, rig):
        serving = rig.serving_engine(batch_capacity=4, kv_blocks=16, block_size=4)
        report = serving.run([Request(0, [1, 2, 3], 1)])
        assert report.peak_kv_blocks == 1  # allocated and freed within one tick

    def test_cache_holds_exit_hidden_states(self, rig):
        """Mid-flight, the paged cache's gather view is bit-exact against the
        hidden states the engine committed tokens from."""
        serving = rig.serving_engine(batch_capacity=1, kv_blocks=16, block_size=4)
        scheduler = ContinuousBatchScheduler(
            serving.engine, serving.cache, serving.policy, serving.scheduler_factory)
        scheduler.submit(Request(0, [4, 5, 6], 8))
        for _ in range(5):
            scheduler.tick()
        ks, vs = serving.cache.gather(0)
        slot = scheduler.running[0]
        expected = np.stack([r.hidden.reshape(serving.cache.n_kv_heads,
                                              serving.cache.head_dim)
                             for r in slot.result.records])
        assert np.array_equal(ks, expected)
        assert np.array_equal(vs, expected)
        while scheduler.has_work:
            scheduler.tick()
        assert serving.cache.blocks_in_use() == 0


class TestServingLedger:
    def test_batched_layers_account_every_layer_call(self, rig):
        serving = rig.serving_engine(batch_capacity=4, kv_blocks=64, block_size=4)
        report = serving.run(make_requests())
        merged_layers = report.sequential_ledger.calls(Event.DECODER_LAYER)
        assert report.serving_ledger.units(Event.BATCH_DECODER_LAYER) == merged_layers
        assert report.serving_ledger.calls(Event.DECODER_LAYER) == 0
        assert (report.serving_ledger.tokens_generated
                == report.sequential_ledger.tokens_generated == report.total_tokens)
        assert report.serving_ledger.steps == report.n_steps
        assert report.sequential_ledger.steps == report.total_tokens

    def test_batching_speeds_up_modelled_throughput(self, rig):
        serving = rig.serving_engine(batch_capacity=4, kv_blocks=64, block_size=4)
        report = serving.run(make_requests([24] * 6))
        priced = report.priced_speedup(get_model_spec("llama2-7b"), "a100-80g", "vllm")
        assert priced["speedup"] > 1.5
        assert priced["serving_tps"] > priced["sequential_tps"]


class TestStepAPI:
    def test_generate_equals_manual_step_loop(self, rig):
        engine = rig.specee_engine()
        reference = engine.generate([9, 9, 9], 20)
        state, result = engine.prefill([9, 9, 9])
        scheduler = engine.scheduler
        scheduler.reset()
        for _ in range(20):
            engine.step(state, result, scheduler=scheduler)
        engine.finish(state, result)
        assert result.tokens == reference.tokens
        assert result.exit_layers == reference.exit_layers
        assert result.saturations == reference.saturations

    def test_step_record_carries_hidden_only_when_asked(self, rig):
        engine = rig.specee_engine()
        state, result = engine.prefill([1, 2, 3])
        engine.scheduler.reset()
        record = engine.step(state, result, capture_hidden=True)
        assert record.hidden is not None
        assert record.hidden.shape == (rig.model.hidden_dim,)
        plain = engine.step(state, result)
        assert plain.hidden is None  # plain generation skips the copy
