"""Tests for the draft models and the transformer LayeredLM backend."""

import numpy as np
import pytest

from repro.baselines import DenseEngine
from repro.model.draft import DraftTree, Speculator, TreeDrafter
from repro.model.oracle import NGramOracle
from repro.model.transformer_backend import TransformerLayeredLM
from repro.nn.transformer import TransformerConfig


@pytest.fixture(scope="module")
def oracle():
    return NGramOracle(256, order=3, seed=3)


class TestSpeculator:
    def test_proposes_k_distinct_tokens(self, oracle):
        spec = Speculator(oracle, k=4, hit_rate=0.8)
        tokens = spec.propose([1, 2, 3])
        assert len(tokens) == 4
        assert len(set(int(t) for t in tokens)) == 4

    def test_hit_rate_calibrated(self, oracle):
        spec = Speculator(oracle, k=4, hit_rate=0.8)
        ctx = [5, 6, 7]
        hits = 0
        for _ in range(400):
            target = oracle.target(ctx)
            hits += int(target in spec.propose(ctx))
            ctx.append(target)
        assert 0.72 < hits / 400 < 0.88

    def test_hit_zero_never_contains_target(self, oracle):
        spec = Speculator(oracle, k=4, hit_rate=0.0)
        ctx = [9, 9, 9]
        for _ in range(50):
            target = oracle.target(ctx)
            assert target not in spec.propose(ctx)
            ctx.append(target)

    def test_is_hit_consistent_with_propose(self, oracle):
        spec = Speculator(oracle, k=4, hit_rate=0.5)
        ctx = [2, 8, 1]
        for _ in range(60):
            target = oracle.target(ctx)
            assert spec.is_hit(ctx) == (target in spec.propose(ctx))
            ctx.append(target)

    def test_rejects_bad_params(self, oracle):
        with pytest.raises(ValueError):
            Speculator(oracle, k=0)
        with pytest.raises(ValueError):
            Speculator(oracle, hit_rate=1.5)


class TestDraftTree:
    def test_structure_helpers(self):
        tree = DraftTree()
        a = tree.add(10, -1)
        b = tree.add(11, -1)
        c = tree.add(12, a)
        assert tree.children_of(a) == [c]
        assert tree.path_to(c) == [a, c]
        assert set(tree.leaves()) == {b, c}
        assert tree.paths() == [[b], [a, c]] or tree.paths() == [[a, c], [b]]

    def test_len(self):
        tree = DraftTree()
        tree.add(1, -1)
        assert len(tree) == 1


class TestTreeDrafter:
    def test_tree_shape(self, oracle):
        drafter = TreeDrafter(oracle, depth=4, top_branches=4, level_hit_rate=0.8)
        tree = drafter.build([1, 2, 3])
        assert len(tree) == 4 + 2 * 3  # level 1 + 2 nodes per deeper level
        roots = [i for i, p in enumerate(tree.parents) if p < 0]
        assert len(roots) == 4
        assert max(len(p) for p in tree.paths()) == 4

    def test_deterministic(self, oracle):
        drafter = TreeDrafter(oracle, depth=3, level_hit_rate=0.7)
        t1 = drafter.build([4, 5, 6])
        t2 = drafter.build([4, 5, 6])
        assert t1.tokens == t2.tokens and t1.parents == t2.parents

    def test_level_hit_rate_controls_acceptance(self, oracle):
        """Expected greedy-acceptance length must track the hit rate."""
        def mean_accept(rate, n=150):
            drafter = TreeDrafter(oracle, depth=4, level_hit_rate=rate)
            ctx = [3, 1, 4]
            total = 0
            for _ in range(n):
                tree = drafter.build(ctx)
                parent, expected, acc = -1, oracle.target(ctx), 0
                path: list = []
                while True:
                    children = [i for i, p in enumerate(tree.parents) if p == parent]
                    match = next((i for i in children if tree.tokens[i] == expected), None)
                    if match is None:
                        break
                    acc += 1
                    path.append(tree.tokens[match])
                    expected = oracle.target(ctx + path)
                    parent = match
                total += acc
                ctx.append(oracle.target(ctx))
            return total / n

        assert mean_accept(0.9) > mean_accept(0.3) + 0.8


class TestTransformerBackend:
    @pytest.fixture(scope="class")
    def backend(self):
        cfg = TransformerConfig(vocab_size=64, dim=32, n_layers=3, n_heads=4,
                                intermediate_dim=48, max_positions=128)
        return TransformerLayeredLM(cfg, seed=0, max_tokens=128)

    def test_dense_generation_runs(self, backend):
        engine = DenseEngine(backend)
        result = engine.generate([1, 2, 3], 8)
        assert len(result.tokens) == 8
        assert all(0 <= t < backend.vocab_size for t in result.tokens)

    def test_early_commit_fills_kv(self, backend):
        state = backend.start([4, 5, 6])
        backend.begin_step(state)
        backend.run_to_layer(state, 0)  # exit after the first layer
        backend.commit(state, 9, 0)
        for layer in range(backend.n_layers):
            assert state.cache.length(layer) == 4  # prompt 3 + 1 committed

    def test_layer_order_enforced(self, backend):
        state = backend.start([1, 1, 1])
        backend.begin_step(state)
        backend.layer_forward(state, 0)
        with pytest.raises(ValueError):
            backend.layer_forward(state, 2)

    def test_script_rejected(self, backend):
        with pytest.raises(ValueError):
            backend.start([1], script=[2])

    def test_slice_matches_full(self, backend):
        state = backend.start([2, 3, 4])
        backend.begin_step(state)
        h = backend.run_to_layer(state, backend.n_layers - 1)
        ids = np.array([0, 9, 33])
        assert np.allclose(backend.lm_head_slice(h, ids), backend.lm_head_full(h)[ids])
        backend.commit(state, 0, backend.n_layers - 1)


class TestTransformerBatchedDecode:
    CFG = TransformerConfig(vocab_size=64, dim=32, n_layers=3, n_heads=4,
                            intermediate_dim=48, max_positions=128)

    def fresh_pair(self):
        return (TransformerLayeredLM(self.CFG, seed=0, max_tokens=128),
                TransformerLayeredLM(self.CFG, seed=0, max_tokens=128))

    def test_supports_batched_decode_flag(self):
        backend, _ = self.fresh_pair()
        assert backend.supports_batched_decode

    def test_step_batch_token_identical_to_scalar_loop(self):
        """Batched greedy decode with ragged per-sequence exit layers equals
        the scalar begin/run_to_layer/commit loop, token for token."""
        batched, scalar = self.fresh_pair()
        prompts = [[1, 2, 3], [7, 8, 9, 10, 11], [4]]  # ragged lengths
        states_b = [batched.start(p) for p in prompts]
        states_s = [scalar.start(p) for p in prompts]
        rng = np.random.default_rng(5)
        for _ in range(10):
            exits = [int(rng.integers(0, self.CFG.n_layers)) for _ in prompts]
            tokens_b = batched.step_batch(states_b, exits)
            tokens_s = []
            for state, exit_layer in zip(states_s, exits):
                scalar.begin_step(state)
                hidden = scalar.run_to_layer(state, exit_layer)
                token = scalar.greedy_token(hidden)
                scalar.commit(state, token, exit_layer)
                tokens_s.append(token)
            assert tokens_b == tokens_s

    def test_step_batch_fills_kv_for_skipped_layers(self):
        backend, _ = self.fresh_pair()
        states = [backend.start([3, 1]), backend.start([9, 9, 9])]
        backend.step_batch(states, [0, backend.n_layers - 1])
        for state in states:
            for layer in range(backend.n_layers):
                assert state.cache.length(layer) == len(state.context)

    def test_step_batch_validates_inputs(self):
        backend, _ = self.fresh_pair()
        states = [backend.start([1, 2])]
        with pytest.raises(ValueError):
            backend.step_batch(states, [0, 1])  # length mismatch
        with pytest.raises(ValueError):
            backend.step_batch(states, [backend.n_layers])  # out of range
        assert backend.step_batch([], []) == []

    def test_layer_forward_batch_enforces_order(self):
        backend, _ = self.fresh_pair()
        states = [backend.start([1, 2, 3])]
        backend.begin_step_batch(states)
        backend.layer_forward_batch(states, 0)
        with pytest.raises(ValueError):
            backend.layer_forward_batch(states, 2)

    def test_mid_batch_retirement_is_equivalent(self):
        """A sequence leaving the batch must not perturb the others: decode
        three sequences together, then continue two alone, and compare with
        decoding the two in a pair the whole way."""
        batched, scalar = self.fresh_pair()
        trio = [batched.start([5, 6]), batched.start([7, 8]), batched.start([9])]
        pair = [scalar.start([5, 6]), scalar.start([7, 8])]
        kept_tokens, pair_tokens = [], []
        for step in range(8):
            exits = [1, 2, 0]
            live = trio if step < 4 else trio[:2]  # third retires mid-run
            tokens = batched.step_batch(live, exits[: len(live)])
            kept_tokens.append(tokens[:2])
            pair_tokens.append(scalar.step_batch(pair, exits[:2]))
        assert kept_tokens == pair_tokens
