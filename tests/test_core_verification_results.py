"""Tests for the verification algorithm and result containers."""

import math

import numpy as np
import pytest

from repro.config import SimDims
from repro.core.engine import GenerationResult, StepRecord
from repro.core.spec_engine import IterationRecord, SpecDecodeResult
from repro.core.verification import verify_exit
from repro.hardware.ledger import CostLedger
from repro.model.profiles import get_profile
from repro.model.synthetic import SyntheticLayeredLM


@pytest.fixture(scope="module")
def lm():
    return SyntheticLayeredLM(get_profile("llama2-7b"), SimDims(), seed=13)


class TestVerifyExit:
    def test_accepts_argmax_in_set(self, lm):
        state = lm.start([2, 2, 2])
        lm.begin_step(state)
        target = state.plan.target
        hidden = lm.run_to_layer(state, lm.n_layers - 1)  # fully saturated
        verdict = verify_exit(lm, hidden, [target, 5, 6, 7])
        assert verdict.ok and verdict.token == target

    def test_rejects_argmax_outside_set(self, lm):
        state = lm.start([3, 3, 3])
        lm.begin_step(state)
        target = state.plan.target
        hidden = lm.run_to_layer(state, lm.n_layers - 1)
        candidates = [t for t in (5, 6, 7, 8) if t != target]
        verdict = verify_exit(lm, hidden, candidates)
        assert not verdict.ok
        assert verdict.token == target  # it still reports the global argmax

    def test_pre_saturation_argmax_is_dominant(self, lm):
        state = lm.start([4, 4, 4])
        lm.begin_step(state)
        plan = state.plan
        if plan.saturation_layer > 8 and plan.transient is None:
            hidden = lm.run_to_layer(state, 2)
            verdict = verify_exit(lm, hidden, [plan.target])
            assert not verdict.ok
            assert verdict.token == plan.dominant


def record(exit_layer, early=True, evals=3):
    return StepRecord(token=1, exit_layer=exit_layer, early_exit=early,
                      predictor_evals=evals, verify_attempts=1,
                      active_predictors=10.0, draft_hit=True)


class TestGenerationResult:
    def test_avg_exit_layer_one_based(self):
        result = GenerationResult(exit_layers=[9, 19],
                                  records=[record(9), record(19)])
        assert result.avg_exit_layer == pytest.approx(15.0)

    def test_empty_result_nans(self):
        result = GenerationResult()
        assert math.isnan(result.avg_exit_layer)
        assert math.isnan(result.early_exit_rate)
        assert math.isnan(result.perplexity)

    def test_perplexity_from_logprobs(self):
        result = GenerationResult(logprobs=[-1.0, -3.0])
        assert result.perplexity == pytest.approx(np.exp(2.0))

    def test_early_exit_rate(self):
        result = GenerationResult(records=[record(5, True), record(31, False)])
        assert result.early_exit_rate == pytest.approx(0.5)


class TestSpecDecodeResult:
    def test_tokens_per_iteration(self):
        result = SpecDecodeResult(iterations=[
            IterationRecord(10, 2, 3, 20, True, 5),
            IterationRecord(10, 0, 1, 31, False, 2),
        ])
        assert result.tokens_per_iteration == pytest.approx(2.0)
        assert result.avg_exit_layer == pytest.approx(26.5)  # mean(21, 32), 1-based

    def test_empty_nan(self):
        assert math.isnan(SpecDecodeResult().tokens_per_iteration)
