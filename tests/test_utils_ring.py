"""Tests for the circular queue (including a model-based hypothesis check)."""

from collections import deque

import pytest
from hypothesis import given, strategies as st

from repro.utils.ring import CircularQueue


class TestCircularQueue:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            CircularQueue(0)

    def test_push_until_full(self):
        q = CircularQueue(3)
        assert q.push(1) is None
        assert q.push(2) is None
        assert q.push(3) is None
        assert q.full

    def test_eviction_order_fifo(self):
        q = CircularQueue(2)
        q.push(1)
        q.push(2)
        assert q.push(3) == 1
        assert q.push(4) == 2
        assert list(q) == [3, 4]

    def test_newest(self):
        q = CircularQueue(3)
        assert q.newest() is None
        q.push(5)
        q.push(9)
        assert q.newest() == 9

    def test_contains(self):
        q = CircularQueue(2)
        q.push(1)
        assert 1 in q
        assert 7 not in q

    def test_clear(self):
        q = CircularQueue(2)
        q.push(1)
        q.clear()
        assert len(q) == 0
        assert q.newest() is None

    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.integers(min_value=0, max_value=40), max_size=60))
    def test_matches_bounded_deque_model(self, capacity, values):
        q = CircularQueue(capacity)
        model = deque(maxlen=capacity)
        for v in values:
            expected_evicted = model[0] if len(model) == capacity else None
            evicted = q.push(v)
            model.append(v)
            assert evicted == expected_evicted
            assert list(q) == list(model)
            assert q.newest() == model[-1]
