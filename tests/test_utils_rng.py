"""Tests for deterministic RNG streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import RngFactory, child_rng, hash_to_uint64


class TestHashToUint64:
    def test_deterministic(self):
        assert hash_to_uint64("a", 1, (2, 3)) == hash_to_uint64("a", 1, (2, 3))

    def test_distinct_inputs_distinct_hashes(self):
        values = {hash_to_uint64("tag", i) for i in range(1000)}
        assert len(values) == 1000

    def test_order_sensitive(self):
        assert hash_to_uint64("a", "b") != hash_to_uint64("b", "a")

    @given(st.integers(), st.text(max_size=20))
    def test_range(self, n, s):
        h = hash_to_uint64(n, s)
        assert 0 <= h < 2**64


class TestChildRng:
    def test_same_tags_same_stream(self):
        a = child_rng(7, "x").standard_normal(5)
        b = child_rng(7, "x").standard_normal(5)
        assert np.array_equal(a, b)

    def test_different_tags_different_stream(self):
        a = child_rng(7, "x").standard_normal(5)
        b = child_rng(7, "y").standard_normal(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_stream(self):
        a = child_rng(7, "x").standard_normal(5)
        b = child_rng(8, "x").standard_normal(5)
        assert not np.array_equal(a, b)


class TestRngFactory:
    def test_get_reproducible(self):
        f = RngFactory(11)
        assert np.array_equal(f.get("w").random(3), RngFactory(11).get("w").random(3))

    def test_derive_changes_root(self):
        f = RngFactory(11)
        d = f.derive("sub")
        assert d.seed != f.seed
        assert d.seed == f.derive("sub").seed

    def test_uniform_in_unit_interval(self):
        f = RngFactory(3)
        for tag in range(50):
            u = f.uniform("t", tag)
            assert 0.0 <= u < 1.0

    def test_streams_decorrelated(self):
        f = RngFactory(5)
        a = f.get("one").standard_normal(2000)
        b = f.get("two").standard_normal(2000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1
