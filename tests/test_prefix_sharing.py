"""Prefix sharing end to end: radix-tree adoption, copy-on-write isolation
(a hypothesis property pins bit-exactness against an unshared reference),
LRU leaf eviction, chat-trace structure, session-affinity routing,
per-tenant fairness, and token identity on the real serving engines."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.harness import build_rig
from repro.hardware.ledger import Event
from repro.serving import (
    FairTenantPolicy,
    PagedKVCache,
    Request,
    SessionAffinityRouting,
    chat_trace,
    prompt_kv,
)

RIG_KWARGS = dict(train_prompts=6, train_tokens=30, predictor_hidden=128, epochs=10)

HEADS, DIM = 2, 3


def make_cache(n_blocks=32, block_size=4, prefix_share=True):
    return PagedKVCache(n_blocks=n_blocks, block_size=block_size,
                        n_kv_heads=HEADS, head_dim=DIM,
                        prefix_share=prefix_share)


def reference_fill(cache, seq_id, prompt, decode=()):
    """Prefill + decode a sequence the unshared way (one owner per block)."""
    cache.add_sequence(seq_id)
    for position, token in enumerate(prompt):
        k, v = prompt_kv(token, position, HEADS, DIM)
        cache.append(seq_id, k, v)
    for position, token in enumerate(decode, start=len(prompt)):
        k, v = prompt_kv(token, position, HEADS, DIM)
        cache.append(seq_id, k, v)


@pytest.fixture(scope="module")
def rig():
    return build_rig("llama2-7b", **RIG_KWARGS)


class TestRadixAdoption:
    def test_identical_prompt_adopts_every_block(self):
        cache = make_cache()
        prompt = list(range(10))
        assert cache.prefill_prompt(0, prompt) == 0
        blocks_after_first = cache.blocks_in_use()
        assert cache.prefill_prompt(1, prompt) == 10
        # Full adoption allocates nothing: both sequences share one set.
        assert cache.blocks_in_use() == blocks_after_first
        assert cache.block_table(0) == cache.block_table(1)
        assert cache.prefix_hit_rate() == pytest.approx(0.5)

    def test_partial_block_longest_common_prefix(self):
        cache = make_cache(block_size=4)
        cache.prefill_prompt(0, [1, 2, 3, 4, 5, 6, 7, 8])
        # Shares one full block, then 2 of 4 tokens inside the second.
        matched = cache.prefill_prompt(1, [1, 2, 3, 4, 5, 6, 99, 100])
        assert matched == 6
        k0, _ = cache.gather(0)
        k1, _ = cache.gather(1)
        np.testing.assert_array_equal(k0[:6], k1[:6])
        expected_k, _ = prompt_kv(99, 6, HEADS, DIM)
        np.testing.assert_array_equal(k1[6], expected_k)
        # The divergent suffix copied out of the shared tail block (COW).
        assert cache.cow_copies == 1
        assert cache.block_table(0)[1] != cache.block_table(1)[1]

    def test_partial_tail_leaf_is_adoptable_but_childless(self):
        cache = make_cache(block_size=4)
        cache.prefill_prompt(0, [1, 2, 3, 4, 5, 6])
        assert cache.prefill_prompt(1, [1, 2, 3, 4, 5, 6]) == 6
        # A longer prompt can only match the partial tail's 2 tokens; the
        # walk must stop there rather than descend past a half-full block.
        assert cache.prefill_prompt(2, [1, 2, 3, 4, 5, 6, 7, 8]) == 6

    def test_prefill_requires_sharing_mode(self):
        cache = make_cache(prefix_share=False)
        with pytest.raises(ValueError, match="prefix_share"):
            cache.prefill_prompt(0, [1, 2, 3])

    def test_prefill_is_atomic_on_exhaustion(self):
        cache = make_cache(n_blocks=2, block_size=4)
        with pytest.raises(MemoryError):
            cache.prefill_prompt(0, list(range(12)))
        assert cache.blocks_in_use() == 0
        assert cache.allocator.free_blocks == 2
        with pytest.raises(KeyError):
            cache.length(0)


class TestCopyOnWrite:
    @settings(max_examples=60, deadline=None)
    @given(
        base=st.lists(st.integers(0, 7), min_size=1, max_size=14),
        forks=st.lists(
            st.tuples(st.lists(st.integers(0, 7), min_size=0, max_size=6),
                      st.lists(st.integers(0, 7), min_size=1, max_size=6)),
            min_size=1, max_size=4),
    )
    def test_shared_decode_never_aliases(self, base, forks):
        """Sequences that adopt a common prefix then diverge must stay
        bit-identical to an unshared reference cache, and retiring them all
        must drain the pool back to empty."""
        shared = make_cache(n_blocks=64, block_size=4, prefix_share=True)
        reference = make_cache(n_blocks=64, block_size=4, prefix_share=False)
        plans = [(0, list(base), [])]
        for i, (extra, decode) in enumerate(forks, start=1):
            plans.append((i, list(base) + extra, decode))
        for seq_id, prompt, decode in plans:
            shared.prefill_prompt(seq_id, prompt)
            for position, token in enumerate(decode, start=len(prompt)):
                k, v = prompt_kv(token, position, HEADS, DIM)
                shared.append(seq_id, k, v)
            reference_fill(reference, seq_id, prompt, decode)
        for seq_id, _, _ in plans:
            ks, vs = shared.gather(seq_id)
            kr, vr = reference.gather(seq_id)
            np.testing.assert_array_equal(ks, kr)
            np.testing.assert_array_equal(vs, vr)
        for seq_id, _, _ in plans:
            shared.free_sequence(seq_id)
        shared.reset_prefix_cache()
        assert shared.prefix_blocks() == 0
        assert shared.allocator.free_blocks == 64
        assert shared.blocks_in_use() == 0

    def test_cow_preserves_the_shared_block(self):
        cache = make_cache(block_size=4)
        cache.prefill_prompt(0, [1, 2, 3, 4, 5, 6])
        cache.prefill_prompt(1, [1, 2, 3, 4, 5, 6])
        before_k, _ = cache.gather(0)
        k, v = prompt_kv(77, 6, HEADS, DIM)
        cache.append(1, k, v)  # divergent write -> COW clone for seq 1
        after_k, _ = cache.gather(0)
        np.testing.assert_array_equal(before_k, after_k)
        assert cache.cow_copies == 1


class TestEvictionAndReset:
    def test_allocation_pressure_evicts_cold_leaves(self):
        cache = make_cache(n_blocks=4, block_size=4)
        cache.prefill_prompt(0, list(range(12)))  # 3 blocks, tree-published
        cache.free_sequence(0)  # tree still holds all 3
        assert cache.allocator.free_blocks == 1
        # A disjoint prompt needs 3 blocks: the tree's cold leaves must go.
        cache.prefill_prompt(1, list(range(100, 112)))
        assert cache.length(1) == 12
        assert cache.prefix_evictions >= 2

    def test_evict_prefix_leaves_skips_live_blocks(self):
        cache = make_cache(n_blocks=8, block_size=4)
        cache.prefill_prompt(0, list(range(8)))
        # Every tree block is also held by the live sequence: nothing to take.
        assert cache.evict_prefix_leaves(8) == 0
        cache.free_sequence(0)
        assert cache.evict_prefix_leaves(1) == 1
        assert cache.evict_prefix_leaves(8) == 1  # only the ex-leaf's parent left
        assert cache.allocator.free_blocks == 8

    def test_reset_keeps_live_sequences_resident(self):
        cache = make_cache(n_blocks=8, block_size=4)
        cache.prefill_prompt(0, list(range(8)))
        released = cache.reset_prefix_cache()
        assert released == 2
        assert cache.prefix_blocks() == 0
        k, _ = cache.gather(0)
        assert k.shape[0] == 8  # the live sequence kept its blocks
        cache.free_sequence(0)
        assert cache.allocator.free_blocks == 8


class TestChatTrace:
    def test_sessions_turns_and_prefix_extension(self):
        trace = chat_trace(5, 64, tenants=2, turns=3, seed=3)
        assert len(trace) == 15
        assert trace.kind == "chat"
        by_session = {}
        for request in trace:
            by_session.setdefault(request.session_id, []).append(request)
        assert len(by_session) == 5
        for requests in by_session.values():
            requests.sort(key=lambda r: r.turn)
            assert [r.turn for r in requests] == [0, 1, 2]
            assert len({r.tenant_id for r in requests}) == 1
            arrivals = [r.arrival_s for r in requests]
            assert arrivals == sorted(arrivals)
            for prev, nxt in zip(requests, requests[1:]):
                # Each follow-up prompt re-presents the prior prompt exactly.
                assert nxt.prompt[:len(prev.prompt)] == prev.prompt
                assert len(nxt.prompt) > len(prev.prompt)

    def test_tenants_share_a_system_prompt(self):
        trace = chat_trace(6, 64, tenants=2, turns=1, seed=0)
        openers = {}
        for request in trace:
            openers.setdefault(request.tenant_id, []).append(request.prompt)
        for prompts in openers.values():
            # All sessions of a tenant open with the same system prompt.
            assert len({tuple(p[:8]) for p in prompts}) == 1
        # Different tenants use different system prompts.
        first = [prompts[0] for prompts in openers.values()]
        assert tuple(first[0][:8]) != tuple(first[1][:8])

    def test_arrivals_sorted_and_ids_sequential(self):
        trace = chat_trace(4, 64, turns=2, seed=1)
        assert [r.request_id for r in trace] == list(range(len(trace)))
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)


class _StubReplica:
    def __init__(self, load):
        self._load = load

    def kv_load_blocks(self):
        return self._load


class TestSessionAffinityRouting:
    def test_follow_up_turns_stick_to_home(self):
        policy = SessionAffinityRouting()
        replicas = [_StubReplica(5), _StubReplica(0)]
        opener = Request(0, [1], 4, session_id=7, turn=0)
        assert policy.choose(replicas, opener, [0, 1]) == 1
        replicas[1]._load = 50  # home got busy; affinity must still win
        follow = Request(1, [1, 2], 4, session_id=7, turn=1)
        assert policy.choose(replicas, follow, [0, 1]) == 1

    def test_crashed_home_rehomes_by_load(self):
        policy = SessionAffinityRouting()
        replicas = [_StubReplica(5), _StubReplica(0), _StubReplica(2)]
        policy.choose(replicas, Request(0, [1], 4, session_id=3), [0, 1, 2])
        # Replica 1 (home) drops out of the candidates: re-home to least load.
        moved = policy.choose(replicas, Request(1, [1, 2], 4, session_id=3),
                              [0, 2])
        assert moved == 2
        # The new home sticks afterwards, even once replica 1 returns.
        assert policy.choose(replicas, Request(2, [1, 2, 3], 4, session_id=3),
                             [0, 1, 2]) == 2

    def test_sessionless_requests_balance_by_load(self):
        policy = SessionAffinityRouting()
        replicas = [_StubReplica(5), _StubReplica(0)]
        assert policy.choose(replicas, Request(0, [1], 4), [0, 1]) == 1
        assert policy.reset() is None


class TestFairTenantPolicy:
    def test_least_served_tenant_goes_first(self):
        policy = FairTenantPolicy()
        a = Request(0, [1], 4, tenant_id=0)
        b = Request(1, [1], 4, tenant_id=1)
        policy.on_progress(a, 10)
        assert policy.served(0) == 10 and policy.served(1) == 0
        assert policy.queue_key(b) < policy.queue_key(a)
        policy.on_progress(b, 20)
        assert policy.queue_key(a) < policy.queue_key(b)
        policy.reset()
        assert policy.served(0) == 0

    def test_victims_come_from_the_most_served_tenant(self):
        policy = FairTenantPolicy()

        class Seq:
            def __init__(self, request):
                self.request = request

        hog = Seq(Request(0, [1], 4, tenant_id=0))
        newcomer = Seq(Request(1, [1], 4, tenant_id=1))
        policy.on_progress(hog.request, 100)
        assert (policy.victim_key(hog, 0.0, 0.0)
                < policy.victim_key(newcomer, 0.0, 0.0))


class TestServingIdentity:
    """Sharing is a latency optimization: tokens must never change."""

    def chat(self, rig, **kw):
        kwargs = dict(tenants=2, turns=3, rate_per_s=12.0,
                      max_new_tokens_range=(4, 10), seed=5)
        kwargs.update(kw)
        return chat_trace(6, rig.model.vocab_size, **kwargs)

    def test_async_sharing_token_identical(self, rig):
        trace = self.chat(rig)
        engine_kwargs = dict(batch_capacity=6, kv_blocks=96, block_size=4,
                             chunk_prefill_tokens=32)
        off = rig.async_serving_engine(**engine_kwargs).run(trace)
        on_engine = rig.async_serving_engine(prefix_share=True, **engine_kwargs)
        on = on_engine.run(trace)
        assert on.prefix_share and not off.prefix_share
        for request in trace:
            assert (list(on.results[request.request_id].tokens)
                    == list(off.results[request.request_id].tokens))
        assert on.prefix_hit_rate > 0.3
        assert on.prefix_matched_tokens > 0
        ledger = on.serving_ledger
        assert ledger.units(Event.PREFIX_REUSE) == on.prefix_matched_tokens
        # Adopted tokens skip prefill: fewer PREFILL_LAYER units than the
        # no-sharing run charged for the identical trace.
        assert (ledger.units(Event.PREFILL_LAYER)
                < off.serving_ledger.units(Event.PREFILL_LAYER))
        for metrics in on.metrics.values():
            assert metrics.ttft_s is not None and metrics.ttft_s >= 0
        assert not math.isnan(on.mean_ttft_s) and not math.isnan(off.mean_ttft_s)

    def test_sync_sharing_token_identical(self, rig):
        prompts = [[1, 2, 3, 4, 5, 6, 7, 8, 9 + i] for i in range(4)]
        requests = [Request(i, p, 6) for i, p in enumerate(prompts)]
        engine_kwargs = dict(batch_capacity=4, kv_blocks=64, block_size=4)
        off = rig.serving_engine(**engine_kwargs).run(requests)
        on = rig.serving_engine(prefix_share=True, **engine_kwargs).run(
            [Request(i, p, 6) for i, p in enumerate(prompts)])
        for i in range(len(requests)):
            assert list(on.results[i].tokens) == list(off.results[i].tokens)
        assert on.prefix_share and on.prefix_matched_tokens > 0
        ledger = on.serving_ledger
        assert ledger.units(Event.PREFIX_REUSE) == on.prefix_matched_tokens
        assert (ledger.units(Event.PREFILL_LAYER)
                < off.serving_ledger.units(Event.PREFILL_LAYER))
