"""Integration smoke tests: every paper-artifact experiment runs at small
scale and reproduces the paper's qualitative shape.

These share the process-level rig/asset caches, so the suite trains each
model's predictors once.
"""

import math

import pytest

from repro.experiments import REGISTRY


@pytest.fixture(scope="module")
def results():
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = REGISTRY[name].run("small")
        return cache[name]

    return get


class TestRegistry:
    def test_all_artifacts_present(self):
        expected = {
            "fig01_pareto", "fig01_layer_share", "fig05_probability_shift",
            "fig06_feature_necessity", "fig07_forward_layers", "fig08_dse",
            "fig10_distribution", "fig11_context_similarity", "fig14_cloud_ar",
            "fig15_cloud_spec", "fig16_pc", "fig17_memory",
            "fig18_training_ratio", "fig19_ablation", "table01_related",
            "table02_03_configs", "table04_accuracy", "sec73_energy",
            "sec74_overhead",
        }
        assert expected == set(REGISTRY)


class TestMotivation:
    def test_fig01_layer_share_dominates(self, results):
        r = results("fig01_layer_share")
        assert 70 <= r.metric("ar_share_llama2-7b") <= 97
        assert 60 <= r.metric("spec_share_llama2-7b") <= 97

    def test_fig05_probability_shift(self, results):
        r = results("fig05_probability_shift")
        assert r.metric("hit_final_top_prob") > 0.6
        assert r.metric("miss_final_top_prob") < 0.1
        assert r.metric("shift_layer_error") <= 2.0


class TestPredictor:
    def test_fig06_all_features_necessary(self, results):
        r = results("fig06_feature_necessity")
        assert r.metric("full_accuracy") > 80
        assert r.metric("variation_only_gap") > 2
        assert r.metric("probs_only_gap") > 2

    def test_fig08_dse_optimum(self, results):
        r = results("fig08_dse")
        assert r.metric("acc_2layer_512") > 85
        assert r.metric("optimality_gap") < 4.0
        assert r.metric("time_2layer_512_ms") < 1.0

    def test_fig18_small_data_suffices(self, results):
        r = results("fig18_training_ratio")
        assert r.metric("plateau_gap_llama2-7b") < 15.0

    def test_fig07_specee_close_to_theoretical(self, results):
        r = results("fig07_forward_layers")
        assert r.metric("specee_norm_llama2-7b") > 80
        assert (r.metric("specee_norm_llama2-7b")
                >= r.metric("adainfer_norm_llama2-7b") - 8)


class TestScheduling:
    def test_fig10_skew_and_dynamic_wins(self, results):
        r = results("fig10_distribution")
        assert r.metric("below_avg_layer_share_llama2-7b") > 0.35
        assert r.metric("bottom_half_mass_llama2-7b") < 0.25
        assert r.metric("dynamic_speedup") > r.metric("best_fixed_speedup") - 0.05

    def test_fig11_context_similarity_gap(self, results):
        r = results("fig11_context_similarity")
        assert r.metric("actual_hit_n5") > r.metric("theoretical_hit_n5") + 15
        assert 6 <= r.metric("avg_union_n5") <= 18


class TestEndToEnd:
    def test_fig14_cloud_speedups(self, results):
        r = results("fig14_cloud_ar")
        for key, value in r.headline.items():
            assert value > 1.0, f"{key} not a speedup: {value}"

    def test_fig15_specee_helps_eagle(self, results):
        r = results("fig15_cloud_spec")
        assert r.metric("speedup_eagle_llama2-7b") > 0.95

    def test_fig16_pc_speedups(self, results):
        r = results("fig16_pc")
        assert r.metric("speedup_llama.cpp") > 1.1
        assert r.metric("speedup_powerinfer") > 1.05

    def test_fig19_ablation_monotone(self, results):
        r = results("fig19_ablation")
        assert 1.0 < r.metric("speedup_t1")
        assert r.metric("speedup_t1") < r.metric("speedup_t1_t2")
        assert r.metric("speedup_t1_t2") < r.metric("speedup_total")

    def test_fig01_pareto_pushed(self, results):
        r = results("fig01_pareto")
        assert r.metric("specee_hf_speedup") > 1.0
        assert r.metric("specee_norm_accuracy") > 0.97


class TestAccuracyAndOverheads:
    def test_table04_accuracy_preserved(self, results):
        r = results("table04_accuracy")
        assert r.metric("max_acc_delta_llama2-7b") <= 6.0
        layers = r.metric("specee_layers_llama2-7b_mmlu")
        assert 18 < layers < 29

    def test_table01_specee_lightest_prediction(self, results):
        r = results("table01_related")
        assert (r.metric("predict_share_specee")
                < r.metric("predict_share_adainfer"))
        assert r.metric("tps_specee") > r.metric("tps_adainfer")

    def test_fig17_memory_overheads(self, results):
        r = results("fig17_memory")
        assert 0.5 < r.metric("overhead_gib_llama2-7b") < 1.3
        assert 0.9 < r.metric("overhead_gib_llama2-13b") < 1.9
        assert r.metric("predictors_kib_llama2-7b") < 1024

    def test_sec73_energy_direction(self, results):
        r = results("sec73_energy")
        assert r.metric("specee_power_w") < r.metric("dense_power_w")
        assert r.metric("energy_efficiency_x") > 1.05
        assert 120 < r.metric("predictor_power_a100_w") < 170

    def test_sec74_predictor_overhead_small(self, results):
        r = results("sec74_overhead")
        assert r.metric("predictor_share_pct") < 12.0
        assert r.metric("seconds_per_token") < 0.05

    def test_configs_tables(self, results):
        r = results("table02_03_configs")
        assert r.metric("n_models") >= 4

    def test_render_all(self, results):
        for name in ("fig19_ablation", "table04_accuracy"):
            text = results(name).render()
            assert "====" in text and "|" in text
