"""The repro.training package: LayerSkip recipe, weight export fidelity,
draft distillation, and the trained rig actually firing verified exits."""

import numpy as np
import pytest

from repro.config import SpecEEConfig
from repro.data.corpus import generate_corpus, generate_prompts
from repro.model.oracle import NGramOracle
from repro.nn.autograd import no_grad
from repro.nn.transformer import (
    TinyTransformerLM,
    TrainableTransformerLM,
    TransformerConfig,
)
from repro.training import (
    DistilledNGramDraft,
    LayerSkipConfig,
    export_inference_lm,
    layer_agreement,
    train_layerskip,
)
from repro.training.layerskip import _curriculum_exits, _keep_mask

TINY_CFG = TransformerConfig(vocab_size=32, dim=16, n_layers=4, n_heads=2,
                             intermediate_dim=24, max_positions=64)


class TestLayerSkipConfig:
    def test_defaults_are_valid(self):
        cfg = LayerSkipConfig()
        assert cfg.curriculum == "rotational"

    @pytest.mark.parametrize("kwargs", [
        dict(steps=0),
        dict(batch_size=0),
        dict(max_layer_dropout=-0.1),
        dict(max_layer_dropout=1.0),
        dict(early_exit_scale=-1.0),
        dict(curriculum="linear"),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LayerSkipConfig(**kwargs)


class TestCurriculum:
    CANDIDATES = [2, 3, 4, 5, 6]

    def test_all_supervises_every_candidate(self):
        cfg = LayerSkipConfig(curriculum="all", steps=10)
        for step in range(10):
            assert _curriculum_exits(step, cfg, self.CANDIDATES) == self.CANDIDATES

    def test_rotational_cycles_one_per_step(self):
        cfg = LayerSkipConfig(curriculum="rotational", steps=10)
        picked = [_curriculum_exits(s, cfg, self.CANDIDATES) for s in range(10)]
        assert all(len(p) == 1 for p in picked)
        assert [p[0] for p in picked[:5]] == self.CANDIDATES

    def test_gradual_phases_in_from_the_deepest(self):
        cfg = LayerSkipConfig(curriculum="gradual", steps=10)
        first = _curriculum_exits(0, cfg, self.CANDIDATES)
        last = _curriculum_exits(9, cfg, self.CANDIDATES)
        assert first == [6]
        assert last == self.CANDIDATES
        sizes = [len(_curriculum_exits(s, cfg, self.CANDIDATES))
                 for s in range(10)]
        assert sizes == sorted(sizes)


class TestKeepMask:
    def test_zero_dropout_keeps_everything(self):
        rng = np.random.default_rng(0)
        assert _keep_mask(rng, 8, 0.0) == [True] * 8

    def test_layer_zero_never_dropped_and_depth_increases_dropout(self):
        rng = np.random.default_rng(0)
        masks = np.array([_keep_mask(rng, 8, 0.5) for _ in range(400)])
        keep_rate = masks.mean(axis=0)
        assert keep_rate[0] == 1.0
        assert keep_rate[-1] == pytest.approx(0.5, abs=0.08)
        # Depth-increasing dropout => depth-decreasing keep rate, roughly.
        assert keep_rate[1] > keep_rate[-1]


class TestTrainLayerskip:
    def test_rejects_bad_corpus_and_min_exit_layer(self):
        model = TrainableTransformerLM(TINY_CFG, seed=0, rope=True)
        with pytest.raises(ValueError, match="corpus"):
            train_layerskip(model, np.zeros((4,), dtype=np.int64))
        with pytest.raises(ValueError, match="min_exit_layer"):
            train_layerskip(model, np.zeros((2, 8), dtype=np.int64),
                            LayerSkipConfig(min_exit_layer=TINY_CFG.n_layers))

    def test_short_run_learns_and_reports(self):
        model = TrainableTransformerLM(TINY_CFG, seed=0, rope=True)
        oracle = NGramOracle(TINY_CFG.vocab_size, seed=1)
        corpus = generate_corpus(oracle, 16, 17, seed=1)
        report = train_layerskip(
            model, corpus,
            LayerSkipConfig(steps=25, batch_size=8, curriculum="all", seed=0))
        assert len(report.losses) == 25
        assert report.final_loss < report.losses[0]
        assert len(report.agreement) == TINY_CFG.n_layers
        assert report.agreement[-1] == 1.0
        assert 0.0 <= report.accuracy <= 1.0

    def test_layer_agreement_final_entry_is_one(self):
        model = TrainableTransformerLM(TINY_CFG, seed=2, rope=True)
        tokens = np.arange(24, dtype=np.int64).reshape(2, 12) % TINY_CFG.vocab_size
        agreement = layer_agreement(model, tokens)
        assert len(agreement) == TINY_CFG.n_layers
        assert agreement[-1] == 1.0
        assert all(0.0 <= a <= 1.0 for a in agreement)


class TestExport:
    def test_rejects_learned_positions(self):
        model = TrainableTransformerLM(TINY_CFG, seed=0, rope=False)
        with pytest.raises(ValueError, match="rope"):
            export_inference_lm(model)

    def test_logit_fidelity(self):
        """Exported inference logits match the trainable forward to float64
        noise — without this the trained exits would be meaningless."""
        model = TrainableTransformerLM(TINY_CFG, seed=4, rope=True)
        tokens = np.random.default_rng(5).integers(
            0, TINY_CFG.vocab_size, size=(3, 20))
        with no_grad():
            want = model(tokens).data
        lm = export_inference_lm(model)
        for row, expected in zip(tokens, want):
            cache = lm.new_cache(len(row))
            hidden = lm.forward_all(row, cache, np.arange(len(row)))
            np.testing.assert_allclose(lm.lm_head(hidden), expected,
                                       rtol=1e-9, atol=1e-10)

    def test_export_is_a_copy(self):
        model = TrainableTransformerLM(TINY_CFG, seed=4, rope=True)
        lm = export_inference_lm(model)
        lm.embedding[:] = 0.0
        assert np.abs(model.token_emb.weight.data).sum() > 0


class TestDistilledNGramDraft:
    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            DistilledNGramDraft(32, k=0)
        with pytest.raises(ValueError):
            DistilledNGramDraft(32, orders=())
        with pytest.raises(ValueError):
            DistilledNGramDraft(32, orders=(1, 2, 3))

    def test_propose_backoff_and_ranking(self):
        draft = DistilledNGramDraft(32, k=3, orders=(2, 1))
        for _ in range(3):
            draft._record([5, 6], 7)
        draft._record([5, 6], 8)
        draft._record([9, 6], 11)
        # Deepest window seen: order-2 counts rank first, then backoff fills.
        assert draft.propose([5, 6])[:2] == [7, 8]
        # Unseen order-2 window backs off to the order-1 window for token 6.
        proposal = draft.propose([1, 6])
        assert proposal[0] in (7, 8, 11)
        assert len(proposal) == 3 and len(set(proposal)) == 3

    def test_propose_pads_with_token_ids_when_empty(self):
        draft = DistilledNGramDraft(32, k=4)
        assert draft.propose([1, 2, 3]) == [0, 1, 2, 3]

    def test_is_hit_and_measured_hit_rate(self):
        draft = DistilledNGramDraft(32, k=2, orders=(2, 1))
        assert draft.hit_rate == 0.0
        draft._record([1, 2], 3)       # miss: window unseen before recording
        assert draft.is_hit([1, 2])
        draft._record([1, 2], 3)       # hit
        assert draft.hit_rate == pytest.approx(0.5)
        assert not draft.is_hit([1])   # shorter than the deepest order

    def test_distill_covers_teacher_argmax(self):
        """On contexts seen teacher-forced, the model's own argmax must rank
        first — that is the whole point of distillation."""
        lm = TinyTransformerLM(TINY_CFG, seed=6)
        oracle = NGramOracle(TINY_CFG.vocab_size, seed=7)
        corpus = generate_corpus(oracle, 4, 17, seed=7)
        draft = DistilledNGramDraft.distill(lm, corpus, k=4)
        row = np.asarray(corpus[0], dtype=np.int64)
        cache = lm.new_cache(len(row))
        hidden = lm.forward_all(row, cache, np.arange(len(row)))
        preds = np.argmax(lm.lm_head(hidden), axis=-1)
        t = len(row) - 2
        assert int(preds[t]) in draft.propose(row[: t + 1])

    def test_rollout_is_deterministic_and_recorded(self):
        lm = TinyTransformerLM(TINY_CFG, seed=6)
        a = DistilledNGramDraft(TINY_CFG.vocab_size)
        b = DistilledNGramDraft(TINY_CFG.vocab_size)
        out_a = a.observe_rollout(lm, [1, 2, 3], 8)
        out_b = b.observe_rollout(lm, [1, 2, 3], 8)
        assert out_a == out_b
        assert a._events == 8


def _verified_exit_stats(rig, n_prompts=4, max_new_tokens=16):
    config = SpecEEConfig(scheduler="offline", exit_threshold=0.3)
    rates, layers = [], []
    for prompt in generate_prompts(n_prompts, rig.model.vocab_size, seed=31):
        engine = rig.specee_engine("offline", config=config, offline_top_k=2)
        result = engine.generate(prompt, max_new_tokens)
        rates.append(result.early_exit_rate)
        layers.extend(result.exit_layers)
    return float(np.mean(rates)), layers


@pytest.mark.slow
class TestTrainedRig:
    def test_metadata_records_the_training_run(self, trained_transformer_rig):
        meta = trained_transformer_rig.metadata
        assert meta["training_accuracy"] >= 0.8
        assert meta["draft_hit_rate"] > 0.3
        agreement = meta["layer_agreement"]
        assert agreement[-1] == 1.0
        # Deep exits agree far more than shallow ones after LayerSkip.
        assert agreement[-2] > agreement[0]

    def test_trained_exits_fire_on_the_real_backend(self, trained_transformer_rig):
        """The ISSUE's core acceptance: verified early-exit rate >= 0.3 with
        offline scheduling at the benchmarked operating point."""
        rate, layers = _verified_exit_stats(trained_transformer_rig)
        assert rate >= 0.3
        n_layers = trained_transformer_rig.model.n_layers
        assert layers and np.mean(layers) < n_layers - 1

    def test_trained_backend_uses_propagate_fill(self, trained_transformer_rig):
        model = trained_transformer_rig.model_factory()
        assert model.kv_fill == "propagate"


@pytest.mark.slow
class TestCLITrainExits:
    def test_smoke(self, capsys):
        from repro.cli import main

        code = main(["train-exits", "--steps", "4", "--prompts", "2",
                     "--max-new-tokens", "8", "--contrast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified early-exit rate" in out
        assert "untrained verified exit rate" in out
        assert "train-exits completed" in out

    def test_rejects_bad_curriculum_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["train-exits", "--curriculum", "bogus"])
