"""Tests for stable math primitives (with hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.mathx import (
    geometric_mean,
    log_softmax,
    logsumexp,
    normalize_rows,
    sigmoid,
    softmax,
)

finite_arrays = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=2, max_size=16
).map(np.asarray)


class TestSoftmax:
    @given(finite_arrays)
    def test_sums_to_one(self, x):
        assert np.isclose(softmax(x).sum(), 1.0)

    @given(finite_arrays)
    def test_nonnegative(self, x):
        assert np.all(softmax(x) >= 0)

    @given(finite_arrays, st.floats(min_value=-10, max_value=10, allow_nan=False))
    def test_shift_invariant(self, x, c):
        assert np.allclose(softmax(x), softmax(x + c))

    def test_no_overflow_for_huge_logits(self):
        out = softmax(np.array([1e4, 0.0, -1e4]))
        assert np.isclose(out[0], 1.0)

    def test_axis(self):
        x = np.arange(6).reshape(2, 3)
        out = softmax(x, axis=1)
        assert np.allclose(out.sum(axis=1), 1.0)


class TestLogSoftmax:
    @given(finite_arrays)
    def test_consistent_with_softmax(self, x):
        assert np.allclose(np.exp(log_softmax(x)), softmax(x))

    @given(finite_arrays)
    def test_all_nonpositive(self, x):
        assert np.all(log_softmax(x) <= 1e-12)


class TestLogsumexp:
    @given(finite_arrays)
    def test_matches_naive(self, x):
        assert np.isclose(logsumexp(x), np.log(np.sum(np.exp(x))))

    def test_stable(self):
        assert np.isclose(logsumexp(np.array([1e3, 1e3])), 1e3 + np.log(2))


class TestSigmoid:
    def test_extremes(self):
        assert sigmoid(1e3) == pytest.approx(1.0)
        assert sigmoid(-1e3) == pytest.approx(0.0)

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_in_unit_interval(self, x):
        assert 0.0 <= sigmoid(x) <= 1.0

    @given(st.floats(min_value=-30, max_value=30, allow_nan=False))
    def test_symmetry(self, x):
        assert sigmoid(x) + sigmoid(-x) == pytest.approx(1.0, abs=1e-9)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=8))
    def test_between_min_and_max(self, xs):
        g = geometric_mean(xs)
        assert min(xs) - 1e-9 <= g <= max(xs) + 1e-9


class TestNormalizeRows:
    def test_unit_norm(self):
        x = np.random.default_rng(0).standard_normal((4, 8))
        out = normalize_rows(x)
        assert np.allclose(np.linalg.norm(out, axis=-1), 1.0)

    def test_zero_row_safe(self):
        out = normalize_rows(np.zeros((2, 3)))
        assert np.all(np.isfinite(out))
