"""Integration tests for SpecEE under speculative decoding (T3)."""

import numpy as np
import pytest

from repro.baselines import EagleEngine
from repro.config import SimDims, SpecEEConfig
from repro.core import (
    PredictorBank,
    SpecEESpeculativeEngine,
    harvest_training_corpus,
    train_predictor_bank,
)
from repro.hardware.ledger import Event
from repro.model.draft import Speculator, TreeDrafter
from repro.model.profiles import get_profile
from repro.model.synthetic import SyntheticLayeredLM


@pytest.fixture(scope="module")
def stack():
    profile = get_profile("llama2-7b")
    lm = SyntheticLayeredLM(profile, SimDims(), seed=31)
    spec = Speculator(lm.oracle, k=4, hit_rate=profile.draft_hit_rate)
    prompts = [[i + 2, i + 5, 7] for i in range(6)]
    corpus = harvest_training_corpus(lm, spec, prompts, tokens_per_prompt=30)
    bank = PredictorBank(lm.n_layers, feature_dim=12, hidden_dim=64, seed=0)
    train_predictor_bank(bank, corpus, epochs=10)
    drafter = TreeDrafter(lm.oracle, depth=4, top_branches=4,
                          level_hit_rate=profile.tree_level_hit_rate)
    return profile, bank, drafter


def fresh(profile, seed=31):
    return SyntheticLayeredLM(profile, SimDims(), seed=seed)


class TestSpecEESpeculative:
    def test_emits_requested_tokens(self, stack):
        profile, bank, drafter = stack
        engine = SpecEESpeculativeEngine(fresh(profile), drafter, bank)
        result = engine.generate([5, 9, 2], 80)
        assert len(result.tokens) == 80
        assert all(0 <= t < 512 for t in result.tokens)

    def test_early_exits_happen_and_save_layers(self, stack):
        profile, bank, drafter = stack
        engine = SpecEESpeculativeEngine(fresh(profile), drafter, bank)
        result = engine.generate([5, 9, 2], 200)
        early = [it for it in result.iterations if it.early_exit]
        assert len(early) >= 0.15 * len(result.iterations)
        layers_per_iter = (result.ledger.calls(Event.TREE_VERIFY_LAYER)
                           / len(result.iterations))
        assert layers_per_iter < 31.5

    def test_early_exit_iterations_bounded_depth(self, stack):
        profile, bank, drafter = stack
        engine = SpecEESpeculativeEngine(fresh(profile), drafter, bank)
        result = engine.generate([5, 9, 2], 150)
        for it in result.iterations:
            if it.early_exit:
                assert it.exit_layer < fresh(profile).n_layers - 1

    def test_disabled_early_exit_matches_eagle_costs(self, stack):
        profile, bank, drafter = stack
        se = SpecEESpeculativeEngine(fresh(profile), drafter, bank, early_exit=False)
        r_se = se.generate([5, 9, 2], 60)
        eagle = EagleEngine(fresh(profile), drafter)
        r_eagle = eagle.generate([5, 9, 2], 60)
        # With early exit off, the engines run the same dataflow.
        assert r_se.tokens == r_eagle.tokens
        assert (r_se.ledger.calls(Event.TREE_VERIFY_LAYER)
                == r_eagle.ledger.calls(Event.TREE_VERIFY_LAYER))

    def test_tokens_match_eagle_prefix_until_divergence(self, stack):
        """Early-exited acceptance must agree with EAGLE's until the first
        transient/bonus divergence — mismatch before that means a bug."""
        profile_nt = get_profile("llama2-7b").with_overrides(transient_rate=0.0)
        lm = SyntheticLayeredLM(profile_nt, SimDims(), seed=33)
        spec = Speculator(lm.oracle, k=4, hit_rate=profile_nt.draft_hit_rate)
        corpus = harvest_training_corpus(
            lm, spec, [[3, 4, 5]], tokens_per_prompt=30)
        bank = PredictorBank(lm.n_layers, feature_dim=12, hidden_dim=64, seed=0)
        train_predictor_bank(bank, corpus, epochs=10)
        drafter = TreeDrafter(lm.oracle, depth=4,
                              level_hit_rate=profile_nt.tree_level_hit_rate)
        se = SpecEESpeculativeEngine(fresh(profile_nt, 33), drafter, bank)
        r_se = se.generate([6, 6, 6], 60)
        r_eagle = EagleEngine(fresh(profile_nt, 33), drafter).generate([6, 6, 6], 60)
        agree = sum(a == b for a, b in zip(r_se.tokens, r_eagle.tokens))
        # Divergence can still come from a pre-saturation bonus token at an
        # early exit, but the streams must agree on a meaningful prefix.
        assert agree >= 10

    def test_ledger_tree_events(self, stack):
        profile, bank, drafter = stack
        engine = SpecEESpeculativeEngine(fresh(profile), drafter, bank)
        result = engine.generate([1, 2, 3], 40)
        iters = len(result.iterations)
        assert result.ledger.steps == iters
        assert result.ledger.calls(Event.DRAFT_STEP) == drafter.depth * iters
        assert result.ledger.calls(Event.TREE_FEATURE_GEMM) > 0
