"""Allocator/paged-cache invariants the serving engine depends on:
double-free rejection, pool exhaustion, and bit-exact gather reads under
heavy fragmentation from interleaved allocation and freeing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.paged_kv import BlockAllocator, PagedKVCache


def _kv(rng, heads=1, dim=2):
    return rng.standard_normal((heads, dim))


class TestBlockAllocatorInvariants:
    def test_double_free_rejected(self):
        alloc = BlockAllocator(4)
        block = alloc.allocate()
        alloc.free(block)
        with pytest.raises(ValueError):
            alloc.free(block)

    def test_free_of_never_allocated_rejected(self):
        alloc = BlockAllocator(4)
        with pytest.raises(ValueError):
            alloc.free(0)

    def test_exhaustion_raises_memoryerror(self):
        alloc = BlockAllocator(3)
        for _ in range(3):
            alloc.allocate()
        with pytest.raises(MemoryError):
            alloc.allocate()

    def test_freed_blocks_are_reusable(self):
        alloc = BlockAllocator(2)
        a = alloc.allocate()
        b = alloc.allocate()
        alloc.free(b)
        alloc.free(a)
        seen = {alloc.allocate(), alloc.allocate()}
        assert seen == {a, b}
        assert alloc.free_blocks == 0

    def test_no_block_handed_out_twice(self):
        alloc = BlockAllocator(16)
        live = set()
        for _ in range(16):
            block = alloc.allocate()
            assert block not in live
            live.add(block)


class TestPagedCacheInvariants:
    def test_cache_exhaustion_raises_memoryerror(self):
        cache = PagedKVCache(n_blocks=2, block_size=2, n_kv_heads=1, head_dim=2)
        cache.add_sequence(0)
        for _ in range(4):
            cache.append(0, np.zeros((1, 2)), np.zeros((1, 2)))
        with pytest.raises(MemoryError):
            cache.append(0, np.zeros((1, 2)), np.zeros((1, 2)))

    def test_double_free_sequence_rejected(self):
        cache = PagedKVCache(n_blocks=4, block_size=2, n_kv_heads=1, head_dim=2)
        cache.add_sequence(7)
        cache.append(7, np.ones((1, 2)), np.ones((1, 2)))
        cache.free_sequence(7)
        with pytest.raises(KeyError):
            cache.free_sequence(7)

    def test_append_to_freed_sequence_rejected(self):
        cache = PagedKVCache(n_blocks=4, block_size=2, n_kv_heads=1, head_dim=2)
        cache.add_sequence(0)
        cache.free_sequence(0)
        with pytest.raises(KeyError):
            cache.append(0, np.zeros((1, 2)), np.zeros((1, 2)))

    def test_gather_bit_exact_under_fragmentation(self):
        """Interleaved alloc/free shuffles physical block order; gathered
        reads must still equal a contiguous reference bit for bit."""
        rng = np.random.default_rng(0)
        cache = PagedKVCache(n_blocks=24, block_size=3, n_kv_heads=2, head_dim=4)
        reference: dict[int, list] = {}
        next_id = 0
        for op in rng.integers(0, 10, size=400):
            live = sorted(reference)
            if op == 0 or not live:  # open a new sequence
                cache.add_sequence(next_id)
                reference[next_id] = []
                next_id += 1
            elif op == 1 and len(live) > 1:  # retire one, fragmenting the pool
                victim = int(rng.choice(live))
                cache.free_sequence(victim)
                del reference[victim]
            else:  # append to a random live sequence
                seq = int(rng.choice(live))
                if cache.allocator.free_blocks == 0 and \
                        len(reference[seq]) % cache.block_size == 0:
                    continue
                k, v = _kv(rng, 2, 4), _kv(rng, 2, 4)
                cache.append(seq, k, v)
                reference[seq].append((k, v))
            for seq, pairs in reference.items():
                ks, vs = cache.gather(seq)
                assert ks.shape[0] == len(pairs)
                if pairs:
                    assert np.array_equal(ks, np.stack([k for k, _ in pairs]))
                    assert np.array_equal(vs, np.stack([v for _, v in pairs]))
        for seq in sorted(reference):
            cache.free_sequence(seq)
        assert cache.allocator.free_blocks == 24
        assert cache.blocks_in_use() == 0

    @given(st.lists(st.sampled_from(["a0", "a1", "a2", "f0", "f1", "f2"]),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_alloc_free_cycles_never_leak(self, ops):
        """Block accounting stays exact through arbitrary alloc/free orders."""
        cache = PagedKVCache(n_blocks=64, block_size=2, n_kv_heads=1, head_dim=2)
        rng = np.random.default_rng(1)
        live: set[int] = set()
        lengths = {0: 0, 1: 0, 2: 0}
        for op in ops:
            seq = int(op[1])
            if op[0] == "a":
                if seq not in live:
                    cache.add_sequence(seq)
                    live.add(seq)
                    lengths[seq] = 0
                cache.append(seq, _kv(rng), _kv(rng))
                lengths[seq] += 1
            elif seq in live:
                cache.free_sequence(seq)
                live.remove(seq)
                lengths[seq] = 0
        expected_blocks = sum(-(-lengths[s] // 2) for s in live)
        assert cache.blocks_in_use() == expected_blocks
        assert cache.allocator.free_blocks == 64 - expected_blocks
