"""Failure-injection tests: the engines must stay correct when components
are degraded — a bad predictor, a useless draft, extreme thresholds."""

import numpy as np
import pytest

from repro.baselines import DenseEngine
from repro.config import SimDims, SpecEEConfig
from repro.core import PredictorBank, SpecEEEngine, make_scheduler
from repro.hardware.ledger import Event
from repro.model.draft import Speculator
from repro.model.profiles import get_profile
from repro.model.synthetic import SyntheticLayeredLM


def fresh(seed=77, transient_rate=None):
    profile = get_profile("llama2-7b")
    if transient_rate is not None:
        profile = profile.with_overrides(transient_rate=transient_rate)
    return SyntheticLayeredLM(profile, SimDims(), seed=seed)


class _AlwaysFirePredictor(PredictorBank):
    """Adversarial predictor that fires at every layer."""

    def probability(self, layer, features):
        return 1.0


class _NeverFirePredictor(PredictorBank):
    def probability(self, layer, features):
        return 0.0


class TestAdversarialPredictors:
    def test_always_fire_still_correct_thanks_to_verification(self):
        """Even a predictor that fires everywhere cannot corrupt the output:
        verification only admits the model's own argmax when it is in the
        speculative set, and without transients that equals the dense token."""
        lm = fresh(transient_rate=0.0)
        spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
        bank = _AlwaysFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(),
                              scheduler=make_scheduler("all", lm.n_layers))
        result = engine.generate([3, 1, 4], 60)
        dense = DenseEngine(fresh(transient_rate=0.0)).generate([3, 1, 4], 60)
        assert result.tokens == dense.tokens
        # It pays for its eagerness in verification calls.
        assert result.ledger.calls(Event.LM_HEAD_FULL) > 60

    def test_never_fire_degrades_to_dense(self):
        lm = fresh()
        spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
        bank = _NeverFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig())
        result = engine.generate([3, 1, 4], 40)
        assert result.early_exit_rate == 0.0
        assert result.avg_exit_layer == pytest.approx(32.0)
        dense = DenseEngine(fresh()).generate([3, 1, 4], 40)
        assert result.tokens == dense.tokens


class TestDegradedDraft:
    def test_useless_draft_forces_full_depth(self):
        """A draft that never contains the target makes early exit
        impossible (verification always fails) but never wrong."""
        lm = fresh(transient_rate=0.0)
        spec = Speculator(lm.oracle, k=4, hit_rate=0.0)
        bank = _AlwaysFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(),
                              scheduler=make_scheduler("all", lm.n_layers))
        result = engine.generate([5, 5, 5], 40)
        assert result.early_exit_rate == 0.0
        dense = DenseEngine(fresh(transient_rate=0.0)).generate([5, 5, 5], 40)
        assert result.tokens == dense.tokens

    def test_perfect_draft_maximizes_exits(self):
        lm = fresh(transient_rate=0.0)
        spec = Speculator(lm.oracle, k=4, hit_rate=1.0)
        bank = _AlwaysFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(),
                              scheduler=make_scheduler("all", lm.n_layers))
        result = engine.generate([5, 5, 5], 40)
        # Every step should exit at (or just after) its saturation layer.
        assert result.early_exit_rate > 0.85
        gaps = [e - s for e, s, r in zip(result.exit_layers, result.saturations,
                                         result.records) if r.early_exit]
        assert float(np.mean(gaps)) < 1.5


class TestThresholdExtremes:
    def test_threshold_near_one_suppresses_exits(self):
        lm = fresh()
        spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
        bank = PredictorBank(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(exit_threshold=0.999))
        result = engine.generate([1, 2, 3], 30)
        assert result.early_exit_rate <= 0.2

    def test_min_exit_layer_at_depth_limit(self):
        lm = fresh()
        spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
        bank = _AlwaysFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        cfg = SpecEEConfig(min_exit_layer=lm.n_layers - 1)
        engine = SpecEEEngine(lm, spec, bank, cfg,
                              scheduler=make_scheduler("all", lm.n_layers))
        result = engine.generate([1, 2, 3], 20)
        assert result.early_exit_rate == 0.0


class TestErrorPropagationBound:
    def test_transient_error_rate_bounded(self):
        """Per-step disagreement with the dense model (same forced context)
        must stay near the transient rate — the Table 4 mechanism."""
        rate = 0.05
        lm = fresh(seed=99, transient_rate=rate)
        spec = Speculator(lm.oracle, k=4, hit_rate=0.8)
        bank = _AlwaysFirePredictor(lm.n_layers, feature_dim=12, hidden_dim=8)
        engine = SpecEEEngine(lm, spec, bank, SpecEEConfig(),
                              scheduler=make_scheduler("all", lm.n_layers))
        # Teacher-force a reference so contexts never diverge; count steps
        # where the engine would have emitted a non-dense token.
        reference = lm.oracle.continuation([4, 2, 0], 120)
        result = engine.generate([4, 2, 0], 0, force_tokens=reference)
        dense = DenseEngine(fresh(seed=99, transient_rate=rate))
        ref_run = dense.generate([4, 2, 0], 0, force_tokens=reference)
        # Compare the exit-layer logprob of the reference: a transient exit
        # shows up as a (much) lower logprob than dense at the same step.
        disagreements = sum(
            1 for a, b in zip(result.logprobs, ref_run.logprobs) if a < b - 2.0
        )
        assert disagreements / len(reference) < 3 * rate + 0.05
